//! A day in the life, interrupted: the phone is stolen mid-afternoon.
//!
//! Streams a full simulated day through the SmarterYou pipeline. The owner
//! uses the phone normally all morning; at window 60 a thief (who has
//! watched the owner and imitates them — §V-G's masquerading adversary)
//! takes over. The pipeline de-authenticates within a few windows and locks
//! the device; the rightful owner later recovers it with explicit
//! authentication.
//!
//! Run with: `cargo run --release --example stolen_phone`

use std::sync::Arc;

use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::SeedableRng;

use smarteryou::core::{
    ContextDetector, ContextDetectorConfig, DeviceSet, FeatureExtractor, ProcessOutcome,
    ResponseAction, SmarterYou, SystemConfig, SystemPhase, TrainingServer,
};
use smarteryou::sensors::{MimicryAttacker, Population, RawContext, TraceGenerator, WindowSpec};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let population = Population::generate(12, 7);
    let owner = population.users()[0].clone();
    let thief = population.users()[1].clone();
    let cfg = SystemConfig::paper_default().with_data_size(200);
    let spec = WindowSpec::from_seconds(cfg.window_secs(), cfg.sample_rate());
    let extractor = FeatureExtractor::paper_default(cfg.sample_rate());

    // Cloud setup from the rest of the population.
    let mut ctx_features = Vec::new();
    let mut ctx_labels = Vec::new();
    let mut server = TrainingServer::new();
    for user in &population.users()[2..] {
        let mut gen = TraceGenerator::new(user.clone(), 11);
        for raw in [RawContext::SittingStanding, RawContext::MovingAround] {
            let windows = gen.generate_windows(raw, spec, 40);
            for w in &windows {
                ctx_features.push(extractor.context_features(w));
                ctx_labels.push(raw.coarse());
            }
            server.contribute(
                raw.coarse(),
                windows
                    .iter()
                    .map(|w| extractor.auth_features(w, DeviceSet::Combined)),
            );
        }
    }
    let mut rng = StdRng::seed_from_u64(2);
    let detector = ContextDetector::train(
        extractor,
        &ctx_features,
        &ctx_labels,
        ContextDetectorConfig::default(),
        &mut rng,
    )?;
    let mut system = SmarterYou::new(cfg, detector, Arc::new(Mutex::new(server)), 3)?;

    // Enroll the owner.
    let mut owner_gen = TraceGenerator::new(owner.clone(), 21);
    let mut s = 0;
    while system.phase() == SystemPhase::Enrollment {
        let ctx = if s % 2 == 0 {
            RawContext::SittingStanding
        } else {
            RawContext::MovingAround
        };
        s += 1;
        for w in owner_gen.generate_windows(ctx, spec, 10) {
            system.process_window(&w)?;
        }
    }
    println!("Owner enrolled.\n");

    // The thief has studied the owner.
    let mimic = MimicryAttacker::new(thief, 0.75);
    let masq_profile = mimic.masquerade_profile(&owner, &mut rng);
    let mut thief_gen = TraceGenerator::new(masq_profile, 31);
    thief_gen.begin_session(RawContext::SittingStanding);
    owner_gen.begin_session(RawContext::SittingStanding);

    // One afternoon: 60 owner windows (6 minutes at 6 s), then the theft.
    let mut theft_window = None;
    let mut lock_window = None;
    for k in 0..90 {
        let (who, w) = if k < 60 {
            ("owner", owner_gen.next_window(spec))
        } else {
            if theft_window.is_none() {
                theft_window = Some(k);
                println!("*** window {k}: phone stolen — mimicry attacker takes over ***");
            }
            ("thief", thief_gen.next_window(spec))
        };
        if let ProcessOutcome::Decision {
            decision, action, ..
        } = system.process_window(&w)?
        {
            if k % 10 == 0 || action != ResponseAction::Allow {
                println!(
                    "window {k:>3} [{who}] context={:<10} CS={:>6.2} -> {action:?}",
                    decision.context.name(),
                    decision.confidence,
                );
            }
            if action == ResponseAction::Lock && lock_window.is_none() {
                lock_window = Some(k);
                break;
            }
        }
    }

    match (theft_window, lock_window) {
        (Some(t), Some(l)) => {
            let secs = (l - t + 1) as f64 * spec.seconds();
            println!(
                "\nThief detected and locked out after {} window(s) ≈ {secs:.0} s.",
                l - t + 1
            );
        }
        _ => println!("\nUnexpected: thief was not locked out within the horizon."),
    }

    println!("Owner recovers the phone and re-authenticates explicitly…");
    system.unlock_with_explicit_auth();
    let w = owner_gen.next_window(spec);
    if let ProcessOutcome::Decision {
        decision, action, ..
    } = system.process_window(&w)?
    {
        println!(
            "owner window: CS={:.2} -> {action:?} (accepted={})",
            decision.confidence, decision.accepted
        );
    }
    Ok(())
}
