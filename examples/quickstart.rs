//! Quickstart: enroll a device owner and continuously authenticate.
//!
//! Walks the full SmarterYou deployment flow end to end:
//!
//! 1. generate a study population (the cloud's anonymized feature pool),
//! 2. train the user-agnostic context detector on *other* users,
//! 3. enroll the device owner (buffering windows until the training-set
//!    target is reached, then downloading per-context KRR models),
//! 4. authenticate fresh windows from the owner and from a stranger.
//!
//! Run with: `cargo run --release --example quickstart`

use std::sync::Arc;

use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::SeedableRng;

use smarteryou::core::{
    ContextDetector, ContextDetectorConfig, DeviceSet, FeatureExtractor, ProcessOutcome,
    SmarterYou, SystemConfig, SystemPhase, TrainingServer,
};
use smarteryou::sensors::{Population, RawContext, TraceGenerator, WindowSpec};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A small population keeps the example fast; the paper uses 35.
    let population = Population::generate(10, 42);
    let owner = population.users()[0].clone();
    let stranger = population.users()[1].clone();
    let cfg = SystemConfig::paper_default().with_data_size(200);
    let spec = WindowSpec::from_seconds(cfg.window_secs(), cfg.sample_rate());
    let extractor = FeatureExtractor::paper_default(cfg.sample_rate());

    // --- cloud side: context detector + anonymized pool (users 2..) ------
    println!("Training user-agnostic context detector and filling the pool…");
    let mut ctx_features = Vec::new();
    let mut ctx_labels = Vec::new();
    let mut server = TrainingServer::new();
    for user in &population.users()[2..] {
        let mut gen = TraceGenerator::new(user.clone(), 7);
        for raw in [
            RawContext::SittingStanding,
            RawContext::MovingAround,
            RawContext::OnTable,
        ] {
            let windows = gen.generate_windows(raw, spec, 40);
            for w in &windows {
                ctx_features.push(extractor.context_features(w));
                ctx_labels.push(raw.coarse());
            }
            server.contribute(
                raw.coarse(),
                windows
                    .iter()
                    .map(|w| extractor.auth_features(w, DeviceSet::Combined)),
            );
        }
    }
    let mut rng = StdRng::seed_from_u64(1);
    let detector = ContextDetector::train(
        extractor,
        &ctx_features,
        &ctx_labels,
        ContextDetectorConfig::default(),
        &mut rng,
    )?;

    // --- device side: enrollment ------------------------------------------
    let mut system = SmarterYou::new(cfg, detector, Arc::new(Mutex::new(server)), 99)?;
    println!("Enrolling the owner (free-form usage)…");
    let mut gen = TraceGenerator::new(owner.clone(), 1234);
    let mut sessions = 0;
    while system.phase() == SystemPhase::Enrollment {
        let ctx = if sessions % 2 == 0 {
            RawContext::SittingStanding
        } else {
            RawContext::MovingAround
        };
        sessions += 1;
        for w in gen.generate_windows(ctx, spec, 10) {
            system.process_window(&w)?;
        }
    }
    println!(
        "Enrollment complete after {sessions} sessions; events: {:?}",
        system.events()
    );

    // --- continuous authentication ----------------------------------------
    let mut authenticate = |who: &str, profile, seed| -> Result<(), Box<dyn std::error::Error>> {
        let mut gen = TraceGenerator::new(profile, seed);
        let mut accepted = 0;
        let mut total = 0;
        for ctx in [RawContext::SittingStanding, RawContext::MovingAround] {
            for w in gen.generate_windows(ctx, spec, 10) {
                if let ProcessOutcome::Decision { decision, .. } = system.process_window(&w)? {
                    total += 1;
                    if decision.accepted {
                        accepted += 1;
                    }
                }
            }
        }
        println!("{who}: accepted {accepted}/{total} windows");
        system.unlock_with_explicit_auth(); // reset between demos
        Ok(())
    };
    authenticate("owner   ", owner, 555)?;
    authenticate("stranger", stranger, 777)?;
    Ok(())
}
