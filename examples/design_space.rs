//! The paper's design-space sweep in miniature (§V): context mode × device
//! set × algorithm, all evaluated on one simulated population.
//!
//! Run with: `cargo run --release --example design_space`
//! (Add `--full` for the 35-user paper scale; takes a few minutes.)

use smarteryou::core::experiment::{
    collect_population_features, evaluate_authentication, ExperimentConfig,
};
use smarteryou::core::{ContextMode, DeviceSet};
use smarteryou::ml::Algorithm;

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let cfg = if full {
        ExperimentConfig::paper_default()
    } else {
        let mut c = ExperimentConfig::quick();
        c.num_users = 10;
        c.windows_per_context = 80;
        c.data_size = 120;
        c
    };
    println!(
        "Sweeping the design space over {} users, {} windows/context…\n",
        cfg.num_users, cfg.windows_per_context
    );
    let data = collect_population_features(&cfg);

    println!(
        "{:<14} {:<14} {:<18} {:>7} {:>7} {:>9}",
        "context", "devices", "algorithm", "FRR", "FAR", "accuracy"
    );
    for mode in ContextMode::ALL {
        for device in DeviceSet::ALL {
            for alg in [Algorithm::Krr, Algorithm::NaiveBayes] {
                let perf = evaluate_authentication(&data, &cfg, device, mode, alg);
                println!(
                    "{:<14} {:<14} {:<18} {:>6.1}% {:>6.1}% {:>8.1}%",
                    mode.name(),
                    device.name(),
                    alg.name(),
                    100.0 * perf.frr,
                    100.0 * perf.far,
                    100.0 * perf.accuracy()
                );
            }
        }
    }
    println!(
        "\nThe paper's design conclusions should be visible at any scale:\n\
         per-context beats unified, two devices beat one, and KRR beats\n\
         the independence-assuming baseline."
    );
}
