//! Behavioural drift and automatic retraining (§V-I, Figure 7).
//!
//! Simulates twelve days of usage for an owner whose habits change quickly.
//! The pipeline's confidence score sags as the model goes stale, the
//! retraining trigger fires, fresh models are fetched from the training
//! server, and confidence recovers — all without the user noticing.
//!
//! Run with: `cargo run --release --example behavioral_drift`

use smarteryou::core::experiment::{drift_experiment, ExperimentConfig};
use smarteryou::core::SystemEvent;

fn main() {
    let mut cfg = ExperimentConfig::quick();
    cfg.num_users = 8;
    cfg.data_size = 80;
    cfg.window_secs = 3.0;

    println!("Simulating 12 days with pronounced behavioural drift…\n");
    let report = drift_experiment(&cfg, 12, 6.0);

    println!("day | median confidence score");
    for (day, cs) in &report.daily_confidence {
        let bar_len = (cs.clamp(0.0, 1.5) * 40.0) as usize;
        let marker = match report.retrain_day {
            Some(d) if (d.floor() as u32) == *day => "  <-- retrain triggered",
            _ => "",
        };
        println!("{day:>3} | {:<60} {cs:.2}{marker}", "#".repeat(bar_len));
    }

    println!("\nPipeline events:");
    for e in &report.events {
        match e {
            SystemEvent::EnrollmentComplete { day } => {
                println!("  day {day:5.1}: enrollment complete, models downloaded")
            }
            SystemEvent::Retrained { day } => {
                println!("  day {day:5.1}: behavioural drift detected -> retrained")
            }
            SystemEvent::Locked { day } => println!("  day {day:5.1}: device locked"),
        }
    }
    match report.retrain_day {
        Some(d) => println!("\nAutomatic retraining kept the legitimate user in (day {d:.1})."),
        None => println!("\nNo retrain was needed at this drift level."),
    }
}
