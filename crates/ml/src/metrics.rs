use serde::{Deserialize, Serialize};

use smarteryou_linalg::Matrix;
use smarteryou_stats::BinaryOutcomes;

use crate::{BinaryClassifier, Dataset, MlError};

/// Evaluates a binary classifier over rows of `x` with ±1 labels, accepting
/// samples whose decision score is at least `threshold`.
///
/// The paper's security/convenience trade-off (§V-F3: "a large FAR is more
/// harmful than a large FRR") is tuned exactly through this threshold.
///
/// # Panics
///
/// Panics if `x.rows() != y.len()`.
pub fn evaluate_binary<C: BinaryClassifier + ?Sized>(
    model: &C,
    x: &Matrix,
    y: &[f64],
    threshold: f64,
) -> BinaryOutcomes {
    assert_eq!(x.rows(), y.len(), "rows/labels mismatch");
    let mut out = BinaryOutcomes::default();
    for (row, &label) in x.iter_rows().zip(y) {
        let accepted = model.decision(row) >= threshold;
        out.record(label > 0.0, accepted);
    }
    out
}

/// Aggregated result of a repeated k-fold cross-validation run (the paper
/// uses 10-fold CV averaged over many iterations, §V-A).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CrossValidationReport {
    /// Outcomes of every individual fold, across repeats.
    pub folds: Vec<BinaryOutcomes>,
    /// Pooled outcome counts over all folds.
    pub aggregate: BinaryOutcomes,
}

impl CrossValidationReport {
    /// Builds a report from per-fold outcomes.
    pub fn from_folds(folds: Vec<BinaryOutcomes>) -> Self {
        let mut aggregate = BinaryOutcomes::default();
        for f in &folds {
            aggregate.merge(f);
        }
        CrossValidationReport { folds, aggregate }
    }

    /// Pooled false reject rate.
    pub fn frr(&self) -> f64 {
        self.aggregate.frr()
    }

    /// Pooled false accept rate.
    pub fn far(&self) -> f64 {
        self.aggregate.far()
    }

    /// Pooled balanced accuracy.
    pub fn accuracy(&self) -> f64 {
        self.aggregate.accuracy()
    }
}

/// Runs k-fold cross-validation: for each fold, `train` receives the
/// training subset and must return a fitted classifier, which is then scored
/// on the held-out fold at `threshold`.
///
/// # Errors
///
/// Propagates the first training error.
pub fn cross_validate<F>(
    data: &Dataset,
    folds: &[Vec<usize>],
    threshold: f64,
    mut train: F,
) -> Result<CrossValidationReport, MlError>
where
    F: FnMut(&Dataset) -> Result<Box<dyn BinaryClassifier>, MlError>,
{
    let mut outcomes = Vec::with_capacity(folds.len());
    for (i, test_idx) in folds.iter().enumerate() {
        let train_idx: Vec<usize> = folds
            .iter()
            .enumerate()
            .filter(|&(j, _)| j != i)
            .flat_map(|(_, f)| f.iter().copied())
            .collect();
        let train_set = data.subset(&train_idx);
        let test_set = data.subset(test_idx);
        let model = train(&train_set)?;
        outcomes.push(evaluate_binary(
            model.as_ref(),
            test_set.x(),
            test_set.y(),
            threshold,
        ));
    }
    Ok(CrossValidationReport::from_folds(outcomes))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{stratified_k_fold, KernelRidge};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn separable() -> Dataset {
        let pos: Vec<Vec<f64>> = (0..20).map(|i| vec![1.0 + 0.01 * i as f64, 1.0]).collect();
        let neg: Vec<Vec<f64>> = (0..20)
            .map(|i| vec![-1.0 - 0.01 * i as f64, -1.0])
            .collect();
        Dataset::from_classes(&pos, &neg).unwrap()
    }

    #[test]
    fn evaluate_counts_correctly() {
        let data = separable();
        let model = KernelRidge::new(0.1).fit(data.x(), data.y()).unwrap();
        let out = evaluate_binary(&model, data.x(), data.y(), 0.0);
        assert_eq!(out.total(), 40);
        assert_eq!(out.frr(), 0.0);
        assert_eq!(out.far(), 0.0);
        assert_eq!(out.accuracy(), 1.0);
    }

    #[test]
    fn threshold_trades_far_for_frr() {
        let data = separable();
        let model = KernelRidge::new(0.1).fit(data.x(), data.y()).unwrap();
        let strict = evaluate_binary(&model, data.x(), data.y(), 10.0);
        // Impossible threshold: everything rejected.
        assert_eq!(strict.far(), 0.0);
        assert_eq!(strict.frr(), 1.0);
        let lax = evaluate_binary(&model, data.x(), data.y(), -10.0);
        assert_eq!(lax.far(), 1.0);
        assert_eq!(lax.frr(), 0.0);
    }

    #[test]
    fn cross_validation_on_separable_data_is_perfect() {
        let data = separable();
        let mut rng = StdRng::seed_from_u64(3);
        let folds = stratified_k_fold(data.y(), 5, &mut rng);
        let report = cross_validate(&data, &folds, 0.0, |train| {
            Ok(Box::new(KernelRidge::new(0.1).fit(train.x(), train.y())?))
        })
        .unwrap();
        assert_eq!(report.folds.len(), 5);
        assert_eq!(report.accuracy(), 1.0);
        assert_eq!(report.aggregate.total(), 40);
    }
}
