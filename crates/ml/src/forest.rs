use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use smarteryou_linalg::Matrix;

use crate::{DecisionTree, DecisionTreeModel, MlError};

/// Random forest (Ho 1995 / Breiman 2001): bagged CART trees with per-split
/// feature subsampling.
///
/// This is the paper's context-detection classifier (§V-E, Table V): a
/// user-agnostic model that labels each window *stationary* or *moving*
/// before the per-context authentication model is selected.
///
/// # Example
///
/// ```
/// use rand::SeedableRng;
/// use smarteryou_linalg::Matrix;
/// use smarteryou_ml::RandomForest;
///
/// # fn main() -> Result<(), smarteryou_ml::MlError> {
/// let x = Matrix::from_rows(&[&[0.1], &[0.2], &[0.9], &[1.1]]).unwrap();
/// let y = [0usize, 0, 1, 1];
/// let mut rng = rand::rngs::StdRng::seed_from_u64(5);
/// let model = RandomForest::new(20).fit(&x, &y, 2, &mut rng)?;
/// assert_eq!(model.predict(&[0.15]), 0);
/// assert_eq!(model.predict(&[1.0]), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RandomForest {
    n_trees: usize,
    max_depth: usize,
    min_samples_split: usize,
    /// Features per split; `None` = ⌈√M⌉ (the usual heuristic).
    max_features: Option<usize>,
}

impl Default for RandomForest {
    fn default() -> Self {
        RandomForest {
            n_trees: 50,
            max_depth: 12,
            min_samples_split: 2,
            max_features: None,
        }
    }
}

impl RandomForest {
    /// Creates a forest of `n_trees` trees with default depth 12 and √M
    /// feature subsampling.
    ///
    /// # Panics
    ///
    /// Panics if `n_trees == 0`.
    pub fn new(n_trees: usize) -> Self {
        assert!(n_trees > 0, "forest needs at least one tree");
        RandomForest {
            n_trees,
            ..RandomForest::default()
        }
    }

    /// Limits the depth of each tree.
    ///
    /// # Panics
    ///
    /// Panics if `depth == 0`.
    pub fn with_max_depth(mut self, depth: usize) -> Self {
        assert!(depth > 0, "max depth must be positive");
        self.max_depth = depth;
        self
    }

    /// Overrides the number of features examined per split.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn with_max_features(mut self, k: usize) -> Self {
        assert!(k > 0, "max features must be positive");
        self.max_features = Some(k);
        self
    }

    /// Trains on rows of `x` with class labels `y < num_classes`.
    ///
    /// Each tree gets a bootstrap resample of the rows and an independent
    /// RNG stream derived from `rng`.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::InvalidTrainingData`] for malformed inputs.
    pub fn fit(
        &self,
        x: &Matrix,
        y: &[usize],
        num_classes: usize,
        rng: &mut StdRng,
    ) -> Result<RandomForestModel, MlError> {
        if x.rows() != y.len() || x.rows() == 0 {
            return Err(MlError::InvalidTrainingData(format!(
                "{} rows vs {} labels",
                x.rows(),
                y.len()
            )));
        }
        let m = x.cols();
        let k = self
            .max_features
            .unwrap_or_else(|| (m as f64).sqrt().ceil() as usize)
            .clamp(1, m);
        let template = DecisionTree::new()
            .with_max_depth(self.max_depth)
            .with_min_samples_split(self.min_samples_split)
            .with_max_features(k);

        let n = x.rows();
        let mut trees = Vec::with_capacity(self.n_trees);
        for _ in 0..self.n_trees {
            // Bootstrap sample with replacement.
            let idx: Vec<usize> = (0..n).map(|_| rng.random_range(0..n)).collect();
            let rows: Vec<&[f64]> = idx.iter().map(|&i| x.row(i)).collect();
            let bx = Matrix::from_rows(&rows).expect("uniform width");
            let by: Vec<usize> = idx.iter().map(|&i| y[i]).collect();
            let mut tree_rng = StdRng::seed_from_u64(rng.random());
            trees.push(template.fit(&bx, &by, num_classes, &mut tree_rng)?);
        }
        Ok(RandomForestModel { trees, num_classes })
    }
}

/// A trained random forest.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RandomForestModel {
    trees: Vec<DecisionTreeModel>,
    num_classes: usize,
}

impl RandomForestModel {
    /// Number of trees in the ensemble.
    pub fn num_trees(&self) -> usize {
        self.trees.len()
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Number of features each tree expects.
    pub fn num_features(&self) -> usize {
        self.trees.first().map_or(0, |t| t.num_features())
    }

    /// Mean per-class probability across trees.
    ///
    /// # Panics
    ///
    /// Panics if `x` has the wrong width.
    pub fn predict_proba(&self, x: &[f64]) -> Vec<f64> {
        let mut acc = vec![0.0; self.num_classes];
        for tree in &self.trees {
            for (a, p) in acc.iter_mut().zip(tree.predict_proba(x)) {
                *a += p;
            }
        }
        let k = 1.0 / self.trees.len() as f64;
        for a in &mut acc {
            *a *= k;
        }
        acc
    }

    /// Majority-vote class for `x`.
    ///
    /// # Panics
    ///
    /// Panics if `x` has the wrong width.
    pub fn predict(&self, x: &[f64]) -> usize {
        self.predict_proba(x)
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(23)
    }

    /// Noisy two-moon-ish classes on a 2-D grid.
    fn dataset() -> (Matrix, Vec<usize>) {
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for i in 0..120 {
            let t = i as f64 / 120.0 * std::f64::consts::PI;
            let jitter = (((i as u64 * 2654435761) % 997) as f64 / 997.0 - 0.5) * 0.3;
            if i % 2 == 0 {
                rows.push(vec![t.cos() + jitter, t.sin() + jitter]);
                y.push(0);
            } else {
                rows.push(vec![1.0 - t.cos() + jitter, 0.5 - t.sin() + jitter]);
                y.push(1);
            }
        }
        (Matrix::from_rows(&rows).unwrap(), y)
    }

    #[test]
    fn forest_fits_nonlinear_classes() {
        let (x, y) = dataset();
        let model = RandomForest::new(30).fit(&x, &y, 2, &mut rng()).unwrap();
        let correct = (0..x.rows())
            .filter(|&i| model.predict(x.row(i)) == y[i])
            .count();
        assert!(correct as f64 / x.rows() as f64 > 0.9);
    }

    #[test]
    fn forest_beats_single_shallow_tree_on_noisy_data() {
        let (x, y) = dataset();
        let tree = DecisionTree::new()
            .with_max_depth(2)
            .fit(&x, &y, 2, &mut rng())
            .unwrap();
        let forest = RandomForest::new(40)
            .with_max_depth(6)
            .fit(&x, &y, 2, &mut rng())
            .unwrap();
        let acc = |pred: &dyn Fn(&[f64]) -> usize| {
            (0..x.rows()).filter(|&i| pred(x.row(i)) == y[i]).count() as f64 / x.rows() as f64
        };
        let tree_acc = acc(&|r| tree.predict(r));
        let forest_acc = acc(&|r| forest.predict(r));
        assert!(forest_acc >= tree_acc, "{forest_acc} vs {tree_acc}");
    }

    #[test]
    fn proba_is_distribution() {
        let (x, y) = dataset();
        let model = RandomForest::new(10).fit(&x, &y, 2, &mut rng()).unwrap();
        let p = model.predict_proba(&[0.5, 0.5]);
        assert_eq!(p.len(), 2);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(p.iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn deterministic_given_seed() {
        let (x, y) = dataset();
        let m1 = RandomForest::new(10)
            .fit(&x, &y, 2, &mut StdRng::seed_from_u64(9))
            .unwrap();
        let m2 = RandomForest::new(10)
            .fit(&x, &y, 2, &mut StdRng::seed_from_u64(9))
            .unwrap();
        assert_eq!(m1.predict(&[0.3, 0.3]), m2.predict(&[0.3, 0.3]));
    }

    #[test]
    fn rejects_empty_data() {
        let x = Matrix::from_rows(&[&[1.0]]).unwrap();
        assert!(RandomForest::new(3).fit(&x, &[], 2, &mut rng()).is_err());
    }
}
