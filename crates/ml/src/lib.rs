//! From-scratch machine-learning substrate for the SmarterYou reproduction.
//!
//! The paper evaluates four binary classifiers for user authentication
//! (Table VI) — **kernel ridge regression** (the system's choice, §V-F2),
//! SVM, linear regression and naive Bayes — plus a **random forest** for
//! user-agnostic context detection (§V-E) and k-NN as a related-work
//! baseline (Nickel et al., Table I). All of them are implemented here with
//! no external ML dependencies, along with datasets, z-score scaling,
//! stratified k-fold cross-validation and evaluation helpers.
//!
//! The KRR implementation exposes both the **dual** form of Eq. 6
//! (`w* = Φ[K + ρIₙ]⁻¹y`, O(N³)-ish) and the **primal** form of Eq. 7
//! (`w* = [S + ρI_J]⁻¹Φy`, O(M³)-ish) so the paper's complexity-reduction
//! claim (§V-H1 and the appendix equivalence proof) is reproducible — see
//! `tests/krr_equivalence.rs` and the `krr` criterion bench.
//!
//! # Example
//!
//! ```
//! use smarteryou_linalg::Matrix;
//! use smarteryou_ml::{BinaryClassifier, KernelRidge};
//!
//! # fn main() -> Result<(), smarteryou_ml::MlError> {
//! // Two separable clusters on a line.
//! let x = Matrix::from_rows(&[&[-2.0], &[-1.5], &[1.6], &[2.1]]).unwrap();
//! let y = [-1.0, -1.0, 1.0, 1.0];
//! let model = KernelRidge::new(0.1).fit(&x, &y)?;
//! assert!(model.decision(&[1.8]) > 0.0);
//! assert!(model.decision(&[-1.8]) < 0.0);
//! # Ok(())
//! # }
//! ```

mod dataset;
mod error;
mod forest;
mod kernel;
mod knn;
mod krr;
mod linreg;
mod metrics;
mod naive_bayes;
mod svm;
mod traits;
mod tree;
mod workspace;

pub use dataset::{k_fold_indices, stratified_k_fold, train_test_split, Dataset, Scaler};
pub use error::MlError;
pub use forest::{RandomForest, RandomForestModel};
pub use kernel::Kernel;
pub use knn::{Knn, KnnModel};
pub use krr::{
    fast_gram_default, set_fast_gram_default, KernelRidge, KrrFitCache, KrrModel, KrrSolver,
};
pub use linreg::{LinearRegression, LinearRegressionModel};
pub use metrics::{cross_validate, evaluate_binary, CrossValidationReport};
pub use naive_bayes::{GaussianNaiveBayes, GaussianNaiveBayesModel};
pub use svm::{Svm, SvmModel};
pub use traits::{BinaryClassifier, BinaryTrainer};
pub use tree::{DecisionTree, DecisionTreeModel};
pub use workspace::{KrrSharedWorkspace, KrrTailState};

use rand::rngs::StdRng;
use smarteryou_linalg::Matrix;

/// The four classification algorithms compared in Table VI of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// Kernel ridge regression (the paper's pick).
    Krr,
    /// Support vector machine trained with SMO.
    Svm,
    /// Ordinary least-squares regression on ±1 labels.
    LinearRegression,
    /// Gaussian naive Bayes.
    NaiveBayes,
}

impl Algorithm {
    /// All algorithms in the order Table VI lists them.
    pub const ALL: [Algorithm; 4] = [
        Algorithm::Krr,
        Algorithm::Svm,
        Algorithm::LinearRegression,
        Algorithm::NaiveBayes,
    ];

    /// Human-readable name matching the paper's Table VI rows.
    pub fn name(&self) -> &'static str {
        match self {
            Algorithm::Krr => "KRR",
            Algorithm::Svm => "SVM",
            Algorithm::LinearRegression => "Linear Regression",
            Algorithm::NaiveBayes => "Naive Bayes",
        }
    }

    /// Trains this algorithm with its default hyperparameters on ±1 labels,
    /// returning a type-erased classifier.
    ///
    /// # Errors
    ///
    /// Propagates the underlying trainer's error (degenerate data, singular
    /// systems, …).
    pub fn fit(
        &self,
        x: &Matrix,
        y: &[f64],
        rng: &mut StdRng,
    ) -> Result<Box<dyn BinaryClassifier>, MlError> {
        match self {
            Algorithm::Krr => Ok(Box::new(KernelRidge::new(1.0).fit(x, y)?)),
            Algorithm::Svm => Ok(Box::new(Svm::new(1.0).fit(x, y, rng)?)),
            Algorithm::LinearRegression => Ok(Box::new(LinearRegression::new().fit(x, y)?)),
            Algorithm::NaiveBayes => Ok(Box::new(GaussianNaiveBayes::new().fit(x, y)?)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn algorithm_names_match_paper() {
        assert_eq!(Algorithm::Krr.name(), "KRR");
        assert_eq!(Algorithm::ALL.len(), 4);
    }

    #[test]
    fn all_algorithms_fit_separable_data() {
        let x = Matrix::from_rows(&[
            &[-2.0, -1.9],
            &[-1.5, -2.2],
            &[-1.8, -1.4],
            &[1.6, 2.0],
            &[2.1, 1.7],
            &[1.9, 2.3],
        ])
        .unwrap();
        let y = [-1.0, -1.0, -1.0, 1.0, 1.0, 1.0];
        let mut rng = StdRng::seed_from_u64(1);
        for alg in Algorithm::ALL {
            let model = alg.fit(&x, &y, &mut rng).unwrap();
            assert!(model.decision(&[2.0, 2.0]) > 0.0, "{alg:?} positive side");
            assert!(model.decision(&[-2.0, -2.0]) < 0.0, "{alg:?} negative side");
        }
    }
}
