use serde::{Deserialize, Serialize};

use smarteryou_linalg::{vector, Matrix};

use crate::MlError;

/// k-nearest-neighbour classifier over `usize` class labels.
///
/// Provided as the baseline used by Nickel et al. (Table I row: gait
/// authentication with k-NN) and for ablation against the random-forest
/// context detector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Knn {
    k: usize,
}

impl Knn {
    /// Creates a classifier that votes over the `k` nearest neighbours.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "k must be positive");
        Knn { k }
    }

    /// "Trains" by storing the reference set.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::InvalidTrainingData`] when shapes mismatch, data
    /// is empty, or a label is out of range.
    pub fn fit(&self, x: &Matrix, y: &[usize], num_classes: usize) -> Result<KnnModel, MlError> {
        if x.rows() != y.len() || x.rows() == 0 {
            return Err(MlError::InvalidTrainingData(format!(
                "{} rows vs {} labels",
                x.rows(),
                y.len()
            )));
        }
        if let Some(&bad) = y.iter().find(|&&l| l >= num_classes) {
            return Err(MlError::InvalidTrainingData(format!(
                "label {bad} out of range for {num_classes} classes"
            )));
        }
        Ok(KnnModel {
            k: self.k.min(x.rows()),
            x: x.clone(),
            y: y.to_vec(),
            num_classes,
        })
    }
}

/// A fitted k-NN model (stores the training set).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KnnModel {
    k: usize,
    x: Matrix,
    y: Vec<usize>,
    num_classes: usize,
}

impl KnnModel {
    /// Number of features expected.
    pub fn num_features(&self) -> usize {
        self.x.cols()
    }

    /// Effective `k` (clamped to the training-set size).
    pub fn k(&self) -> usize {
        self.k
    }

    /// Majority class among the `k` nearest training rows; distance ties
    /// broken by training order, vote ties by the smaller class index.
    ///
    /// # Panics
    ///
    /// Panics if `q` has the wrong width.
    pub fn predict(&self, q: &[f64]) -> usize {
        assert_eq!(q.len(), self.x.cols(), "feature width mismatch");
        let mut dist: Vec<(f64, usize)> = (0..self.x.rows())
            .map(|i| (vector::squared_distance(self.x.row(i), q), self.y[i]))
            .collect();
        dist.select_nth_unstable_by(self.k - 1, |a, b| a.0.total_cmp(&b.0));
        let mut votes = vec![0u32; self.num_classes];
        for &(_, label) in &dist[..self.k] {
            votes[label] += 1;
        }
        votes
            .iter()
            .enumerate()
            .max_by_key(|&(i, &v)| (v, std::cmp::Reverse(i)))
            .map(|(i, _)| i)
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clusters() -> (Matrix, Vec<usize>) {
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for i in 0..20 {
            let d = (i as f64) * 0.01;
            rows.push(vec![0.0 + d, 0.0 - d]);
            y.push(0);
            rows.push(vec![5.0 - d, 5.0 + d]);
            y.push(1);
        }
        (Matrix::from_rows(&rows).unwrap(), y)
    }

    #[test]
    fn nearest_cluster_wins() {
        let (x, y) = clusters();
        let model = Knn::new(5).fit(&x, &y, 2).unwrap();
        assert_eq!(model.predict(&[0.2, 0.2]), 0);
        assert_eq!(model.predict(&[4.8, 4.9]), 1);
    }

    #[test]
    fn k_one_memorises_training_points() {
        let (x, y) = clusters();
        let model = Knn::new(1).fit(&x, &y, 2).unwrap();
        for (row, &label) in x.iter_rows().zip(&y) {
            assert_eq!(model.predict(row), label);
        }
    }

    #[test]
    fn k_clamped_to_dataset_size() {
        let x = Matrix::from_rows(&[&[0.0], &[1.0]]).unwrap();
        let model = Knn::new(10).fit(&x, &[0, 1], 2).unwrap();
        assert_eq!(model.k(), 2);
        // Tie between the two classes resolves to the smaller index.
        assert_eq!(model.predict(&[0.5]), 0);
    }

    #[test]
    fn rejects_bad_labels() {
        let x = Matrix::from_rows(&[&[0.0]]).unwrap();
        assert!(Knn::new(1).fit(&x, &[3], 2).is_err());
        assert!(Knn::new(1).fit(&x, &[], 1).is_err());
    }
}
