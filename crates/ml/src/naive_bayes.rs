use serde::{Deserialize, Serialize};

use smarteryou_linalg::Matrix;

use crate::error::validate_binary;
use crate::{BinaryClassifier, BinaryTrainer, MlError};

/// Gaussian naive Bayes — one of the Table VI baselines.
///
/// Models each feature independently as a per-class Gaussian. The
/// independence assumption is exactly what the sensor features violate
/// (Table III shows strong correlations, e.g. Var↔Max), which is why the
/// paper measures it well behind KRR (87.6% vs 98.1%).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct GaussianNaiveBayes {
    _private: (),
}

impl GaussianNaiveBayes {
    /// Creates the trainer (no hyperparameters).
    pub fn new() -> Self {
        GaussianNaiveBayes::default()
    }

    /// Trains on rows of `x` with ±1 labels.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::InvalidTrainingData`] for malformed inputs.
    pub fn fit(&self, x: &Matrix, y: &[f64]) -> Result<GaussianNaiveBayesModel, MlError> {
        validate_binary(x, y)?;
        let m = x.cols();
        let mut stats = [ClassStats::new(m), ClassStats::new(m)];
        for (row, &label) in x.iter_rows().zip(y) {
            let idx = usize::from(label > 0.0);
            stats[idx].add(row);
        }
        let total = x.rows() as f64;
        // Variance floor relative to the largest feature variance, protecting
        // against zero-variance features (standard "var smoothing").
        let max_var = stats
            .iter()
            .flat_map(|s| s.variances())
            .fold(0.0f64, f64::max);
        let eps = (1e-9 * max_var).max(1e-12);

        let classes = stats.map(|s| {
            let prior = s.count as f64 / total;
            let variances = s.variances().iter().map(|&v| v + eps).collect();
            ClassModel {
                log_prior: prior.ln(),
                means: s.means(),
                variances,
            }
        });
        Ok(GaussianNaiveBayesModel {
            neg: classes[0].clone(),
            pos: classes[1].clone(),
        })
    }
}

impl BinaryTrainer for GaussianNaiveBayes {
    type Model = GaussianNaiveBayesModel;

    fn fit(&self, x: &Matrix, y: &[f64]) -> Result<GaussianNaiveBayesModel, MlError> {
        GaussianNaiveBayes::fit(self, x, y)
    }
}

/// Accumulates per-feature mean/variance for one class (Welford-free,
/// two-pass-free sum/sum-of-squares form is fine at these magnitudes once
/// features are standardized).
#[derive(Debug, Clone)]
struct ClassStats {
    count: usize,
    sum: Vec<f64>,
    sum_sq: Vec<f64>,
}

impl ClassStats {
    fn new(m: usize) -> Self {
        ClassStats {
            count: 0,
            sum: vec![0.0; m],
            sum_sq: vec![0.0; m],
        }
    }

    fn add(&mut self, row: &[f64]) {
        self.count += 1;
        for ((s, q), &v) in self.sum.iter_mut().zip(&mut self.sum_sq).zip(row) {
            *s += v;
            *q += v * v;
        }
    }

    fn means(&self) -> Vec<f64> {
        let n = self.count.max(1) as f64;
        self.sum.iter().map(|&s| s / n).collect()
    }

    fn variances(&self) -> Vec<f64> {
        let n = self.count.max(1) as f64;
        self.sum
            .iter()
            .zip(&self.sum_sq)
            .map(|(&s, &q)| (q / n - (s / n) * (s / n)).max(0.0))
            .collect()
    }
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct ClassModel {
    log_prior: f64,
    means: Vec<f64>,
    variances: Vec<f64>,
}

impl ClassModel {
    fn log_likelihood(&self, x: &[f64]) -> f64 {
        let mut ll = self.log_prior;
        for ((&v, &mu), &var) in x.iter().zip(&self.means).zip(&self.variances) {
            let d = v - mu;
            ll += -0.5 * ((2.0 * std::f64::consts::PI * var).ln() + d * d / var);
        }
        ll
    }
}

/// A trained Gaussian naive Bayes classifier.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GaussianNaiveBayesModel {
    neg: ClassModel,
    pos: ClassModel,
}

impl BinaryClassifier for GaussianNaiveBayesModel {
    /// Log-posterior odds `log P(+1|x) − log P(−1|x)`; positive ⇒ accept.
    fn decision(&self, x: &[f64]) -> f64 {
        self.pos.log_likelihood(x) - self.neg.log_likelihood(x)
    }

    fn num_features(&self) -> usize {
        self.pos.means.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gaussians(n: usize, mu_pos: f64, mu_neg: f64, spread: f64) -> (Matrix, Vec<f64>) {
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for i in 0..n {
            // Low-discrepancy jitter in [-0.5, 0.5).
            let u = (((i as u64 * 2654435761) % 997) as f64 / 997.0) - 0.5;
            rows.push(vec![mu_pos + u * spread, mu_pos - u * spread]);
            y.push(1.0);
            rows.push(vec![mu_neg - u * spread, mu_neg + u * spread]);
            y.push(-1.0);
        }
        (Matrix::from_rows(&rows).unwrap(), y)
    }

    #[test]
    fn separates_gaussian_classes() {
        let (x, y) = gaussians(50, 2.0, -2.0, 1.0);
        let model = GaussianNaiveBayes::new().fit(&x, &y).unwrap();
        assert!(model.decision(&[2.0, 2.0]) > 0.0);
        assert!(model.decision(&[-2.0, -2.0]) < 0.0);
    }

    #[test]
    fn decision_is_log_odds_scaled_by_distance() {
        let (x, y) = gaussians(50, 1.0, -1.0, 0.5);
        let model = GaussianNaiveBayes::new().fit(&x, &y).unwrap();
        let near = model.decision(&[0.2, 0.2]);
        let far = model.decision(&[3.0, 3.0]);
        assert!(far > near, "confidence grows with distance from boundary");
    }

    #[test]
    fn priors_reflect_imbalance() {
        // 3 positives, 9 negatives around the same point: prior favours
        // negative at the shared mean.
        let mut rows = vec![vec![0.0, 0.1], vec![0.1, 0.0], vec![-0.1, 0.05]];
        let mut y = vec![1.0; 3];
        for i in 0..9 {
            rows.push(vec![0.05 * i as f64 - 0.2, -0.05 * i as f64 + 0.2]);
            y.push(-1.0);
        }
        let x = Matrix::from_rows(&rows).unwrap();
        let model = GaussianNaiveBayes::new().fit(&x, &y).unwrap();
        assert!(model.decision(&[0.0, 0.0]) < 0.0);
    }

    #[test]
    fn zero_variance_feature_does_not_nan() {
        let x = Matrix::from_rows(&[&[1.0, 7.0], &[1.2, 7.0], &[-1.0, 7.0], &[-1.2, 7.0]]).unwrap();
        let y = [1.0, 1.0, -1.0, -1.0];
        let model = GaussianNaiveBayes::new().fit(&x, &y).unwrap();
        let d = model.decision(&[1.1, 7.0]);
        assert!(d.is_finite());
        assert!(d > 0.0);
    }

    #[test]
    fn rejects_bad_input() {
        let x = Matrix::from_rows(&[&[1.0], &[2.0]]).unwrap();
        assert!(GaussianNaiveBayes::new().fit(&x, &[2.0, -1.0]).is_err());
    }
}
