use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

use smarteryou_linalg::Matrix;

use crate::MlError;

/// A binary-labelled dataset: rows of `x` with labels in {−1, +1}.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    x: Matrix,
    y: Vec<f64>,
}

impl Dataset {
    /// Creates a dataset, validating that rows and labels line up and that
    /// labels are ±1.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::InvalidTrainingData`] on mismatch or bad labels.
    pub fn new(x: Matrix, y: Vec<f64>) -> Result<Self, MlError> {
        if x.rows() != y.len() {
            return Err(MlError::InvalidTrainingData(format!(
                "{} rows but {} labels",
                x.rows(),
                y.len()
            )));
        }
        if y.iter().any(|&l| l != 1.0 && l != -1.0) {
            return Err(MlError::InvalidTrainingData(
                "labels must be +1 or -1".into(),
            ));
        }
        Ok(Dataset { x, y })
    }

    /// Builds a dataset by stacking positive rows (label +1) then negative
    /// rows (label −1).
    ///
    /// # Errors
    ///
    /// Returns [`MlError::InvalidTrainingData`] if either side is empty or
    /// rows are ragged.
    pub fn from_classes(positives: &[Vec<f64>], negatives: &[Vec<f64>]) -> Result<Self, MlError> {
        if positives.is_empty() || negatives.is_empty() {
            return Err(MlError::InvalidTrainingData(
                "both classes must be non-empty".into(),
            ));
        }
        let mut rows: Vec<&[f64]> = Vec::with_capacity(positives.len() + negatives.len());
        rows.extend(positives.iter().map(|v| v.as_slice()));
        rows.extend(negatives.iter().map(|v| v.as_slice()));
        let x = Matrix::from_rows(&rows)
            .map_err(|e| MlError::InvalidTrainingData(format!("ragged feature rows: {e}")))?;
        let mut y = vec![1.0; positives.len()];
        y.extend(std::iter::repeat_n(-1.0, negatives.len()));
        Dataset::new(x, y)
    }

    /// The design matrix (rows are samples).
    pub fn x(&self) -> &Matrix {
        &self.x
    }

    /// The label vector (entries ±1).
    pub fn y(&self) -> &[f64] {
        &self.y
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.y.len()
    }

    /// Whether the dataset has no samples.
    pub fn is_empty(&self) -> bool {
        self.y.is_empty()
    }

    /// Number of features per sample.
    pub fn num_features(&self) -> usize {
        self.x.cols()
    }

    /// Extracts the subset at `indices` (clones rows).
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn subset(&self, indices: &[usize]) -> Dataset {
        let rows: Vec<&[f64]> = indices.iter().map(|&i| self.x.row(i)).collect();
        let x = Matrix::from_rows(&rows).expect("rows share width");
        let y = indices.iter().map(|&i| self.y[i]).collect();
        Dataset { x, y }
    }
}

/// Z-score feature scaler fitted on training data and applied to test data —
/// fit/transform must be split this way to avoid leaking test statistics
/// into training (the cross-validation harness does this per fold).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scaler {
    means: Vec<f64>,
    stds: Vec<f64>,
}

impl Scaler {
    /// Learns per-column means and standard deviations from `x`.
    /// Zero-variance columns get a std of 1 so they map to 0 rather than NaN.
    pub fn fit(x: &Matrix) -> Self {
        let n = x.rows().max(1) as f64;
        let m = x.cols();
        let mut means = vec![0.0; m];
        for row in x.iter_rows() {
            for (acc, &v) in means.iter_mut().zip(row) {
                *acc += v;
            }
        }
        for v in &mut means {
            *v /= n;
        }
        let mut vars = vec![0.0; m];
        for row in x.iter_rows() {
            for ((acc, &v), &mu) in vars.iter_mut().zip(row).zip(&means) {
                let d = v - mu;
                *acc += d * d;
            }
        }
        let stds = vars
            .into_iter()
            .map(|v| {
                let s = (v / n).sqrt();
                if s > 1e-12 {
                    s
                } else {
                    1.0
                }
            })
            .collect();
        Scaler { means, stds }
    }

    /// Builds a scaler directly from precomputed per-column moments —
    /// used by the shared-workspace enrollment path, which derives the
    /// moments from cached Gram/sum blocks instead of a data pass. The
    /// caller is responsible for applying the same zero-variance clamp
    /// as [`Scaler::fit`] (std of 1 for degenerate columns).
    ///
    /// # Panics
    ///
    /// Panics if the vectors have different lengths.
    pub(crate) fn from_moments(means: Vec<f64>, stds: Vec<f64>) -> Self {
        assert_eq!(means.len(), stds.len(), "moment width mismatch");
        Scaler { means, stds }
    }

    /// Number of features the scaler was fitted on.
    pub fn num_features(&self) -> usize {
        self.means.len()
    }

    /// Scales a single feature vector.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` differs from the fitted width.
    pub fn transform_vec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.means.len(), "scaler width mismatch");
        x.iter()
            .zip(&self.means)
            .zip(&self.stds)
            .map(|((&v, &mu), &s)| (v - mu) / s)
            .collect()
    }

    /// Scales every row of a matrix.
    pub fn transform(&self, x: &Matrix) -> Matrix {
        let rows: Vec<Vec<f64>> = x.iter_rows().map(|r| self.transform_vec(r)).collect();
        Matrix::from_rows(&rows).expect("uniform width")
    }
}

/// Random train/test split of `n` indices with the given test fraction.
///
/// # Panics
///
/// Panics if `test_fraction` is outside `(0, 1)`.
pub fn train_test_split<R: Rng>(
    n: usize,
    test_fraction: f64,
    rng: &mut R,
) -> (Vec<usize>, Vec<usize>) {
    assert!(
        test_fraction > 0.0 && test_fraction < 1.0,
        "test fraction must be in (0, 1)"
    );
    let mut idx: Vec<usize> = (0..n).collect();
    idx.shuffle(rng);
    let n_test = ((n as f64) * test_fraction).round().max(1.0) as usize;
    let n_test = n_test.min(n.saturating_sub(1)).max(1);
    let test = idx[..n_test].to_vec();
    let train = idx[n_test..].to_vec();
    (train, test)
}

/// Partitions `0..n` into `k` disjoint folds of near-equal size, shuffled.
///
/// # Panics
///
/// Panics if `k == 0` or `k > n`.
pub fn k_fold_indices<R: Rng>(n: usize, k: usize, rng: &mut R) -> Vec<Vec<usize>> {
    assert!(k > 0 && k <= n, "need 0 < k <= n (k={k}, n={n})");
    let mut idx: Vec<usize> = (0..n).collect();
    idx.shuffle(rng);
    let mut folds = vec![Vec::with_capacity(n / k + 1); k];
    for (i, v) in idx.into_iter().enumerate() {
        folds[i % k].push(v);
    }
    folds
}

/// Stratified k-fold: both classes are spread evenly across folds so every
/// fold contains positives and negatives (the paper's 10-fold CV with a
/// 1-vs-34 class imbalance needs this to keep FRR defined in every fold).
///
/// # Panics
///
/// Panics if `k == 0` or either class has fewer than `k` members.
pub fn stratified_k_fold<R: Rng>(y: &[f64], k: usize, rng: &mut R) -> Vec<Vec<usize>> {
    assert!(k > 0, "k must be positive");
    let mut pos: Vec<usize> = (0..y.len()).filter(|&i| y[i] > 0.0).collect();
    let mut neg: Vec<usize> = (0..y.len()).filter(|&i| y[i] <= 0.0).collect();
    assert!(
        pos.len() >= k && neg.len() >= k,
        "each class needs at least k={k} samples (pos={}, neg={})",
        pos.len(),
        neg.len()
    );
    pos.shuffle(rng);
    neg.shuffle(rng);
    let mut folds = vec![Vec::new(); k];
    for (i, v) in pos.into_iter().enumerate() {
        folds[i % k].push(v);
    }
    for (i, v) in neg.into_iter().enumerate() {
        folds[i % k].push(v);
    }
    folds
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn dataset_validates_labels() {
        let x = Matrix::from_rows(&[&[1.0], &[2.0]]).unwrap();
        assert!(Dataset::new(x.clone(), vec![1.0, -1.0]).is_ok());
        assert!(Dataset::new(x.clone(), vec![1.0, 0.0]).is_err());
        assert!(Dataset::new(x, vec![1.0]).is_err());
    }

    #[test]
    fn from_classes_stacks_and_labels() {
        let d =
            Dataset::from_classes(&[vec![1.0, 2.0]], &[vec![3.0, 4.0], vec![5.0, 6.0]]).unwrap();
        assert_eq!(d.len(), 3);
        assert_eq!(d.y(), &[1.0, -1.0, -1.0]);
        assert_eq!(d.x().row(2), &[5.0, 6.0]);
        assert!(Dataset::from_classes(&[], &[vec![1.0]]).is_err());
    }

    #[test]
    fn subset_selects_rows() {
        let d = Dataset::from_classes(&[vec![1.0]], &[vec![2.0], vec![3.0]]).unwrap();
        let s = d.subset(&[2, 0]);
        assert_eq!(s.x().row(0), &[3.0]);
        assert_eq!(s.y(), &[-1.0, 1.0]);
    }

    #[test]
    fn scaler_standardises_columns() {
        let x = Matrix::from_rows(&[&[1.0, 10.0], &[3.0, 10.0]]).unwrap();
        let s = Scaler::fit(&x);
        let t = s.transform(&x);
        // Column 0: mean 2, population std 1 -> -1 and +1.
        assert!((t[(0, 0)] + 1.0).abs() < 1e-12);
        assert!((t[(1, 0)] - 1.0).abs() < 1e-12);
        // Zero-variance column maps to zero, not NaN.
        assert_eq!(t[(0, 1)], 0.0);
    }

    #[test]
    fn train_test_split_partitions() {
        let (train, test) = train_test_split(10, 0.3, &mut rng());
        assert_eq!(train.len() + test.len(), 10);
        let mut all: Vec<usize> = train.iter().chain(&test).copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn k_fold_covers_all_indices() {
        let folds = k_fold_indices(23, 5, &mut rng());
        assert_eq!(folds.len(), 5);
        let mut all: Vec<usize> = folds.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..23).collect::<Vec<_>>());
        // Sizes are near-equal.
        assert!(folds.iter().all(|f| (4..=5).contains(&f.len())));
    }

    #[test]
    fn stratified_folds_contain_both_classes() {
        let mut y = vec![1.0; 20];
        y.extend(vec![-1.0; 80]);
        let folds = stratified_k_fold(&y, 10, &mut rng());
        for f in &folds {
            assert!(f.iter().any(|&i| y[i] > 0.0), "fold lacks positives");
            assert!(f.iter().any(|&i| y[i] < 0.0), "fold lacks negatives");
        }
    }

    #[test]
    #[should_panic(expected = "at least k")]
    fn stratified_panics_when_class_too_small() {
        let y = vec![1.0, -1.0, -1.0, -1.0];
        stratified_k_fold(&y, 2, &mut rng());
    }
}
