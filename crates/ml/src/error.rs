use std::fmt;

use smarteryou_linalg::LinalgError;

/// Error type for training and evaluation in the ML substrate.
#[derive(Debug, Clone, PartialEq)]
pub enum MlError {
    /// The training set is unusable (empty, single class, label/row count
    /// mismatch, non-±1 labels for a binary trainer, …).
    InvalidTrainingData(String),
    /// A hyperparameter is out of its valid range.
    InvalidParameter(String),
    /// The underlying linear system could not be solved.
    Linalg(LinalgError),
    /// Prediction input has the wrong dimensionality.
    DimensionMismatch {
        /// Expected feature count.
        expected: usize,
        /// Provided feature count.
        got: usize,
    },
}

impl fmt::Display for MlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MlError::InvalidTrainingData(msg) => write!(f, "invalid training data: {msg}"),
            MlError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
            MlError::Linalg(e) => write!(f, "linear algebra failure: {e}"),
            MlError::DimensionMismatch { expected, got } => {
                write!(
                    f,
                    "feature dimension mismatch: expected {expected}, got {got}"
                )
            }
        }
    }
}

impl std::error::Error for MlError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MlError::Linalg(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LinalgError> for MlError {
    fn from(e: LinalgError) -> Self {
        MlError::Linalg(e)
    }
}

/// Validates a binary training set: rows match labels, labels are ±1, both
/// classes present, at least one feature.
pub(crate) fn validate_binary(x: &smarteryou_linalg::Matrix, y: &[f64]) -> Result<(), MlError> {
    if x.rows() != y.len() {
        return Err(MlError::InvalidTrainingData(format!(
            "{} rows but {} labels",
            x.rows(),
            y.len()
        )));
    }
    if x.rows() == 0 || x.cols() == 0 {
        return Err(MlError::InvalidTrainingData("empty design matrix".into()));
    }
    let mut pos = false;
    let mut neg = false;
    for &l in y {
        if l == 1.0 {
            pos = true;
        } else if l == -1.0 {
            neg = true;
        } else {
            return Err(MlError::InvalidTrainingData(format!(
                "labels must be +1 or -1, got {l}"
            )));
        }
    }
    if !(pos && neg) {
        return Err(MlError::InvalidTrainingData(
            "both classes must be present".into(),
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use smarteryou_linalg::Matrix;

    #[test]
    fn validate_accepts_good_data() {
        let x = Matrix::from_rows(&[&[1.0], &[2.0]]).unwrap();
        assert!(validate_binary(&x, &[1.0, -1.0]).is_ok());
    }

    #[test]
    fn validate_rejects_bad_labels() {
        let x = Matrix::from_rows(&[&[1.0], &[2.0]]).unwrap();
        assert!(validate_binary(&x, &[1.0, 0.5]).is_err());
        assert!(validate_binary(&x, &[1.0, 1.0]).is_err());
        assert!(validate_binary(&x, &[1.0]).is_err());
    }

    #[test]
    fn error_display_is_informative() {
        let e = MlError::DimensionMismatch {
            expected: 28,
            got: 14,
        };
        assert!(format!("{e}").contains("28"));
    }
}
