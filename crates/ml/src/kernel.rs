use serde::{Deserialize, Serialize};

use smarteryou_linalg::{vector, Matrix};

/// Kernel functions for kernel ridge regression and the SVM.
///
/// The paper uses the *identity kernel* (`~φ(x) = x`, i.e. a linear kernel)
/// so the primal complexity reduction of §V-H1 applies; RBF is provided for
/// ablation studies.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum Kernel {
    /// Identity feature map: `k(a, b) = aᵀb`. The paper's choice.
    #[default]
    Linear,
    /// Gaussian RBF: `k(a, b) = exp(−γ‖a − b‖²)`.
    Rbf {
        /// Bandwidth parameter γ > 0.
        gamma: f64,
    },
    /// Polynomial: `k(a, b) = (aᵀb + c)^d`.
    Polynomial {
        /// Degree `d ≥ 1`.
        degree: u32,
        /// Offset `c`.
        coef: f64,
    },
}

impl Kernel {
    /// Evaluates the kernel on a pair of vectors.
    ///
    /// # Panics
    ///
    /// Panics if the vectors have different lengths.
    pub fn eval(&self, a: &[f64], b: &[f64]) -> f64 {
        match *self {
            Kernel::Linear => vector::dot(a, b),
            Kernel::Rbf { gamma } => (-gamma * vector::squared_distance(a, b)).exp(),
            Kernel::Polynomial { degree, coef } => (vector::dot(a, b) + coef).powi(degree as i32),
        }
    }

    /// Gram matrix `K[i][j] = k(xᵢ, xⱼ)` over the rows of `x`.
    pub fn gram(&self, x: &Matrix) -> Matrix {
        match self {
            // Specialised symmetric path for the linear kernel.
            Kernel::Linear => x.gram(),
            _ => {
                let n = x.rows();
                let mut k = Matrix::zeros(n, n);
                for i in 0..n {
                    let ri = x.row(i);
                    for j in i..n {
                        let v = self.eval(ri, x.row(j));
                        k[(i, j)] = v;
                        k[(j, i)] = v;
                    }
                }
                k
            }
        }
    }

    /// Cache-blocked, vectorizer-friendly fast path for [`Kernel::gram`].
    ///
    /// For the RBF kernel this computes `‖a − b‖² = ‖a‖² + ‖b‖² − 2aᵀb`
    /// from precomputed row norms with a 4-lane blocked dot-product inner
    /// loop and a fused `exp`, tiling the row pairs in
    /// [`GRAM_BLOCK`]-sized blocks so the `j`-side rows stay cache-hot
    /// across an entire `i`-tile. The polynomial kernel shares the tiling
    /// and the 4-lane dot; the linear kernel delegates to the already
    /// specialised [`Matrix::gram`] (identical result).
    ///
    /// The 4-lane dot **reassociates** the float sums, so entries differ
    /// from [`Kernel::gram`] by a few ulps (clamped at `‖·‖² ≥ 0` for
    /// RBF); the blocked-kernel parity proptests pin the bound. Callers
    /// needing the reference bits keep calling [`Kernel::gram`].
    pub fn gram_blocked(&self, x: &Matrix) -> Matrix {
        let n = x.rows();
        match *self {
            Kernel::Linear => x.gram(),
            Kernel::Rbf { gamma } => {
                let norms: Vec<f64> = (0..n).map(|i| dot4(x.row(i), x.row(i))).collect();
                let mut k = Matrix::zeros(n, n);
                for ib in (0..n).step_by(GRAM_BLOCK) {
                    let ie = (ib + GRAM_BLOCK).min(n);
                    for jb in (ib..n).step_by(GRAM_BLOCK) {
                        let je = (jb + GRAM_BLOCK).min(n);
                        for i in ib..ie {
                            let ri = x.row(i);
                            let ni = norms[i];
                            for j in jb.max(i)..je {
                                let d2 = (ni + norms[j] - 2.0 * dot4(ri, x.row(j))).max(0.0);
                                let v = (-gamma * d2).exp();
                                k[(i, j)] = v;
                                k[(j, i)] = v;
                            }
                        }
                    }
                }
                k
            }
            Kernel::Polynomial { degree, coef } => {
                let mut k = Matrix::zeros(n, n);
                for ib in (0..n).step_by(GRAM_BLOCK) {
                    let ie = (ib + GRAM_BLOCK).min(n);
                    for jb in (ib..n).step_by(GRAM_BLOCK) {
                        let je = (jb + GRAM_BLOCK).min(n);
                        for i in ib..ie {
                            let ri = x.row(i);
                            for j in jb.max(i)..je {
                                let v = (dot4(ri, x.row(j)) + coef).powi(degree as i32);
                                k[(i, j)] = v;
                                k[(j, i)] = v;
                            }
                        }
                    }
                }
                k
            }
        }
    }

    /// Kernel vector `[k(x₁, q), …, k(xₙ, q)]` against the rows of `x`.
    pub fn against(&self, x: &Matrix, q: &[f64]) -> Vec<f64> {
        let mut out = Vec::with_capacity(x.rows());
        self.against_into(x, q, &mut out);
        out
    }

    /// [`Kernel::against`] into a caller-owned buffer (cleared first), so
    /// batch scoring can reuse one allocation across many queries. Same
    /// per-entry arithmetic, so results are bit-identical.
    pub fn against_into(&self, x: &Matrix, q: &[f64], out: &mut Vec<f64>) {
        out.clear();
        out.extend((0..x.rows()).map(|i| self.eval(x.row(i), q)));
    }

    /// 4-lane fast path for [`Kernel::against_into`]: the per-row dot /
    /// squared-distance runs as `chunks_exact(4)` with four independent
    /// accumulators (plus a fused `exp` for RBF), which the autovectorizer
    /// turns into 4-wide vector ops — the scalar reference's sequential
    /// reduction cannot vectorize without reassociating. Epsilon-equal to
    /// [`Kernel::against_into`] (a few ulps per entry, pinned by the
    /// blocked-kernel parity proptests); bit-exact callers keep the
    /// reference.
    pub fn against_into_blocked(&self, x: &Matrix, q: &[f64], out: &mut Vec<f64>) {
        out.clear();
        out.reserve(x.rows());
        match *self {
            Kernel::Linear => out.extend((0..x.rows()).map(|i| dot4(x.row(i), q))),
            Kernel::Rbf { gamma } => {
                out.extend((0..x.rows()).map(|i| (-gamma * squared_distance4(x.row(i), q)).exp()))
            }
            Kernel::Polynomial { degree, coef } => {
                out.extend((0..x.rows()).map(|i| (dot4(x.row(i), q) + coef).powi(degree as i32)))
            }
        }
    }

    /// Whether `k(a + t, b + t) = k(a, b)` for every translation `t`.
    ///
    /// Translation-invariant kernels commute with feature centring, which
    /// is what lets a shared negative-block Gram (and its Cholesky factor)
    /// be computed once on raw rows and reused across users whose centring
    /// means differ — see `KrrSharedWorkspace`.
    pub fn is_translation_invariant(&self) -> bool {
        matches!(self, Kernel::Rbf { .. })
    }
}

/// Rows per tile of the blocked Gram kernels. 32 rows of the paper's
/// 28-feature vectors are ~7 KiB per side — two tiles fit comfortably in
/// L1, so the inner dot products never leave cache while a tile is live.
const GRAM_BLOCK: usize = 32;

/// 4-lane chunked dot product: `chunks_exact(4)` with four independent
/// accumulators and a scalar tail. Reassociates the sum (epsilon vs
/// `vector::dot`), which is exactly what lets the autovectorizer emit
/// 4-wide fused multiply-adds.
fn dot4(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = [0.0f64; 4];
    let ca = a.chunks_exact(4);
    let cb = b.chunks_exact(4);
    let (ta, tb) = (ca.remainder(), cb.remainder());
    for (xa, xb) in ca.zip(cb) {
        for l in 0..4 {
            acc[l] += xa[l] * xb[l];
        }
    }
    let mut tail = 0.0;
    for (x, y) in ta.iter().zip(tb) {
        tail += x * y;
    }
    (acc[0] + acc[1]) + (acc[2] + acc[3]) + tail
}

/// 4-lane chunked `‖a − b‖²`, same accumulator scheme as [`dot4`].
fn squared_distance4(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = [0.0f64; 4];
    let ca = a.chunks_exact(4);
    let cb = b.chunks_exact(4);
    let (ta, tb) = (ca.remainder(), cb.remainder());
    for (xa, xb) in ca.zip(cb) {
        for l in 0..4 {
            let d = xa[l] - xb[l];
            acc[l] += d * d;
        }
    }
    let mut tail = 0.0;
    for (x, y) in ta.iter().zip(tb) {
        let d = x - y;
        tail += d * d;
    }
    (acc[0] + acc[1]) + (acc[2] + acc[3]) + tail
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_kernel_is_dot_product() {
        assert_eq!(Kernel::Linear.eval(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
    }

    #[test]
    fn rbf_kernel_properties() {
        let k = Kernel::Rbf { gamma: 0.5 };
        // k(x, x) = 1 and decays with distance.
        assert!((k.eval(&[1.0, 2.0], &[1.0, 2.0]) - 1.0).abs() < 1e-12);
        let near = k.eval(&[0.0, 0.0], &[0.1, 0.0]);
        let far = k.eval(&[0.0, 0.0], &[2.0, 0.0]);
        assert!(near > far);
        assert!(far > 0.0);
    }

    #[test]
    fn polynomial_kernel_known_value() {
        let k = Kernel::Polynomial {
            degree: 2,
            coef: 1.0,
        };
        // (1*1 + 1)² = 4
        assert_eq!(k.eval(&[1.0], &[1.0]), 4.0);
    }

    #[test]
    fn gram_is_symmetric_for_all_kernels() {
        let x = Matrix::from_rows(&[&[1.0, 0.0], &[0.5, -1.0], &[2.0, 2.0]]).unwrap();
        for k in [
            Kernel::Linear,
            Kernel::Rbf { gamma: 0.3 },
            Kernel::Polynomial {
                degree: 3,
                coef: 0.5,
            },
        ] {
            let g = k.gram(&x);
            assert!(g.is_symmetric(1e-12), "{k:?}");
        }
    }

    fn wide_matrix(n: usize, m: usize) -> Matrix {
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|i| {
                (0..m)
                    .map(|j| ((i * m + j) as f64 * 0.37).sin() + 0.1 * j as f64)
                    .collect()
            })
            .collect();
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        Matrix::from_rows(&refs).unwrap()
    }

    #[test]
    fn gram_blocked_matches_reference_across_tile_edges() {
        // Sizes straddling the 32-row tile edge, at the paper's 28-feature
        // width and a ragged non-multiple-of-4 width.
        for (n, m) in [(5, 28), (32, 28), (33, 27), (70, 28), (100, 3)] {
            let x = wide_matrix(n, m);
            for kern in [
                Kernel::Linear,
                Kernel::Rbf { gamma: 0.07 },
                Kernel::Polynomial {
                    degree: 2,
                    coef: 0.5,
                },
            ] {
                let reference = kern.gram(&x);
                let fast = kern.gram_blocked(&x);
                for i in 0..n {
                    for j in 0..n {
                        let (a, b) = (fast[(i, j)], reference[(i, j)]);
                        assert!(
                            (a - b).abs() <= 1e-10 * b.abs().max(1.0),
                            "{kern:?} n={n} m={m} ({i},{j}): {a} vs {b}"
                        );
                    }
                }
                assert!(fast.is_symmetric(0.0), "{kern:?} blocked gram symmetry");
            }
        }
    }

    #[test]
    fn against_blocked_matches_reference() {
        let x = wide_matrix(70, 28);
        let q: Vec<f64> = (0..28).map(|j| (j as f64 * 0.11).cos()).collect();
        for kern in [
            Kernel::Linear,
            Kernel::Rbf { gamma: 0.07 },
            Kernel::Polynomial {
                degree: 3,
                coef: 1.0,
            },
        ] {
            let reference = kern.against(&x, &q);
            let mut fast = Vec::new();
            kern.against_into_blocked(&x, &q, &mut fast);
            assert_eq!(fast.len(), reference.len());
            for (i, (a, b)) in fast.iter().zip(&reference).enumerate() {
                assert!(
                    (a - b).abs() <= 1e-10 * b.abs().max(1.0),
                    "{kern:?} row {i}: {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn against_matches_eval() {
        let x = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]).unwrap();
        let q = [2.0, 3.0];
        let v = Kernel::Linear.against(&x, &q);
        assert_eq!(v, vec![2.0, 3.0]);
    }
}
