use serde::{Deserialize, Serialize};

use smarteryou_linalg::{vector, Matrix};

/// Kernel functions for kernel ridge regression and the SVM.
///
/// The paper uses the *identity kernel* (`~φ(x) = x`, i.e. a linear kernel)
/// so the primal complexity reduction of §V-H1 applies; RBF is provided for
/// ablation studies.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum Kernel {
    /// Identity feature map: `k(a, b) = aᵀb`. The paper's choice.
    #[default]
    Linear,
    /// Gaussian RBF: `k(a, b) = exp(−γ‖a − b‖²)`.
    Rbf {
        /// Bandwidth parameter γ > 0.
        gamma: f64,
    },
    /// Polynomial: `k(a, b) = (aᵀb + c)^d`.
    Polynomial {
        /// Degree `d ≥ 1`.
        degree: u32,
        /// Offset `c`.
        coef: f64,
    },
}

impl Kernel {
    /// Evaluates the kernel on a pair of vectors.
    ///
    /// # Panics
    ///
    /// Panics if the vectors have different lengths.
    pub fn eval(&self, a: &[f64], b: &[f64]) -> f64 {
        match *self {
            Kernel::Linear => vector::dot(a, b),
            Kernel::Rbf { gamma } => (-gamma * vector::squared_distance(a, b)).exp(),
            Kernel::Polynomial { degree, coef } => (vector::dot(a, b) + coef).powi(degree as i32),
        }
    }

    /// Gram matrix `K[i][j] = k(xᵢ, xⱼ)` over the rows of `x`.
    pub fn gram(&self, x: &Matrix) -> Matrix {
        match self {
            // Specialised symmetric path for the linear kernel.
            Kernel::Linear => x.gram(),
            _ => {
                let n = x.rows();
                let mut k = Matrix::zeros(n, n);
                for i in 0..n {
                    for j in i..n {
                        let v = self.eval(x.row(i), x.row(j));
                        k[(i, j)] = v;
                        k[(j, i)] = v;
                    }
                }
                k
            }
        }
    }

    /// Kernel vector `[k(x₁, q), …, k(xₙ, q)]` against the rows of `x`.
    pub fn against(&self, x: &Matrix, q: &[f64]) -> Vec<f64> {
        let mut out = Vec::new();
        self.against_into(x, q, &mut out);
        out
    }

    /// [`Kernel::against`] into a caller-owned buffer (cleared first), so
    /// batch scoring can reuse one allocation across many queries. Same
    /// per-entry arithmetic, so results are bit-identical.
    pub fn against_into(&self, x: &Matrix, q: &[f64], out: &mut Vec<f64>) {
        out.clear();
        out.extend((0..x.rows()).map(|i| self.eval(x.row(i), q)));
    }

    /// Whether `k(a + t, b + t) = k(a, b)` for every translation `t`.
    ///
    /// Translation-invariant kernels commute with feature centring, which
    /// is what lets a shared negative-block Gram (and its Cholesky factor)
    /// be computed once on raw rows and reused across users whose centring
    /// means differ — see `KrrSharedWorkspace`.
    pub fn is_translation_invariant(&self) -> bool {
        matches!(self, Kernel::Rbf { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_kernel_is_dot_product() {
        assert_eq!(Kernel::Linear.eval(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
    }

    #[test]
    fn rbf_kernel_properties() {
        let k = Kernel::Rbf { gamma: 0.5 };
        // k(x, x) = 1 and decays with distance.
        assert!((k.eval(&[1.0, 2.0], &[1.0, 2.0]) - 1.0).abs() < 1e-12);
        let near = k.eval(&[0.0, 0.0], &[0.1, 0.0]);
        let far = k.eval(&[0.0, 0.0], &[2.0, 0.0]);
        assert!(near > far);
        assert!(far > 0.0);
    }

    #[test]
    fn polynomial_kernel_known_value() {
        let k = Kernel::Polynomial {
            degree: 2,
            coef: 1.0,
        };
        // (1*1 + 1)² = 4
        assert_eq!(k.eval(&[1.0], &[1.0]), 4.0);
    }

    #[test]
    fn gram_is_symmetric_for_all_kernels() {
        let x = Matrix::from_rows(&[&[1.0, 0.0], &[0.5, -1.0], &[2.0, 2.0]]).unwrap();
        for k in [
            Kernel::Linear,
            Kernel::Rbf { gamma: 0.3 },
            Kernel::Polynomial {
                degree: 3,
                coef: 0.5,
            },
        ] {
            let g = k.gram(&x);
            assert!(g.is_symmetric(1e-12), "{k:?}");
        }
    }

    #[test]
    fn against_matches_eval() {
        let x = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]).unwrap();
        let q = [2.0, 3.0];
        let v = Kernel::Linear.against(&x, &q);
        assert_eq!(v, vec![2.0, 3.0]);
    }
}
