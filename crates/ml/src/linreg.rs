use serde::{Deserialize, Serialize};

use smarteryou_linalg::{vector, Matrix};

use crate::error::validate_binary;
use crate::{BinaryClassifier, BinaryTrainer, MlError};

/// Ordinary least-squares regression on ±1 labels, thresholded at zero —
/// one of the Table VI baselines.
///
/// This is exactly kernel ridge regression with the identity kernel and
/// ρ → 0: no weight shrinkage. On the sensor features — which contain
/// correlated columns and occasional high-leverage outlier windows — the
/// unregularised solution is much more fragile than KRR, which is why the
/// paper measures it ~12 points behind (86.3% vs 98.1%).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct LinearRegression {
    _private: (),
}

impl LinearRegression {
    /// Creates the trainer (no hyperparameters).
    pub fn new() -> Self {
        LinearRegression::default()
    }

    /// Trains on rows of `x` with ±1 labels.
    ///
    /// # Errors
    ///
    /// * [`MlError::InvalidTrainingData`] for malformed inputs;
    /// * [`MlError::Linalg`] if the normal equations are singular (exactly
    ///   collinear features).
    pub fn fit(&self, x: &Matrix, y: &[f64]) -> Result<LinearRegressionModel, MlError> {
        validate_binary(x, y)?;
        let n = x.rows();
        let m = x.cols();
        let x_mean: Vec<f64> = (0..m)
            .map(|c| x.col(c).iter().sum::<f64>() / n as f64)
            .collect();
        let y_mean = y.iter().sum::<f64>() / n as f64;
        let mut xc = x.clone();
        for r in 0..n {
            for (v, mu) in xc.row_mut(r).iter_mut().zip(&x_mean) {
                *v -= mu;
            }
        }
        let yc: Vec<f64> = y.iter().map(|&l| l - y_mean).collect();

        // Normal equations XᵀX w = Xᵀy. A vanishing jitter (1e-10 · tr/m)
        // keeps borderline rank-deficient systems solvable without acting
        // as meaningful regularisation.
        let mut xtx = xc.gram_columns();
        let trace: f64 = (0..m).map(|i| xtx[(i, i)]).sum();
        xtx.add_diagonal(1e-10 * (trace / m as f64).max(1.0));
        let xty = xc.transpose().matvec(&yc)?;
        let w = xtx.solve(&xty)?;
        Ok(LinearRegressionModel { w, x_mean, y_mean })
    }
}

impl BinaryTrainer for LinearRegression {
    type Model = LinearRegressionModel;

    fn fit(&self, x: &Matrix, y: &[f64]) -> Result<LinearRegressionModel, MlError> {
        LinearRegression::fit(self, x, y)
    }
}

/// A trained least-squares classifier.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinearRegressionModel {
    w: Vec<f64>,
    x_mean: Vec<f64>,
    y_mean: f64,
}

impl LinearRegressionModel {
    /// The fitted weight vector.
    pub fn weights(&self) -> &[f64] {
        &self.w
    }
}

impl BinaryClassifier for LinearRegressionModel {
    fn decision(&self, x: &[f64]) -> f64 {
        let xc: Vec<f64> = x.iter().zip(&self.x_mean).map(|(&v, &mu)| v - mu).collect();
        vector::dot(&self.w, &xc) + self.y_mean
    }

    fn num_features(&self) -> usize {
        self.w.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fits_separable_data() {
        let x = Matrix::from_rows(&[&[-1.0], &[-2.0], &[1.5], &[2.5]]).unwrap();
        let y = [-1.0, -1.0, 1.0, 1.0];
        let model = LinearRegression::new().fit(&x, &y).unwrap();
        assert!(model.decision(&[2.0]) > 0.0);
        assert!(model.decision(&[-2.0]) < 0.0);
    }

    #[test]
    fn matches_krr_at_tiny_rho() {
        use crate::KernelRidge;
        let x = Matrix::from_rows(&[&[0.1, 1.0], &[-0.2, 0.8], &[1.2, -0.3], &[0.9, 0.1]]).unwrap();
        let y = [1.0, 1.0, -1.0, -1.0];
        let ols = LinearRegression::new().fit(&x, &y).unwrap();
        let krr = KernelRidge::new(1e-9).fit(&x, &y).unwrap();
        let q = [0.5, 0.5];
        assert!((ols.decision(&q) - krr.decision(&q)).abs() < 1e-4);
    }

    #[test]
    fn high_leverage_outlier_moves_ols_more_than_ridge() {
        use crate::KernelRidge;
        // Clean 1-D data plus one extreme-leverage negative point.
        let mut rows: Vec<Vec<f64>> = Vec::new();
        let mut y = Vec::new();
        for i in 0..10 {
            rows.push(vec![1.0 + 0.05 * i as f64, 0.0]);
            y.push(1.0);
            rows.push(vec![-1.0 - 0.05 * i as f64, 0.0]);
            y.push(-1.0);
        }
        // Outlier on the orthogonal axis, labelled positive.
        rows.push(vec![0.0, 50.0]);
        y.push(1.0);
        let x = Matrix::from_rows(&rows).unwrap();
        let ols = LinearRegression::new().fit(&x, &y).unwrap();
        let krr = KernelRidge::new(5.0).fit(&x, &y).unwrap();
        // The outlier dominates OLS's second coordinate relative to ridge.
        let w_ols = ols.weights()[1].abs();
        let w_krr = krr.weights().unwrap()[1].abs();
        assert!(
            w_krr < w_ols,
            "ridge {w_krr} should shrink below ols {w_ols}"
        );
    }

    #[test]
    fn rejects_bad_input() {
        let x = Matrix::from_rows(&[&[1.0], &[2.0]]).unwrap();
        assert!(LinearRegression::new().fit(&x, &[1.0, 1.0]).is_err());
    }
}
