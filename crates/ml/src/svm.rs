use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

use smarteryou_linalg::Matrix;

use crate::error::validate_binary;
use crate::{BinaryClassifier, Kernel, MlError};

/// Soft-margin support vector machine trained with simplified SMO
/// (sequential minimal optimization, Platt 1998).
///
/// Included as the paper's strongest baseline (Table VI: 97.4% accuracy,
/// but with much higher training cost than KRR — §V-H1).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Svm {
    c: f64,
    kernel: Kernel,
    tol: f64,
    max_passes: usize,
}

impl Svm {
    /// Creates a trainer with regularisation parameter `c > 0`, linear
    /// kernel, tolerance `1e-3` and 5 dry passes.
    ///
    /// # Panics
    ///
    /// Panics if `c` is not strictly positive and finite.
    pub fn new(c: f64) -> Self {
        assert!(c.is_finite() && c > 0.0, "C must be positive, got {c}");
        Svm {
            c,
            kernel: Kernel::Linear,
            tol: 1e-3,
            max_passes: 5,
        }
    }

    /// Selects the kernel.
    pub fn with_kernel(mut self, kernel: Kernel) -> Self {
        self.kernel = kernel;
        self
    }

    /// Sets the KKT violation tolerance.
    ///
    /// # Panics
    ///
    /// Panics if `tol` is not strictly positive.
    pub fn with_tolerance(mut self, tol: f64) -> Self {
        assert!(tol > 0.0, "tolerance must be positive");
        self.tol = tol;
        self
    }

    /// Sets how many full passes without updates terminate training.
    ///
    /// # Panics
    ///
    /// Panics if `max_passes == 0`.
    pub fn with_max_passes(mut self, max_passes: usize) -> Self {
        assert!(max_passes > 0, "max_passes must be positive");
        self.max_passes = max_passes;
        self
    }

    /// Trains on rows of `x` with ±1 labels. SMO picks its second working
    /// index randomly, hence the explicit RNG (pass a seeded [`StdRng`] for
    /// reproducible experiments).
    ///
    /// # Errors
    ///
    /// Returns [`MlError::InvalidTrainingData`] for malformed inputs.
    pub fn fit(&self, x: &Matrix, y: &[f64], rng: &mut StdRng) -> Result<SvmModel, MlError> {
        validate_binary(x, y)?;
        let n = x.rows();
        // Precompute the Gram matrix; n ≈ 800 at most in this workspace.
        let k = self.kernel.gram(x);

        let mut alphas = vec![0.0f64; n];
        let mut b = 0.0f64;
        let mut passes = 0usize;
        // Hard cap on total iterations to guarantee termination even on
        // pathological data.
        let max_total_iter = 200 * n.max(50);
        let mut total_iter = 0usize;

        let f = |alphas: &[f64], b: f64, k: &Matrix, idx: usize| -> f64 {
            let mut s = b;
            for i in 0..n {
                if alphas[i] != 0.0 {
                    s += alphas[i] * y[i] * k[(i, idx)];
                }
            }
            s
        };

        while passes < self.max_passes && total_iter < max_total_iter {
            total_iter += 1;
            let mut num_changed = 0usize;
            for i in 0..n {
                let ei = f(&alphas, b, &k, i) - y[i];
                let violates = (y[i] * ei < -self.tol && alphas[i] < self.c)
                    || (y[i] * ei > self.tol && alphas[i] > 0.0);
                if !violates {
                    continue;
                }
                // Pick j != i at random.
                let mut j = rng.random_range(0..n - 1);
                if j >= i {
                    j += 1;
                }
                let ej = f(&alphas, b, &k, j) - y[j];
                let (ai_old, aj_old) = (alphas[i], alphas[j]);
                let (lo, hi) = if y[i] != y[j] {
                    (
                        (aj_old - ai_old).max(0.0),
                        (self.c + aj_old - ai_old).min(self.c),
                    )
                } else {
                    (
                        (ai_old + aj_old - self.c).max(0.0),
                        (ai_old + aj_old).min(self.c),
                    )
                };
                if lo >= hi {
                    continue;
                }
                let eta = 2.0 * k[(i, j)] - k[(i, i)] - k[(j, j)];
                if eta >= 0.0 {
                    continue;
                }
                let mut aj = aj_old - y[j] * (ei - ej) / eta;
                aj = aj.clamp(lo, hi);
                if (aj - aj_old).abs() < 1e-5 {
                    continue;
                }
                let ai = ai_old + y[i] * y[j] * (aj_old - aj);
                alphas[i] = ai;
                alphas[j] = aj;

                let b1 =
                    b - ei - y[i] * (ai - ai_old) * k[(i, i)] - y[j] * (aj - aj_old) * k[(i, j)];
                let b2 =
                    b - ej - y[i] * (ai - ai_old) * k[(i, j)] - y[j] * (aj - aj_old) * k[(j, j)];
                b = if ai > 0.0 && ai < self.c {
                    b1
                } else if aj > 0.0 && aj < self.c {
                    b2
                } else {
                    (b1 + b2) / 2.0
                };
                num_changed += 1;
            }
            if num_changed == 0 {
                passes += 1;
            } else {
                passes = 0;
            }
        }

        // Keep only support vectors.
        let mut sv_rows = Vec::new();
        let mut sv_coef = Vec::new();
        for i in 0..n {
            if alphas[i] > 1e-8 {
                sv_rows.push(x.row(i).to_vec());
                sv_coef.push(alphas[i] * y[i]);
            }
        }
        if sv_rows.is_empty() {
            // Degenerate but possible on tiny data: fall back to a single
            // zero-weight "support vector" so the model still answers.
            sv_rows.push(vec![0.0; x.cols()]);
            sv_coef.push(0.0);
        }
        let support = Matrix::from_rows(&sv_rows).expect("uniform width");
        Ok(SvmModel {
            kernel: self.kernel,
            support,
            coef: sv_coef,
            bias: b,
        })
    }
}

/// A trained SVM: support vectors, their signed coefficients `αᵢyᵢ`, and the
/// bias term.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SvmModel {
    kernel: Kernel,
    support: Matrix,
    coef: Vec<f64>,
    bias: f64,
}

impl SvmModel {
    /// Number of support vectors retained.
    pub fn num_support_vectors(&self) -> usize {
        self.coef.len()
    }
}

impl BinaryClassifier for SvmModel {
    fn decision(&self, x: &[f64]) -> f64 {
        let k = self.kernel.against(&self.support, x);
        smarteryou_linalg::vector::dot(&k, &self.coef) + self.bias
    }

    fn num_features(&self) -> usize {
        self.support.cols()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    fn blobs(n_per: usize, sep: f64) -> (Matrix, Vec<f64>) {
        // Deterministic pseudo-noise clusters around (±sep/2, ±sep/2).
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for i in 0..n_per {
            let jitter = ((i as u64 * 2654435761) % 1000) as f64 / 1000.0 - 0.5;
            rows.push(vec![sep / 2.0 + jitter * 0.3, sep / 2.0 - jitter * 0.2]);
            y.push(1.0);
            rows.push(vec![-sep / 2.0 - jitter * 0.25, -sep / 2.0 + jitter * 0.3]);
            y.push(-1.0);
        }
        (Matrix::from_rows(&rows).unwrap(), y)
    }

    #[test]
    fn separates_blobs() {
        let (x, y) = blobs(20, 2.0);
        let model = Svm::new(1.0).fit(&x, &y, &mut rng()).unwrap();
        assert!(model.decision(&[1.0, 1.0]) > 0.0);
        assert!(model.decision(&[-1.0, -1.0]) < 0.0);
    }

    #[test]
    fn training_accuracy_high_on_separable_data() {
        let (x, y) = blobs(30, 3.0);
        let model = Svm::new(1.0).fit(&x, &y, &mut rng()).unwrap();
        let correct = (0..x.rows())
            .filter(|&i| (model.decision(x.row(i)) >= 0.0) == (y[i] > 0.0))
            .count();
        assert!(correct as f64 / x.rows() as f64 > 0.95);
    }

    #[test]
    fn support_vectors_are_a_subset() {
        let (x, y) = blobs(25, 3.0);
        let model = Svm::new(1.0).fit(&x, &y, &mut rng()).unwrap();
        assert!(model.num_support_vectors() <= x.rows());
        assert!(model.num_support_vectors() >= 1);
    }

    #[test]
    fn rbf_solves_xor() {
        let x = Matrix::from_rows(&[&[0.0, 0.0], &[1.0, 1.0], &[0.0, 1.0], &[1.0, 0.0]]).unwrap();
        let y = vec![1.0, 1.0, -1.0, -1.0];
        let model = Svm::new(10.0)
            .with_kernel(Kernel::Rbf { gamma: 2.0 })
            .with_max_passes(20)
            .fit(&x, &y, &mut rng())
            .unwrap();
        assert!(model.decision(&[0.0, 0.0]) > 0.0);
        assert!(model.decision(&[1.0, 0.0]) < 0.0);
    }

    #[test]
    fn rejects_malformed_data() {
        let x = Matrix::from_rows(&[&[1.0], &[2.0]]).unwrap();
        assert!(Svm::new(1.0).fit(&x, &[1.0, 1.0], &mut rng()).is_err());
        assert!(Svm::new(1.0).fit(&x, &[1.0, 0.3], &mut rng()).is_err());
    }

    #[test]
    fn deterministic_given_seed() {
        let (x, y) = blobs(15, 2.0);
        let m1 = Svm::new(1.0)
            .fit(&x, &y, &mut StdRng::seed_from_u64(3))
            .unwrap();
        let m2 = Svm::new(1.0)
            .fit(&x, &y, &mut StdRng::seed_from_u64(3))
            .unwrap();
        let q = [0.3, -0.4];
        assert_eq!(m1.decision(&q), m2.decision(&q));
    }
}
