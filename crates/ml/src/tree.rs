use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use serde::{Deserialize, Serialize};

use smarteryou_linalg::Matrix;

use crate::MlError;

/// CART decision-tree trainer (Gini impurity, binary splits) over
/// `usize`-labelled classes.
///
/// Used standalone and as the base learner of [`crate::RandomForest`], the
/// paper's context-detection classifier (§V-E).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DecisionTree {
    max_depth: usize,
    min_samples_split: usize,
    /// Features examined per split; `None` means all (plain CART).
    max_features: Option<usize>,
}

impl Default for DecisionTree {
    fn default() -> Self {
        DecisionTree {
            max_depth: 12,
            min_samples_split: 2,
            max_features: None,
        }
    }
}

impl DecisionTree {
    /// Creates a trainer with default depth 12 and no feature subsampling.
    pub fn new() -> Self {
        DecisionTree::default()
    }

    /// Limits tree depth (root = depth 0).
    ///
    /// # Panics
    ///
    /// Panics if `depth == 0`.
    pub fn with_max_depth(mut self, depth: usize) -> Self {
        assert!(depth > 0, "max depth must be positive");
        self.max_depth = depth;
        self
    }

    /// Minimum samples required to attempt a split.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    pub fn with_min_samples_split(mut self, n: usize) -> Self {
        assert!(n >= 2, "min samples split must be at least 2");
        self.min_samples_split = n;
        self
    }

    /// Examines only `k` random features per split (random-forest mode).
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn with_max_features(mut self, k: usize) -> Self {
        assert!(k > 0, "max features must be positive");
        self.max_features = Some(k);
        self
    }

    /// Trains on rows of `x` with class labels `y < num_classes`.
    ///
    /// `rng` is used only when feature subsampling is enabled; pass any
    /// seeded RNG for deterministic forests.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::InvalidTrainingData`] when shapes mismatch, data
    /// is empty, or a label is out of range.
    pub fn fit(
        &self,
        x: &Matrix,
        y: &[usize],
        num_classes: usize,
        rng: &mut StdRng,
    ) -> Result<DecisionTreeModel, MlError> {
        if x.rows() != y.len() {
            return Err(MlError::InvalidTrainingData(format!(
                "{} rows but {} labels",
                x.rows(),
                y.len()
            )));
        }
        if x.rows() == 0 || x.cols() == 0 || num_classes == 0 {
            return Err(MlError::InvalidTrainingData("empty training data".into()));
        }
        if let Some(&bad) = y.iter().find(|&&l| l >= num_classes) {
            return Err(MlError::InvalidTrainingData(format!(
                "label {bad} out of range for {num_classes} classes"
            )));
        }
        let mut nodes = Vec::new();
        let indices: Vec<usize> = (0..x.rows()).collect();
        let mut builder = Builder {
            x,
            y,
            num_classes,
            config: *self,
            nodes: &mut nodes,
            rng,
        };
        builder.build(&indices, 0);
        Ok(DecisionTreeModel {
            nodes,
            num_features: x.cols(),
            num_classes,
        })
    }
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
enum Node {
    Leaf {
        /// Per-class sample counts that reached this leaf.
        counts: Vec<u32>,
    },
    Split {
        feature: usize,
        threshold: f64,
        /// Index of the left child in the node arena (`value <= threshold`).
        left: usize,
        /// Index of the right child.
        right: usize,
    },
}

struct Builder<'a> {
    x: &'a Matrix,
    y: &'a [usize],
    num_classes: usize,
    config: DecisionTree,
    nodes: &'a mut Vec<Node>,
    rng: &'a mut StdRng,
}

impl Builder<'_> {
    /// Builds the subtree over `indices`, returning its arena index.
    fn build(&mut self, indices: &[usize], depth: usize) -> usize {
        let counts = self.class_counts(indices);
        let n_nonzero = counts.iter().filter(|&&c| c > 0).count();
        if depth >= self.config.max_depth
            || indices.len() < self.config.min_samples_split
            || n_nonzero <= 1
        {
            return self.push_leaf(counts);
        }
        match self.best_split(indices) {
            None => self.push_leaf(counts),
            Some((feature, threshold)) => {
                let (left_idx, right_idx): (Vec<usize>, Vec<usize>) = indices
                    .iter()
                    .partition(|&&i| self.x[(i, feature)] <= threshold);
                if left_idx.is_empty() || right_idx.is_empty() {
                    return self.push_leaf(counts);
                }
                // Reserve our slot before recursing so children land after.
                let slot = self.nodes.len();
                self.nodes.push(Node::Leaf { counts: Vec::new() });
                let left = self.build(&left_idx, depth + 1);
                let right = self.build(&right_idx, depth + 1);
                self.nodes[slot] = Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                };
                slot
            }
        }
    }

    fn push_leaf(&mut self, counts: Vec<u32>) -> usize {
        self.nodes.push(Node::Leaf { counts });
        self.nodes.len() - 1
    }

    fn class_counts(&self, indices: &[usize]) -> Vec<u32> {
        let mut counts = vec![0u32; self.num_classes];
        for &i in indices {
            counts[self.y[i]] += 1;
        }
        counts
    }

    /// Finds the (feature, threshold) minimising weighted Gini impurity;
    /// `None` when no split improves on the parent.
    fn best_split(&mut self, indices: &[usize]) -> Option<(usize, f64)> {
        let m = self.x.cols();
        let mut features: Vec<usize> = (0..m).collect();
        if let Some(k) = self.config.max_features {
            features.shuffle(self.rng);
            features.truncate(k.min(m));
        }

        let parent_counts = self.class_counts(indices);
        let parent_gini = gini(&parent_counts);
        let n = indices.len() as f64;

        let mut best: Option<(f64, usize, f64)> = None; // (impurity, feature, threshold)
        for &f in &features {
            // Sort the node's samples by this feature once, then sweep.
            let mut sorted: Vec<(f64, usize)> = indices
                .iter()
                .map(|&i| (self.x[(i, f)], self.y[i]))
                .collect();
            sorted.sort_by(|a, b| a.0.total_cmp(&b.0));

            let mut left_counts = vec![0u32; self.num_classes];
            let mut right_counts = parent_counts.clone();
            for w in 0..sorted.len() - 1 {
                let (v, label) = sorted[w];
                left_counts[label] += 1;
                right_counts[label] -= 1;
                let next_v = sorted[w + 1].0;
                if next_v <= v {
                    continue; // can't split between equal values
                }
                let nl = (w + 1) as f64;
                let nr = n - nl;
                let impurity = (nl * gini(&left_counts) + nr * gini(&right_counts)) / n;
                // Accept zero-gain splits too (needed for XOR-like data where
                // no single split improves Gini); recursion still terminates
                // because children are strictly smaller and depth is capped.
                if best.map_or(impurity <= parent_gini + 1e-12, |(b, _, _)| impurity < b) {
                    best = Some((impurity, f, (v + next_v) / 2.0));
                }
            }
        }
        best.map(|(_, f, t)| (f, t))
    }
}

/// Gini impurity of a class-count vector.
fn gini(counts: &[u32]) -> f64 {
    let total: u32 = counts.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let t = total as f64;
    1.0 - counts
        .iter()
        .map(|&c| {
            let p = c as f64 / t;
            p * p
        })
        .sum::<f64>()
}

/// A trained decision tree (arena-allocated nodes).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DecisionTreeModel {
    nodes: Vec<Node>,
    num_features: usize,
    num_classes: usize,
}

impl DecisionTreeModel {
    /// Number of features the tree expects.
    pub fn num_features(&self) -> usize {
        self.num_features
    }

    /// Number of classes the tree was trained over.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Total nodes in the tree (splits + leaves).
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Per-class vote distribution at the leaf `x` reaches (normalised).
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.num_features()`.
    pub fn predict_proba(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.num_features, "feature width mismatch");
        let mut node = 0usize;
        loop {
            match &self.nodes[node] {
                Node::Leaf { counts } => {
                    let total: u32 = counts.iter().sum();
                    if total == 0 {
                        return vec![1.0 / self.num_classes as f64; self.num_classes];
                    }
                    return counts.iter().map(|&c| c as f64 / total as f64).collect();
                }
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    node = if x[*feature] <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }

    /// Most likely class for `x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.num_features()`.
    pub fn predict(&self, x: &[f64]) -> usize {
        let proba = self.predict_proba(x);
        proba
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(11)
    }

    #[test]
    fn gini_extremes() {
        assert_eq!(gini(&[10, 0]), 0.0);
        assert!((gini(&[5, 5]) - 0.5).abs() < 1e-12);
        assert_eq!(gini(&[]), 0.0);
    }

    #[test]
    fn learns_axis_aligned_boundary() {
        let rows: Vec<Vec<f64>> = (0..40)
            .map(|i| vec![i as f64 / 10.0, ((i * 7) % 13) as f64])
            .collect();
        let y: Vec<usize> = rows.iter().map(|r| usize::from(r[0] > 2.0)).collect();
        let x = Matrix::from_rows(&rows).unwrap();
        let tree = DecisionTree::new().fit(&x, &y, 2, &mut rng()).unwrap();
        assert_eq!(tree.predict(&[1.0, 5.0]), 0);
        assert_eq!(tree.predict(&[3.5, 5.0]), 1);
    }

    #[test]
    fn learns_xor_with_depth_two() {
        let x = Matrix::from_rows(&[&[0.0, 0.0], &[1.0, 1.0], &[0.0, 1.0], &[1.0, 0.0]]).unwrap();
        let y = [0usize, 0, 1, 1];
        let tree = DecisionTree::new().fit(&x, &y, 2, &mut rng()).unwrap();
        for (row, &label) in x.iter_rows().zip(&y) {
            assert_eq!(tree.predict(row), label);
        }
    }

    #[test]
    fn pure_node_becomes_leaf() {
        let x = Matrix::from_rows(&[&[1.0], &[2.0], &[3.0]]).unwrap();
        let y = [1usize, 1, 1];
        let tree = DecisionTree::new().fit(&x, &y, 2, &mut rng()).unwrap();
        assert_eq!(tree.num_nodes(), 1);
        assert_eq!(tree.predict(&[5.0]), 1);
    }

    #[test]
    fn depth_limit_caps_tree() {
        let rows: Vec<Vec<f64>> = (0..64).map(|i| vec![i as f64]).collect();
        let y: Vec<usize> = (0..64).map(|i| (i / 2) % 2).collect(); // needs many splits
        let x = Matrix::from_rows(&rows).unwrap();
        let shallow = DecisionTree::new()
            .with_max_depth(2)
            .fit(&x, &y, 2, &mut rng())
            .unwrap();
        let deep = DecisionTree::new()
            .with_max_depth(10)
            .fit(&x, &y, 2, &mut rng())
            .unwrap();
        assert!(shallow.num_nodes() < deep.num_nodes());
        assert!(shallow.num_nodes() <= 7); // depth-2 binary tree
    }

    #[test]
    fn predict_proba_sums_to_one() {
        let x = Matrix::from_rows(&[&[0.0], &[1.0], &[2.0], &[3.0]]).unwrap();
        let y = [0usize, 0, 1, 1];
        let tree = DecisionTree::new().fit(&x, &y, 2, &mut rng()).unwrap();
        let p = tree.predict_proba(&[1.5]);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rejects_out_of_range_labels() {
        let x = Matrix::from_rows(&[&[1.0], &[2.0]]).unwrap();
        assert!(DecisionTree::new().fit(&x, &[0, 5], 2, &mut rng()).is_err());
        assert!(DecisionTree::new().fit(&x, &[0], 2, &mut rng()).is_err());
    }
}
