//! Shared negative-Gram workspace for batched KRR enrollment.
//!
//! Every user enrolled against the same frozen negative pool solves a
//! ridge system whose negative block is identical; only the (much
//! smaller) positive block differs per user. [`KrrSharedWorkspace`]
//! precomputes the negative block once and [`KernelRidge::fit_shared`]
//! reuses it per user:
//!
//! * **Primal / linear kernel** (the production path): the raw negative
//!   column Gram `NᵀN` and the negative column sums are shared; each
//!   user's fit adds its positive contributions and applies the centring
//!   correction `S = G_raw − n·μμᵀ` in closed form — O(n_pos·M² + M³)
//!   per user instead of O((n_pos+n_neg)·M² + M³), with no second pass
//!   over the negatives.
//! * **Dual / RBF kernel**: RBF is translation invariant, so the
//!   negative×negative kernel block — and its Cholesky factor
//!   `chol(K_nn + ρI)` — is independent of per-user centring. The shared
//!   factor is **bordered** ([`Cholesky::append_row`]) with one row per
//!   positive sample: O(n_pos·n²) per user instead of an O(n³)
//!   refactorisation of the full (n_neg+n_pos) system.
//! * Anything else (linear-dual, polynomial) falls back to a full
//!   [`KernelRidge::fit`]; [`KrrFitCache`] counters make the distinction
//!   observable.
//!
//! Shared-workspace fits agree with the sequential [`KernelRidge::fit`]
//! on the stacked `[positives; negatives]` matrix to tight epsilon (the
//! summation order differs, so not bit-for-bit) — pinned by this
//! module's tests and by the core crate's `enroll_parity` suite.
//!
//! **Retrain tail-slide.** Confidence-triggered retrains repeat the scaled
//! primal fit with a positive tail that usually differs from the previous
//! fit by only a few buffer windows. [`KernelRidge::fit_scaled_shared_tail`]
//! therefore keeps a [`KrrTailState`] per model — the previous tail, its
//! moments and the Cholesky factor of the **raw** system
//! `A = Gc + ρD²` (with `Gc = PᵀP + NᵀN − n·μμᵀ` and `D` the clamped
//! per-column stds; `w = D·A⁻¹·(Xᵀy)` recovers the scaled solution) — and
//! slides that factor with rank-1 [`Cholesky::update`]/[`Cholesky::downdate`]
//! ops when the new tail is a bitwise slide of the old one, instead of
//! refactoring from scratch. The raw form is what makes sliding possible:
//! per-fit z-scoring rescales every entry of the scaled system, but in the
//! raw system a changed row is a rank-1 term and the re-scaling is confined
//! to the ridge diagonal `ρD²` (one sparse rank-1 op per column).

use serde::{Deserialize, Serialize};

use smarteryou_linalg::{Cholesky, Matrix};

use crate::krr::{KrrFitCache, KrrKind, KrrModel};
use crate::{Kernel, KernelRidge, KrrSolver, MlError, Scaler};

/// The per-pool precomputed negative block of a KRR enrollment fit: built
/// once per `NegativeEpoch`, reused by every user enrolling against it.
#[derive(Debug, Clone)]
pub struct KrrSharedWorkspace {
    /// Trainer configuration the blocks were computed under; fits must
    /// use an identical configuration.
    trainer: KernelRidge,
    /// The raw (uncentred) negative rows, labelled −1.
    neg: Matrix,
    /// Per-column sums of the negative rows (shared centring term).
    neg_col_sum: Vec<f64>,
    /// Raw negative column Gram `NᵀN` — primal/linear path.
    neg_gram_cols: Option<Matrix>,
    /// `chol(K_nn + ρI)` over the raw negative rows — bordered dual path
    /// (only for translation-invariant kernels, where raw ≡ centred).
    neg_factor: Option<Cholesky>,
}

impl KrrSharedWorkspace {
    /// Number of negative rows in the shared block.
    pub fn num_negatives(&self) -> usize {
        self.neg.rows()
    }

    /// True when fits against this workspace reuse a shared precomputed
    /// block (false means every fit falls back to a full factorisation).
    pub fn is_shared(&self) -> bool {
        self.neg_gram_cols.is_some() || self.neg_factor.is_some()
    }
}

/// Incremental-retrain state for one model fit against a
/// [`KrrSharedWorkspace`]: everything
/// [`KernelRidge::fit_scaled_shared_tail`] needs to turn the next retrain
/// into a handful of rank-1 factor ops instead of a fresh factorisation.
///
/// The state is pinned to the negative block it was built against (guarded
/// by `neg_rows` and the caller clearing it on epoch resample) and rides in
/// pipeline snapshots: a rank-1-slid factor is *not* bit-identical to a
/// freshly computed one, so evict/restore parity requires persisting the
/// factor itself, not recomputing it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KrrTailState {
    /// The exact positive rows (the tail) of the previous fit.
    positives: Matrix,
    /// Per-column sums of those rows.
    pos_col_sum: Vec<f64>,
    /// Diagonal of the positive column Gram `PᵀP`.
    pos_gram_diag: Vec<f64>,
    /// Clamped per-column stds the previous fit scaled by (the `D` whose
    /// `ρD²` sits on the factor's diagonal).
    stds: Vec<f64>,
    /// Cholesky factor of the previous fit's raw system `A = Gc + ρD²`.
    factor: Cholesky,
    /// Negative-row count of the workspace the factor was built against.
    neg_rows: usize,
    /// Ridge parameter baked into the factor's diagonal.
    rho: f64,
}

impl KrrTailState {
    /// Whether this state can seed a slide against a workspace with `m`
    /// features, `neg_rows` negatives and ridge `rho`. Length checks guard
    /// against panics on states restored from forged snapshots.
    fn compatible(&self, m: usize, neg_rows: usize, rho: f64) -> bool {
        self.positives.cols() == m
            && self.positives.rows() > 0
            && self.neg_rows == neg_rows
            && self.rho.to_bits() == rho.to_bits()
            && self.factor.dim() == m
            && self.pos_col_sum.len() == m
            && self.pos_gram_diag.len() == m
            && self.stds.len() == m
    }
}

/// Detects the sliding-window overlap between the previous fit's tail and
/// the new one. The tail is a chronological window over the positive
/// buffer, so it can only lose rows at the front and gain rows at the
/// back: returns `(removed, added)` — the previous tail's first `removed`
/// rows fell off and the new tail's last `added` rows are fresh — or
/// `None` when no such alignment exists (rows compared bitwise).
fn slide_alignment(prev: &Matrix, next: &Matrix) -> Option<(usize, usize)> {
    let n_prev = prev.rows();
    let n_next = next.rows();
    let start = n_prev.saturating_sub(n_next);
    's: for removed in start..n_prev {
        // `removed == n_prev` (kept = 0) would be a full replacement, not
        // a slide — the loop bound excludes it so callers re-base instead.
        let kept = n_prev - removed;
        for i in 0..kept {
            let (a, b) = (prev.row(removed + i), next.row(i));
            if !a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits()) {
                continue 's;
            }
        }
        return Some((removed, n_next - kept));
    }
    None
}

/// The tail-slide decision rule: slide only when the number of rank-1 row
/// ops (`removed + added`) is at most half the previous tail, with a floor
/// of 4 for small tails — beyond that the op sequence costs more than the
/// fresh factorisation it replaces.
fn slide_budget(prev_rows: usize) -> usize {
    (prev_rows / 2).max(4)
}

/// Same zero-variance clamp as `Scaler::fit` and the S-form closed form:
/// the subtraction form of the variance can dip microscopically negative
/// for near-constant columns, hence the `max(0.0)`.
fn clamped_stds(pos_gram_diag: &[f64], neg_gram: &Matrix, means: &[f64], n: f64) -> Vec<f64> {
    pos_gram_diag
        .iter()
        .enumerate()
        .map(|(j, &pd)| {
            let col_sq = pd + neg_gram[(j, j)];
            let var = ((col_sq - n * means[j] * means[j]) / n).max(0.0);
            let s = var.sqrt();
            if s > 1e-12 {
                s
            } else {
                1.0
            }
        })
        .collect()
}

/// Solves the raw A-form system against a ready factor and assembles the
/// scaled model: `z = A⁻¹·((Σpos − Σneg) − n·ȳ·μ)`, `w = D·z`. Shared by
/// the full refit and the slide path so both produce identical model
/// shapes (zero centring vector, scaler from closed-form moments).
#[allow(clippy::too_many_arguments)] // private solver shared by refit + slide
fn solve_a_form(
    chol: &Cholesky,
    rho: f64,
    pos_col_sum: &[f64],
    neg_col_sum: &[f64],
    means: &[f64],
    stds: &[f64],
    n: f64,
    y_mean: f64,
) -> Result<(Scaler, KrrModel), MlError> {
    let m = means.len();
    let mut z: Vec<f64> = (0..m)
        .map(|j| (pos_col_sum[j] - neg_col_sum[j]) - n * y_mean * means[j])
        .collect();
    chol.solve_into(&mut z)?;
    let w: Vec<f64> = z.iter().zip(stds).map(|(&zj, &dj)| dj * zj).collect();
    let model = KrrModel {
        kind: KrrKind::Linear { w },
        x_mean: vec![0.0; m],
        y_mean,
        rho,
    };
    Ok((Scaler::from_moments(means.to_vec(), stds.to_vec()), model))
}

impl KernelRidge {
    /// Precomputes the shared negative block for batched enrollment fits
    /// against a fixed negative sample. See the [module docs](self) for
    /// what is shared per kernel/solver combination.
    ///
    /// # Errors
    ///
    /// [`MlError::InvalidTrainingData`] for an empty negative matrix;
    /// [`MlError::Linalg`] if `K_nn + ρI` is not SPD (RBF path).
    pub fn shared_workspace(&self, negatives: Matrix) -> Result<KrrSharedWorkspace, MlError> {
        if negatives.rows() == 0 || negatives.cols() == 0 {
            return Err(MlError::InvalidTrainingData(
                "shared workspace needs a non-empty negative block".into(),
            ));
        }
        let m = negatives.cols();
        let mut neg_col_sum = vec![0.0; m];
        for row in negatives.iter_rows() {
            for (s, &v) in neg_col_sum.iter_mut().zip(row) {
                *s += v;
            }
        }
        let (neg_gram_cols, neg_factor) = match self.kernel {
            Kernel::Linear => (Some(negatives.gram_columns()), None),
            kernel if kernel.is_translation_invariant() => {
                // Same fast-vs-reference choice as `KrrFactorization`: the
                // blocked path shaves the O(n²·m) negative-Gram build.
                let mut k = if self.fast_gram {
                    kernel.gram_blocked(&negatives)
                } else {
                    kernel.gram(&negatives)
                };
                k.add_diagonal(self.rho);
                (None, Some(k.cholesky()?))
            }
            _ => (None, None),
        };
        Ok(KrrSharedWorkspace {
            trainer: *self,
            neg: negatives,
            neg_col_sum,
            neg_gram_cols,
            neg_factor,
        })
    }

    /// Fits one user's model against the workspace's shared negative
    /// block: the design matrix is the user's `positives` (labelled +1)
    /// stacked with the workspace negatives (labelled −1). Decisions
    /// agree with the equivalent [`KernelRidge::fit`] to tight epsilon.
    ///
    /// # Errors
    ///
    /// [`MlError::InvalidParameter`] if this trainer's configuration
    /// differs from the one the workspace was built with;
    /// [`MlError::InvalidTrainingData`] for empty/mismatched positives;
    /// [`MlError::Linalg`] if the ridge system cannot be solved.
    pub fn fit_shared(
        &self,
        ws: &KrrSharedWorkspace,
        positives: &Matrix,
    ) -> Result<KrrModel, MlError> {
        self.fit_shared_impl(ws, positives, None)
    }

    /// [`KernelRidge::fit_shared`] with [`KrrFitCache`] accounting: a fit
    /// served off the shared block counts as a cache hit (the
    /// label-independent prefix was reused), a fallback to the full
    /// factorisation as a miss.
    ///
    /// # Errors
    ///
    /// Same as [`KernelRidge::fit_shared`].
    pub fn fit_shared_cached(
        &self,
        cache: &mut KrrFitCache,
        ws: &KrrSharedWorkspace,
        positives: &Matrix,
    ) -> Result<KrrModel, MlError> {
        self.fit_shared_impl(ws, positives, Some(cache))
    }

    /// Fits one model per user against a shared workspace — the batched
    /// enrollment entry point. Element `i` of the result is the model for
    /// `users[i]` (each a positives matrix, labelled +1, stacked against
    /// the shared negatives).
    ///
    /// # Errors
    ///
    /// Same as [`KernelRidge::fit_shared`], for each user; fails fast on
    /// the first error.
    pub fn fit_batch_shared(
        &self,
        ws: &KrrSharedWorkspace,
        users: &[Matrix],
    ) -> Result<Vec<KrrModel>, MlError> {
        users.iter().map(|pos| self.fit_shared(ws, pos)).collect()
    }

    /// The scaled variant of [`KernelRidge::fit_shared`]: reproduces the
    /// full enrollment pipeline `Scaler::fit(stacked) → transform → fit`
    /// without materialising the stacked matrix or rescanning the
    /// negatives. Returns the fitted scaler together with a model that
    /// expects **scaled** inputs (apply the scaler before scoring).
    ///
    /// Only the primal/linear combination has a closed form under
    /// per-user z-scoring (scaling is not a translation, so the bordered
    /// kernel path cannot share); other combinations fall back to the
    /// sequential pipeline on the stacked rows.
    ///
    /// The closed form exploits that z-scored columns have exactly zero
    /// mean, so the KRR's internal centring vector is pinned to zero
    /// instead of the ~1e-16 residue the sequential path measures —
    /// decisions agree to tight epsilon, not bit-for-bit.
    ///
    /// # Errors
    ///
    /// Same as [`KernelRidge::fit_shared`].
    pub fn fit_scaled_shared(
        &self,
        ws: &KrrSharedWorkspace,
        positives: &Matrix,
    ) -> Result<(Scaler, KrrModel), MlError> {
        self.fit_scaled_shared_impl(ws, positives, None)
    }

    /// [`KernelRidge::fit_scaled_shared`] with [`KrrFitCache`] accounting
    /// (closed-form reuse of the shared block counts as a hit, the
    /// sequential fallback as a miss).
    ///
    /// # Errors
    ///
    /// Same as [`KernelRidge::fit_shared`].
    pub fn fit_scaled_shared_cached(
        &self,
        cache: &mut KrrFitCache,
        ws: &KrrSharedWorkspace,
        positives: &Matrix,
    ) -> Result<(Scaler, KrrModel), MlError> {
        self.fit_scaled_shared_impl(ws, positives, Some(cache))
    }

    fn fit_scaled_shared_impl(
        &self,
        ws: &KrrSharedWorkspace,
        positives: &Matrix,
        cache: Option<&mut KrrFitCache>,
    ) -> Result<(Scaler, KrrModel), MlError> {
        if *self != ws.trainer {
            return Err(MlError::InvalidParameter(
                "shared workspace was built under a different trainer configuration".into(),
            ));
        }
        let m = ws.neg.cols();
        if positives.rows() == 0 {
            return Err(MlError::InvalidTrainingData(
                "shared fit needs at least one positive row".into(),
            ));
        }
        if positives.cols() != m {
            return Err(MlError::InvalidTrainingData(format!(
                "positive rows have {} features, negative block has {m}",
                positives.cols()
            )));
        }
        let n = positives.rows() + ws.neg.rows();
        let solver = self.resolve_solver(n, m)?;
        let primal_gram = match solver {
            KrrSolver::Primal | KrrSolver::Auto => ws.neg_gram_cols.as_ref(),
            KrrSolver::Dual => None,
        };
        match primal_gram {
            Some(gram) => {
                if let Some(cache) = cache {
                    cache.note_shared_hit();
                }
                self.fit_scaled_primal_shared(ws, gram, positives)
            }
            None => {
                // Per-user scaling breaks the shared kernel block, so any
                // non-(primal, linear) combination runs the sequential
                // pipeline on the stacked rows.
                if let Some(cache) = cache {
                    cache.note_shared_miss();
                }
                let (stacked, y) = stack(positives, &ws.neg)?;
                let scaler = Scaler::fit(&stacked);
                let model = self.fit(&scaler.transform(&stacked), &y)?;
                Ok((scaler, model))
            }
        }
    }

    /// Scaled primal path. With raw moments `G = PᵀP + NᵀN`,
    /// `σ = Σpos + Σneg`, mean `μ = σ/n` and z-scores `x' = (x − μ) ⊘ d`:
    /// the scaled columns sum to zero, so the centred scatter is
    /// `S[i][j] = (G[i][j] − n·μᵢμⱼ) / (dᵢdⱼ)` and the target projection
    /// is `(Xᵀy)ⱼ = ((Σpos − Σneg)ⱼ − n·ȳ·μⱼ) / dⱼ`, both assembled
    /// without touching the negative rows again.
    fn fit_scaled_primal_shared(
        &self,
        ws: &KrrSharedWorkspace,
        neg_gram: &Matrix,
        positives: &Matrix,
    ) -> Result<(Scaler, KrrModel), MlError> {
        let m = positives.cols();
        let n_p = positives.rows();
        let n_n = ws.neg.rows();
        let n = (n_p + n_n) as f64;
        let y_mean = (n_p as f64 - n_n as f64) / n;
        let mut pos_col_sum = vec![0.0; m];
        for row in positives.iter_rows() {
            for (s, &v) in pos_col_sum.iter_mut().zip(row) {
                *s += v;
            }
        }
        let means: Vec<f64> = pos_col_sum
            .iter()
            .zip(&ws.neg_col_sum)
            .map(|(&p, &ng)| (p + ng) / n)
            .collect();
        let pos_gram = positives.gram_columns();
        // Same zero-variance clamp as `Scaler::fit`; the subtraction form
        // of the variance can dip microscopically negative for
        // near-constant columns, hence the max(0.0).
        let stds: Vec<f64> = (0..m)
            .map(|j| {
                let col_sq = pos_gram[(j, j)] + neg_gram[(j, j)];
                let var = ((col_sq - n * means[j] * means[j]) / n).max(0.0);
                let s = var.sqrt();
                if s > 1e-12 {
                    s
                } else {
                    1.0
                }
            })
            .collect();
        let mut s = Matrix::zeros(m, m);
        for i in 0..m {
            for j in 0..m {
                let raw = pos_gram[(i, j)] + neg_gram[(i, j)] - n * means[i] * means[j];
                s[(i, j)] = raw / (stds[i] * stds[j]);
            }
        }
        s.add_diagonal(self.rho);
        let chol = s.cholesky()?;
        let mut w: Vec<f64> = (0..m)
            .map(|j| {
                let xy = (pos_col_sum[j] - ws.neg_col_sum[j]) - n * y_mean * means[j];
                xy / stds[j]
            })
            .collect();
        chol.solve_into(&mut w)?;
        let model = KrrModel {
            kind: KrrKind::Linear { w },
            x_mean: vec![0.0; m],
            y_mean,
            rho: self.rho,
        };
        Ok((Scaler::from_moments(means, stds), model))
    }

    /// The retrain variant of [`KernelRidge::fit_scaled_shared_cached`]:
    /// identical math and validation, plus a per-model [`KrrTailState`]
    /// that turns a retrain whose positive tail *slid* by only a few rows
    /// into a handful of rank-1 factor ops (see the [module docs](self)).
    ///
    /// Behaviour by path:
    /// * **Slide** — the new tail bitwise-overlaps the previous one within
    ///   the [`slide_budget`] decision rule: the cached factor is cloned,
    ///   slid with [`Cholesky::update`]/[`Cholesky::downdate`], and `tail`
    ///   is re-committed. Counts a shared hit.
    /// * **Full refit** — no usable tail, no alignment, over budget, or
    ///   the slide failed (e.g. `DowndateNotPositiveDefinite` on a
    ///   near-singular slide, which leaves the cached factor untouched
    ///   because the ops ran on a clone): one fresh m×m factorisation off
    ///   the shared negative block, re-basing `tail`. Still a shared hit.
    /// * **Fallback** — non-(primal, linear) configuration: sequential
    ///   stacked fit, `tail` cleared, counts a true miss.
    ///
    /// Fits agree with [`KernelRidge::fit_scaled_shared`] to tight epsilon
    /// (the raw A-form and the scaled S-form order the arithmetic
    /// differently), and the slide agrees with its own full refit to
    /// rank-1-accumulation accuracy — pinned by this module's tests.
    ///
    /// # Errors
    ///
    /// Same as [`KernelRidge::fit_scaled_shared`].
    pub fn fit_scaled_shared_tail(
        &self,
        cache: &mut KrrFitCache,
        ws: &KrrSharedWorkspace,
        positives: &Matrix,
        tail: &mut Option<KrrTailState>,
    ) -> Result<(Scaler, KrrModel), MlError> {
        if *self != ws.trainer {
            return Err(MlError::InvalidParameter(
                "shared workspace was built under a different trainer configuration".into(),
            ));
        }
        let m = ws.neg.cols();
        if positives.rows() == 0 {
            return Err(MlError::InvalidTrainingData(
                "shared fit needs at least one positive row".into(),
            ));
        }
        if positives.cols() != m {
            return Err(MlError::InvalidTrainingData(format!(
                "positive rows have {} features, negative block has {m}",
                positives.cols()
            )));
        }
        let n = positives.rows() + ws.neg.rows();
        let solver = self.resolve_solver(n, m)?;
        let primal_gram = match solver {
            KrrSolver::Primal | KrrSolver::Auto => ws.neg_gram_cols.as_ref(),
            KrrSolver::Dual => None,
        };
        match primal_gram {
            Some(gram) => {
                cache.note_shared_hit();
                self.fit_scaled_primal_tail(ws, gram, positives, tail)
            }
            None => {
                // No shared closed form for this combination: sequential
                // stacked pipeline, and the tail (raw-system factor) has
                // no successor to slide from.
                *tail = None;
                cache.note_shared_miss();
                let (stacked, y) = stack(positives, &ws.neg)?;
                let scaler = Scaler::fit(&stacked);
                let model = self.fit(&scaler.transform(&stacked), &y)?;
                Ok((scaler, model))
            }
        }
    }

    /// Scaled primal retrain path over the raw A-form system (see the
    /// [module docs](self)): tries the incremental slide off `tail`, falls
    /// back to a full refit that re-bases `tail`.
    fn fit_scaled_primal_tail(
        &self,
        ws: &KrrSharedWorkspace,
        neg_gram: &Matrix,
        positives: &Matrix,
        tail: &mut Option<KrrTailState>,
    ) -> Result<(Scaler, KrrModel), MlError> {
        let m = positives.cols();
        let n_p = positives.rows();
        let n_n = ws.neg.rows();
        let n = (n_p + n_n) as f64;
        let y_mean = (n_p as f64 - n_n as f64) / n;
        let mut pos_col_sum = vec![0.0; m];
        for row in positives.iter_rows() {
            for (s, &v) in pos_col_sum.iter_mut().zip(row) {
                *s += v;
            }
        }
        let means: Vec<f64> = pos_col_sum
            .iter()
            .zip(&ws.neg_col_sum)
            .map(|(&p, &ng)| (p + ng) / n)
            .collect();

        if let Some(prev) = tail.as_ref() {
            if prev.compatible(m, n_n, self.rho) {
                if let Some((removed, added)) = slide_alignment(&prev.positives, positives) {
                    if removed + added <= slide_budget(prev.positives.rows()) {
                        if let Ok((scaler, model, next)) = self.slide_tail(
                            ws,
                            neg_gram,
                            prev,
                            positives,
                            removed,
                            &pos_col_sum,
                            &means,
                            y_mean,
                        ) {
                            *tail = Some(next);
                            return Ok((scaler, model));
                        }
                        // The slide ran on a clone, so a failure (typically
                        // DowndateNotPositiveDefinite) left `prev.factor`
                        // byte-identical; fall through to the full refit.
                    }
                }
            }
        }

        let pos_gram = positives.gram_columns();
        let pos_gram_diag: Vec<f64> = (0..m).map(|j| pos_gram[(j, j)]).collect();
        let stds = clamped_stds(&pos_gram_diag, neg_gram, &means, n);
        let mut a = Matrix::zeros(m, m);
        for i in 0..m {
            for j in 0..m {
                a[(i, j)] = pos_gram[(i, j)] + neg_gram[(i, j)] - n * means[i] * means[j];
            }
            a[(i, i)] += self.rho * stds[i] * stds[i];
        }
        let chol = a.cholesky()?;
        let (scaler, model) = solve_a_form(
            &chol,
            self.rho,
            &pos_col_sum,
            &ws.neg_col_sum,
            &means,
            &stds,
            n,
            y_mean,
        )?;
        *tail = Some(KrrTailState {
            positives: positives.clone(),
            pos_col_sum,
            pos_gram_diag,
            stds,
            factor: chol,
            neg_rows: n_n,
            rho: self.rho,
        });
        Ok((scaler, model))
    }

    /// Slides the previous fit's factor to the new tail: rank-1 updates
    /// for added rows, the old mean term added back, rank-1 downdates for
    /// removed rows and the new mean term, then one sparse `eⱼ` op per
    /// column for the ridge-diagonal delta `ρ·(dⱼ'² − dⱼ²)` (the zero
    /// prefix makes each one O((m−j)²)). The op order is fixed —
    /// additions before removals, so mass arrives before it leaves — which
    /// keeps repeat runs bit-reproducible. All ops run on a **clone** of
    /// the cached factor; `prev` is never mutated, so any error leaves the
    /// caller's state byte-identical.
    #[allow(clippy::too_many_arguments)] // moments precomputed by the one caller
    fn slide_tail(
        &self,
        ws: &KrrSharedWorkspace,
        neg_gram: &Matrix,
        prev: &KrrTailState,
        positives: &Matrix,
        removed: usize,
        pos_col_sum: &[f64],
        means: &[f64],
        y_mean: f64,
    ) -> Result<(Scaler, KrrModel, KrrTailState), MlError> {
        let m = positives.cols();
        let n_p = positives.rows();
        let n_prev = prev.positives.rows();
        let kept = n_prev - removed;
        let n_old = (n_prev + prev.neg_rows) as f64;
        let n = (n_p + prev.neg_rows) as f64;

        // Slide the positive Gram diagonal, then the new clamped stds.
        let mut pos_gram_diag = prev.pos_gram_diag.clone();
        for r in kept..n_p {
            for (d, &v) in pos_gram_diag.iter_mut().zip(positives.row(r)) {
                *d += v * v;
            }
        }
        for r in 0..removed {
            for (d, &v) in pos_gram_diag.iter_mut().zip(prev.positives.row(r)) {
                *d -= v * v;
            }
        }
        let stds = clamped_stds(&pos_gram_diag, neg_gram, means, n);

        let mut chol = prev.factor.clone();
        // 1. Added rows (updates cannot lose positive definiteness).
        for r in kept..n_p {
            chol.update(positives.row(r))?;
        }
        // 2. Add back the old mean term +n_old·μ_old·μ_oldᵀ …
        let sqrt_n_old = n_old.sqrt();
        let v_old: Vec<f64> = prev
            .pos_col_sum
            .iter()
            .zip(&ws.neg_col_sum)
            .map(|(&p, &ng)| sqrt_n_old * ((p + ng) / n_old))
            .collect();
        chol.update(&v_old)?;
        // 3. Removed rows (downdates can fail near singularity).
        for r in 0..removed {
            chol.downdate(prev.positives.row(r))?;
        }
        // 4. … and subtract the new mean term −n·μμᵀ.
        let sqrt_n = n.sqrt();
        let v_new: Vec<f64> = means.iter().map(|&mu| sqrt_n * mu).collect();
        chol.downdate(&v_new)?;
        // 5. Per-column ridge-diagonal deltas.
        let mut e = vec![0.0; m];
        for j in 0..m {
            let delta = self.rho * (stds[j] * stds[j] - prev.stds[j] * prev.stds[j]);
            if delta > 0.0 {
                e[j] = delta.sqrt();
                chol.update(&e)?;
            } else if delta < 0.0 {
                e[j] = (-delta).sqrt();
                chol.downdate(&e)?;
            }
            e[j] = 0.0;
        }

        let (scaler, model) = solve_a_form(
            &chol,
            self.rho,
            pos_col_sum,
            &ws.neg_col_sum,
            means,
            &stds,
            n,
            y_mean,
        )?;
        let next = KrrTailState {
            positives: positives.clone(),
            pos_col_sum: pos_col_sum.to_vec(),
            pos_gram_diag,
            stds,
            factor: chol,
            neg_rows: prev.neg_rows,
            rho: self.rho,
        };
        Ok((scaler, model, next))
    }

    fn fit_shared_impl(
        &self,
        ws: &KrrSharedWorkspace,
        positives: &Matrix,
        cache: Option<&mut KrrFitCache>,
    ) -> Result<KrrModel, MlError> {
        if *self != ws.trainer {
            return Err(MlError::InvalidParameter(
                "shared workspace was built under a different trainer configuration".into(),
            ));
        }
        let m = ws.neg.cols();
        if positives.rows() == 0 {
            return Err(MlError::InvalidTrainingData(
                "shared fit needs at least one positive row".into(),
            ));
        }
        if positives.cols() != m {
            return Err(MlError::InvalidTrainingData(format!(
                "positive rows have {} features, negative block has {m}",
                positives.cols()
            )));
        }
        let n_p = positives.rows();
        let n_n = ws.neg.rows();
        let n = n_p + n_n;
        let solver = self.resolve_solver(n, m)?;
        let y_mean = (n_p as f64 - n_n as f64) / n as f64;

        let shared = match solver {
            KrrSolver::Primal | KrrSolver::Auto => ws
                .neg_gram_cols
                .as_ref()
                .map(|gram| self.fit_primal_shared(ws, gram, positives, y_mean)),
            KrrSolver::Dual => ws
                .neg_factor
                .as_ref()
                .map(|factor| self.fit_dual_bordered(ws, factor, positives, y_mean)),
        };
        match shared {
            Some(result) => {
                if let Some(cache) = cache {
                    cache.note_shared_hit();
                }
                result
            }
            None => {
                // No shareable block for this kernel/solver combination:
                // full sequential fit on the stacked matrix.
                if let Some(cache) = cache {
                    cache.note_shared_miss();
                }
                let (stacked, y) = stack(positives, &ws.neg)?;
                self.fit(&stacked, &y)
            }
        }
    }

    /// Primal path: `S = Xcᵀ Xc = (PᵀP + NᵀN) − n·μμᵀ` and
    /// `Xcᵀ yc = (Σpos − Σneg) − n·ȳ·μ`, with `NᵀN` and `Σneg` shared.
    fn fit_primal_shared(
        &self,
        ws: &KrrSharedWorkspace,
        neg_gram: &Matrix,
        positives: &Matrix,
        y_mean: f64,
    ) -> Result<KrrModel, MlError> {
        let m = positives.cols();
        let n = (positives.rows() + ws.neg.rows()) as f64;
        let mut pos_col_sum = vec![0.0; m];
        for row in positives.iter_rows() {
            for (s, &v) in pos_col_sum.iter_mut().zip(row) {
                *s += v;
            }
        }
        let x_mean: Vec<f64> = pos_col_sum
            .iter()
            .zip(&ws.neg_col_sum)
            .map(|(&p, &ng)| (p + ng) / n)
            .collect();
        let mut s = positives.gram_columns();
        for i in 0..m {
            for j in 0..m {
                s[(i, j)] += neg_gram[(i, j)] - n * x_mean[i] * x_mean[j];
            }
        }
        s.add_diagonal(self.rho);
        let chol = s.cholesky()?;
        let mut w: Vec<f64> = pos_col_sum
            .iter()
            .zip(&ws.neg_col_sum)
            .zip(&x_mean)
            .map(|((&p, &ng), &mu)| (p - ng) - n * y_mean * mu)
            .collect();
        chol.solve_into(&mut w)?;
        Ok(KrrModel {
            kind: KrrKind::Linear { w },
            x_mean,
            y_mean,
            rho: self.rho,
        })
    }

    /// Dual path for translation-invariant kernels: the shared
    /// `chol(K_nn + ρI)` is bordered with one row per positive sample
    /// (kernel entries are centring-independent, so raw rows serve).
    /// Training rows are ordered `[negatives; positives]` — decisions are
    /// order-independent up to float summation.
    fn fit_dual_bordered(
        &self,
        ws: &KrrSharedWorkspace,
        factor: &Cholesky,
        positives: &Matrix,
        y_mean: f64,
    ) -> Result<KrrModel, MlError> {
        let n_p = positives.rows();
        let n_n = ws.neg.rows();
        let n = n_p + n_n;
        let mut chol = factor.clone();
        let mut border = Vec::with_capacity(n - 1);
        for j in 0..n_p {
            let q = positives.row(j);
            border.clear();
            border.extend((0..n_n).map(|i| self.kernel.eval(ws.neg.row(i), q)));
            border.extend((0..j).map(|i| self.kernel.eval(positives.row(i), q)));
            let diag = self.kernel.eval(q, q) + self.rho;
            chol.append_row(&border, diag)?;
        }
        let mut alphas: Vec<f64> = (0..n)
            .map(|i| if i < n_n { -1.0 - y_mean } else { 1.0 - y_mean })
            .collect();
        chol.solve_into(&mut alphas)?;
        // The model stores centred training rows like the sequential fit
        // (harmless for a translation-invariant kernel, but keeps the
        // serialized form consistent).
        let mut x_mean = vec![0.0; positives.cols()];
        for row in ws.neg.iter_rows().chain(positives.iter_rows()) {
            for (s, &v) in x_mean.iter_mut().zip(row) {
                *s += v;
            }
        }
        for mu in &mut x_mean {
            *mu /= n as f64;
        }
        let mut train = Matrix::zeros(n, positives.cols());
        for (r, row) in ws.neg.iter_rows().chain(positives.iter_rows()).enumerate() {
            for (c, (&v, &mu)) in row.iter().zip(&x_mean).enumerate() {
                train[(r, c)] = v - mu;
            }
        }
        Ok(KrrModel {
            kind: KrrKind::Kernelized {
                kernel: self.kernel,
                train,
                alphas,
            },
            x_mean,
            y_mean,
            rho: self.rho,
        })
    }
}

/// Stacks `[positives; negatives]` with ±1 labels — the design matrix the
/// sequential fit sees, used by the fallback path and by parity tests.
fn stack(positives: &Matrix, negatives: &Matrix) -> Result<(Matrix, Vec<f64>), MlError> {
    let rows: Vec<&[f64]> = positives.iter_rows().chain(negatives.iter_rows()).collect();
    let stacked = Matrix::from_rows(&rows)?;
    let mut y = vec![1.0; positives.rows()];
    y.extend(std::iter::repeat_n(-1.0, negatives.rows()));
    Ok((stacked, y))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BinaryClassifier;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_matrix(rng: &mut StdRng, rows: usize, cols: usize, offset: f64) -> Matrix {
        let rows: Vec<Vec<f64>> = (0..rows)
            .map(|_| {
                (0..cols)
                    .map(|_| rng.random_range(-1.0..1.0) + offset)
                    .collect()
            })
            .collect();
        Matrix::from_rows(&rows).unwrap()
    }

    fn probes(rng: &mut StdRng, cols: usize) -> Matrix {
        random_matrix(rng, 8, cols, 0.25)
    }

    #[test]
    fn primal_shared_fit_matches_sequential_fit() {
        let mut rng = StdRng::seed_from_u64(7);
        let neg = random_matrix(&mut rng, 24, 5, 0.0);
        let trainer = KernelRidge::new(0.8);
        let ws = trainer.shared_workspace(neg.clone()).unwrap();
        assert!(ws.is_shared());
        for _ in 0..4 {
            let pos = random_matrix(&mut rng, 12, 5, 0.7);
            let shared = trainer.fit_shared(&ws, &pos).unwrap();
            let (stacked, y) = stack(&pos, &neg).unwrap();
            let sequential = trainer.fit(&stacked, &y).unwrap();
            let q = probes(&mut rng, 5);
            for (a, b) in shared
                .decision_batch(&q)
                .iter()
                .zip(sequential.decision_batch(&q))
            {
                assert!((a - b).abs() < 1e-9, "shared {a} vs sequential {b}");
            }
        }
    }

    #[test]
    fn rbf_bordered_fit_matches_sequential_fit() {
        let mut rng = StdRng::seed_from_u64(11);
        let neg = random_matrix(&mut rng, 16, 4, 0.0);
        let trainer = KernelRidge::new(0.5).with_kernel(Kernel::Rbf { gamma: 0.7 });
        let ws = trainer.shared_workspace(neg.clone()).unwrap();
        assert!(ws.is_shared());
        let pos = random_matrix(&mut rng, 6, 4, 0.9);
        let shared = trainer.fit_shared(&ws, &pos).unwrap();
        let (stacked, y) = stack(&pos, &neg).unwrap();
        let sequential = trainer.fit(&stacked, &y).unwrap();
        let q = probes(&mut rng, 4);
        for (a, b) in shared
            .decision_batch(&q)
            .iter()
            .zip(sequential.decision_batch(&q))
        {
            assert!((a - b).abs() < 1e-8, "shared {a} vs sequential {b}");
        }
    }

    #[test]
    fn unsupported_kernel_falls_back_and_counts_misses() {
        let mut rng = StdRng::seed_from_u64(13);
        let neg = random_matrix(&mut rng, 10, 3, 0.0);
        let trainer = KernelRidge::new(0.5).with_kernel(Kernel::Polynomial {
            degree: 2,
            coef: 1.0,
        });
        let ws = trainer.shared_workspace(neg.clone()).unwrap();
        assert!(!ws.is_shared());
        let pos = random_matrix(&mut rng, 5, 3, 0.8);
        let mut cache = KrrFitCache::new();
        let shared = trainer.fit_shared_cached(&mut cache, &ws, &pos).unwrap();
        assert_eq!((cache.hits(), cache.misses()), (0, 1));
        let (stacked, y) = stack(&pos, &neg).unwrap();
        let sequential = trainer.fit(&stacked, &y).unwrap();
        assert_eq!(shared, sequential, "fallback is the sequential fit");
    }

    #[test]
    fn batch_shared_fits_every_user_and_counts_hits() {
        let mut rng = StdRng::seed_from_u64(17);
        let neg = random_matrix(&mut rng, 20, 4, 0.0);
        let trainer = KernelRidge::new(1.0);
        let ws = trainer.shared_workspace(neg.clone()).unwrap();
        let users: Vec<Matrix> = (0..5)
            .map(|_| random_matrix(&mut rng, 10, 4, 0.6))
            .collect();
        let models = trainer.fit_batch_shared(&ws, &users).unwrap();
        assert_eq!(models.len(), users.len());
        let mut cache = KrrFitCache::new();
        for pos in &users {
            let cached = trainer.fit_shared_cached(&mut cache, &ws, pos).unwrap();
            let q = probes(&mut rng, 4);
            let direct = trainer.fit_shared(&ws, pos).unwrap();
            for (a, b) in cached
                .decision_batch(&q)
                .iter()
                .zip(direct.decision_batch(&q))
            {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
        assert_eq!((cache.hits(), cache.misses()), (5, 0));
    }

    #[test]
    fn scaled_shared_fit_matches_sequential_scaler_pipeline() {
        let mut rng = StdRng::seed_from_u64(29);
        let neg = random_matrix(&mut rng, 24, 5, 0.0);
        let trainer = KernelRidge::new(0.8);
        let ws = trainer.shared_workspace(neg.clone()).unwrap();
        let mut cache = KrrFitCache::new();
        for _ in 0..4 {
            let pos = random_matrix(&mut rng, 12, 5, 0.7);
            let (scaler, model) = trainer
                .fit_scaled_shared_cached(&mut cache, &ws, &pos)
                .unwrap();
            // Sequential pipeline: fit the scaler on the stacked rows,
            // transform, then fit KRR on the scaled matrix.
            let (stacked, y) = stack(&pos, &neg).unwrap();
            let seq_scaler = Scaler::fit(&stacked);
            let seq_model = trainer.fit(&seq_scaler.transform(&stacked), &y).unwrap();
            let q = probes(&mut rng, 5);
            for row in q.iter_rows() {
                let a = model.decision(&scaler.transform_vec(row));
                let b = seq_model.decision(&seq_scaler.transform_vec(row));
                assert!((a - b).abs() < 1e-9, "scaled shared {a} vs sequential {b}");
            }
        }
        assert_eq!((cache.hits(), cache.misses()), (4, 0));
    }

    #[test]
    fn scaled_shared_fallback_matches_sequential_and_counts_miss() {
        let mut rng = StdRng::seed_from_u64(31);
        let neg = random_matrix(&mut rng, 16, 4, 0.0);
        let trainer = KernelRidge::new(0.5).with_kernel(Kernel::Rbf { gamma: 0.7 });
        let ws = trainer.shared_workspace(neg.clone()).unwrap();
        let pos = random_matrix(&mut rng, 6, 4, 0.9);
        let mut cache = KrrFitCache::new();
        let (scaler, model) = trainer
            .fit_scaled_shared_cached(&mut cache, &ws, &pos)
            .unwrap();
        assert_eq!((cache.hits(), cache.misses()), (0, 1));
        let (stacked, y) = stack(&pos, &neg).unwrap();
        let seq_scaler = Scaler::fit(&stacked);
        let seq_model = trainer.fit(&seq_scaler.transform(&stacked), &y).unwrap();
        assert_eq!(scaler, seq_scaler);
        assert_eq!(model, seq_model, "fallback is exactly the sequential fit");
    }

    #[test]
    fn scaled_shared_handles_constant_columns() {
        // A zero-variance column exercises the std clamp in the closed
        // form; it must match `Scaler::fit`'s clamp, not divide by ~0.
        let neg_rows: Vec<Vec<f64>> = (0..10)
            .map(|i| vec![1.0, (i as f64) * 0.1 - 0.5, (i as f64).sin()])
            .collect();
        let pos_rows: Vec<Vec<f64>> = (0..6)
            .map(|i| vec![1.0, (i as f64) * 0.2 + 0.4, (i as f64).cos()])
            .collect();
        let neg = Matrix::from_rows(&neg_rows).unwrap();
        let pos = Matrix::from_rows(&pos_rows).unwrap();
        let trainer = KernelRidge::new(0.8);
        let ws = trainer.shared_workspace(neg.clone()).unwrap();
        let (scaler, model) = trainer.fit_scaled_shared(&ws, &pos).unwrap();
        let (stacked, y) = stack(&pos, &neg).unwrap();
        let seq_scaler = Scaler::fit(&stacked);
        let seq_model = trainer.fit(&seq_scaler.transform(&stacked), &y).unwrap();
        let q = [1.0, 0.3, -0.2];
        let a = model.decision(&scaler.transform_vec(&q));
        let b = seq_model.decision(&seq_scaler.transform_vec(&q));
        assert!(a.is_finite());
        assert!((a - b).abs() < 1e-9, "clamped column diverged: {a} vs {b}");
    }

    /// Chronological slide of a positive tail: drop `removed` rows from
    /// the front, append `added` fresh rows at the back.
    fn slide_rows(rng: &mut StdRng, prev: &Matrix, removed: usize, added: usize) -> Matrix {
        let mut rows: Vec<Vec<f64>> = prev.iter_rows().skip(removed).map(|r| r.to_vec()).collect();
        for _ in 0..added {
            rows.push(
                (0..prev.cols())
                    .map(|_| rng.random_range(-1.0..1.0) + 0.7)
                    .collect(),
            );
        }
        let refs: Vec<&[f64]> = rows.iter().map(Vec::as_slice).collect();
        Matrix::from_rows(&refs).unwrap()
    }

    #[test]
    fn tail_fit_matches_scaled_shared_and_sequential() {
        let mut rng = StdRng::seed_from_u64(41);
        let neg = random_matrix(&mut rng, 24, 5, 0.0);
        let trainer = KernelRidge::new(0.8);
        let ws = trainer.shared_workspace(neg.clone()).unwrap();
        let pos = random_matrix(&mut rng, 12, 5, 0.7);
        let mut cache = KrrFitCache::new();
        let mut tail = None;
        let (scaler, model) = trainer
            .fit_scaled_shared_tail(&mut cache, &ws, &pos, &mut tail)
            .unwrap();
        assert!(tail.is_some(), "full refit must re-base the tail");
        assert_eq!(
            (cache.shared_hits(), cache.keyed_hits(), cache.misses()),
            (1, 0, 0)
        );
        // Against the S-form closed form and the sequential pipeline.
        let (s_scaler, s_model) = trainer.fit_scaled_shared(&ws, &pos).unwrap();
        let (stacked, y) = stack(&pos, &neg).unwrap();
        let seq_scaler = Scaler::fit(&stacked);
        let seq_model = trainer.fit(&seq_scaler.transform(&stacked), &y).unwrap();
        let q = probes(&mut rng, 5);
        for row in q.iter_rows() {
            let a = model.decision(&scaler.transform_vec(row));
            let b = s_model.decision(&s_scaler.transform_vec(row));
            let c = seq_model.decision(&seq_scaler.transform_vec(row));
            assert!((a - b).abs() < 1e-9, "A-form {a} vs S-form {b}");
            assert!((a - c).abs() < 1e-9, "A-form {a} vs sequential {c}");
        }
    }

    #[test]
    fn tail_slide_matches_full_refit() {
        let mut rng = StdRng::seed_from_u64(43);
        let neg = random_matrix(&mut rng, 24, 5, 0.0);
        let trainer = KernelRidge::new(0.8);
        let ws = trainer.shared_workspace(neg.clone()).unwrap();
        let mut pos = random_matrix(&mut rng, 12, 5, 0.7);
        let mut cache = KrrFitCache::new();
        let mut tail = None;
        trainer
            .fit_scaled_shared_tail(&mut cache, &ws, &pos, &mut tail)
            .unwrap();
        // A few consecutive slides, each within budget, each checked
        // against a from-scratch refit of the same tail.
        for step in 0..4 {
            pos = slide_rows(&mut rng, &pos, 2, 2);
            assert_eq!(
                slide_alignment(&tail.as_ref().unwrap().positives, &pos),
                Some((2, 2))
            );
            let (scaler, model) = trainer
                .fit_scaled_shared_tail(&mut cache, &ws, &pos, &mut tail)
                .unwrap();
            let mut fresh_tail = None;
            let (f_scaler, f_model) = trainer
                .fit_scaled_shared_tail(&mut KrrFitCache::new(), &ws, &pos, &mut fresh_tail)
                .unwrap();
            // The slid factor is not bit-identical to the fresh one, but
            // decisions must agree to rank-1-accumulation accuracy.
            let q = probes(&mut rng, 5);
            for row in q.iter_rows() {
                let a = model.decision(&scaler.transform_vec(row));
                let b = f_model.decision(&f_scaler.transform_vec(row));
                assert!((a - b).abs() < 1e-8, "step {step}: slide {a} vs refit {b}");
            }
        }
        // Every fit above was served off the shared block.
        assert_eq!((cache.hits(), cache.misses()), (5, 0));
        // An unalignable tail (all rows replaced) re-bases instead of sliding.
        let fresh = random_matrix(&mut rng, pos.rows(), 5, 0.7);
        assert_eq!(
            slide_alignment(&tail.as_ref().unwrap().positives, &fresh),
            None
        );
        trainer
            .fit_scaled_shared_tail(&mut cache, &ws, &fresh, &mut tail)
            .unwrap();
        assert_eq!(
            tail.as_ref().unwrap().positives,
            fresh,
            "re-based tail pins the new rows"
        );
    }

    #[test]
    fn tail_slide_handles_growing_buffer() {
        // Warm-up regime: the tail grows (adds only, nothing removed).
        let mut rng = StdRng::seed_from_u64(47);
        let neg = random_matrix(&mut rng, 20, 4, 0.0);
        let trainer = KernelRidge::new(1.0);
        let ws = trainer.shared_workspace(neg.clone()).unwrap();
        let mut pos = random_matrix(&mut rng, 10, 4, 0.6);
        let mut cache = KrrFitCache::new();
        let mut tail = None;
        trainer
            .fit_scaled_shared_tail(&mut cache, &ws, &pos, &mut tail)
            .unwrap();
        pos = slide_rows(&mut rng, &pos, 0, 3);
        assert_eq!(
            slide_alignment(&tail.as_ref().unwrap().positives, &pos),
            Some((0, 3))
        );
        let (scaler, model) = trainer
            .fit_scaled_shared_tail(&mut cache, &ws, &pos, &mut tail)
            .unwrap();
        let (f_scaler, f_model) = trainer
            .fit_scaled_shared_tail(&mut KrrFitCache::new(), &ws, &pos, &mut None)
            .unwrap();
        let q = probes(&mut rng, 4);
        for row in q.iter_rows() {
            let a = model.decision(&scaler.transform_vec(row));
            let b = f_model.decision(&f_scaler.transform_vec(row));
            assert!((a - b).abs() < 1e-8, "grow-slide {a} vs refit {b}");
        }
    }

    #[test]
    fn over_budget_slide_takes_the_full_refit() {
        let mut rng = StdRng::seed_from_u64(53);
        let neg = random_matrix(&mut rng, 24, 5, 0.0);
        let trainer = KernelRidge::new(0.8);
        let ws = trainer.shared_workspace(neg).unwrap();
        let pos = random_matrix(&mut rng, 12, 5, 0.7);
        let mut tail = None;
        trainer
            .fit_scaled_shared_tail(&mut KrrFitCache::new(), &ws, &pos, &mut tail)
            .unwrap();
        // 4 removed + 4 added = 8 ops > budget max(4, 12/2) = 6.
        let next = slide_rows(&mut rng, &pos, 4, 4);
        assert!(slide_alignment(&pos, &next).is_some());
        assert!(4 + 4 > slide_budget(pos.rows()));
        let (scaler, model) = trainer
            .fit_scaled_shared_tail(&mut KrrFitCache::new(), &ws, &next, &mut tail)
            .unwrap();
        // Over budget means the result must be bit-identical to a
        // from-scratch refit (no rank-1 drift).
        let (f_scaler, f_model) = trainer
            .fit_scaled_shared_tail(&mut KrrFitCache::new(), &ws, &next, &mut None)
            .unwrap();
        assert_eq!(scaler, f_scaler);
        assert_eq!(model, f_model);
    }

    #[test]
    fn near_singular_slide_falls_back_without_corruption() {
        // Satellite regression: a slide whose downdate goes non-PD must
        // (a) leave the cached factor byte-identical — the ops run on a
        // clone — and (b) make the entry point fall back to a full refit
        // whose result is bit-identical to a tail-less fit.
        let mut rng = StdRng::seed_from_u64(59);
        let neg = random_matrix(&mut rng, 24, 5, 0.0);
        let trainer = KernelRidge::new(0.8);
        let ws = trainer.shared_workspace(neg).unwrap();
        let pos = random_matrix(&mut rng, 12, 5, 0.7);
        let mut tail = None;
        trainer
            .fit_scaled_shared_tail(&mut KrrFitCache::new(), &ws, &pos, &mut tail)
            .unwrap();
        // Tamper the recorded tail so the front row claims far more mass
        // than the factor actually contains: downdating it drives the
        // system negative definite, the numerical shape of a
        // near-singular slide.
        let prev = tail.as_mut().unwrap();
        for j in 0..5 {
            prev.positives[(0, j)] *= 1e4;
        }
        let next = slide_rows(&mut rng, &prev.positives, 1, 1);
        assert_eq!(slide_alignment(&prev.positives, &next), Some((1, 1)));
        let factor_before = prev.factor.clone();
        // The slide itself must fail without touching the cached factor.
        let m = next.cols();
        let n = (next.rows() + ws.neg.rows()) as f64;
        let mut pos_col_sum = vec![0.0; m];
        for row in next.iter_rows() {
            for (s, &v) in pos_col_sum.iter_mut().zip(row) {
                *s += v;
            }
        }
        let means: Vec<f64> = pos_col_sum
            .iter()
            .zip(&ws.neg_col_sum)
            .map(|(&p, &ng)| (p + ng) / n)
            .collect();
        let y_mean = (next.rows() as f64 - ws.neg.rows() as f64) / n;
        let gram = ws.neg_gram_cols.as_ref().unwrap();
        let slide = trainer.slide_tail(&ws, gram, prev, &next, 1, &pos_col_sum, &means, y_mean);
        assert!(slide.is_err(), "tampered downdate must fail");
        for i in 0..5 {
            for j in 0..=i {
                assert_eq!(
                    prev.factor.l()[(i, j)].to_bits(),
                    factor_before.l()[(i, j)].to_bits(),
                    "cached factor must be byte-identical after a failed slide"
                );
            }
        }
        // The public entry point absorbs the failure: full refit,
        // bit-identical to a tail-less fit, tail re-based.
        let mut cache = KrrFitCache::new();
        let (scaler, model) = trainer
            .fit_scaled_shared_tail(&mut cache, &ws, &next, &mut tail)
            .unwrap();
        let (f_scaler, f_model) = trainer
            .fit_scaled_shared_tail(&mut KrrFitCache::new(), &ws, &next, &mut None)
            .unwrap();
        assert_eq!(scaler, f_scaler);
        assert_eq!(model, f_model);
        assert_eq!(tail.as_ref().unwrap().positives, next);
        // A recovered fallback still came off the shared block: no miss.
        assert_eq!((cache.shared_hits(), cache.misses()), (1, 0));
    }

    #[test]
    fn tail_fallback_clears_state_and_counts_miss() {
        let mut rng = StdRng::seed_from_u64(61);
        let neg = random_matrix(&mut rng, 16, 4, 0.0);
        let trainer = KernelRidge::new(0.5).with_kernel(Kernel::Rbf { gamma: 0.7 });
        let ws = trainer.shared_workspace(neg.clone()).unwrap();
        let pos = random_matrix(&mut rng, 6, 4, 0.9);
        let mut cache = KrrFitCache::new();
        let mut tail = None;
        let (scaler, model) = trainer
            .fit_scaled_shared_tail(&mut cache, &ws, &pos, &mut tail)
            .unwrap();
        assert!(tail.is_none(), "non-primal fallback cannot seed a tail");
        assert_eq!(
            (cache.shared_hits(), cache.keyed_hits(), cache.misses()),
            (0, 0, 1)
        );
        let (stacked, y) = stack(&pos, &neg).unwrap();
        let seq_scaler = Scaler::fit(&stacked);
        let seq_model = trainer.fit(&seq_scaler.transform(&stacked), &y).unwrap();
        assert_eq!(scaler, seq_scaler);
        assert_eq!(model, seq_model, "fallback is exactly the sequential fit");
    }

    #[test]
    fn tail_state_serde_roundtrips_bit_exactly() {
        let mut rng = StdRng::seed_from_u64(67);
        let neg = random_matrix(&mut rng, 20, 4, 0.0);
        let trainer = KernelRidge::new(1.0);
        let ws = trainer.shared_workspace(neg).unwrap();
        let pos = random_matrix(&mut rng, 10, 4, 0.6);
        let mut tail = None;
        trainer
            .fit_scaled_shared_tail(&mut KrrFitCache::new(), &ws, &pos, &mut tail)
            .unwrap();
        let state = tail.unwrap();
        let json = serde_json::to_string(&state).unwrap();
        let back: KrrTailState = serde_json::from_str(&json).unwrap();
        assert_eq!(back, state);
        // PartialEq on f64 would accept -0.0 == 0.0; the slide contract
        // needs the factor bit-exact across evict/restore.
        for i in 0..state.factor.dim() {
            for j in 0..=i {
                assert_eq!(
                    back.factor.l()[(i, j)].to_bits(),
                    state.factor.l()[(i, j)].to_bits()
                );
            }
        }
    }

    #[test]
    fn trainer_mismatch_is_rejected() {
        let mut rng = StdRng::seed_from_u64(19);
        let neg = random_matrix(&mut rng, 8, 3, 0.0);
        let ws = KernelRidge::new(0.5).shared_workspace(neg).unwrap();
        let pos = random_matrix(&mut rng, 4, 3, 0.5);
        assert!(matches!(
            KernelRidge::new(0.7).fit_shared(&ws, &pos),
            Err(MlError::InvalidParameter(_))
        ));
    }

    #[test]
    fn degenerate_inputs_are_rejected() {
        let mut rng = StdRng::seed_from_u64(23);
        let trainer = KernelRidge::new(0.5);
        assert!(trainer.shared_workspace(Matrix::zeros(0, 3)).is_err());
        let ws = trainer
            .shared_workspace(random_matrix(&mut rng, 6, 3, 0.0))
            .unwrap();
        assert!(trainer.fit_shared(&ws, &Matrix::zeros(0, 3)).is_err());
        assert!(trainer
            .fit_shared(&ws, &random_matrix(&mut rng, 2, 4, 0.0))
            .is_err());
    }
}
