use serde::{Deserialize, Serialize};

use smarteryou_linalg::{vector, Matrix};

use crate::error::validate_binary;
use crate::{BinaryClassifier, BinaryTrainer, Kernel, MlError};

/// Which of the two mathematically equivalent KRR solutions to compute.
///
/// The paper's appendix proves Eq. 6 (dual) ≡ Eq. 7 (primal); §V-H1 builds
/// on that to reduce training complexity from `O(N^2.373)` to `O(M^2.373)`
/// (N = training samples ≈ 720, M = features = 28). Both paths are kept so
/// the claim is testable and benchmarkable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum KrrSolver {
    /// Solve the M×M system `[S + ρI_J]⁻¹ Φy` (Eq. 7). Identity kernel only.
    Primal,
    /// Solve the N×N system `Φ[K + ρI_N]⁻¹ y` (Eq. 6). Any kernel.
    Dual,
    /// Primal when the kernel is linear and M < N, dual otherwise.
    #[default]
    Auto,
}

/// Kernel ridge regression trainer — the paper's authentication classifier
/// (§V-F2).
///
/// Fits `w* = argmin_w ρ‖w‖² + Σ (wᵀxₖ − yₖ)²` (Eq. 5) on ±1 labels.
/// Features and labels are centred internally, which provides the intercept.
///
/// # Example
///
/// ```
/// use smarteryou_linalg::Matrix;
/// use smarteryou_ml::{BinaryClassifier, KernelRidge, KrrSolver};
///
/// # fn main() -> Result<(), smarteryou_ml::MlError> {
/// let x = Matrix::from_rows(&[&[0.0, 1.0], &[0.2, 0.8], &[1.0, 0.0], &[0.9, 0.1]]).unwrap();
/// let y = [1.0, 1.0, -1.0, -1.0];
/// let primal = KernelRidge::new(0.5).with_solver(KrrSolver::Primal).fit(&x, &y)?;
/// let dual = KernelRidge::new(0.5).with_solver(KrrSolver::Dual).fit(&x, &y)?;
/// // Appendix equivalence: both forms give the same classifier.
/// let q = [0.3, 0.7];
/// assert!((primal.decision(&q) - dual.decision(&q)).abs() < 1e-8);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KernelRidge {
    rho: f64,
    kernel: Kernel,
    solver: KrrSolver,
}

impl KernelRidge {
    /// Creates a trainer with ridge parameter `rho > 0`, linear (identity)
    /// kernel and automatic solver choice.
    ///
    /// # Panics
    ///
    /// Panics if `rho` is not strictly positive and finite.
    pub fn new(rho: f64) -> Self {
        assert!(rho.is_finite() && rho > 0.0, "rho must be positive, got {rho}");
        KernelRidge {
            rho,
            kernel: Kernel::Linear,
            solver: KrrSolver::Auto,
        }
    }

    /// Selects the kernel (non-linear kernels force the dual solver).
    pub fn with_kernel(mut self, kernel: Kernel) -> Self {
        self.kernel = kernel;
        self
    }

    /// Forces a particular solver.
    pub fn with_solver(mut self, solver: KrrSolver) -> Self {
        self.solver = solver;
        self
    }

    /// Ridge parameter ρ.
    pub fn rho(&self) -> f64 {
        self.rho
    }

    /// Trains on rows of `x` with ±1 labels.
    ///
    /// # Errors
    ///
    /// * [`MlError::InvalidTrainingData`] for malformed inputs;
    /// * [`MlError::InvalidParameter`] if [`KrrSolver::Primal`] is requested
    ///   with a non-linear kernel;
    /// * [`MlError::Linalg`] if the ridge system cannot be solved.
    pub fn fit(&self, x: &Matrix, y: &[f64]) -> Result<KrrModel, MlError> {
        validate_binary(x, y)?;
        let n = x.rows();
        let m = x.cols();

        // Centre features and labels; the label mean acts as the intercept.
        let x_mean: Vec<f64> = (0..m)
            .map(|c| x.col(c).iter().sum::<f64>() / n as f64)
            .collect();
        let y_mean = y.iter().sum::<f64>() / n as f64;
        let mut xc = x.clone();
        for r in 0..n {
            let row = xc.row_mut(r);
            for (v, mu) in row.iter_mut().zip(&x_mean) {
                *v -= mu;
            }
        }
        let yc: Vec<f64> = y.iter().map(|&l| l - y_mean).collect();

        let solver = match (self.solver, self.kernel) {
            (KrrSolver::Primal, Kernel::Linear) => KrrSolver::Primal,
            (KrrSolver::Primal, _) => {
                return Err(MlError::InvalidParameter(
                    "primal KRR solver requires the linear (identity) kernel".into(),
                ))
            }
            (KrrSolver::Dual, _) => KrrSolver::Dual,
            (KrrSolver::Auto, Kernel::Linear) if m < n => KrrSolver::Primal,
            (KrrSolver::Auto, _) => KrrSolver::Dual,
        };

        let kind = match solver {
            KrrSolver::Primal | KrrSolver::Auto => {
                // Eq. 7: w* = [S + ρ I_M]⁻¹ X y with S = Σ xₖxₖᵀ (M×M).
                let mut s = xc.gram_columns();
                s.add_diagonal(self.rho);
                let xty = xc.transpose().matvec(&yc)?;
                let w = s.cholesky()?.solve(&xty)?;
                KrrKind::Linear { w }
            }
            KrrSolver::Dual => {
                // Eq. 6: α = [K + ρ I_N]⁻¹ y; for the linear kernel collapse
                // to explicit weights w = Xᵀα so prediction cost matches.
                let mut k = self.kernel.gram(&xc);
                k.add_diagonal(self.rho);
                let alphas = k.cholesky()?.solve(&yc)?;
                match self.kernel {
                    Kernel::Linear => {
                        let w = xc.transpose().matvec(&alphas)?;
                        KrrKind::Linear { w }
                    }
                    kernel => KrrKind::Kernelized {
                        kernel,
                        train: xc,
                        alphas,
                    },
                }
            }
        };

        Ok(KrrModel {
            kind,
            x_mean,
            y_mean,
            rho: self.rho,
        })
    }
}

impl BinaryTrainer for KernelRidge {
    type Model = KrrModel;

    fn fit(&self, x: &Matrix, y: &[f64]) -> Result<KrrModel, MlError> {
        KernelRidge::fit(self, x, y)
    }
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
enum KrrKind {
    Linear {
        w: Vec<f64>,
    },
    Kernelized {
        kernel: Kernel,
        train: Matrix,
        alphas: Vec<f64>,
    },
}

/// A trained KRR classifier.
///
/// For the linear kernel the model is an explicit weight vector `w*`; the
/// paper's confidence score `CS(k) = xₖᵀ w*` (§V-I) is [`KrrModel::decision`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KrrModel {
    kind: KrrKind,
    x_mean: Vec<f64>,
    y_mean: f64,
    rho: f64,
}

impl KrrModel {
    /// Explicit weight vector for linear-kernel models, `None` for
    /// kernelized ones.
    pub fn weights(&self) -> Option<&[f64]> {
        match &self.kind {
            KrrKind::Linear { w } => Some(w),
            KrrKind::Kernelized { .. } => None,
        }
    }

    /// Ridge parameter the model was trained with.
    pub fn rho(&self) -> f64 {
        self.rho
    }
}

impl BinaryClassifier for KrrModel {
    fn decision(&self, x: &[f64]) -> f64 {
        let xc: Vec<f64> = x
            .iter()
            .zip(&self.x_mean)
            .map(|(&v, &mu)| v - mu)
            .collect();
        match &self.kind {
            KrrKind::Linear { w } => vector::dot(w, &xc) + self.y_mean,
            KrrKind::Kernelized {
                kernel,
                train,
                alphas,
            } => {
                let k = kernel.against(train, &xc);
                vector::dot(&k, alphas) + self.y_mean
            }
        }
    }

    fn num_features(&self) -> usize {
        self.x_mean.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> (Matrix, Vec<f64>) {
        let x = Matrix::from_rows(&[
            &[0.0, 1.0],
            &[0.2, 0.9],
            &[-0.1, 1.1],
            &[1.0, 0.0],
            &[0.9, -0.1],
            &[1.1, 0.2],
        ])
        .unwrap();
        let y = vec![1.0, 1.0, 1.0, -1.0, -1.0, -1.0];
        (x, y)
    }

    #[test]
    fn separates_toy_clusters() {
        let (x, y) = toy();
        let model = KernelRidge::new(0.1).fit(&x, &y).unwrap();
        assert!(model.decision(&[0.0, 1.0]) > 0.0);
        assert!(model.decision(&[1.0, 0.0]) < 0.0);
        assert!(model.predict(&[0.1, 0.95]));
        assert!(!model.predict(&[1.05, 0.0]));
    }

    #[test]
    fn primal_and_dual_weights_agree() {
        let (x, y) = toy();
        let p = KernelRidge::new(0.7)
            .with_solver(KrrSolver::Primal)
            .fit(&x, &y)
            .unwrap();
        let d = KernelRidge::new(0.7)
            .with_solver(KrrSolver::Dual)
            .fit(&x, &y)
            .unwrap();
        let wp = p.weights().unwrap();
        let wd = d.weights().unwrap();
        for (a, b) in wp.iter().zip(wd) {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
    }

    #[test]
    fn primal_rejects_nonlinear_kernel() {
        let (x, y) = toy();
        let err = KernelRidge::new(0.5)
            .with_kernel(Kernel::Rbf { gamma: 1.0 })
            .with_solver(KrrSolver::Primal)
            .fit(&x, &y)
            .unwrap_err();
        assert!(matches!(err, MlError::InvalidParameter(_)));
    }

    #[test]
    fn rbf_kernel_solves_xor() {
        // XOR is not linearly separable; RBF-KRR handles it.
        let x = Matrix::from_rows(&[
            &[0.0, 0.0],
            &[1.0, 1.0],
            &[0.0, 1.0],
            &[1.0, 0.0],
        ])
        .unwrap();
        let y = vec![1.0, 1.0, -1.0, -1.0];
        let model = KernelRidge::new(0.01)
            .with_kernel(Kernel::Rbf { gamma: 3.0 })
            .fit(&x, &y)
            .unwrap();
        assert!(model.decision(&[0.05, 0.05]) > 0.0);
        assert!(model.decision(&[0.95, 0.95]) > 0.0);
        assert!(model.decision(&[0.05, 0.95]) < 0.0);
        assert!(model.decision(&[0.95, 0.05]) < 0.0);
        assert!(model.weights().is_none());
    }

    #[test]
    fn larger_rho_shrinks_weights() {
        let (x, y) = toy();
        let small = KernelRidge::new(0.01).fit(&x, &y).unwrap();
        let large = KernelRidge::new(100.0).fit(&x, &y).unwrap();
        let norm_small = vector::norm(small.weights().unwrap());
        let norm_large = vector::norm(large.weights().unwrap());
        assert!(norm_large < norm_small);
    }

    #[test]
    fn rejects_single_class() {
        let x = Matrix::from_rows(&[&[1.0], &[2.0]]).unwrap();
        assert!(KernelRidge::new(1.0).fit(&x, &[1.0, 1.0]).is_err());
    }

    #[test]
    fn imbalanced_labels_keep_intercept_sane() {
        // 1 positive vs 5 negatives: centring keeps the positive sample on
        // the positive side of its own decision.
        let x = Matrix::from_rows(&[
            &[5.0, 5.0],
            &[0.0, 0.1],
            &[0.1, 0.0],
            &[-0.1, 0.1],
            &[0.0, -0.1],
            &[0.1, 0.1],
        ])
        .unwrap();
        let y = vec![1.0, -1.0, -1.0, -1.0, -1.0, -1.0];
        let model = KernelRidge::new(0.1).fit(&x, &y).unwrap();
        assert!(model.decision(&[5.0, 5.0]) > 0.0);
        assert!(model.decision(&[0.0, 0.0]) < 0.0);
    }

    #[test]
    fn model_serde_roundtrip() {
        let (x, y) = toy();
        let model = KernelRidge::new(0.5).fit(&x, &y).unwrap();
        let json = serde_json::to_string(&model).unwrap();
        let back: KrrModel = serde_json::from_str(&json).unwrap();
        let q = [0.4, 0.6];
        assert!((model.decision(&q) - back.decision(&q)).abs() < 1e-15);
    }
}
