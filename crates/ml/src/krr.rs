use std::sync::atomic::{AtomicBool, Ordering};

use serde::{Deserialize, Serialize};

use smarteryou_linalg::{vector, Cholesky, Matrix};

use crate::error::validate_binary;
use crate::{BinaryClassifier, BinaryTrainer, Kernel, MlError};

/// Process-wide default for [`KernelRidge::with_fast_gram`], consulted by
/// [`KernelRidge::new`]. Runtime-only — never serialized, so snapshots and
/// parity suites are untouched. Off by default; benchmark binaries opt in
/// at startup (the same pattern as the DSP crate's fallback counter:
/// process-global observability/tuning state kept out of the data model).
static FAST_GRAM_DEFAULT: AtomicBool = AtomicBool::new(false);

/// Sets the process-wide default for the blocked-Gram fast path. Affects
/// only trainers constructed *after* the call; existing trainers keep the
/// setting they were built with. Benchmarks call this once at startup;
/// tests and production snapshots leave it off so the reference path stays
/// bit-identical to the seed.
pub fn set_fast_gram_default(on: bool) {
    FAST_GRAM_DEFAULT.store(on, Ordering::Relaxed);
}

/// Current process-wide default for the blocked-Gram fast path.
pub fn fast_gram_default() -> bool {
    FAST_GRAM_DEFAULT.load(Ordering::Relaxed)
}

/// Which of the two mathematically equivalent KRR solutions to compute.
///
/// The paper's appendix proves Eq. 6 (dual) ≡ Eq. 7 (primal); §V-H1 builds
/// on that to reduce training complexity from `O(N^2.373)` to `O(M^2.373)`
/// (N = training samples ≈ 720, M = features = 28). Both paths are kept so
/// the claim is testable and benchmarkable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum KrrSolver {
    /// Solve the M×M system `[S + ρI_J]⁻¹ Φy` (Eq. 7). Identity kernel only.
    Primal,
    /// Solve the N×N system `Φ[K + ρI_N]⁻¹ y` (Eq. 6). Any kernel.
    Dual,
    /// Primal when the kernel is linear and M < N, dual otherwise.
    #[default]
    Auto,
}

/// Kernel ridge regression trainer — the paper's authentication classifier
/// (§V-F2).
///
/// Fits `w* = argmin_w ρ‖w‖² + Σ (wᵀxₖ − yₖ)²` (Eq. 5) on ±1 labels.
/// Features and labels are centred internally, which provides the intercept.
///
/// # Example
///
/// ```
/// use smarteryou_linalg::Matrix;
/// use smarteryou_ml::{BinaryClassifier, KernelRidge, KrrSolver};
///
/// # fn main() -> Result<(), smarteryou_ml::MlError> {
/// let x = Matrix::from_rows(&[&[0.0, 1.0], &[0.2, 0.8], &[1.0, 0.0], &[0.9, 0.1]]).unwrap();
/// let y = [1.0, 1.0, -1.0, -1.0];
/// let primal = KernelRidge::new(0.5).with_solver(KrrSolver::Primal).fit(&x, &y)?;
/// let dual = KernelRidge::new(0.5).with_solver(KrrSolver::Dual).fit(&x, &y)?;
/// // Appendix equivalence: both forms give the same classifier.
/// let q = [0.3, 0.7];
/// assert!((primal.decision(&q) - dual.decision(&q)).abs() < 1e-8);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct KernelRidge {
    pub(crate) rho: f64,
    pub(crate) kernel: Kernel,
    pub(crate) solver: KrrSolver,
    /// Whether Gram construction uses the cache-blocked 4-lane fast path
    /// ([`Kernel::gram_blocked`]) instead of the scalar reference. A
    /// performance knob, not part of the mathematical configuration —
    /// excluded from equality so workspaces built either way stay
    /// interchangeable with their trainer. Default off; benches opt in.
    pub(crate) fast_gram: bool,
}

/// Equality is over the *mathematical* configuration (ρ, kernel, solver);
/// the `fast_gram` performance knob is deliberately excluded so shared
/// workspaces and fit-cache keys never split on how a Gram was computed.
impl PartialEq for KernelRidge {
    fn eq(&self, other: &Self) -> bool {
        self.rho == other.rho && self.kernel == other.kernel && self.solver == other.solver
    }
}

impl KernelRidge {
    /// Creates a trainer with ridge parameter `rho > 0`, linear (identity)
    /// kernel and automatic solver choice.
    ///
    /// # Panics
    ///
    /// Panics if `rho` is not strictly positive and finite.
    pub fn new(rho: f64) -> Self {
        assert!(
            rho.is_finite() && rho > 0.0,
            "rho must be positive, got {rho}"
        );
        KernelRidge {
            rho,
            kernel: Kernel::Linear,
            solver: KrrSolver::Auto,
            fast_gram: fast_gram_default(),
        }
    }

    /// Selects the kernel (non-linear kernels force the dual solver).
    pub fn with_kernel(mut self, kernel: Kernel) -> Self {
        self.kernel = kernel;
        self
    }

    /// Enables (or disables) the cache-blocked 4-lane Gram fast path for
    /// dual fits and shared-workspace construction. Fitted models differ
    /// from the reference by a few ulps (see [`Kernel::gram_blocked`]);
    /// the reference stays the default so parity suites and snapshots are
    /// untouched. Excluded from [`PartialEq`].
    pub fn with_fast_gram(mut self, on: bool) -> Self {
        self.fast_gram = on;
        self
    }

    /// Whether the blocked Gram fast path is enabled.
    pub fn fast_gram(&self) -> bool {
        self.fast_gram
    }

    /// Forces a particular solver.
    pub fn with_solver(mut self, solver: KrrSolver) -> Self {
        self.solver = solver;
        self
    }

    /// Ridge parameter ρ.
    pub fn rho(&self) -> f64 {
        self.rho
    }

    /// Trains on rows of `x` with ±1 labels.
    ///
    /// # Errors
    ///
    /// * [`MlError::InvalidTrainingData`] for malformed inputs;
    /// * [`MlError::InvalidParameter`] if [`KrrSolver::Primal`] is requested
    ///   with a non-linear kernel;
    /// * [`MlError::Linalg`] if the ridge system cannot be solved.
    pub fn fit(&self, x: &Matrix, y: &[f64]) -> Result<KrrModel, MlError> {
        self.fit_impl(x, y, None)
    }

    /// [`KernelRidge::fit`] with a reusable [`KrrFitCache`].
    ///
    /// The expensive part of a KRR fit is factoring the regularised system
    /// (`S + ρI_M` or `K + ρI_N`), which depends only on the design matrix,
    /// the kernel and ρ — *not* on the labels. When the cache already holds
    /// a factorisation for an identical `(x, kernel, ρ, solver)` tuple the
    /// factorisation is reused and only the two triangular solves run,
    /// turning a label-only refit from `O(dim³)` into `O(dim²)`. Results
    /// are bit-identical to an uncached [`KernelRidge::fit`].
    ///
    /// # Errors
    ///
    /// Same as [`KernelRidge::fit`].
    pub fn fit_with_cache(
        &self,
        cache: &mut KrrFitCache,
        x: &Matrix,
        y: &[f64],
    ) -> Result<KrrModel, MlError> {
        self.fit_impl(x, y, Some(cache))
    }

    /// Trains one model per label vector against a shared design matrix,
    /// factoring the ridge system once. Useful for refitting a family of
    /// one-vs-rest models over the same pooled features.
    ///
    /// # Errors
    ///
    /// Same as [`KernelRidge::fit`], for each label vector.
    pub fn fit_many(&self, x: &Matrix, ys: &[&[f64]]) -> Result<Vec<KrrModel>, MlError> {
        let mut cache = KrrFitCache::new();
        ys.iter()
            .map(|y| self.fit_with_cache(&mut cache, x, y))
            .collect()
    }

    /// Returns the configured kernel.
    pub fn kernel(&self) -> Kernel {
        self.kernel
    }

    /// Resolves the effective solver for this configuration on `n`×`m` data.
    pub(crate) fn resolve_solver(&self, n: usize, m: usize) -> Result<KrrSolver, MlError> {
        Ok(match (self.solver, self.kernel) {
            (KrrSolver::Primal, Kernel::Linear) => KrrSolver::Primal,
            (KrrSolver::Primal, _) => {
                return Err(MlError::InvalidParameter(
                    "primal KRR solver requires the linear (identity) kernel".into(),
                ))
            }
            (KrrSolver::Dual, _) => KrrSolver::Dual,
            (KrrSolver::Auto, Kernel::Linear) if m < n => KrrSolver::Primal,
            (KrrSolver::Auto, _) => KrrSolver::Dual,
        })
    }

    fn fit_impl(
        &self,
        x: &Matrix,
        y: &[f64],
        cache: Option<&mut KrrFitCache>,
    ) -> Result<KrrModel, MlError> {
        validate_binary(x, y)?;
        let n = x.rows();
        let m = x.cols();
        let solver = self.resolve_solver(n, m)?;
        let y_mean = y.iter().sum::<f64>() / n as f64;
        let yc: Vec<f64> = y.iter().map(|&l| l - y_mean).collect();

        // The label-independent prefix (centring + gram + Cholesky) either
        // comes from the cache or is computed and optionally stored there.
        let factored: std::borrow::Cow<'_, KrrFactorization> = match cache {
            Some(cache) => {
                let hit = cache.key.as_ref().is_some_and(|key| {
                    key.rho_bits == self.rho.to_bits()
                        && key.kernel == self.kernel
                        && key.solver == solver
                        && key.fast_gram == self.fast_gram
                        && key.x == *x
                });
                if hit {
                    cache.keyed_hits += 1;
                } else {
                    cache.factored = Some(KrrFactorization::compute(self, solver, x)?);
                    cache.key = Some(KrrFitKey::new(self, solver, x));
                    cache.misses += 1;
                }
                std::borrow::Cow::Borrowed(cache.factored.as_ref().expect("filled above"))
            }
            None => std::borrow::Cow::Owned(KrrFactorization::compute(self, solver, x)?),
        };

        let kind = match solver {
            KrrSolver::Primal | KrrSolver::Auto => {
                // Eq. 7: w* = [S + ρ I_M]⁻¹ X y with S = Σ xₖxₖᵀ (M×M).
                let mut w = factored.xc.transpose().matvec(&yc)?;
                factored.chol.solve_into(&mut w)?;
                KrrKind::Linear { w }
            }
            KrrSolver::Dual => {
                // Eq. 6: α = [K + ρ I_N]⁻¹ y; for the linear kernel collapse
                // to explicit weights w = Xᵀα so prediction cost matches.
                let mut alphas = yc.clone();
                factored.chol.solve_into(&mut alphas)?;
                match self.kernel {
                    Kernel::Linear => {
                        let w = factored.xc.transpose().matvec(&alphas)?;
                        KrrKind::Linear { w }
                    }
                    kernel => KrrKind::Kernelized {
                        kernel,
                        train: factored.xc.clone(),
                        alphas,
                    },
                }
            }
        };

        Ok(KrrModel {
            kind,
            x_mean: factored.x_mean.clone(),
            y_mean,
            rho: self.rho,
        })
    }
}

/// The label-independent part of a KRR fit: centred features plus the
/// Cholesky factor of the regularised system.
#[derive(Debug, Clone)]
pub(crate) struct KrrFactorization {
    x_mean: Vec<f64>,
    xc: Matrix,
    chol: Cholesky,
}

impl KrrFactorization {
    fn compute(trainer: &KernelRidge, solver: KrrSolver, x: &Matrix) -> Result<Self, MlError> {
        let n = x.rows();
        let m = x.cols();
        // Centre features; the label mean (applied later) is the intercept.
        let x_mean: Vec<f64> = (0..m)
            .map(|c| x.col(c).iter().sum::<f64>() / n as f64)
            .collect();
        let mut xc = x.clone();
        for r in 0..n {
            let row = xc.row_mut(r);
            for (v, mu) in row.iter_mut().zip(&x_mean) {
                *v -= mu;
            }
        }
        let chol = match solver {
            KrrSolver::Primal | KrrSolver::Auto => {
                let mut s = xc.gram_columns();
                s.add_diagonal(trainer.rho);
                s.cholesky()?
            }
            KrrSolver::Dual => {
                let mut k = if trainer.fast_gram {
                    trainer.kernel.gram_blocked(&xc)
                } else {
                    trainer.kernel.gram(&xc)
                };
                k.add_diagonal(trainer.rho);
                k.cholesky()?
            }
        };
        Ok(KrrFactorization { x_mean, xc, chol })
    }
}

/// Cache key: the exact training configuration plus the full design
/// matrix. The matrix is compared element for element on lookup — the
/// O(n·m) check costs the same pass a fingerprint hash would, but makes
/// cache validity exact rather than probabilistic, which an
/// authentication model cache must be.
#[derive(Debug, Clone, PartialEq)]
struct KrrFitKey {
    rho_bits: u64,
    kernel: Kernel,
    solver: KrrSolver,
    /// Unlike trainer equality, the key *does* record which Gram path
    /// built the factorisation: cached reuse promises bit-identical
    /// results, and the fast and reference paths differ by ulps.
    fast_gram: bool,
    x: Matrix,
}

impl KrrFitKey {
    fn new(trainer: &KernelRidge, solver: KrrSolver, x: &Matrix) -> Self {
        KrrFitKey {
            rho_bits: trainer.rho.to_bits(),
            kernel: trainer.kernel,
            solver,
            fast_gram: trainer.fast_gram,
            x: x.clone(),
        }
    }
}

/// Reusable state for [`KernelRidge::fit_with_cache`]: remembers the last
/// design matrix's centring and Cholesky factorisation so label-only refits
/// skip the cubic factorisation step.
///
/// Accounting distinguishes *how* the cubic factorisation was avoided:
/// [`KrrFitCache::keyed_hits`] counts exact key matches in
/// [`KernelRidge::fit_with_cache`], [`KrrFitCache::shared_hits`] counts
/// fits served off a shared enrollment/retrain workspace block, and
/// [`KrrFitCache::misses`] counts fits that paid a full factorisation —
/// whether from a key mismatch or from a shared-workspace fallback. The
/// split exists so a "zero misses under the production config" guard
/// cannot be masked by fallback fits that used to be folded into one
/// merged hit counter.
#[derive(Debug, Clone, Default)]
pub struct KrrFitCache {
    key: Option<KrrFitKey>,
    factored: Option<KrrFactorization>,
    shared_hits: u64,
    keyed_hits: u64,
    misses: u64,
}

impl KrrFitCache {
    /// An empty cache.
    pub fn new() -> Self {
        KrrFitCache::default()
    }

    /// Number of fits that avoided a full factorisation, from either
    /// source: `shared_hits() + keyed_hits()`.
    pub fn hits(&self) -> u64 {
        self.shared_hits + self.keyed_hits
    }

    /// Number of fits served off a shared workspace's precomputed block.
    pub fn shared_hits(&self) -> u64 {
        self.shared_hits
    }

    /// Number of fits that reused the keyed factorisation via an exact
    /// `(x, kernel, ρ, solver)` match.
    pub fn keyed_hits(&self) -> u64 {
        self.keyed_hits
    }

    /// Number of fits that paid a full factorisation (keyed-cache miss or
    /// shared-workspace fallback).
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Drops the cached factorisation (e.g. to bound memory).
    pub fn clear(&mut self) {
        self.key = None;
        self.factored = None;
    }

    /// Records a fit served off a shared enrollment workspace: the
    /// label-independent prefix (negative Gram block / factor) was reused
    /// rather than recomputed, which is the same economy a key match in
    /// [`KernelRidge::fit_with_cache`] buys.
    pub fn note_shared_hit(&mut self) {
        self.shared_hits += 1;
    }

    /// Records a shared-workspace fit that could not reuse the shared
    /// prefix (unsupported kernel/solver combination) and fell back to a
    /// full factorisation — a true miss: the full cubic cost was paid.
    pub fn note_shared_miss(&mut self) {
        self.misses += 1;
    }
}

impl BinaryTrainer for KernelRidge {
    type Model = KrrModel;

    fn fit(&self, x: &Matrix, y: &[f64]) -> Result<KrrModel, MlError> {
        KernelRidge::fit(self, x, y)
    }
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub(crate) enum KrrKind {
    Linear {
        w: Vec<f64>,
    },
    Kernelized {
        kernel: Kernel,
        train: Matrix,
        alphas: Vec<f64>,
    },
}

/// A trained KRR classifier.
///
/// For the linear kernel the model is an explicit weight vector `w*`; the
/// paper's confidence score `CS(k) = xₖᵀ w*` (§V-I) is [`KrrModel::decision`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KrrModel {
    pub(crate) kind: KrrKind,
    pub(crate) x_mean: Vec<f64>,
    pub(crate) y_mean: f64,
    pub(crate) rho: f64,
}

impl KrrModel {
    /// Explicit weight vector for linear-kernel models, `None` for
    /// kernelized ones.
    pub fn weights(&self) -> Option<&[f64]> {
        match &self.kind {
            KrrKind::Linear { w } => Some(w),
            KrrKind::Kernelized { .. } => None,
        }
    }

    /// Ridge parameter the model was trained with.
    pub fn rho(&self) -> f64 {
        self.rho
    }

    /// Decision scores for every row of `x` in one pass.
    ///
    /// For linear models this centres the whole matrix once and runs a
    /// single matrix–vector product instead of per-row kernel evaluations;
    /// for kernelized models the kernel row against the training set is
    /// evaluated per query with the centred matrix shared. Scores are
    /// bit-identical to calling [`BinaryClassifier::decision`] row by row
    /// (the engine's batch-vs-sequential parity tests rely on this).
    ///
    /// # Panics
    ///
    /// Panics if `x.cols()` differs from the training feature width.
    pub fn decision_batch(&self, x: &Matrix) -> Vec<f64> {
        assert_eq!(
            x.cols(),
            self.x_mean.len(),
            "decision_batch: feature width mismatch"
        );
        // Centre all rows once (shared by both model kinds).
        let mut xc = x.clone();
        for r in 0..xc.rows() {
            let row = xc.row_mut(r);
            for (v, mu) in row.iter_mut().zip(&self.x_mean) {
                *v -= mu;
            }
        }
        match &self.kind {
            KrrKind::Linear { w } => {
                // xc · w uses the same elementwise order as the per-row dot
                // product, so scores match the scalar path bit for bit.
                let mut scores = xc.matvec(w).expect("width checked");
                for s in &mut scores {
                    *s += self.y_mean;
                }
                scores
            }
            KrrKind::Kernelized {
                kernel,
                train,
                alphas,
            } => {
                // One kernel-row buffer reused across queries
                // ([`Kernel::against_into`]); per-entry arithmetic matches
                // the scalar path, so scores stay bit-identical.
                let mut k = Vec::with_capacity(train.rows());
                xc.iter_rows()
                    .map(|q| {
                        kernel.against_into(train, q, &mut k);
                        vector::dot(&k, alphas) + self.y_mean
                    })
                    .collect()
            }
        }
    }

    /// Fast-path counterpart of [`KrrModel::decision_batch`]: kernelized
    /// models evaluate their kernel rows through the 4-lane blocked path
    /// ([`Kernel::against_into_blocked`]), fusing the distance and `exp`
    /// per training row. Scores agree with the reference to a few ulps
    /// (pinned by the blocked-kernel parity proptests); linear models
    /// delegate to the reference, whose single matvec is already optimal.
    /// Callers needing the batch-vs-sequential bit-parity contract keep
    /// [`KrrModel::decision_batch`].
    ///
    /// # Panics
    ///
    /// Panics if `x.cols()` differs from the training feature width.
    pub fn decision_batch_blocked(&self, x: &Matrix) -> Vec<f64> {
        match &self.kind {
            KrrKind::Linear { .. } => self.decision_batch(x),
            KrrKind::Kernelized {
                kernel,
                train,
                alphas,
            } => {
                assert_eq!(
                    x.cols(),
                    self.x_mean.len(),
                    "decision_batch_blocked: feature width mismatch"
                );
                let mut xc = x.clone();
                for r in 0..xc.rows() {
                    let row = xc.row_mut(r);
                    for (v, mu) in row.iter_mut().zip(&self.x_mean) {
                        *v -= mu;
                    }
                }
                let mut k = Vec::with_capacity(train.rows());
                xc.iter_rows()
                    .map(|q| {
                        kernel.against_into_blocked(train, q, &mut k);
                        vector::dot(&k, alphas) + self.y_mean
                    })
                    .collect()
            }
        }
    }

    /// Hard accept/reject decisions for every row of `x`, at the zero
    /// threshold (batch counterpart of [`BinaryClassifier::predict`]).
    ///
    /// # Panics
    ///
    /// Panics if `x.cols()` differs from the training feature width.
    pub fn predict_batch(&self, x: &Matrix) -> Vec<bool> {
        self.decision_batch(x)
            .into_iter()
            .map(|s| s >= 0.0)
            .collect()
    }
}

impl BinaryClassifier for KrrModel {
    fn decision(&self, x: &[f64]) -> f64 {
        let xc: Vec<f64> = x.iter().zip(&self.x_mean).map(|(&v, &mu)| v - mu).collect();
        match &self.kind {
            KrrKind::Linear { w } => vector::dot(w, &xc) + self.y_mean,
            KrrKind::Kernelized {
                kernel,
                train,
                alphas,
            } => {
                let k = kernel.against(train, &xc);
                vector::dot(&k, alphas) + self.y_mean
            }
        }
    }

    fn decision_batch(&self, x: &Matrix) -> Vec<f64> {
        KrrModel::decision_batch(self, x)
    }

    fn num_features(&self) -> usize {
        self.x_mean.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> (Matrix, Vec<f64>) {
        let x = Matrix::from_rows(&[
            &[0.0, 1.0],
            &[0.2, 0.9],
            &[-0.1, 1.1],
            &[1.0, 0.0],
            &[0.9, -0.1],
            &[1.1, 0.2],
        ])
        .unwrap();
        let y = vec![1.0, 1.0, 1.0, -1.0, -1.0, -1.0];
        (x, y)
    }

    #[test]
    fn separates_toy_clusters() {
        let (x, y) = toy();
        let model = KernelRidge::new(0.1).fit(&x, &y).unwrap();
        assert!(model.decision(&[0.0, 1.0]) > 0.0);
        assert!(model.decision(&[1.0, 0.0]) < 0.0);
        assert!(model.predict(&[0.1, 0.95]));
        assert!(!model.predict(&[1.05, 0.0]));
    }

    #[test]
    fn primal_and_dual_weights_agree() {
        let (x, y) = toy();
        let p = KernelRidge::new(0.7)
            .with_solver(KrrSolver::Primal)
            .fit(&x, &y)
            .unwrap();
        let d = KernelRidge::new(0.7)
            .with_solver(KrrSolver::Dual)
            .fit(&x, &y)
            .unwrap();
        let wp = p.weights().unwrap();
        let wd = d.weights().unwrap();
        for (a, b) in wp.iter().zip(wd) {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
    }

    #[test]
    fn primal_rejects_nonlinear_kernel() {
        let (x, y) = toy();
        let err = KernelRidge::new(0.5)
            .with_kernel(Kernel::Rbf { gamma: 1.0 })
            .with_solver(KrrSolver::Primal)
            .fit(&x, &y)
            .unwrap_err();
        assert!(matches!(err, MlError::InvalidParameter(_)));
    }

    #[test]
    fn rbf_kernel_solves_xor() {
        // XOR is not linearly separable; RBF-KRR handles it.
        let x = Matrix::from_rows(&[&[0.0, 0.0], &[1.0, 1.0], &[0.0, 1.0], &[1.0, 0.0]]).unwrap();
        let y = vec![1.0, 1.0, -1.0, -1.0];
        let model = KernelRidge::new(0.01)
            .with_kernel(Kernel::Rbf { gamma: 3.0 })
            .fit(&x, &y)
            .unwrap();
        assert!(model.decision(&[0.05, 0.05]) > 0.0);
        assert!(model.decision(&[0.95, 0.95]) > 0.0);
        assert!(model.decision(&[0.05, 0.95]) < 0.0);
        assert!(model.decision(&[0.95, 0.05]) < 0.0);
        assert!(model.weights().is_none());
    }

    #[test]
    fn larger_rho_shrinks_weights() {
        let (x, y) = toy();
        let small = KernelRidge::new(0.01).fit(&x, &y).unwrap();
        let large = KernelRidge::new(100.0).fit(&x, &y).unwrap();
        let norm_small = vector::norm(small.weights().unwrap());
        let norm_large = vector::norm(large.weights().unwrap());
        assert!(norm_large < norm_small);
    }

    #[test]
    fn rejects_single_class() {
        let x = Matrix::from_rows(&[&[1.0], &[2.0]]).unwrap();
        assert!(KernelRidge::new(1.0).fit(&x, &[1.0, 1.0]).is_err());
    }

    #[test]
    fn imbalanced_labels_keep_intercept_sane() {
        // 1 positive vs 5 negatives: centring keeps the positive sample on
        // the positive side of its own decision.
        let x = Matrix::from_rows(&[
            &[5.0, 5.0],
            &[0.0, 0.1],
            &[0.1, 0.0],
            &[-0.1, 0.1],
            &[0.0, -0.1],
            &[0.1, 0.1],
        ])
        .unwrap();
        let y = vec![1.0, -1.0, -1.0, -1.0, -1.0, -1.0];
        let model = KernelRidge::new(0.1).fit(&x, &y).unwrap();
        assert!(model.decision(&[5.0, 5.0]) > 0.0);
        assert!(model.decision(&[0.0, 0.0]) < 0.0);
    }

    #[test]
    fn decision_batch_is_bit_identical_to_scalar_path() {
        let (x, y) = toy();
        // Linear model via both solvers, plus a kernelized model.
        let models = [
            KernelRidge::new(0.3)
                .with_solver(KrrSolver::Primal)
                .fit(&x, &y)
                .unwrap(),
            KernelRidge::new(0.3)
                .with_solver(KrrSolver::Dual)
                .fit(&x, &y)
                .unwrap(),
            KernelRidge::new(0.3)
                .with_kernel(Kernel::Rbf { gamma: 1.5 })
                .fit(&x, &y)
                .unwrap(),
        ];
        let probes =
            Matrix::from_rows(&[&[0.1, 0.9], &[1.0, 0.0], &[-0.3, 1.2], &[0.5, 0.5]]).unwrap();
        for model in &models {
            let batch = model.decision_batch(&probes);
            assert_eq!(batch.len(), probes.rows());
            for (r, &score) in batch.iter().enumerate() {
                let scalar = model.decision(probes.row(r));
                assert_eq!(score.to_bits(), scalar.to_bits(), "row {r} diverges");
            }
            let preds = model.predict_batch(&probes);
            for (r, &p) in preds.iter().enumerate() {
                assert_eq!(p, model.predict(probes.row(r)));
            }
        }
    }

    #[test]
    fn fit_cache_reuses_factorization_bit_exactly() {
        let (x, y) = toy();
        let trainer = KernelRidge::new(0.5);
        let mut cache = KrrFitCache::new();

        let cold = trainer.fit_with_cache(&mut cache, &x, &y).unwrap();
        assert_eq!((cache.hits(), cache.misses()), (0, 1));

        // Label-only refit: hits the cache and matches an uncached fit.
        let flipped: Vec<f64> = y.iter().map(|v| -v).collect();
        let warm = trainer.fit_with_cache(&mut cache, &x, &flipped).unwrap();
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        let reference = trainer.fit(&x, &flipped).unwrap();
        assert_eq!(warm, reference);

        // Same labels again: cached fit equals the original cold fit.
        let again = trainer.fit_with_cache(&mut cache, &x, &y).unwrap();
        assert_eq!(again, cold);
        assert_eq!((cache.hits(), cache.misses()), (2, 1));

        // Any data change invalidates the entry.
        let mut x2 = x.clone();
        x2[(0, 0)] += 1e-9;
        let fresh = trainer.fit_with_cache(&mut cache, &x2, &y).unwrap();
        assert_eq!((cache.hits(), cache.misses()), (2, 2));
        assert_eq!(fresh, trainer.fit(&x2, &y).unwrap());

        // A different rho also misses.
        let _ = KernelRidge::new(0.7)
            .fit_with_cache(&mut cache, &x2, &y)
            .unwrap();
        assert_eq!((cache.hits(), cache.misses()), (2, 3));
        cache.clear();
        let _ = trainer.fit_with_cache(&mut cache, &x2, &y).unwrap();
        assert_eq!((cache.hits(), cache.misses()), (2, 4));
    }

    #[test]
    fn fit_cache_splits_shared_and_keyed_hits() {
        let (x, y) = toy();
        let trainer = KernelRidge::new(0.5);
        let mut cache = KrrFitCache::new();
        let _ = trainer.fit_with_cache(&mut cache, &x, &y).unwrap();
        let _ = trainer.fit_with_cache(&mut cache, &x, &y).unwrap();
        cache.note_shared_hit();
        cache.note_shared_miss();
        // One keyed hit (second fit), one shared hit, and two true misses
        // (the cold fit plus the shared fallback) — the merged `hits()`
        // view stays the sum of both hit kinds.
        assert_eq!(
            (cache.shared_hits(), cache.keyed_hits(), cache.misses()),
            (1, 1, 2)
        );
        assert_eq!(cache.hits(), 2);
    }

    #[test]
    fn fit_many_shares_one_factorization() {
        let (x, y) = toy();
        let flipped: Vec<f64> = y.iter().map(|v| -v).collect();
        let models = KernelRidge::new(0.4).fit_many(&x, &[&y, &flipped]).unwrap();
        assert_eq!(models.len(), 2);
        assert_eq!(models[0], KernelRidge::new(0.4).fit(&x, &y).unwrap());
        assert_eq!(models[1], KernelRidge::new(0.4).fit(&x, &flipped).unwrap());
    }

    #[test]
    fn model_serde_roundtrip() {
        let (x, y) = toy();
        let model = KernelRidge::new(0.5).fit(&x, &y).unwrap();
        let json = serde_json::to_string(&model).unwrap();
        let back: KrrModel = serde_json::from_str(&json).unwrap();
        let q = [0.4, 0.6];
        assert!((model.decision(&q) - back.decision(&q)).abs() < 1e-15);
    }
}
