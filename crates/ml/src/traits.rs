use smarteryou_linalg::Matrix;

use crate::MlError;

/// A trained binary classifier over dense feature vectors.
///
/// The positive class (+1) is the legitimate user throughout the workspace.
/// `decision` returns a real-valued score; the paper's *confidence score*
/// `CS(k) = xₖᵀ w*` (§V-I) is exactly this value for the KRR model.
pub trait BinaryClassifier: Send + Sync {
    /// Real-valued decision score; positive means "legitimate user".
    fn decision(&self, x: &[f64]) -> f64;

    /// Hard accept/reject decision at the zero threshold.
    fn predict(&self, x: &[f64]) -> bool {
        self.decision(x) >= 0.0
    }

    /// Decision scores for every row of `x`.
    ///
    /// The default maps [`BinaryClassifier::decision`] over the rows;
    /// models with a cheaper matrix-level path (KRR) override it. Batch
    /// scores must equal the row-wise scores exactly.
    fn decision_batch(&self, x: &Matrix) -> Vec<f64> {
        x.iter_rows().map(|row| self.decision(row)).collect()
    }

    /// Number of features the model expects.
    fn num_features(&self) -> usize;
}

/// A configuration that can train a [`BinaryClassifier`] from ±1-labelled
/// data. Implemented by the deterministic trainers (KRR, linear regression,
/// naive Bayes); randomized trainers (SVM-SMO, random forest) take an
/// explicit RNG in their inherent `fit` instead.
pub trait BinaryTrainer {
    /// The model type this trainer produces.
    type Model: BinaryClassifier;

    /// Trains on rows of `x` with labels `y` in {−1, +1}.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::InvalidTrainingData`] for malformed inputs and
    /// trainer-specific errors otherwise.
    fn fit(&self, x: &Matrix, y: &[f64]) -> Result<Self::Model, MlError>;
}

impl BinaryClassifier for Box<dyn BinaryClassifier> {
    fn decision(&self, x: &[f64]) -> f64 {
        (**self).decision(x)
    }

    fn predict(&self, x: &[f64]) -> bool {
        (**self).predict(x)
    }

    fn decision_batch(&self, x: &Matrix) -> Vec<f64> {
        (**self).decision_batch(x)
    }

    fn num_features(&self) -> usize {
        (**self).num_features()
    }
}
