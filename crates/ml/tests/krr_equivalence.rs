//! Property test for the paper's appendix theorem: the dual KRR solution
//! `w* = Φ[K + ρI_N]⁻¹y` (Eq. 6) equals the primal solution
//! `w* = [S + ρI_J]⁻¹Φy` (Eq. 7) for the identity kernel.
//!
//! This equivalence is what licenses the complexity reduction from
//! O(N^2.373) to O(M^2.373) claimed in §V-H1.

use proptest::prelude::*;
use smarteryou_linalg::Matrix;
use smarteryou_ml::{BinaryClassifier, KernelRidge, KrrSolver};

/// Random binary dataset with `n` samples and `m` features; labels are
/// derived from a random hyperplane with noise so both classes exist.
fn dataset(n: usize, m: usize) -> impl Strategy<Value = (Matrix, Vec<f64>)> {
    (
        prop::collection::vec(-5.0..5.0f64, n * m),
        prop::collection::vec(-1.0..1.0f64, m),
    )
        .prop_map(move |(data, plane)| {
            let x = Matrix::from_vec(n, m, data).expect("sized");
            let mut y: Vec<f64> = x
                .iter_rows()
                .map(|row| {
                    let s: f64 = row.iter().zip(&plane).map(|(a, b)| a * b).sum();
                    if s >= 0.0 {
                        1.0
                    } else {
                        -1.0
                    }
                })
                .collect();
            // Guarantee both classes.
            y[0] = 1.0;
            y[n - 1] = -1.0;
            (x, y)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn primal_equals_dual_for_identity_kernel(
        (x, y) in dataset(24, 5),
        rho in 0.01..50.0f64,
    ) {
        let primal = KernelRidge::new(rho)
            .with_solver(KrrSolver::Primal)
            .fit(&x, &y)
            .expect("primal fit");
        let dual = KernelRidge::new(rho)
            .with_solver(KrrSolver::Dual)
            .fit(&x, &y)
            .expect("dual fit");

        // Weight vectors agree…
        let wp = primal.weights().expect("linear model");
        let wd = dual.weights().expect("linear model");
        for (a, b) in wp.iter().zip(wd) {
            prop_assert!((a - b).abs() < 1e-6, "weights diverge: {a} vs {b}");
        }

        // …and so do decisions on arbitrary queries.
        for probe in 0..x.rows() {
            let q = x.row(probe);
            let dp = primal.decision(q);
            let dd = dual.decision(q);
            prop_assert!((dp - dd).abs() < 1e-6, "decision diverges: {dp} vs {dd}");
        }
    }

    #[test]
    fn wide_data_also_agrees((x, y) in dataset(8, 12), rho in 0.1..10.0f64) {
        // M > N: Auto picks the dual; the primal must still match.
        let primal = KernelRidge::new(rho)
            .with_solver(KrrSolver::Primal)
            .fit(&x, &y)
            .expect("primal fit");
        let auto = KernelRidge::new(rho).fit(&x, &y).expect("auto fit");
        let q = x.row(0);
        prop_assert!((primal.decision(q) - auto.decision(q)).abs() < 1e-6);
    }

    #[test]
    fn ridge_path_is_continuous((x, y) in dataset(20, 4)) {
        // Nearby ρ values give nearby models — a sanity check that the
        // solver is numerically stable across the regularisation path.
        let m1 = KernelRidge::new(1.0).fit(&x, &y).unwrap();
        let m2 = KernelRidge::new(1.0001).fit(&x, &y).unwrap();
        let w1 = m1.weights().unwrap();
        let w2 = m2.weights().unwrap();
        for (a, b) in w1.iter().zip(w2) {
            prop_assert!((a - b).abs() < 1e-2);
        }
    }
}
