//! Parity proptests pinning the cache-blocked fused Gram kernels to the
//! scalar reference: `Kernel::gram_blocked` / `Kernel::against_into_blocked`
//! / `KrrModel::decision_batch_blocked` must agree with their reference
//! counterparts within epsilon across tile edges and ragged feature counts,
//! and a `fast_gram` fit must land on the same model up to epsilon. The
//! flag-off path is pinned bit-identical separately (the Gram with
//! `fast_gram` off is byte-for-byte the seed's `Kernel::gram`).

use proptest::prelude::*;
use proptest::TestCaseError;
use smarteryou_linalg::Matrix;
use smarteryou_ml::{Kernel, KernelRidge};

/// Random matrix with `n` rows (chosen to straddle the 32-row tile edge)
/// and `m` features (chosen to leave a ragged 4-lane tail).
fn matrix() -> impl Strategy<Value = Matrix> {
    (
        2usize..=70,
        1usize..=30,
        prop::collection::vec(-10.0..10.0f64, 70 * 30),
    )
        .prop_map(|(n, m, pool)| Matrix::from_vec(n, m, pool[..n * m].to_vec()).expect("sized"))
}

fn kernels() -> [Kernel; 3] {
    [
        Kernel::Linear,
        Kernel::Rbf { gamma: 0.35 },
        Kernel::Polynomial {
            degree: 3,
            coef: 1.0,
        },
    ]
}

fn assert_close(a: f64, b: f64, what: &str) -> Result<(), TestCaseError> {
    prop_assert!(
        (a - b).abs() <= 1e-10 * b.abs().max(1.0),
        "{}: blocked {} vs reference {}",
        what,
        a,
        b
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn gram_blocked_matches_reference(x in matrix()) {
        for kernel in kernels() {
            let reference = kernel.gram(&x);
            let blocked = kernel.gram_blocked(&x);
            prop_assert_eq!(blocked.rows(), reference.rows());
            prop_assert_eq!(blocked.cols(), reference.cols());
            for i in 0..x.rows() {
                for j in 0..x.rows() {
                    assert_close(blocked[(i, j)], reference[(i, j)], "gram entry")?;
                    // The blocked kernel fills the lower triangle by
                    // mirroring: symmetry must be exact.
                    prop_assert!(blocked[(i, j)].to_bits() == blocked[(j, i)].to_bits());
                }
            }
        }
    }

    #[test]
    fn against_blocked_matches_reference(x in matrix(), q in prop::collection::vec(-10.0..10.0f64, 30)) {
        let q = &q[..x.cols()];
        for kernel in kernels() {
            let reference = kernel.against(&x, q);
            let mut blocked = Vec::new();
            kernel.against_into_blocked(&x, q, &mut blocked);
            prop_assert_eq!(blocked.len(), reference.len());
            for (a, b) in blocked.iter().zip(&reference) {
                assert_close(*a, *b, "against entry")?;
            }
        }
    }

    /// End-to-end: a `fast_gram` RBF fit must produce the same decisions as
    /// the reference fit up to epsilon, and the blocked batch scorer must
    /// agree with the reference scorer on the same model.
    #[test]
    fn fast_gram_fit_matches_reference_fit(x in matrix(), flips in prop::collection::vec(-1.0..1.0f64, 70)) {
        let n = x.rows();
        let mut y: Vec<f64> = flips[..n].iter().map(|&v| if v >= 0.0 { 1.0 } else { -1.0 }).collect();
        y[0] = 1.0;
        y[n - 1] = -1.0;
        let kernel = Kernel::Rbf { gamma: 0.2 };
        let reference = KernelRidge::new(1e-2)
            .with_kernel(kernel)
            .fit(&x, &y)
            .expect("reference fit");
        let fast = KernelRidge::new(1e-2)
            .with_kernel(kernel)
            .with_fast_gram(true)
            .fit(&x, &y)
            .expect("fast fit");
        let want = reference.decision_batch(&x);
        let got = fast.decision_batch(&x);
        let got_blocked = fast.decision_batch_blocked(&x);
        for i in 0..n {
            prop_assert!(
                (got[i] - want[i]).abs() <= 1e-7 * want[i].abs().max(1.0),
                "decision {}: fast {} vs reference {}",
                i,
                got[i],
                want[i]
            );
            assert_close(got_blocked[i], got[i], "blocked batch decision")?;
        }
    }
}

/// Tile-edge row counts pinned explicitly: exactly one tile (32), one past
/// it (33), a multiple (64), and the deployed negative-pool scale, at the
/// paper's 28-feature width (ragged 4-lane tail).
#[test]
fn gram_blocked_covers_tile_edges() {
    for (n, m) in [(31usize, 28usize), (32, 28), (33, 28), (64, 27), (100, 28)] {
        let data: Vec<f64> = (0..n * m)
            .map(|i| ((i * 37 % 101) as f64 - 50.0) / 7.0)
            .collect();
        let x = Matrix::from_vec(n, m, data).expect("sized");
        let kernel = Kernel::Rbf { gamma: 0.5 };
        let reference = kernel.gram(&x);
        let blocked = kernel.gram_blocked(&x);
        for i in 0..n {
            for j in 0..n {
                let (a, b) = (blocked[(i, j)], reference[(i, j)]);
                assert!(
                    (a - b).abs() <= 1e-10 * b.abs().max(1.0),
                    "({n},{m}) entry ({i},{j}): blocked {a} vs reference {b}"
                );
            }
        }
    }
}
