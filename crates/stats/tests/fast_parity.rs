//! Parity proptests pinning the fused (4-lane) summary path to the scalar
//! reference: [`Summary::from_slice_fused`] must agree with
//! [`Summary::from_slice`] within epsilon for arbitrary inputs, and the
//! reference itself must stay bit-identical to the free per-statistic
//! functions — the contract the flag-off pipeline relies on.

use proptest::prelude::*;
use proptest::TestCaseError;
use smarteryou_stats::{max, mean, min, variance, Summary};

/// A random length together with a signal of that length, covering the
/// short-input fallback, ragged tails (length not a multiple of 4), and
/// the paper's deployed 300-sample window via the fixed cases below.
fn sized_buf() -> impl Strategy<Value = Vec<f64>> {
    (1usize..=512, prop::collection::vec(-100.0..100.0f64, 512))
        .prop_map(|(len, v)| v.into_iter().take(len).collect())
}

/// Accelerometer-magnitude-shaped data: a large common offset (gravity)
/// with small fluctuations, the regime where a naive one-pass variance
/// loses the most precision.
fn offset_buf() -> impl Strategy<Value = Vec<f64>> {
    (
        4usize..=512,
        500.0..1000.0f64,
        prop::collection::vec(-1.0..1.0f64, 512),
    )
        .prop_map(|(len, base, v)| v.into_iter().take(len).map(|x| base + x).collect())
}

fn assert_close(a: f64, b: f64, rel: f64, abs: f64) -> Result<(), TestCaseError> {
    if a.is_nan() && b.is_nan() {
        return Ok(());
    }
    prop_assert!(
        (a - b).abs() <= rel * b.abs().max(abs),
        "fused {a} vs reference {b}"
    );
    Ok(())
}

fn check_fused_matches_reference(data: &[f64]) -> Result<(), TestCaseError> {
    let fast = Summary::from_slice_fused(data);
    let slow = Summary::from_slice(data);
    // Min/max are exact comparisons in both paths: bit-equal.
    prop_assert!(
        fast.min.to_bits() == slow.min.to_bits() || (fast.min.is_nan() && slow.min.is_nan())
    );
    prop_assert!(
        fast.max.to_bits() == slow.max.to_bits() || (fast.max.is_nan() && slow.max.is_nan())
    );
    assert_close(fast.mean, slow.mean, 1e-12, 1e-12)?;
    // Variance subtracts large near-equal quantities in the fused form;
    // the first-element shift keeps it stable but not bit-equal.
    assert_close(fast.variance, slow.variance, 1e-9, 1e-9)?;
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn fused_summary_matches_reference(data in sized_buf()) {
        check_fused_matches_reference(&data)?;
    }

    #[test]
    fn fused_summary_matches_reference_on_offset_data(data in offset_buf()) {
        check_fused_matches_reference(&data)?;
    }

    #[test]
    fn fused_summary_on_deployed_window(data in prop::collection::vec(-20.0..20.0f64, 300)) {
        check_fused_matches_reference(&data)?;
    }

    /// The reference constructor is the flag-off path: it must stay
    /// bit-identical to the free per-statistic functions so disabling the
    /// fast path reproduces the seed output exactly.
    #[test]
    fn reference_summary_is_bit_identical_to_free_functions(data in sized_buf()) {
        let s = Summary::from_slice(&data);
        for (got, want) in [
            (s.mean, mean(&data)),
            (s.variance, variance(&data)),
            (s.min, min(&data)),
            (s.max, max(&data)),
        ] {
            prop_assert!(
                got.to_bits() == want.to_bits() || (got.is_nan() && want.is_nan()),
                "summary field {got} != free function {want}"
            );
        }
    }
}

/// Ragged tails around the 4-lane boundary, pinned explicitly so the
/// chunked loop's scalar remainder is always exercised.
#[test]
fn fused_summary_covers_every_tail_length() {
    for n in [8usize, 9, 10, 11, 12, 299, 300, 301, 302, 303] {
        let data: Vec<f64> = (0..n).map(|i| 9.81 + (i as f64 * 0.7).sin()).collect();
        check_fused_matches_reference(&data).unwrap();
    }
}
