use crate::descriptive::mean;

/// Pearson product-moment correlation coefficient between two equal-length
/// samples.
///
/// Returns `NaN` when either sample has zero variance or fewer than two
/// points (matching the convention that correlation is undefined there).
///
/// # Panics
///
/// Panics if the slices have different lengths.
///
/// # Example
///
/// ```
/// use smarteryou_stats::pearson;
///
/// let x = [1.0, 2.0, 3.0];
/// let y = [2.0, 4.0, 6.0];
/// assert!((pearson(&x, &y) - 1.0).abs() < 1e-12);
/// ```
pub fn pearson(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "pearson: length mismatch");
    if x.len() < 2 {
        return f64::NAN;
    }
    let mx = mean(x);
    let my = mean(y);
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (&a, &b) in x.iter().zip(y) {
        let da = a - mx;
        let db = b - my;
        cov += da * db;
        vx += da * da;
        vy += db * db;
    }
    if vx == 0.0 || vy == 0.0 {
        return f64::NAN;
    }
    cov / (vx.sqrt() * vy.sqrt())
}

/// Spearman rank correlation: Pearson correlation of the rank transforms,
/// with average ranks for ties.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn spearman(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "spearman: length mismatch");
    let rx = ranks(x);
    let ry = ranks(y);
    pearson(&rx, &ry)
}

/// Average ranks (1-based), ties receive the mean of their rank span.
fn ranks(data: &[f64]) -> Vec<f64> {
    let n = data.len();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| data[a].total_cmp(&data[b]));
    let mut out = vec![0.0; n];
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && data[order[j + 1]] == data[order[i]] {
            j += 1;
        }
        // Average rank for the tie group spanning sorted positions i..=j.
        let avg = (i + j) as f64 / 2.0 + 1.0;
        for &idx in &order[i..=j] {
            out[idx] = avg;
        }
        i = j + 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_positive_and_negative() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let up: Vec<f64> = x.iter().map(|v| 3.0 * v + 1.0).collect();
        let down: Vec<f64> = x.iter().map(|v| -2.0 * v).collect();
        assert!((pearson(&x, &up) - 1.0).abs() < 1e-12);
        assert!((pearson(&x, &down) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn zero_variance_is_nan() {
        assert!(pearson(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]).is_nan());
        assert!(pearson(&[1.0], &[2.0]).is_nan());
    }

    #[test]
    fn uncorrelated_orthogonal_pattern() {
        let x = [1.0, -1.0, 1.0, -1.0];
        let y = [1.0, 1.0, -1.0, -1.0];
        assert!(pearson(&x, &y).abs() < 1e-12);
    }

    #[test]
    fn pearson_bounded() {
        // A pseudo-random-ish pair stays within [-1, 1].
        let x: Vec<f64> = (0..50).map(|i| ((i * 37 % 11) as f64).sin()).collect();
        let y: Vec<f64> = (0..50).map(|i| ((i * 17 % 7) as f64).cos()).collect();
        let r = pearson(&x, &y);
        assert!((-1.0..=1.0).contains(&r));
    }

    #[test]
    fn spearman_detects_monotone_nonlinear() {
        let x = [1.0, 2.0, 3.0, 4.0, 5.0];
        let y: Vec<f64> = x.iter().map(|v: &f64| v.exp()).collect();
        assert!((spearman(&x, &y) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ranks_average_ties() {
        let r = ranks(&[10.0, 20.0, 20.0, 30.0]);
        assert_eq!(r, vec![1.0, 2.5, 2.5, 4.0]);
    }
}
