use std::fmt;

use serde::{Deserialize, Serialize};

/// An `n`-class confusion matrix; rows are true classes, columns predicted.
///
/// Used for the context-detection evaluation (Table V) and general
/// classifier diagnostics.
///
/// # Example
///
/// ```
/// use smarteryou_stats::ConfusionMatrix;
///
/// let mut cm = ConfusionMatrix::new(vec!["stationary".into(), "moving".into()]);
/// cm.record(0, 0);
/// cm.record(0, 0);
/// cm.record(1, 0); // one moving window misread as stationary
/// cm.record(1, 1);
/// assert_eq!(cm.accuracy(), 0.75);
/// assert_eq!(cm.row_rate(1, 0), 0.5);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConfusionMatrix {
    labels: Vec<String>,
    counts: Vec<u64>, // row-major n×n
}

impl ConfusionMatrix {
    /// Creates an empty matrix over the given class labels.
    ///
    /// # Panics
    ///
    /// Panics if `labels` is empty.
    pub fn new(labels: Vec<String>) -> Self {
        assert!(
            !labels.is_empty(),
            "confusion matrix needs at least one class"
        );
        let n = labels.len();
        ConfusionMatrix {
            labels,
            counts: vec![0; n * n],
        }
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.labels.len()
    }

    /// Class labels, in index order.
    pub fn labels(&self) -> &[String] {
        &self.labels
    }

    /// Records one observation with true class `actual` predicted as
    /// `predicted`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn record(&mut self, actual: usize, predicted: usize) {
        let n = self.num_classes();
        assert!(actual < n && predicted < n, "class index out of range");
        self.counts[actual * n + predicted] += 1;
    }

    /// Raw count for `(actual, predicted)`.
    pub fn count(&self, actual: usize, predicted: usize) -> u64 {
        self.counts[actual * self.num_classes() + predicted]
    }

    /// Total observations recorded.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Overall accuracy; `NaN` when empty.
    pub fn accuracy(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return f64::NAN;
        }
        let n = self.num_classes();
        let correct: u64 = (0..n).map(|i| self.counts[i * n + i]).sum();
        correct as f64 / total as f64
    }

    /// Fraction of class `actual` observations predicted as `predicted`
    /// (row-normalised rate); `NaN` if the row is empty.
    pub fn row_rate(&self, actual: usize, predicted: usize) -> f64 {
        let n = self.num_classes();
        let row_total: u64 = self.counts[actual * n..(actual + 1) * n].iter().sum();
        if row_total == 0 {
            return f64::NAN;
        }
        self.count(actual, predicted) as f64 / row_total as f64
    }

    /// Merges another confusion matrix over the same label set into this one.
    ///
    /// # Panics
    ///
    /// Panics if the label sets differ.
    pub fn merge(&mut self, other: &ConfusionMatrix) {
        assert_eq!(self.labels, other.labels, "label sets differ");
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
    }
}

impl fmt::Display for ConfusionMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let n = self.num_classes();
        write!(f, "{:>14}", "actual\\pred")?;
        for l in &self.labels {
            write!(f, " {l:>12}")?;
        }
        writeln!(f)?;
        for i in 0..n {
            write!(f, "{:>14}", self.labels[i])?;
            for j in 0..n {
                let r = self.row_rate(i, j);
                if r.is_nan() {
                    write!(f, " {:>12}", "-")?;
                } else {
                    write!(f, " {:>11.1}%", 100.0 * r)?;
                }
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_class() -> ConfusionMatrix {
        ConfusionMatrix::new(vec!["a".into(), "b".into()])
    }

    #[test]
    fn accuracy_counts_diagonal() {
        let mut cm = two_class();
        cm.record(0, 0);
        cm.record(1, 1);
        cm.record(1, 0);
        assert!((cm.accuracy() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(cm.total(), 3);
    }

    #[test]
    fn empty_matrix_is_nan() {
        let cm = two_class();
        assert!(cm.accuracy().is_nan());
        assert!(cm.row_rate(0, 0).is_nan());
    }

    #[test]
    fn row_rates_normalise_by_class() {
        let mut cm = two_class();
        for _ in 0..9 {
            cm.record(0, 0);
        }
        cm.record(0, 1);
        assert!((cm.row_rate(0, 0) - 0.9).abs() < 1e-12);
        assert!((cm.row_rate(0, 1) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = two_class();
        a.record(0, 0);
        let mut b = two_class();
        b.record(0, 0);
        b.record(1, 1);
        a.merge(&b);
        assert_eq!(a.count(0, 0), 2);
        assert_eq!(a.total(), 3);
    }

    #[test]
    #[should_panic(expected = "label sets differ")]
    fn merge_rejects_different_labels() {
        let mut a = two_class();
        let b = ConfusionMatrix::new(vec!["x".into(), "y".into()]);
        a.merge(&b);
    }

    #[test]
    fn display_contains_labels() {
        let mut cm = two_class();
        cm.record(0, 0);
        let s = format!("{cm}");
        assert!(s.contains('a') && s.contains('b'));
    }
}
