use serde::{Deserialize, Serialize};

/// Arithmetic mean; `NaN` for an empty slice.
pub fn mean(data: &[f64]) -> f64 {
    if data.is_empty() {
        return f64::NAN;
    }
    data.iter().sum::<f64>() / data.len() as f64
}

/// Unbiased sample variance (n−1 denominator); `NaN` for fewer than two
/// samples.
pub fn variance(data: &[f64]) -> f64 {
    if data.len() < 2 {
        return f64::NAN;
    }
    let m = mean(data);
    data.iter().map(|&x| (x - m) * (x - m)).sum::<f64>() / (data.len() - 1) as f64
}

/// Sample standard deviation; `NaN` for fewer than two samples.
pub fn std_dev(data: &[f64]) -> f64 {
    variance(data).sqrt()
}

/// Minimum value; `NaN` for an empty slice.
pub fn min(data: &[f64]) -> f64 {
    data.iter()
        .copied()
        .fold(f64::NAN, |acc, v| if acc.is_nan() { v } else { acc.min(v) })
}

/// Maximum value; `NaN` for an empty slice.
pub fn max(data: &[f64]) -> f64 {
    data.iter()
        .copied()
        .fold(f64::NAN, |acc, v| if acc.is_nan() { v } else { acc.max(v) })
}

/// Range (`max − min`); `NaN` for an empty slice.
pub fn range(data: &[f64]) -> f64 {
    max(data) - min(data)
}

/// Quantile `q ∈ [0, 1]` with linear interpolation between order statistics;
/// `NaN` for an empty slice.
///
/// # Panics
///
/// Panics if `q` is outside `[0, 1]`.
pub fn quantile(data: &[f64], q: f64) -> f64 {
    assert!((0.0..=1.0).contains(&q), "quantile {q} outside [0, 1]");
    if data.is_empty() {
        return f64::NAN;
    }
    let mut sorted = data.to_vec();
    sorted.sort_by(f64::total_cmp);
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Median (0.5 quantile); `NaN` for an empty slice.
pub fn median(data: &[f64]) -> f64 {
    quantile(data, 0.5)
}

/// One-pass descriptive summary of a sample.
///
/// # Example
///
/// ```
/// use smarteryou_stats::Summary;
///
/// let s = Summary::from_slice(&[1.0, 2.0, 3.0, 4.0]);
/// assert_eq!(s.mean, 2.5);
/// assert_eq!(s.min, 1.0);
/// assert_eq!(s.max, 4.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Unbiased sample variance.
    pub variance: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
}

impl Summary {
    /// Computes the summary of `data`. Mean/variance/min/max are `NaN` when
    /// undefined for the sample size.
    ///
    /// This is the **reference path**: two passes over `data` (one fused
    /// sum/min/max pass, one centred sum-of-squares pass), each accumulator
    /// folding elements in the same order as the single-statistic free
    /// functions above — so every field is bit-identical to calling
    /// [`mean`]/[`variance`]/[`min`]/[`max`] separately, at half the memory
    /// traffic. See [`Summary::from_slice_fused`] for the reassociating
    /// single-pass fast path.
    pub fn from_slice(data: &[f64]) -> Self {
        let n = data.len();
        // Pass 1: sum, min and max. Each accumulator is independent and
        // visits elements in slice order, matching `mean`'s sequential
        // `iter().sum()` and the NaN-seeded folds of `min`/`max` exactly.
        let mut sum = 0.0f64;
        let mut mn = f64::NAN;
        let mut mx = f64::NAN;
        for &v in data {
            sum += v;
            mn = if mn.is_nan() { v } else { mn.min(v) };
            mx = if mx.is_nan() { v } else { mx.max(v) };
        }
        let mean = if n == 0 { f64::NAN } else { sum / n as f64 };
        // Pass 2: centred sum of squares — the same expression, element
        // order and sequential sum as the free `variance`.
        let variance = if n < 2 {
            f64::NAN
        } else {
            data.iter().map(|&x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1) as f64
        };
        Summary {
            count: n,
            mean,
            variance,
            min: mn,
            max: mx,
        }
    }

    /// Single-pass fused summary: 4-lane chunked accumulation of sum,
    /// shifted sum-of-squares, min and max (`chunks_exact(4)` with four
    /// independent accumulators per statistic and a scalar tail), so the
    /// whole summary costs one pass and autovectorizes on stable Rust.
    ///
    /// The running sums are shifted by the first element
    /// (`s = Σ(x−x₀)`, `ss = Σ(x−x₀)²`; `var = (ss − s²/n)/(n−1)`), which
    /// keeps the one-pass variance numerically stable for streams with a
    /// large mean — exactly the regime of gravity-dominated accelerometer
    /// magnitudes. Lane accumulation **reassociates** the float sums, so
    /// mean and variance differ from [`Summary::from_slice`] by a few ulps
    /// (the parity proptests pin the bound); min/max are exact for finite
    /// inputs. Inputs containing NaN should use the reference path, whose
    /// NaN-seeded fold semantics this fast path does not reproduce.
    ///
    /// Results are deterministic: the lane count and reduction order are
    /// fixed, so equal inputs always produce equal outputs.
    pub fn from_slice_fused(data: &[f64]) -> Self {
        let n = data.len();
        if n < 8 {
            // Short windows gain nothing from lanes; reference semantics
            // also cover the empty/short NaN contracts.
            return Summary::from_slice(data);
        }
        let shift = data[0];
        let mut s = [0.0f64; 4];
        let mut ss = [0.0f64; 4];
        let mut mn = [f64::INFINITY; 4];
        let mut mx = [f64::NEG_INFINITY; 4];
        let chunks = data.chunks_exact(4);
        let tail = chunks.remainder();
        for c in chunks {
            for l in 0..4 {
                let d = c[l] - shift;
                s[l] += d;
                ss[l] += d * d;
                mn[l] = mn[l].min(c[l]);
                mx[l] = mx[l].max(c[l]);
            }
        }
        let mut s_t = (s[0] + s[1]) + (s[2] + s[3]);
        let mut ss_t = (ss[0] + ss[1]) + (ss[2] + ss[3]);
        let mut mn_t = mn[0].min(mn[1]).min(mn[2].min(mn[3]));
        let mut mx_t = mx[0].max(mx[1]).max(mx[2].max(mx[3]));
        for &v in tail {
            let d = v - shift;
            s_t += d;
            ss_t += d * d;
            mn_t = mn_t.min(v);
            mx_t = mx_t.max(v);
        }
        let nf = n as f64;
        let mean = shift + s_t / nf;
        // Constant streams can leave `ss − s²/n` a few ulps below zero;
        // clamp so std_dev stays real, matching the reference's 0.
        let variance = ((ss_t - s_t * s_t / nf) / (nf - 1.0)).max(0.0);
        Summary {
            count: n,
            mean,
            variance,
            min: mn_t,
            max: mx_t,
        }
    }

    /// Range (`max − min`).
    pub fn range(&self) -> f64 {
        self.max - self.min
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance.sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance_of_known_sample() {
        let data = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&data) - 5.0).abs() < 1e-12);
        // Sum of squared deviations = 32; unbiased variance = 32/7.
        assert!((variance(&data) - 32.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn empty_slices_produce_nan() {
        assert!(mean(&[]).is_nan());
        assert!(variance(&[1.0]).is_nan());
        assert!(min(&[]).is_nan());
        assert!(max(&[]).is_nan());
        assert!(median(&[]).is_nan());
    }

    #[test]
    fn min_max_range() {
        let data = [3.0, -1.0, 4.0, 1.5];
        assert_eq!(min(&data), -1.0);
        assert_eq!(max(&data), 4.0);
        assert_eq!(range(&data), 5.0);
    }

    #[test]
    fn quantiles_interpolate() {
        let data = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&data, 0.0), 1.0);
        assert_eq!(quantile(&data, 1.0), 4.0);
        assert_eq!(median(&data), 2.5);
        assert_eq!(quantile(&data, 0.25), 1.75);
    }

    #[test]
    fn quantile_handles_unsorted_input() {
        let data = [9.0, 1.0, 5.0];
        assert_eq!(median(&data), 5.0);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn quantile_rejects_out_of_range() {
        quantile(&[1.0], 1.5);
    }

    #[test]
    fn fused_summary_matches_reference_on_a_window() {
        // A gravity-offset sinusoid like a real accelerometer magnitude
        // stream, at the paper's 300-sample window and a ragged tail length.
        for n in [300usize, 301, 302, 303, 8, 11] {
            let data: Vec<f64> = (0..n).map(|i| 9.81 + (i as f64 * 0.37).sin()).collect();
            let r = Summary::from_slice(&data);
            let f = Summary::from_slice_fused(&data);
            assert_eq!(f.count, r.count);
            assert_eq!(f.min.to_bits(), r.min.to_bits(), "min is exact");
            assert_eq!(f.max.to_bits(), r.max.to_bits(), "max is exact");
            assert!((f.mean - r.mean).abs() <= 1e-12 * r.mean.abs());
            assert!((f.variance - r.variance).abs() <= 1e-9 * r.variance.abs().max(1.0));
        }
    }

    #[test]
    fn fused_summary_short_input_contracts() {
        // < 8 samples falls through to the reference path, inheriting its
        // NaN contracts verbatim.
        let e = Summary::from_slice_fused(&[]);
        assert!(e.mean.is_nan() && e.variance.is_nan() && e.min.is_nan() && e.max.is_nan());
        let one = Summary::from_slice_fused(&[3.5]);
        assert_eq!(one.mean, 3.5);
        assert!(one.variance.is_nan());
    }

    #[test]
    fn fused_summary_constant_stream_has_zero_variance() {
        let data = vec![42.0; 300];
        let f = Summary::from_slice_fused(&data);
        assert_eq!(f.variance, 0.0);
        assert_eq!(f.mean, 42.0);
        assert_eq!((f.min, f.max), (42.0, 42.0));
    }

    #[test]
    fn summary_matches_free_functions() {
        let data = [1.0, 2.0, 3.0];
        let s = Summary::from_slice(&data);
        assert_eq!(s.count, 3);
        assert_eq!(s.mean, mean(&data));
        assert_eq!(s.variance, variance(&data));
        assert_eq!(s.range(), 2.0);
        assert!((s.std_dev() - 1.0).abs() < 1e-12);
    }
}
