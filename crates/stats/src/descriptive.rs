use serde::{Deserialize, Serialize};

/// Arithmetic mean; `NaN` for an empty slice.
pub fn mean(data: &[f64]) -> f64 {
    if data.is_empty() {
        return f64::NAN;
    }
    data.iter().sum::<f64>() / data.len() as f64
}

/// Unbiased sample variance (n−1 denominator); `NaN` for fewer than two
/// samples.
pub fn variance(data: &[f64]) -> f64 {
    if data.len() < 2 {
        return f64::NAN;
    }
    let m = mean(data);
    data.iter().map(|&x| (x - m) * (x - m)).sum::<f64>() / (data.len() - 1) as f64
}

/// Sample standard deviation; `NaN` for fewer than two samples.
pub fn std_dev(data: &[f64]) -> f64 {
    variance(data).sqrt()
}

/// Minimum value; `NaN` for an empty slice.
pub fn min(data: &[f64]) -> f64 {
    data.iter()
        .copied()
        .fold(f64::NAN, |acc, v| if acc.is_nan() { v } else { acc.min(v) })
}

/// Maximum value; `NaN` for an empty slice.
pub fn max(data: &[f64]) -> f64 {
    data.iter()
        .copied()
        .fold(f64::NAN, |acc, v| if acc.is_nan() { v } else { acc.max(v) })
}

/// Range (`max − min`); `NaN` for an empty slice.
pub fn range(data: &[f64]) -> f64 {
    max(data) - min(data)
}

/// Quantile `q ∈ [0, 1]` with linear interpolation between order statistics;
/// `NaN` for an empty slice.
///
/// # Panics
///
/// Panics if `q` is outside `[0, 1]`.
pub fn quantile(data: &[f64], q: f64) -> f64 {
    assert!((0.0..=1.0).contains(&q), "quantile {q} outside [0, 1]");
    if data.is_empty() {
        return f64::NAN;
    }
    let mut sorted = data.to_vec();
    sorted.sort_by(f64::total_cmp);
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Median (0.5 quantile); `NaN` for an empty slice.
pub fn median(data: &[f64]) -> f64 {
    quantile(data, 0.5)
}

/// One-pass descriptive summary of a sample.
///
/// # Example
///
/// ```
/// use smarteryou_stats::Summary;
///
/// let s = Summary::from_slice(&[1.0, 2.0, 3.0, 4.0]);
/// assert_eq!(s.mean, 2.5);
/// assert_eq!(s.min, 1.0);
/// assert_eq!(s.max, 4.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Unbiased sample variance.
    pub variance: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
}

impl Summary {
    /// Computes the summary of `data`. Mean/variance/min/max are `NaN` when
    /// undefined for the sample size.
    pub fn from_slice(data: &[f64]) -> Self {
        Summary {
            count: data.len(),
            mean: mean(data),
            variance: variance(data),
            min: min(data),
            max: max(data),
        }
    }

    /// Range (`max − min`).
    pub fn range(&self) -> f64 {
        self.max - self.min
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance.sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance_of_known_sample() {
        let data = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&data) - 5.0).abs() < 1e-12);
        // Sum of squared deviations = 32; unbiased variance = 32/7.
        assert!((variance(&data) - 32.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn empty_slices_produce_nan() {
        assert!(mean(&[]).is_nan());
        assert!(variance(&[1.0]).is_nan());
        assert!(min(&[]).is_nan());
        assert!(max(&[]).is_nan());
        assert!(median(&[]).is_nan());
    }

    #[test]
    fn min_max_range() {
        let data = [3.0, -1.0, 4.0, 1.5];
        assert_eq!(min(&data), -1.0);
        assert_eq!(max(&data), 4.0);
        assert_eq!(range(&data), 5.0);
    }

    #[test]
    fn quantiles_interpolate() {
        let data = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&data, 0.0), 1.0);
        assert_eq!(quantile(&data, 1.0), 4.0);
        assert_eq!(median(&data), 2.5);
        assert_eq!(quantile(&data, 0.25), 1.75);
    }

    #[test]
    fn quantile_handles_unsorted_input() {
        let data = [9.0, 1.0, 5.0];
        assert_eq!(median(&data), 5.0);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn quantile_rejects_out_of_range() {
        quantile(&[1.0], 1.5);
    }

    #[test]
    fn summary_matches_free_functions() {
        let data = [1.0, 2.0, 3.0];
        let s = Summary::from_slice(&data);
        assert_eq!(s.count, 3);
        assert_eq!(s.mean, mean(&data));
        assert_eq!(s.variance, variance(&data));
        assert_eq!(s.range(), 2.0);
        assert!((s.std_dev() - 1.0).abs() < 1e-12);
    }
}
