use serde::{Deserialize, Serialize};

/// Result of a two-sample Kolmogorov–Smirnov test.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KsOutcome {
    /// The KS statistic: the maximum distance between the two empirical CDFs.
    pub statistic: f64,
    /// Asymptotic two-sided p-value (probability of a distance at least this
    /// large under H₀: both samples come from the same distribution).
    pub p_value: f64,
}

impl KsOutcome {
    /// Whether H₀ is rejected at significance level `alpha` — i.e. the
    /// samples are significantly different. In the paper's feature-selection
    /// procedure (§V-C) a *rejection* marks a "good" discriminating feature.
    pub fn rejects_h0(&self, alpha: f64) -> bool {
        self.p_value < alpha
    }
}

/// Two-sample KS statistic: `sup |F₁(x) − F₂(x)|` over the pooled sample.
///
/// Returns `NaN` if either sample is empty.
pub fn ks_statistic(a: &[f64], b: &[f64]) -> f64 {
    if a.is_empty() || b.is_empty() {
        return f64::NAN;
    }
    let mut sa = a.to_vec();
    let mut sb = b.to_vec();
    sa.sort_by(f64::total_cmp);
    sb.sort_by(f64::total_cmp);
    let (na, nb) = (sa.len(), sb.len());
    let (mut ia, mut ib) = (0usize, 0usize);
    let mut d: f64 = 0.0;
    while ia < na && ib < nb {
        let xa = sa[ia];
        let xb = sb[ib];
        let x = xa.min(xb);
        while ia < na && sa[ia] <= x {
            ia += 1;
        }
        while ib < nb && sb[ib] <= x {
            ib += 1;
        }
        let fa = ia as f64 / na as f64;
        let fb = ib as f64 / nb as f64;
        d = d.max((fa - fb).abs());
    }
    d
}

/// Two-sample Kolmogorov–Smirnov test with the asymptotic p-value used by
/// the paper's feature-quality screening (Figure 3).
///
/// The p-value uses the Kolmogorov distribution
/// `Q(λ) = 2 Σ_{k≥1} (−1)^{k−1} e^{−2k²λ²}` with the standard
/// finite-sample correction `λ = (√nₑ + 0.12 + 0.11/√nₑ)·D` where
/// `nₑ = n₁n₂/(n₁+n₂)` (Numerical Recipes form).
///
/// Returns a `NaN` statistic and p-value 1.0 if either sample is empty.
pub fn ks_test(a: &[f64], b: &[f64]) -> KsOutcome {
    let d = ks_statistic(a, b);
    if d.is_nan() {
        return KsOutcome {
            statistic: d,
            p_value: 1.0,
        };
    }
    let ne = (a.len() * b.len()) as f64 / (a.len() + b.len()) as f64;
    let sqrt_ne = ne.sqrt();
    let lambda = (sqrt_ne + 0.12 + 0.11 / sqrt_ne) * d;
    KsOutcome {
        statistic: d,
        p_value: kolmogorov_q(lambda),
    }
}

/// Complementary CDF of the Kolmogorov distribution.
fn kolmogorov_q(lambda: f64) -> f64 {
    if lambda <= 0.0 {
        return 1.0;
    }
    let mut sum = 0.0;
    let mut sign = 1.0;
    let l2 = lambda * lambda;
    for k in 1..=100 {
        let term = sign * (-2.0 * (k as f64) * (k as f64) * l2).exp();
        sum += term;
        if term.abs() < 1e-12 {
            break;
        }
        sign = -sign;
    }
    (2.0 * sum).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic pseudo-uniform sample in [0, 1).
    fn uniformish(n: usize, seed: u64) -> Vec<f64> {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        (0..n)
            .map(|_| {
                // xorshift64*
                state ^= state >> 12;
                state ^= state << 25;
                state ^= state >> 27;
                (state.wrapping_mul(0x2545F4914F6CDD1D) >> 11) as f64 / (1u64 << 53) as f64
            })
            .collect()
    }

    #[test]
    fn identical_samples_have_zero_distance() {
        let a = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(ks_statistic(&a, &a), 0.0);
        let t = ks_test(&a, &a);
        assert!(t.p_value > 0.99);
        assert!(!t.rejects_h0(0.05));
    }

    #[test]
    fn disjoint_samples_have_distance_one() {
        let a = [1.0, 2.0, 3.0];
        let b = [10.0, 11.0, 12.0];
        assert_eq!(ks_statistic(&a, &b), 1.0);
    }

    #[test]
    fn known_small_example() {
        // F_a jumps at 1,2 (n=2); F_b jumps at 1.5 (n=1). Max gap = 0.5 at x in [1,1.5).
        let d = ks_statistic(&[1.0, 2.0], &[1.5]);
        assert!((d - 0.5).abs() < 1e-12);
    }

    #[test]
    fn same_distribution_rarely_rejected() {
        let a = uniformish(300, 7);
        let b = uniformish(300, 13);
        let t = ks_test(&a, &b);
        assert!(t.p_value > 0.05, "p={} too small for same dist", t.p_value);
    }

    #[test]
    fn shifted_distribution_rejected() {
        let a = uniformish(300, 7);
        let b: Vec<f64> = uniformish(300, 13).iter().map(|v| v + 0.4).collect();
        let t = ks_test(&a, &b);
        assert!(t.rejects_h0(0.05), "p={} should reject", t.p_value);
    }

    #[test]
    fn empty_sample_is_inconclusive() {
        let t = ks_test(&[], &[1.0]);
        assert!(t.statistic.is_nan());
        assert_eq!(t.p_value, 1.0);
    }

    #[test]
    fn kolmogorov_q_is_monotone_decreasing() {
        let qs: Vec<f64> = (1..20).map(|i| kolmogorov_q(i as f64 * 0.2)).collect();
        for w in qs.windows(2) {
            assert!(w[0] >= w[1] - 1e-12);
        }
        assert!(kolmogorov_q(0.0) == 1.0);
        assert!(kolmogorov_q(3.0) < 1e-6);
    }
}
