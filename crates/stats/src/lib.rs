//! Statistics substrate for the SmarterYou reproduction.
//!
//! The paper's feature-engineering methodology rests on three statistical
//! tools, all implemented here from scratch:
//!
//! * **Fisher scores** (§V-B, Table II) for sensor selection,
//! * the **two-sample Kolmogorov–Smirnov test** (§V-C, Figure 3) for
//!   dropping features that cannot distinguish user pairs, and
//! * **Pearson correlation** (§V-C/D, Tables III & IV) for dropping
//!   redundant features and justifying the two-device design.
//!
//! Evaluation metrics (confusion matrices, FAR/FRR/accuracy/EER, box-plot
//! summaries for Figure 3) live here too, shared by the ML crate and the
//! benchmark harness.

mod boxplot;
mod confusion;
mod correlation;
mod descriptive;
mod fisher;
mod ks;
mod metrics;

pub use boxplot::BoxStats;
pub use confusion::ConfusionMatrix;
pub use correlation::{pearson, spearman};
pub use descriptive::{max, mean, median, min, quantile, range, std_dev, variance, Summary};
pub use fisher::fisher_score;
pub use ks::{ks_statistic, ks_test, KsOutcome};
pub use metrics::{equal_error_rate, BinaryOutcomes, RocPoint};
