use crate::descriptive::{mean, variance};

/// Fisher score of a scalar feature across labelled groups (§V-B, Table II).
///
/// `groups` holds the feature's samples for each class (here: each user).
/// The score is
///
/// ```text
///        Σ_c n_c (μ_c − μ)²
/// FS = ──────────────────────
///         Σ_c n_c σ_c²
/// ```
///
/// — large when classes are far apart relative to their internal spread, so
/// a sensor with a high Fisher score separates users well. Returns `NaN`
/// when fewer than two non-empty groups exist or the within-class variance
/// is zero.
///
/// # Example
///
/// ```
/// use smarteryou_stats::fisher_score;
///
/// // Two users with well-separated feature values score high…
/// let separated = fisher_score(&[vec![1.0, 1.1, 0.9], vec![5.0, 5.1, 4.9]]);
/// // …two users with overlapping values score low.
/// let overlapping = fisher_score(&[vec![1.0, 1.5, 2.0], vec![1.2, 1.6, 2.1]]);
/// assert!(separated > 10.0 * overlapping);
/// ```
pub fn fisher_score(groups: &[Vec<f64>]) -> f64 {
    let nonempty: Vec<&Vec<f64>> = groups.iter().filter(|g| g.len() >= 2).collect();
    if nonempty.len() < 2 {
        return f64::NAN;
    }
    let total: usize = nonempty.iter().map(|g| g.len()).sum();
    let grand_mean = nonempty.iter().flat_map(|g| g.iter()).sum::<f64>() / total as f64;

    let mut between = 0.0;
    let mut within = 0.0;
    for g in &nonempty {
        let n = g.len() as f64;
        let m = mean(g);
        between += n * (m - grand_mean) * (m - grand_mean);
        within += n * variance(g);
    }
    if within == 0.0 {
        return f64::NAN;
    }
    between / within
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn separated_groups_score_higher_than_overlapping() {
        let sep = fisher_score(&[vec![0.0, 0.1, -0.1], vec![10.0, 10.1, 9.9]]);
        let ovl = fisher_score(&[vec![0.0, 1.0, 2.0], vec![0.5, 1.5, 2.5]]);
        assert!(sep > ovl);
        assert!(sep > 100.0);
    }

    #[test]
    fn identical_groups_score_zero() {
        let fs = fisher_score(&[vec![1.0, 2.0, 3.0], vec![1.0, 2.0, 3.0]]);
        assert!(fs.abs() < 1e-12);
    }

    #[test]
    fn degenerate_inputs_are_nan() {
        assert!(fisher_score(&[]).is_nan());
        assert!(fisher_score(&[vec![1.0, 2.0]]).is_nan());
        // Groups with fewer than 2 samples are ignored.
        assert!(fisher_score(&[vec![1.0], vec![2.0]]).is_nan());
        // Zero within-class variance.
        assert!(fisher_score(&[vec![1.0, 1.0], vec![2.0, 2.0]]).is_nan());
    }

    #[test]
    fn scale_invariance_of_ratio() {
        let base = vec![vec![0.0, 0.2, -0.2, 0.1], vec![1.0, 1.2, 0.8, 1.1]];
        let scaled: Vec<Vec<f64>> = base
            .iter()
            .map(|g| g.iter().map(|v| v * 7.0).collect())
            .collect();
        let a = fisher_score(&base);
        let b = fisher_score(&scaled);
        assert!((a - b).abs() < 1e-9, "{a} vs {b}");
    }

    #[test]
    fn more_classes_supported() {
        let fs = fisher_score(&[vec![0.0, 0.1], vec![5.0, 5.1], vec![10.0, 10.1]]);
        assert!(fs > 100.0);
    }
}
