use serde::{Deserialize, Serialize};

use crate::descriptive::quantile;

/// Five-number box-plot summary, matching the box plots of Figure 3 (KS-test
/// p-values per feature).
///
/// Whiskers follow the Tukey convention: the most extreme data points within
/// 1.5 × IQR of the quartiles.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BoxStats {
    /// Lower whisker (smallest point ≥ Q1 − 1.5·IQR).
    pub lower_whisker: f64,
    /// Lower quartile (25th percentile).
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Upper quartile (75th percentile).
    pub q3: f64,
    /// Upper whisker (largest point ≤ Q3 + 1.5·IQR).
    pub upper_whisker: f64,
}

impl BoxStats {
    /// Computes box statistics; returns `None` for an empty sample.
    pub fn from_slice(data: &[f64]) -> Option<Self> {
        if data.is_empty() {
            return None;
        }
        let q1 = quantile(data, 0.25);
        let median = quantile(data, 0.5);
        let q3 = quantile(data, 0.75);
        let iqr = q3 - q1;
        let lo_fence = q1 - 1.5 * iqr;
        let hi_fence = q3 + 1.5 * iqr;
        let lower_whisker = data
            .iter()
            .copied()
            .filter(|&v| v >= lo_fence)
            .fold(f64::INFINITY, f64::min);
        let upper_whisker = data
            .iter()
            .copied()
            .filter(|&v| v <= hi_fence)
            .fold(f64::NEG_INFINITY, f64::max);
        Some(BoxStats {
            lower_whisker,
            q1,
            median,
            q3,
            upper_whisker,
        })
    }

    /// Interquartile range.
    pub fn iqr(&self) -> f64 {
        self.q3 - self.q1
    }

    /// Fraction of the sample strictly below `threshold` — used to report
    /// how much of a feature's p-value box sits under the α = 0.05 line in
    /// Figure 3.
    pub fn fraction_below(data: &[f64], threshold: f64) -> f64 {
        if data.is_empty() {
            return f64::NAN;
        }
        data.iter().filter(|&&v| v < threshold).count() as f64 / data.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quartiles_of_known_sample() {
        let data: Vec<f64> = (1..=9).map(|i| i as f64).collect();
        let b = BoxStats::from_slice(&data).unwrap();
        assert_eq!(b.median, 5.0);
        assert_eq!(b.q1, 3.0);
        assert_eq!(b.q3, 7.0);
        assert_eq!(b.iqr(), 4.0);
        assert_eq!(b.lower_whisker, 1.0);
        assert_eq!(b.upper_whisker, 9.0);
    }

    #[test]
    fn whiskers_exclude_outliers() {
        let mut data: Vec<f64> = (1..=9).map(|i| i as f64).collect();
        data.push(100.0); // far outlier
        let b = BoxStats::from_slice(&data).unwrap();
        assert!(b.upper_whisker < 100.0);
    }

    #[test]
    fn empty_is_none() {
        assert!(BoxStats::from_slice(&[]).is_none());
    }

    #[test]
    fn ordering_invariant() {
        let data = [0.2, 0.01, 0.5, 0.03, 0.9, 0.04];
        let b = BoxStats::from_slice(&data).unwrap();
        assert!(b.lower_whisker <= b.q1);
        assert!(b.q1 <= b.median);
        assert!(b.median <= b.q3);
        assert!(b.q3 <= b.upper_whisker);
    }

    #[test]
    fn fraction_below_threshold() {
        let data = [0.01, 0.02, 0.2, 0.6];
        assert_eq!(BoxStats::fraction_below(&data, 0.05), 0.5);
        assert!(BoxStats::fraction_below(&[], 0.05).is_nan());
    }
}
