use serde::{Deserialize, Serialize};

/// Outcome counts of a binary authentication experiment.
///
/// Terminology follows the paper (§V-F3): the *positive* class is the
/// legitimate user.
///
/// * **FRR** (false reject rate): fraction of the legitimate user's windows
///   misclassified as someone else.
/// * **FAR** (false accept rate): fraction of other users' windows
///   misclassified as the legitimate user.
///
/// # Example
///
/// ```
/// use smarteryou_stats::BinaryOutcomes;
///
/// let mut o = BinaryOutcomes::default();
/// o.record(true, true);   // legitimate accepted
/// o.record(true, false);  // legitimate rejected -> FRR
/// o.record(false, false); // impostor rejected
/// o.record(false, true);  // impostor accepted -> FAR
/// assert_eq!(o.frr(), 0.5);
/// assert_eq!(o.far(), 0.5);
/// assert_eq!(o.accuracy(), 0.5);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BinaryOutcomes {
    /// Legitimate windows accepted (true positives).
    pub true_accepts: u64,
    /// Legitimate windows rejected (false negatives).
    pub false_rejects: u64,
    /// Impostor windows rejected (true negatives).
    pub true_rejects: u64,
    /// Impostor windows accepted (false positives).
    pub false_accepts: u64,
}

impl BinaryOutcomes {
    /// Creates empty outcome counts (same as `default()`).
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one decision: `legitimate` is ground truth, `accepted` the
    /// classifier's verdict.
    pub fn record(&mut self, legitimate: bool, accepted: bool) {
        match (legitimate, accepted) {
            (true, true) => self.true_accepts += 1,
            (true, false) => self.false_rejects += 1,
            (false, true) => self.false_accepts += 1,
            (false, false) => self.true_rejects += 1,
        }
    }

    /// Total decisions recorded.
    pub fn total(&self) -> u64 {
        self.true_accepts + self.false_rejects + self.true_rejects + self.false_accepts
    }

    /// False reject rate; `NaN` with no legitimate observations.
    pub fn frr(&self) -> f64 {
        let n = self.true_accepts + self.false_rejects;
        if n == 0 {
            return f64::NAN;
        }
        self.false_rejects as f64 / n as f64
    }

    /// False accept rate; `NaN` with no impostor observations.
    pub fn far(&self) -> f64 {
        let n = self.true_rejects + self.false_accepts;
        if n == 0 {
            return f64::NAN;
        }
        self.false_accepts as f64 / n as f64
    }

    /// Balanced accuracy: the paper reports accuracy alongside FAR/FRR on
    /// class-imbalanced data (1 legitimate user vs 34 impostors), which only
    /// squares with the reported numbers when accuracy averages the
    /// per-class rates, i.e. `1 − (FAR + FRR)/2`.
    pub fn accuracy(&self) -> f64 {
        1.0 - (self.far() + self.frr()) / 2.0
    }

    /// Raw (unbalanced) accuracy over all decisions; `NaN` when empty.
    pub fn raw_accuracy(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return f64::NAN;
        }
        (self.true_accepts + self.true_rejects) as f64 / total as f64
    }

    /// Merges counts from another experiment run.
    pub fn merge(&mut self, other: &BinaryOutcomes) {
        self.true_accepts += other.true_accepts;
        self.false_rejects += other.false_rejects;
        self.true_rejects += other.true_rejects;
        self.false_accepts += other.false_accepts;
    }
}

/// One operating point on a ROC sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RocPoint {
    /// Decision threshold producing this point.
    pub threshold: f64,
    /// False accept rate at this threshold.
    pub far: f64,
    /// False reject rate at this threshold.
    pub frr: f64,
}

/// Sweeps a decision threshold over scored samples and returns the operating
/// point closest to the equal error rate (FAR == FRR), along with the full
/// ROC curve.
///
/// `scores` are classifier confidence values; `labels[i]` is `true` for the
/// legitimate user. Samples with `score >= threshold` are accepted.
///
/// Returns `None` if either class is absent.
pub fn equal_error_rate(scores: &[f64], labels: &[bool]) -> Option<(RocPoint, Vec<RocPoint>)> {
    assert_eq!(scores.len(), labels.len(), "scores/labels length mismatch");
    let positives = labels.iter().filter(|&&l| l).count();
    let negatives = labels.len() - positives;
    if positives == 0 || negatives == 0 {
        return None;
    }

    let mut thresholds: Vec<f64> = scores.to_vec();
    thresholds.sort_by(f64::total_cmp);
    thresholds.dedup();

    let mut curve = Vec::with_capacity(thresholds.len() + 1);
    let mut best: Option<RocPoint> = None;
    // Include a threshold above the max so the all-reject point is present.
    let top = thresholds.last().copied().unwrap_or(0.0) + 1.0;
    for &t in thresholds.iter().chain(std::iter::once(&top)) {
        let mut o = BinaryOutcomes::default();
        for (&s, &l) in scores.iter().zip(labels) {
            o.record(l, s >= t);
        }
        let p = RocPoint {
            threshold: t,
            far: o.far(),
            frr: o.frr(),
        };
        curve.push(p);
        let gap = (p.far - p.frr).abs();
        if best.is_none_or(|b| gap < (b.far - b.frr).abs()) {
            best = Some(p);
        }
    }
    best.map(|b| (b, curve))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_from_known_counts() {
        let o = BinaryOutcomes {
            true_accepts: 90,
            false_rejects: 10,
            true_rejects: 95,
            false_accepts: 5,
        };
        assert!((o.frr() - 0.10).abs() < 1e-12);
        assert!((o.far() - 0.05).abs() < 1e-12);
        assert!((o.accuracy() - 0.925).abs() < 1e-12);
        assert!((o.raw_accuracy() - 185.0 / 200.0).abs() < 1e-12);
    }

    #[test]
    fn empty_class_rates_are_nan() {
        let o = BinaryOutcomes::default();
        assert!(o.frr().is_nan());
        assert!(o.far().is_nan());
    }

    #[test]
    fn merge_accumulates() {
        let mut a = BinaryOutcomes::default();
        a.record(true, true);
        let mut b = BinaryOutcomes::default();
        b.record(false, false);
        a.merge(&b);
        assert_eq!(a.total(), 2);
        assert_eq!(a.true_rejects, 1);
    }

    #[test]
    fn eer_of_separable_scores_is_zero() {
        let scores = [0.9, 0.8, 0.85, 0.1, 0.2, 0.15];
        let labels = [true, true, true, false, false, false];
        let (eer, curve) = equal_error_rate(&scores, &labels).unwrap();
        assert!(eer.far < 1e-12 && eer.frr < 1e-12);
        assert!(curve.len() >= scores.len());
    }

    #[test]
    fn eer_of_random_scores_is_positive() {
        let scores = [0.6, 0.4, 0.55, 0.45, 0.5, 0.52];
        let labels = [true, true, false, false, true, false];
        let (eer, _) = equal_error_rate(&scores, &labels).unwrap();
        assert!(eer.far > 0.0 || eer.frr > 0.0);
    }

    #[test]
    fn eer_requires_both_classes() {
        assert!(equal_error_rate(&[0.5, 0.7], &[true, true]).is_none());
        assert!(equal_error_rate(&[0.5, 0.7], &[false, false]).is_none());
    }
}
