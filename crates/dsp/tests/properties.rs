//! Property-based tests for the DSP substrate.

use proptest::prelude::*;
use smarteryou_dsp::{
    dft, fft, ifft, magnitude_spectrum, Complex, FftPlan, FftScratch, Segmenter, SpectrumPlan,
    SpectrumScratch, WindowFunction,
};

fn real_buf(len: usize) -> impl Strategy<Value = Vec<Complex>> {
    prop::collection::vec(-100.0..100.0f64, len)
        .prop_map(|v| v.into_iter().map(Complex::from_real).collect())
}

/// A random length in `2..=512` together with a signal of that length.
/// Always includes the paper's deployed 300-sample window via the explicit
/// case below; here lengths are drawn uniformly, covering radix-2 and
/// Bluestein strategies alike.
fn sized_buf() -> impl Strategy<Value = Vec<Complex>> {
    (2usize..=512, prop::collection::vec(-100.0..100.0f64, 512)).prop_map(|(len, v)| {
        v.into_iter()
            .take(len)
            .map(Complex::from_real)
            .collect::<Vec<Complex>>()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn ifft_fft_roundtrip_pow2(x in real_buf(64)) {
        let back = ifft(&fft(&x));
        for (a, b) in back.iter().zip(&x) {
            prop_assert!((a.re - b.re).abs() < 1e-7);
            prop_assert!(a.im.abs() < 1e-7);
        }
    }

    #[test]
    fn ifft_fft_roundtrip_arbitrary(x in real_buf(75)) {
        let back = ifft(&fft(&x));
        for (a, b) in back.iter().zip(&x) {
            prop_assert!((a.re - b.re).abs() < 1e-6);
        }
    }

    #[test]
    fn fft_matches_dft(x in real_buf(32)) {
        let a = fft(&x);
        let b = dft(&x);
        for (l, r) in a.iter().zip(&b) {
            prop_assert!((l.re - r.re).abs() < 1e-6);
            prop_assert!((l.im - r.im).abs() < 1e-6);
        }
    }

    #[test]
    fn fft_is_linear(x in real_buf(32), y in real_buf(32), k in -5.0..5.0f64) {
        let combined: Vec<Complex> = x.iter().zip(&y)
            .map(|(a, b)| *a + b.scale(k))
            .collect();
        let lhs = fft(&combined);
        let fx = fft(&x);
        let fy = fft(&y);
        for i in 0..32 {
            let rhs = fx[i] + fy[i].scale(k);
            prop_assert!((lhs[i].re - rhs.re).abs() < 1e-6);
            prop_assert!((lhs[i].im - rhs.im).abs() < 1e-6);
        }
    }

    #[test]
    fn planned_fft_matches_dft_at_any_length(x in sized_buf()) {
        // Bluestein (and radix-2, when the drawn length happens to be a
        // power of two) must agree with the O(n²) reference at every
        // length — the property that lets the planned path replace the
        // quadratic fallback wholesale.
        let mut buf = x.clone();
        FftPlan::new(x.len()).process(&mut buf, &mut FftScratch::default());
        let reference = dft(&x);
        let tol = 1e-8 * x.len() as f64;
        for (l, r) in buf.iter().zip(&reference) {
            prop_assert!((l.re - r.re).abs() < tol, "{l:?} vs {r:?}");
            prop_assert!((l.im - r.im).abs() < tol, "{l:?} vs {r:?}");
        }
    }

    #[test]
    fn planned_fft_matches_dft_at_paper_window(x in real_buf(300)) {
        // The deployed 6 s × 50 Hz window, pinned explicitly.
        let mut buf = x.clone();
        FftPlan::new(300).process(&mut buf, &mut FftScratch::default());
        let reference = dft(&x);
        for (l, r) in buf.iter().zip(&reference) {
            prop_assert!((l.re - r.re).abs() < 1e-6);
            prop_assert!((l.im - r.im).abs() < 1e-6);
        }
    }

    #[test]
    fn planned_spectrum_is_bit_identical_to_magnitude_spectrum(
        signal in prop::collection::vec(-50.0..50.0f64, 2..400),
    ) {
        // The free function is a thin wrapper over the plan; reusing a
        // plan + scratch across calls must not change a single bit — the
        // contract the core feature cache relies on.
        let plan = SpectrumPlan::new(signal.len());
        let mut scratch = SpectrumScratch::default();
        let mut planned = Vec::new();
        plan.magnitude_into(&signal, &mut scratch, &mut planned);
        plan.magnitude_into(&signal, &mut scratch, &mut planned); // reused scratch
        let naive = magnitude_spectrum(&signal);
        prop_assert_eq!(planned.len(), naive.len());
        for (a, b) in planned.iter().zip(&naive) {
            prop_assert!(a.to_bits() == b.to_bits(), "{a} vs {b}");
        }
    }

    #[test]
    fn spectrum_is_nonnegative_and_sized(signal in prop::collection::vec(-50.0..50.0f64, 10..200)) {
        let spec = magnitude_spectrum(&signal);
        prop_assert_eq!(spec.len(), signal.len() / 2 + 1);
        prop_assert!(spec.iter().all(|&m| m >= 0.0));
    }

    #[test]
    fn spectrum_invariant_to_dc_offset(
        signal in prop::collection::vec(-10.0..10.0f64, 64),
        offset in -100.0..100.0f64,
    ) {
        let shifted: Vec<f64> = signal.iter().map(|&s| s + offset).collect();
        let a = magnitude_spectrum(&signal);
        let b = magnitude_spectrum(&shifted);
        for (l, r) in a.iter().zip(&b) {
            prop_assert!((l - r).abs() < 1e-7);
        }
    }

    #[test]
    fn window_coefficients_bounded(n in 2usize..64) {
        for wf in [WindowFunction::Rectangular, WindowFunction::Hann, WindowFunction::Hamming] {
            for c in wf.coefficients(n) {
                prop_assert!((-1e-12..=1.0 + 1e-12).contains(&c));
            }
        }
    }

    #[test]
    fn segmenter_count_is_consistent(
        window in 1usize..50,
        hop in 1usize..50,
        n in 0usize..500,
    ) {
        let seg = Segmenter::new(window, hop).unwrap();
        let data = vec![0.0; n];
        prop_assert_eq!(seg.count(n), seg.windows(&data).count());
        // Every produced window has the full length.
        prop_assert!(seg.windows(&data).all(|w| w.len() == window));
    }
}
