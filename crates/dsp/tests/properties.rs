//! Property-based tests for the DSP substrate.

use proptest::prelude::*;
use smarteryou_dsp::{dft, fft, ifft, magnitude_spectrum, Complex, Segmenter, WindowFunction};

fn real_buf(len: usize) -> impl Strategy<Value = Vec<Complex>> {
    prop::collection::vec(-100.0..100.0f64, len)
        .prop_map(|v| v.into_iter().map(Complex::from_real).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn ifft_fft_roundtrip_pow2(x in real_buf(64)) {
        let back = ifft(&fft(&x));
        for (a, b) in back.iter().zip(&x) {
            prop_assert!((a.re - b.re).abs() < 1e-7);
            prop_assert!(a.im.abs() < 1e-7);
        }
    }

    #[test]
    fn ifft_fft_roundtrip_arbitrary(x in real_buf(75)) {
        let back = ifft(&fft(&x));
        for (a, b) in back.iter().zip(&x) {
            prop_assert!((a.re - b.re).abs() < 1e-6);
        }
    }

    #[test]
    fn fft_matches_dft(x in real_buf(32)) {
        let a = fft(&x);
        let b = dft(&x);
        for (l, r) in a.iter().zip(&b) {
            prop_assert!((l.re - r.re).abs() < 1e-6);
            prop_assert!((l.im - r.im).abs() < 1e-6);
        }
    }

    #[test]
    fn fft_is_linear(x in real_buf(32), y in real_buf(32), k in -5.0..5.0f64) {
        let combined: Vec<Complex> = x.iter().zip(&y)
            .map(|(a, b)| *a + b.scale(k))
            .collect();
        let lhs = fft(&combined);
        let fx = fft(&x);
        let fy = fft(&y);
        for i in 0..32 {
            let rhs = fx[i] + fy[i].scale(k);
            prop_assert!((lhs[i].re - rhs.re).abs() < 1e-6);
            prop_assert!((lhs[i].im - rhs.im).abs() < 1e-6);
        }
    }

    #[test]
    fn spectrum_is_nonnegative_and_sized(signal in prop::collection::vec(-50.0..50.0f64, 10..200)) {
        let spec = magnitude_spectrum(&signal);
        prop_assert_eq!(spec.len(), signal.len() / 2 + 1);
        prop_assert!(spec.iter().all(|&m| m >= 0.0));
    }

    #[test]
    fn spectrum_invariant_to_dc_offset(
        signal in prop::collection::vec(-10.0..10.0f64, 64),
        offset in -100.0..100.0f64,
    ) {
        let shifted: Vec<f64> = signal.iter().map(|&s| s + offset).collect();
        let a = magnitude_spectrum(&signal);
        let b = magnitude_spectrum(&shifted);
        for (l, r) in a.iter().zip(&b) {
            prop_assert!((l - r).abs() < 1e-7);
        }
    }

    #[test]
    fn window_coefficients_bounded(n in 2usize..64) {
        for wf in [WindowFunction::Rectangular, WindowFunction::Hann, WindowFunction::Hamming] {
            for c in wf.coefficients(n) {
                prop_assert!((-1e-12..=1.0 + 1e-12).contains(&c));
            }
        }
    }

    #[test]
    fn segmenter_count_is_consistent(
        window in 1usize..50,
        hop in 1usize..50,
        n in 0usize..500,
    ) {
        let seg = Segmenter::new(window, hop).unwrap();
        let data = vec![0.0; n];
        prop_assert_eq!(seg.count(n), seg.windows(&data).count());
        // Every produced window has the full length.
        prop_assert!(seg.windows(&data).all(|w| w.len() == window));
    }
}
