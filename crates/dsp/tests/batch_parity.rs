//! Parity proptests pinning the batched (4-lane SoA) spectrum path and the
//! chunked magnitude kernel to their scalar references. The batched FFT is
//! bit-identical per lane at every transform stage; the one allowed
//! deviation is the final `sqrt(re² + im²)` magnitude vs `hypot`, so the
//! spectrum bound here is a tight relative epsilon, while the magnitude
//! series is required to be bit-equal.

use proptest::prelude::*;
use proptest::TestCaseError;
use smarteryou_dsp::{
    axis_magnitude, magnitude_series_into, BatchSpectrumScratch, SpectrumPlan, SpectrumScratch,
};

/// Four distinct same-length signals plus the length, drawn so radix-2
/// (powers of two), Bluestein (odd / prime) and the packed-real even path
/// all appear; the deployed 300-sample window is pinned in the fixed case
/// below.
fn four_lanes() -> impl Strategy<Value = (usize, Vec<f64>)> {
    (1usize..=320, prop::collection::vec(-50.0..50.0f64, 4 * 320)).prop_map(|(n, pool)| (n, pool))
}

fn check_batch_matches_scalar(n: usize, pool: &[f64]) -> Result<(), TestCaseError> {
    let lanes: Vec<Vec<f64>> = (0..4).map(|l| pool[l * n..(l + 1) * n].to_vec()).collect();
    let plan = SpectrumPlan::new(n);

    let mut scalar_scratch = SpectrumScratch::default();
    let mut expected = vec![Vec::new(); 4];
    for (lane, out) in lanes.iter().zip(expected.iter_mut()) {
        plan.magnitude_into(lane, &mut scalar_scratch, out);
    }

    let mut batch_scratch = BatchSpectrumScratch::default();
    let (mut g0, mut g1, mut g2, mut g3) = (Vec::new(), Vec::new(), Vec::new(), Vec::new());
    plan.magnitude_batch4_into(
        [
            lanes[0].as_slice(),
            lanes[1].as_slice(),
            lanes[2].as_slice(),
            lanes[3].as_slice(),
        ],
        &mut batch_scratch,
        [&mut g0, &mut g1, &mut g2, &mut g3],
    );

    for (lane, (got, want)) in [g0, g1, g2, g3].iter().zip(&expected).enumerate() {
        prop_assert_eq!(got.len(), want.len());
        for (k, (&a, &b)) in got.iter().zip(want.iter()).enumerate() {
            let tol = 1e-12 * b.abs().max(1e-9);
            prop_assert!(
                (a - b).abs() <= tol,
                "lane {} bin {}: batched {} vs scalar {}",
                lane,
                k,
                a,
                b
            );
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn batched_spectrum_matches_scalar((n, pool) in four_lanes()) {
        check_batch_matches_scalar(n, &pool)?;
    }

    /// The chunked magnitude kernel must be **bit-identical** to mapping
    /// [`axis_magnitude`] over the axes — it sits on both the fast and the
    /// reference extraction paths.
    #[test]
    fn magnitude_series_is_bit_identical_to_axis_magnitude(
        xyz in prop::collection::vec((-40.0..40.0f64, -40.0..40.0f64, -40.0..40.0f64), 0..=310)
    ) {
        let x: Vec<f64> = xyz.iter().map(|t| t.0).collect();
        let y: Vec<f64> = xyz.iter().map(|t| t.1).collect();
        let z: Vec<f64> = xyz.iter().map(|t| t.2).collect();
        let mut out = Vec::new();
        magnitude_series_into(&x, &y, &z, &mut out);
        prop_assert_eq!(out.len(), xyz.len());
        for (i, &(a, b, c)) in xyz.iter().enumerate() {
            prop_assert!(
                out[i].to_bits() == axis_magnitude(a, b, c).to_bits(),
                "sample {} differs from axis_magnitude",
                i
            );
        }
    }
}

/// The deployed window lengths, pinned: 300 samples (6.0 s at 50 Hz, even →
/// packed real path over a Bluestein inner transform) and 128 (pure
/// radix-2), plus lengths straddling the 4-lane interleave boundaries.
#[test]
fn batched_spectrum_covers_deployed_lengths() {
    for n in [1usize, 2, 3, 4, 5, 127, 128, 150, 299, 300] {
        let pool: Vec<f64> = (0..4 * n)
            .map(|i| (i as f64 * 0.37).sin() * 12.0 + (i % 7) as f64)
            .collect();
        check_batch_matches_scalar(n, &pool).unwrap();
    }
}
