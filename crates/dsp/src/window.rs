use std::f64::consts::PI;

use serde::{Deserialize, Serialize};

/// Taper applied to a signal segment before the DFT.
///
/// The paper uses plain rectangular windows; Hann/Hamming are provided for
/// ablations (spectral leakage affects the `Peak`/`Peak2` features).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum WindowFunction {
    /// No taper (the paper's choice).
    #[default]
    Rectangular,
    /// Hann window: `0.5 − 0.5·cos(2πn/(N−1))`.
    Hann,
    /// Hamming window: `0.54 − 0.46·cos(2πn/(N−1))`.
    Hamming,
}

impl WindowFunction {
    /// Returns the window coefficient at index `i` of an `n`-point window.
    ///
    /// # Panics
    ///
    /// Panics if `i >= n`.
    pub fn coefficient(self, i: usize, n: usize) -> f64 {
        assert!(i < n, "window index {i} out of bounds for length {n}");
        if n == 1 {
            return 1.0;
        }
        let x = 2.0 * PI * i as f64 / (n - 1) as f64;
        match self {
            WindowFunction::Rectangular => 1.0,
            WindowFunction::Hann => 0.5 - 0.5 * x.cos(),
            WindowFunction::Hamming => 0.54 - 0.46 * x.cos(),
        }
    }

    /// Materialises the full `n`-point window.
    pub fn coefficients(self, n: usize) -> Vec<f64> {
        (0..n).map(|i| self.coefficient(i, n)).collect()
    }

    /// Returns `signal` multiplied pointwise by this window.
    pub fn apply(self, signal: &[f64]) -> Vec<f64> {
        let n = signal.len();
        signal
            .iter()
            .enumerate()
            .map(|(i, &s)| s * self.coefficient(i, n))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rectangular_is_identity() {
        let s = [1.0, 2.0, 3.0];
        assert_eq!(WindowFunction::Rectangular.apply(&s), s.to_vec());
    }

    #[test]
    fn hann_tapers_to_zero_at_edges() {
        let w = WindowFunction::Hann.coefficients(9);
        assert!(w[0].abs() < 1e-12);
        assert!(w[8].abs() < 1e-12);
        assert!((w[4] - 1.0).abs() < 1e-12); // symmetric peak in the middle
    }

    #[test]
    fn hamming_edges_are_nonzero() {
        let w = WindowFunction::Hamming.coefficients(9);
        assert!((w[0] - 0.08).abs() < 1e-12);
        assert!(w.iter().all(|&c| c > 0.0));
    }

    #[test]
    fn windows_are_symmetric() {
        for wf in [WindowFunction::Hann, WindowFunction::Hamming] {
            let w = wf.coefficients(16);
            for i in 0..8 {
                assert!((w[i] - w[15 - i]).abs() < 1e-12, "{wf:?} asymmetric at {i}");
            }
        }
    }

    #[test]
    fn single_point_window_is_one() {
        for wf in [
            WindowFunction::Rectangular,
            WindowFunction::Hann,
            WindowFunction::Hamming,
        ] {
            assert_eq!(wf.coefficient(0, 1), 1.0);
        }
    }
}
