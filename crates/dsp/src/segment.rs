/// Splits a sample stream into fixed-length windows, the unit over which
/// the paper computes its features (§V-C) and makes authentication
/// decisions (§V-F3).
///
/// # Example
///
/// ```
/// use smarteryou_dsp::Segmenter;
///
/// // 6-second windows at 50 Hz with no overlap.
/// let seg = Segmenter::new(300, 300).unwrap();
/// let stream: Vec<f64> = (0..900).map(|i| i as f64).collect();
/// let windows: Vec<&[f64]> = seg.windows(&stream).collect();
/// assert_eq!(windows.len(), 3);
/// assert_eq!(windows[1][0], 300.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Segmenter {
    window_len: usize,
    hop: usize,
}

impl Segmenter {
    /// Creates a segmenter producing `window_len`-sample windows advancing by
    /// `hop` samples (`hop == window_len` means non-overlapping).
    ///
    /// Returns `None` if either argument is zero.
    pub fn new(window_len: usize, hop: usize) -> Option<Self> {
        if window_len == 0 || hop == 0 {
            return None;
        }
        Some(Segmenter { window_len, hop })
    }

    /// Window length in samples.
    pub fn window_len(&self) -> usize {
        self.window_len
    }

    /// Hop (stride) in samples.
    pub fn hop(&self) -> usize {
        self.hop
    }

    /// Number of complete windows available in a stream of `n` samples.
    pub fn count(&self, n: usize) -> usize {
        if n < self.window_len {
            0
        } else {
            (n - self.window_len) / self.hop + 1
        }
    }

    /// Iterates over complete windows of `stream`; a trailing partial window
    /// is dropped (the pipeline waits for the next full window instead).
    pub fn windows<'a>(&self, stream: &'a [f64]) -> impl Iterator<Item = &'a [f64]> {
        let window_len = self.window_len;
        let count = self.count(stream.len());
        let hop = self.hop;
        (0..count).map(move |k| &stream[k * hop..k * hop + window_len])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_zero_parameters() {
        assert!(Segmenter::new(0, 1).is_none());
        assert!(Segmenter::new(1, 0).is_none());
    }

    #[test]
    fn non_overlapping_windows() {
        let seg = Segmenter::new(3, 3).unwrap();
        let data = [0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let w: Vec<&[f64]> = seg.windows(&data).collect();
        assert_eq!(w.len(), 2);
        assert_eq!(w[0], &[0.0, 1.0, 2.0]);
        assert_eq!(w[1], &[3.0, 4.0, 5.0]);
    }

    #[test]
    fn overlapping_windows() {
        let seg = Segmenter::new(4, 2).unwrap();
        let data: Vec<f64> = (0..8).map(|i| i as f64).collect();
        let w: Vec<&[f64]> = seg.windows(&data).collect();
        assert_eq!(w.len(), 3);
        assert_eq!(w[2], &[4.0, 5.0, 6.0, 7.0]);
    }

    #[test]
    fn short_stream_has_no_windows() {
        let seg = Segmenter::new(10, 10).unwrap();
        assert_eq!(seg.count(9), 0);
        assert_eq!(seg.windows(&[1.0; 9]).count(), 0);
    }

    #[test]
    fn count_matches_iterator() {
        let seg = Segmenter::new(5, 3).unwrap();
        for n in 0..40 {
            let data = vec![0.0; n];
            assert_eq!(seg.count(n), seg.windows(&data).count(), "n={n}");
        }
    }
}
