use serde::{Deserialize, Serialize};

use crate::plan::{SpectrumPlan, SpectrumScratch};

/// One-sided magnitude spectrum of a real signal.
///
/// Returns `floor(n/2) + 1` bins covering DC through the Nyquist frequency.
/// The signal's mean is removed before transforming so the DC bin does not
/// mask behavioural peaks (the accelerometer magnitude rides on gravity at
/// ~9.81 m/s²; without mean removal the DC bin dwarfs the gait line).
///
/// Convenience wrapper over [`SpectrumPlan`]: it plans, transforms once,
/// and returns a fresh vector, so its output is bit-identical to the planned
/// path. Hot loops over same-length windows should hold a [`SpectrumPlan`]
/// and reuse a [`SpectrumScratch`] instead.
pub fn magnitude_spectrum(signal: &[f64]) -> Vec<f64> {
    let mut out = Vec::new();
    SpectrumPlan::new(signal.len()).magnitude_into(
        signal,
        &mut SpectrumScratch::default(),
        &mut out,
    );
    out
}

/// Main and secondary spectral peaks of a window (the paper's `Peak`,
/// `Peak f`, `Peak2` and `Peak2 f` features, §V-C).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SpectralPeaks {
    /// Amplitude of the strongest non-DC spectral line (`Peak`).
    pub main_amplitude: f64,
    /// Frequency in Hz of the strongest line (`Peak f`).
    pub main_frequency: f64,
    /// Amplitude of the second-strongest line (`Peak2`).
    pub secondary_amplitude: f64,
    /// Frequency in Hz of the second-strongest line (`Peak2 f`).
    pub secondary_frequency: f64,
}

/// Finds the two largest non-DC local maxima of a one-sided magnitude
/// spectrum produced by [`magnitude_spectrum`].
///
/// `sample_rate` is in Hz and converts bin indices to frequencies. Bins that
/// are not local maxima still qualify when the spectrum is too short to have
/// interior maxima. Returns `None` when fewer than two usable bins exist.
pub fn spectral_peaks(spectrum: &[f64], sample_rate: f64) -> Option<SpectralPeaks> {
    if spectrum.len() < 3 || sample_rate <= 0.0 {
        return None;
    }
    // The one-sided spectrum of an n-point signal has n/2+1 bins, so the
    // original length is 2*(len-1) and bin k sits at k * fs / n.
    let n = 2 * (spectrum.len() - 1);
    let bin_hz = sample_rate / n as f64;

    // Strongest non-DC bin; strict comparison keeps the lowest index on
    // ties, matching what a stable descending sort would select.
    let mut main = 1;
    for k in 2..spectrum.len() {
        if spectrum[k].total_cmp(&spectrum[main]).is_gt() {
            main = k;
        }
    }
    // The secondary peak must not be an immediate neighbour of the main one,
    // otherwise the two features collapse onto the same spectral line.
    let mut secondary = None;
    for k in 1..spectrum.len() {
        if !(k + 1 < main || k > main + 1) {
            continue;
        }
        match secondary {
            Some(s) if spectrum[k].total_cmp(&spectrum[s]).is_le() => {}
            _ => secondary = Some(k),
        }
    }
    let secondary = secondary?;

    Some(SpectralPeaks {
        main_amplitude: spectrum[main],
        main_frequency: main as f64 * bin_hz,
        secondary_amplitude: spectrum[secondary],
        secondary_frequency: secondary as f64 * bin_hz,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    fn tone(n: usize, fs: f64, freq: f64, amp: f64) -> Vec<f64> {
        (0..n)
            .map(|i| amp * (2.0 * PI * freq * i as f64 / fs).sin())
            .collect()
    }

    #[test]
    fn empty_signal_yields_empty_spectrum() {
        assert!(magnitude_spectrum(&[]).is_empty());
    }

    #[test]
    fn spectrum_length_is_half_plus_one() {
        assert_eq!(magnitude_spectrum(&vec![0.0; 300]).len(), 151);
        assert_eq!(magnitude_spectrum(&vec![0.0; 64]).len(), 33);
    }

    #[test]
    fn dc_is_removed() {
        let s = vec![5.0; 128];
        let spec = magnitude_spectrum(&s);
        assert!(spec.iter().all(|&m| m < 1e-9));
    }

    #[test]
    fn single_tone_amplitude_recovered() {
        let fs = 50.0;
        let s = tone(500, fs, 2.0, 3.0);
        let spec = magnitude_spectrum(&s);
        let peaks = spectral_peaks(&spec, fs).unwrap();
        assert!((peaks.main_frequency - 2.0).abs() < 0.15);
        assert!((peaks.main_amplitude - 3.0).abs() < 0.2);
    }

    #[test]
    fn two_tones_ranked_by_amplitude() {
        let fs = 50.0;
        let n = 1000;
        let s: Vec<f64> = tone(n, fs, 2.0, 3.0)
            .iter()
            .zip(tone(n, fs, 7.0, 1.5))
            .map(|(a, b)| a + b)
            .collect();
        let peaks = spectral_peaks(&magnitude_spectrum(&s), fs).unwrap();
        assert!((peaks.main_frequency - 2.0).abs() < 0.2);
        assert!((peaks.secondary_frequency - 7.0).abs() < 0.2);
        assert!(peaks.main_amplitude > peaks.secondary_amplitude);
    }

    #[test]
    fn secondary_peak_is_not_adjacent_to_main() {
        let fs = 50.0;
        let s = tone(400, fs, 3.0, 2.0);
        let peaks = spectral_peaks(&magnitude_spectrum(&s), fs).unwrap();
        let n = 400;
        let main_bin = (peaks.main_frequency / (fs / n as f64)).round() as isize;
        let sec_bin = (peaks.secondary_frequency / (fs / n as f64)).round() as isize;
        assert!((main_bin - sec_bin).abs() > 1);
    }

    #[test]
    fn degenerate_inputs_return_none() {
        assert!(spectral_peaks(&[], 50.0).is_none());
        assert!(spectral_peaks(&[1.0, 2.0], 50.0).is_none());
        assert!(spectral_peaks(&[1.0, 2.0, 3.0, 1.0], 0.0).is_none());
    }
}
