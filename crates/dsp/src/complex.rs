use std::ops::{Add, AddAssign, Mul, Neg, Sub};

use serde::{Deserialize, Serialize};

/// A complex number with `f64` components, sufficient for FFT work.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Complex {
    /// Real component.
    pub re: f64,
    /// Imaginary component.
    pub im: f64,
}

impl Complex {
    /// Zero.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
    /// Multiplicative identity.
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };

    /// Creates a complex number from real and imaginary parts.
    pub fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// Creates a purely real complex number.
    pub fn from_real(re: f64) -> Self {
        Complex { re, im: 0.0 }
    }

    /// `e^(iθ)` — the unit phasor at angle `theta` radians.
    pub fn cis(theta: f64) -> Self {
        Complex {
            re: theta.cos(),
            im: theta.sin(),
        }
    }

    /// Magnitude (absolute value).
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Squared magnitude; cheaper than [`Complex::abs`] when comparing.
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Complex conjugate.
    pub fn conj(self) -> Self {
        Complex {
            re: self.re,
            im: -self.im,
        }
    }

    /// Scales by a real factor.
    pub fn scale(self, k: f64) -> Self {
        Complex {
            re: self.re * k,
            im: self.im * k,
        }
    }
}

impl Add for Complex {
    type Output = Complex;
    fn add(self, rhs: Complex) -> Complex {
        Complex::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl AddAssign for Complex {
    fn add_assign(&mut self, rhs: Complex) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for Complex {
    type Output = Complex;
    fn sub(self, rhs: Complex) -> Complex {
        Complex::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Complex {
    type Output = Complex;
    fn mul(self, rhs: Complex) -> Complex {
        Complex::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Neg for Complex {
    type Output = Complex;
    fn neg(self) -> Complex {
        Complex::new(-self.re, -self.im)
    }
}

impl From<f64> for Complex {
    fn from(re: f64) -> Self {
        Complex::from_real(re)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_identities() {
        let a = Complex::new(1.0, 2.0);
        let b = Complex::new(-0.5, 1.5);
        assert_eq!(a + b, Complex::new(0.5, 3.5));
        assert_eq!(a - b, Complex::new(1.5, 0.5));
        assert_eq!(a + (-a), Complex::ZERO);
        assert_eq!(a * Complex::ONE, a);
    }

    #[test]
    fn multiplication_is_complex() {
        // (1 + i)² = 2i
        let a = Complex::new(1.0, 1.0);
        assert_eq!(a * a, Complex::new(0.0, 2.0));
    }

    #[test]
    fn cis_is_unit() {
        for k in 0..8 {
            let z = Complex::cis(k as f64 * 0.7);
            assert!((z.abs() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn conj_negates_imaginary() {
        let a = Complex::new(3.0, -4.0);
        assert_eq!(a.conj(), Complex::new(3.0, 4.0));
        assert!((a.abs() - 5.0).abs() < 1e-12);
        assert!((a.norm_sqr() - 25.0).abs() < 1e-12);
    }
}
