//! Small streaming filters used by the sensor simulator (to shape noise
//! spectra) and available for context-detection pre-processing.

/// Fixed-length moving-average (boxcar) filter.
///
/// # Example
///
/// ```
/// use smarteryou_dsp::MovingAverage;
///
/// let mut ma = MovingAverage::new(2);
/// assert_eq!(ma.push(1.0), 1.0);
/// assert_eq!(ma.push(3.0), 2.0);
/// assert_eq!(ma.push(5.0), 4.0);
/// ```
#[derive(Debug, Clone)]
pub struct MovingAverage {
    buf: Vec<f64>,
    next: usize,
    filled: usize,
    sum: f64,
}

impl MovingAverage {
    /// Creates a moving average over the last `len` samples.
    ///
    /// # Panics
    ///
    /// Panics if `len == 0`.
    pub fn new(len: usize) -> Self {
        assert!(len > 0, "moving average length must be positive");
        MovingAverage {
            buf: vec![0.0; len],
            next: 0,
            filled: 0,
            sum: 0.0,
        }
    }

    /// Pushes a sample and returns the current average (over the samples
    /// seen so far while the buffer warms up).
    pub fn push(&mut self, x: f64) -> f64 {
        if self.filled == self.buf.len() {
            self.sum -= self.buf[self.next];
        } else {
            self.filled += 1;
        }
        self.buf[self.next] = x;
        self.sum += x;
        self.next = (self.next + 1) % self.buf.len();
        self.sum / self.filled as f64
    }

    /// Applies the filter over a whole slice, returning the filtered signal.
    pub fn filter(mut self, signal: &[f64]) -> Vec<f64> {
        signal.iter().map(|&x| self.push(x)).collect()
    }
}

/// Single-pole IIR low-pass filter: `y[n] = α·x[n] + (1−α)·y[n−1]`.
///
/// The simulator uses this to turn white noise into the low-frequency
/// environmental wander that dominates magnetometer/orientation/light
/// readings (giving them their near-zero Fisher scores in Table II).
#[derive(Debug, Clone)]
pub struct SinglePoleLowPass {
    alpha: f64,
    state: Option<f64>,
}

impl SinglePoleLowPass {
    /// Creates a filter with smoothing factor `alpha` in `(0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is outside `(0, 1]` or not finite.
    pub fn new(alpha: f64) -> Self {
        assert!(
            alpha.is_finite() && alpha > 0.0 && alpha <= 1.0,
            "alpha must be in (0, 1], got {alpha}"
        );
        SinglePoleLowPass { alpha, state: None }
    }

    /// Creates a filter whose −3 dB cutoff is `cutoff_hz` at `sample_rate` Hz.
    ///
    /// # Panics
    ///
    /// Panics if either argument is non-positive.
    pub fn with_cutoff(cutoff_hz: f64, sample_rate: f64) -> Self {
        assert!(cutoff_hz > 0.0 && sample_rate > 0.0);
        let rc = 1.0 / (2.0 * std::f64::consts::PI * cutoff_hz);
        let dt = 1.0 / sample_rate;
        SinglePoleLowPass::new(dt / (rc + dt))
    }

    /// Pushes a sample, returning the filtered value.
    pub fn push(&mut self, x: f64) -> f64 {
        let y = match self.state {
            None => x,
            Some(prev) => prev + self.alpha * (x - prev),
        };
        self.state = Some(y);
        y
    }

    /// Applies the filter over a whole slice.
    pub fn filter(mut self, signal: &[f64]) -> Vec<f64> {
        signal.iter().map(|&x| self.push(x)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn moving_average_warms_up() {
        let mut ma = MovingAverage::new(3);
        assert_eq!(ma.push(3.0), 3.0);
        assert_eq!(ma.push(6.0), 4.5);
        assert_eq!(ma.push(9.0), 6.0);
        assert_eq!(ma.push(0.0), 5.0); // (6+9+0)/3
    }

    #[test]
    fn moving_average_of_constant_is_constant() {
        let out = MovingAverage::new(4).filter(&[2.0; 10]);
        assert!(out.iter().all(|&y| (y - 2.0).abs() < 1e-12));
    }

    #[test]
    fn lowpass_tracks_step_input() {
        let mut lp = SinglePoleLowPass::new(0.5);
        let mut y = 0.0;
        lp.push(0.0);
        for _ in 0..30 {
            y = lp.push(1.0);
        }
        assert!((y - 1.0).abs() < 1e-4);
    }

    #[test]
    fn lowpass_attenuates_alternating_signal() {
        let lp = SinglePoleLowPass::new(0.1);
        let signal: Vec<f64> = (0..200)
            .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        let out = lp.filter(&signal);
        // Steady-state oscillation is strongly attenuated.
        let tail_amp = out[150..].iter().fold(0.0_f64, |m, &v| m.max(v.abs()));
        assert!(tail_amp < 0.2, "tail amplitude {tail_amp}");
    }

    #[test]
    fn with_cutoff_produces_valid_alpha() {
        let lp = SinglePoleLowPass::with_cutoff(1.0, 50.0);
        assert!(lp.alpha > 0.0 && lp.alpha < 1.0);
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn invalid_alpha_panics() {
        SinglePoleLowPass::new(0.0);
    }
}
