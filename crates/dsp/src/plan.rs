//! Precomputed transform plans for the scoring hot path.
//!
//! The paper's deployed window — 6 s × 50 Hz = 300 samples — is not a power
//! of two, so the radix-2 FFT alone cannot serve it, and the O(n²) [`dft`]
//! fallback dominated feature-extraction cost in the fleet benchmarks. This
//! module removes both problems:
//!
//! * [`FftPlan`] precomputes everything a forward transform of one fixed
//!   length needs — bit-reversal-ready twiddle tables for power-of-two
//!   lengths, and a Bluestein (chirp-z) decomposition for every other
//!   length, which evaluates an arbitrary-length DFT as three power-of-two
//!   FFTs in O(n log n).
//! * [`RealFftPlan`] exploits real input: an even-length real signal is
//!   packed into a half-length complex buffer, transformed once, and
//!   untangled into the one-sided spectrum — half the complex work.
//! * [`SpectrumPlan`] is the feature-extraction entry point: mean removal +
//!   real FFT + one-sided magnitude scaling, writing into a caller-owned
//!   output buffer. Its results are **bit-identical** to the convenience
//!   function [`magnitude_spectrum`](crate::magnitude_spectrum), which is
//!   itself implemented on top of this plan.
//!
//! Plans are immutable after construction and cheap to clone; per-call
//! workspace lives in [`FftScratch`] / [`SpectrumScratch`] so steady-state
//! transforms allocate nothing once the buffers have grown to size.
//!
//! # Example
//!
//! ```
//! use smarteryou_dsp::{SpectrumPlan, SpectrumScratch};
//!
//! let fs = 50.0;
//! let signal: Vec<f64> = (0..300)
//!     .map(|i| (2.0 * std::f64::consts::PI * 2.0 * i as f64 / fs).sin())
//!     .collect();
//! let plan = SpectrumPlan::new(signal.len());
//! let mut scratch = SpectrumScratch::default();
//! let mut spectrum = Vec::new();
//! plan.magnitude_into(&signal, &mut scratch, &mut spectrum);
//! assert_eq!(spectrum.len(), 151); // DC through Nyquist
//! ```

use std::f64::consts::PI;

use crate::Complex;

/// Reusable workspace for [`FftPlan::process`]. Grows on first use and is
/// then reused allocation-free; one scratch may serve plans of any length.
#[derive(Debug, Clone, Default)]
pub struct FftScratch {
    /// Bluestein convolution buffer (length `m` of the inner plan).
    aux: Vec<Complex>,
}

/// A forward DFT of one fixed length with all tables precomputed.
///
/// Power-of-two lengths run the iterative radix-2 Cooley–Tukey kernel over
/// a precomputed twiddle table; every other length ≥ 2 runs Bluestein's
/// chirp-z algorithm (the DFT written as a cyclic convolution, evaluated by
/// power-of-two FFTs). Lengths 0 and 1 are identity transforms.
#[derive(Debug, Clone)]
pub struct FftPlan {
    n: usize,
    strategy: Strategy,
}

#[derive(Debug, Clone)]
enum Strategy {
    /// `n <= 1`: the transform is the identity.
    Trivial,
    /// `n` is a power of two.
    Radix2(Radix2Plan),
    /// Any other length.
    Bluestein(BluesteinPlan),
}

impl FftPlan {
    /// Plans a forward DFT of length `n`.
    pub fn new(n: usize) -> Self {
        let strategy = if n <= 1 {
            Strategy::Trivial
        } else if n.is_power_of_two() {
            Strategy::Radix2(Radix2Plan::new(n))
        } else {
            Strategy::Bluestein(BluesteinPlan::new(n))
        };
        FftPlan { n, strategy }
    }

    /// The transform length this plan was built for.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True for the degenerate zero-length plan.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Forward DFT of `buf` in place.
    ///
    /// # Panics
    ///
    /// Panics if `buf.len()` differs from the planned length.
    pub fn process(&self, buf: &mut [Complex], scratch: &mut FftScratch) {
        assert_eq!(buf.len(), self.n, "FftPlan::process: length mismatch");
        match &self.strategy {
            Strategy::Trivial => {}
            Strategy::Radix2(plan) => plan.process(buf),
            Strategy::Bluestein(plan) => plan.process(buf, scratch),
        }
    }

    /// Forward DFT of four interleaved lanes at once (see
    /// [`BatchSpectrumScratch`] for the layout). Per-lane arithmetic is the
    /// scalar [`FftPlan::process`] op for op, so each lane's result is
    /// bit-identical to transforming it alone.
    fn process_batch4(
        &self,
        re: &mut [f64],
        im: &mut [f64],
        aux_re: &mut Vec<f64>,
        aux_im: &mut Vec<f64>,
    ) {
        debug_assert_eq!(re.len(), 4 * self.n);
        debug_assert_eq!(im.len(), 4 * self.n);
        match &self.strategy {
            Strategy::Trivial => {}
            Strategy::Radix2(plan) => plan.process_batch4(re, im),
            Strategy::Bluestein(plan) => plan.process_batch4(re, im, aux_re, aux_im),
        }
    }

    /// Inverse DFT of `buf` in place, normalised by `1/n` so that a forward
    /// transform followed by this is the identity.
    ///
    /// Implemented by conjugation: `IDFT(x) = conj(DFT(conj(x))) / n`.
    ///
    /// # Panics
    ///
    /// Panics if `buf.len()` differs from the planned length.
    pub fn process_inverse(&self, buf: &mut [Complex], scratch: &mut FftScratch) {
        assert_eq!(
            buf.len(),
            self.n,
            "FftPlan::process_inverse: length mismatch"
        );
        if self.n <= 1 {
            return;
        }
        for z in buf.iter_mut() {
            *z = z.conj();
        }
        self.process(buf, scratch);
        let scale = 1.0 / self.n as f64;
        for z in buf.iter_mut() {
            *z = z.conj().scale(scale);
        }
    }
}

/// Iterative radix-2 Cooley–Tukey with a flat precomputed twiddle table.
#[derive(Debug, Clone)]
struct Radix2Plan {
    n: usize,
    /// Concatenated per-stage twiddles: for each stage length
    /// `len = 2, 4, …, n`, the first `len/2` powers of `e^{-2πi/len}`
    /// (`n - 1` entries total).
    twiddles: Vec<Complex>,
}

impl Radix2Plan {
    fn new(n: usize) -> Self {
        debug_assert!(n.is_power_of_two() && n >= 2);
        let mut twiddles = Vec::with_capacity(n - 1);
        let mut len = 2usize;
        while len <= n {
            let step = -2.0 * PI / len as f64;
            for k in 0..len / 2 {
                twiddles.push(Complex::cis(step * k as f64));
            }
            len <<= 1;
        }
        Radix2Plan { n, twiddles }
    }

    /// In-place forward transform. Inverse transforms go through the
    /// conjugation identity at the call sites, keeping this innermost
    /// butterfly loop branch-free.
    fn process(&self, buf: &mut [Complex]) {
        let n = self.n;
        debug_assert_eq!(buf.len(), n);
        // Bit-reversal permutation.
        let bits = n.trailing_zeros();
        for i in 0..n {
            let j = (i.reverse_bits() >> (usize::BITS - bits)) & (n - 1);
            if j > i {
                buf.swap(i, j);
            }
        }
        let mut offset = 0usize;
        let mut len = 2usize;
        while len <= n {
            let half = len / 2;
            let stage = &self.twiddles[offset..offset + half];
            for start in (0..n).step_by(len) {
                for (k, &w) in stage.iter().enumerate() {
                    let even = buf[start + k];
                    let odd = buf[start + k + half] * w;
                    buf[start + k] = even + odd;
                    buf[start + k + half] = even - odd;
                }
            }
            offset += half;
            len <<= 1;
        }
    }

    /// Four-lane SoA variant of [`Radix2Plan::process`]: element `k` of
    /// lane `l` lives at index `4k + l` of `re`/`im`, so every butterfly
    /// becomes four independent, contiguous scalar butterflies — exactly
    /// the shape the autovectorizer turns into 4-wide vector ops, with no
    /// shuffles and no cross-lane arithmetic. Per lane this performs the
    /// scalar butterflies in the same order with the same operand order,
    /// so each lane's output is bit-identical to the scalar path.
    fn process_batch4(&self, re: &mut [f64], im: &mut [f64]) {
        let n = self.n;
        debug_assert_eq!(re.len(), 4 * n);
        debug_assert_eq!(im.len(), 4 * n);
        // Bit-reversal permutation, swapping whole 4-lane blocks.
        let bits = n.trailing_zeros();
        for i in 0..n {
            let j = (i.reverse_bits() >> (usize::BITS - bits)) & (n - 1);
            if j > i {
                for l in 0..4 {
                    re.swap(4 * i + l, 4 * j + l);
                    im.swap(4 * i + l, 4 * j + l);
                }
            }
        }
        let mut offset = 0usize;
        let mut len = 2usize;
        while len <= n {
            let half = len / 2;
            let stage = &self.twiddles[offset..offset + half];
            for start in (0..n).step_by(len) {
                for (k, &w) in stage.iter().enumerate() {
                    let i = 4 * (start + k);
                    let j = 4 * (start + k + half);
                    let (re_lo, re_hi) = re.split_at_mut(j);
                    let (im_lo, im_hi) = im.split_at_mut(j);
                    let ar: &mut [f64; 4] = (&mut re_lo[i..i + 4]).try_into().expect("4 lanes");
                    let ai: &mut [f64; 4] = (&mut im_lo[i..i + 4]).try_into().expect("4 lanes");
                    let br: &mut [f64; 4] = (&mut re_hi[..4]).try_into().expect("4 lanes");
                    let bi: &mut [f64; 4] = (&mut im_hi[..4]).try_into().expect("4 lanes");
                    for l in 0..4 {
                        let or = br[l] * w.re - bi[l] * w.im;
                        let oi = br[l] * w.im + bi[l] * w.re;
                        br[l] = ar[l] - or;
                        bi[l] = ai[l] - oi;
                        ar[l] += or;
                        ai[l] += oi;
                    }
                }
            }
            offset += half;
            len <<= 1;
        }
    }
}

/// Bluestein chirp-z decomposition of an arbitrary-length DFT.
///
/// With `w_k = e^{-iπ k²/n}`, the DFT becomes
/// `X_k = w_k · Σ_t (x_t w_t) · w⁻_{(k−t)}` — a cyclic convolution of the
/// chirp-premultiplied signal with the conjugate chirp, evaluated via
/// power-of-two FFTs of length `m ≥ 2n − 1`.
#[derive(Debug, Clone)]
struct BluesteinPlan {
    /// Padded convolution length (`≥ 2n − 1`, power of two).
    m: usize,
    /// `w_k = e^{-iπ k²/n}` for `k < n`.
    chirp: Vec<Complex>,
    /// Forward length-`m` FFT of the conjugate-chirp kernel, pre-scaled by
    /// `1/m` so the inverse convolution transform needs no extra pass.
    kernel: Vec<Complex>,
    inner: Radix2Plan,
}

impl BluesteinPlan {
    fn new(n: usize) -> Self {
        debug_assert!(n >= 2);
        let m = (2 * n - 1).next_power_of_two();
        // k² mod 2n keeps the chirp argument small: e^{-iπ k²/n} is periodic
        // in k² with period 2n, and small arguments keep sin/cos accurate.
        let chirp: Vec<Complex> = (0..n)
            .map(|k| {
                let q = (k * k) % (2 * n);
                Complex::cis(-PI * q as f64 / n as f64)
            })
            .collect();
        let inner = Radix2Plan::new(m);
        let mut kernel = vec![Complex::ZERO; m];
        kernel[0] = chirp[0].conj();
        for k in 1..n {
            let b = chirp[k].conj();
            kernel[k] = b;
            kernel[m - k] = b;
        }
        inner.process(&mut kernel);
        let scale = 1.0 / m as f64;
        for z in &mut kernel {
            *z = z.scale(scale);
        }
        BluesteinPlan {
            m,
            chirp,
            kernel,
            inner,
        }
    }

    fn process(&self, buf: &mut [Complex], scratch: &mut FftScratch) {
        let aux = &mut scratch.aux;
        aux.clear();
        aux.resize(self.m, Complex::ZERO);
        for (a, (&x, &w)) in aux.iter_mut().zip(buf.iter().zip(&self.chirp)) {
            *a = x * w;
        }
        self.inner.process(aux);
        // The inverse convolution transform runs as
        // `conj(forward(conj(·)))` — conjugations are exact sign flips, so
        // this is bit-identical to conjugated twiddles while keeping the
        // radix-2 butterfly branch-free. The first conj is folded into the
        // kernel multiply, the second into the chirp post-multiply; the 1/m
        // normalisation is already folded into the kernel.
        for (a, &k) in aux.iter_mut().zip(&self.kernel) {
            *a = (*a * k).conj();
        }
        self.inner.process(aux);
        for (x, (&c, &w)) in buf.iter_mut().zip(aux.iter().zip(&self.chirp)) {
            *x = c.conj() * w;
        }
    }

    /// Four-lane SoA variant of [`BluesteinPlan::process`] (layout as in
    /// [`Radix2Plan::process_batch4`]). The chirp pre/post multiplies and
    /// the kernel pointwise product expand [`Complex`]'s scalar formulas
    /// per lane, so each lane stays bit-identical to the scalar path.
    fn process_batch4(
        &self,
        re: &mut [f64],
        im: &mut [f64],
        aux_re: &mut Vec<f64>,
        aux_im: &mut Vec<f64>,
    ) {
        let n = self.chirp.len();
        debug_assert_eq!(re.len(), 4 * n);
        aux_re.clear();
        aux_re.resize(4 * self.m, 0.0);
        aux_im.clear();
        aux_im.resize(4 * self.m, 0.0);
        for (k, &w) in self.chirp.iter().enumerate() {
            let i = 4 * k;
            for l in 0..4 {
                let xr = re[i + l];
                let xi = im[i + l];
                aux_re[i + l] = xr * w.re - xi * w.im;
                aux_im[i + l] = xr * w.im + xi * w.re;
            }
        }
        self.inner.process_batch4(aux_re, aux_im);
        // `(a * k).conj()` per lane — see the scalar path's comment on the
        // conjugation identity.
        for (k, &kv) in self.kernel.iter().enumerate() {
            let i = 4 * k;
            for l in 0..4 {
                let ar = aux_re[i + l];
                let ai = aux_im[i + l];
                aux_re[i + l] = ar * kv.re - ai * kv.im;
                aux_im[i + l] = -(ar * kv.im + ai * kv.re);
            }
        }
        self.inner.process_batch4(aux_re, aux_im);
        for (k, &w) in self.chirp.iter().enumerate() {
            let i = 4 * k;
            for l in 0..4 {
                let cr = aux_re[i + l];
                let ci = -aux_im[i + l];
                re[i + l] = cr * w.re - ci * w.im;
                im[i + l] = cr * w.im + ci * w.re;
            }
        }
    }
}

/// A one-sided forward transform of a fixed-length **real** signal.
///
/// Even lengths pack the signal into a half-length complex buffer, run one
/// half-length [`FftPlan`], and untangle the result with precomputed
/// twiddles; odd lengths fall back to the full-length complex plan (still
/// O(n log n) via Bluestein). Output is bins `0..=n/2` (DC through Nyquist).
#[derive(Debug, Clone)]
pub struct RealFftPlan {
    n: usize,
    kind: RealKind,
}

#[derive(Debug, Clone)]
enum RealKind {
    /// Even `n ≥ 2`: half-length complex transform + untangling twiddles
    /// `e^{-2πik/n}` for `k ≤ n/2`.
    Packed {
        inner: FftPlan,
        untangle: Vec<Complex>,
    },
    /// Odd or degenerate `n`: full-length complex transform.
    Direct(FftPlan),
}

impl RealFftPlan {
    /// Plans a one-sided real transform of length `n`.
    pub fn new(n: usize) -> Self {
        let kind = if n >= 2 && n.is_multiple_of(2) {
            let untangle = (0..=n / 2)
                .map(|k| Complex::cis(-2.0 * PI * k as f64 / n as f64))
                .collect();
            RealKind::Packed {
                inner: FftPlan::new(n / 2),
                untangle,
            }
        } else {
            RealKind::Direct(FftPlan::new(n))
        };
        RealFftPlan { n, kind }
    }

    /// The signal length this plan was built for.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True for the degenerate zero-length plan.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Number of one-sided output bins: `n/2 + 1`, or 0 for empty input.
    pub fn bins(&self) -> usize {
        if self.n == 0 {
            0
        } else {
            self.n / 2 + 1
        }
    }

    /// Computes bins `0..=n/2` of the DFT of `signal` into `out`.
    ///
    /// `out` is cleared and resized; `packed` is the reusable complex
    /// workspace the packed signal is staged in.
    ///
    /// # Panics
    ///
    /// Panics if `signal.len()` differs from the planned length.
    pub fn process_into(
        &self,
        signal: &[f64],
        packed: &mut Vec<Complex>,
        scratch: &mut FftScratch,
        out: &mut Vec<Complex>,
    ) {
        assert_eq!(
            signal.len(),
            self.n,
            "RealFftPlan::process_into: length mismatch"
        );
        out.clear();
        if self.n == 0 {
            return;
        }
        match &self.kind {
            RealKind::Direct(plan) => {
                packed.clear();
                packed.extend(signal.iter().map(|&s| Complex::from_real(s)));
                plan.process(packed, scratch);
                out.extend_from_slice(&packed[..=self.n / 2]);
            }
            RealKind::Packed { inner, untangle } => {
                let h = self.n / 2;
                packed.clear();
                packed.extend((0..h).map(|k| Complex::new(signal[2 * k], signal[2 * k + 1])));
                inner.process(packed, scratch);
                // Untangle: with Z the half-length transform of
                // z_k = x_{2k} + i·x_{2k+1},
                //   E_k = (Z_k + Z*_{h−k}) / 2   (spectrum of even samples)
                //   O_k = −i (Z_k − Z*_{h−k}) / 2 (spectrum of odd samples)
                //   X_k = E_k + e^{−2πik/n} · O_k  for k = 0..=h,
                // reading Z cyclically (Z_h = Z_0).
                out.reserve(h + 1);
                for (k, &w) in untangle.iter().enumerate() {
                    let zk = packed[k % h];
                    let zr = packed[(h - k) % h].conj();
                    let even = (zk + zr).scale(0.5);
                    let diff = zk - zr;
                    let odd = Complex::new(diff.im, -diff.re).scale(0.5);
                    out.push(even + w * odd);
                }
            }
        }
    }

    /// Four-lane SoA variant of [`RealFftPlan::process_into`], reading the
    /// interleaved centred signals from `scratch.centered` (element `t` of
    /// lane `l` at `4t + l`) and leaving the one-sided bins in
    /// `scratch.bins_re`/`bins_im` (bin `k` of lane `l` at `4k + l`). The
    /// interleaved layout makes the even/odd packing a pair of contiguous
    /// 4-element copies per packed sample and the untangle four independent
    /// contiguous lanes per bin. Per lane, bit-identical to the scalar path.
    fn process_batch4_interleaved(&self, scratch: &mut BatchSpectrumScratch) {
        let n = self.n;
        let BatchSpectrumScratch {
            centered,
            packed_re,
            packed_im,
            aux_re,
            aux_im,
            bins_re,
            bins_im,
        } = scratch;
        debug_assert_eq!(centered.len(), 4 * n);
        let nb = self.bins();
        bins_re.clear();
        bins_re.resize(4 * nb, 0.0);
        bins_im.clear();
        bins_im.resize(4 * nb, 0.0);
        if n == 0 {
            return;
        }
        match &self.kind {
            RealKind::Direct(plan) => {
                packed_re.clear();
                packed_re.extend_from_slice(centered);
                packed_im.clear();
                packed_im.resize(4 * n, 0.0);
                plan.process_batch4(packed_re, packed_im, aux_re, aux_im);
                bins_re.copy_from_slice(&packed_re[..4 * nb]);
                bins_im.copy_from_slice(&packed_im[..4 * nb]);
            }
            RealKind::Packed { inner, untangle } => {
                let h = n / 2;
                packed_re.clear();
                packed_re.resize(4 * h, 0.0);
                packed_im.clear();
                packed_im.resize(4 * h, 0.0);
                for k in 0..h {
                    let src = 8 * k;
                    packed_re[4 * k..4 * k + 4].copy_from_slice(&centered[src..src + 4]);
                    packed_im[4 * k..4 * k + 4].copy_from_slice(&centered[src + 4..src + 8]);
                }
                inner.process_batch4(packed_re, packed_im, aux_re, aux_im);
                for (k, &w) in untangle.iter().enumerate() {
                    let zi = 4 * (k % h);
                    let ri = 4 * ((h - k) % h);
                    for l in 0..4 {
                        let zk_re = packed_re[zi + l];
                        let zk_im = packed_im[zi + l];
                        let zr_re = packed_re[ri + l];
                        let zr_im = -packed_im[ri + l];
                        let even_re = (zk_re + zr_re) * 0.5;
                        let even_im = (zk_im + zr_im) * 0.5;
                        let diff_re = zk_re - zr_re;
                        let diff_im = zk_im - zr_im;
                        let odd_re = diff_im * 0.5;
                        let odd_im = -diff_re * 0.5;
                        bins_re[4 * k + l] = even_re + (w.re * odd_re - w.im * odd_im);
                        bins_im[4 * k + l] = even_im + (w.re * odd_im + w.im * odd_re);
                    }
                }
            }
        }
    }
}

/// Reusable workspace for [`SpectrumPlan::magnitude_into`].
#[derive(Debug, Clone, Default)]
pub struct SpectrumScratch {
    fft: FftScratch,
    packed: Vec<Complex>,
    bins: Vec<Complex>,
    centered: Vec<f64>,
}

/// Reusable SoA workspace for [`SpectrumPlan::magnitude_batch4_into`].
///
/// All buffers hold four lanes interleaved — element `k` of lane `l` at
/// index `4k + l` — with separate real/imaginary arrays, so every stage of
/// the batched transform runs contiguous 4-wide lane loops. Grows on first
/// use, then serves steady-state windows allocation-free.
#[derive(Debug, Clone, Default)]
pub struct BatchSpectrumScratch {
    /// Mean-removed input signals, interleaved (`4n` values).
    centered: Vec<f64>,
    /// Packed half-length (or direct full-length) transform buffer.
    packed_re: Vec<f64>,
    /// Imaginary counterpart of `packed_re`.
    packed_im: Vec<f64>,
    /// Bluestein convolution buffer (`4m` values).
    aux_re: Vec<f64>,
    /// Imaginary counterpart of `aux_re`.
    aux_im: Vec<f64>,
    /// One-sided output bins (`4(n/2 + 1)` values).
    bins_re: Vec<f64>,
    /// Imaginary counterpart of `bins_re`.
    bins_im: Vec<f64>,
}

/// Planned equivalent of [`magnitude_spectrum`](crate::magnitude_spectrum):
/// mean removal, one-sided real FFT, and `2/n` amplitude scaling, with all
/// tables precomputed and all workspace caller-owned.
///
/// The convenience function is implemented on top of this type, so planned
/// and unplanned extractions are bit-identical — the property the feature
/// cache in `smarteryou_core` relies on.
#[derive(Debug, Clone)]
pub struct SpectrumPlan {
    real: RealFftPlan,
}

impl SpectrumPlan {
    /// Plans the magnitude spectrum of `n`-sample signals.
    pub fn new(n: usize) -> Self {
        SpectrumPlan {
            real: RealFftPlan::new(n),
        }
    }

    /// The signal length this plan was built for.
    pub fn len(&self) -> usize {
        self.real.len()
    }

    /// True for the degenerate zero-length plan.
    pub fn is_empty(&self) -> bool {
        self.real.is_empty()
    }

    /// Number of output bins (`n/2 + 1`, or 0 for empty input).
    pub fn bins(&self) -> usize {
        self.real.bins()
    }

    /// Computes the one-sided magnitude spectrum of `signal` into `out`
    /// (cleared first). The signal's mean is removed before transforming,
    /// exactly as [`magnitude_spectrum`](crate::magnitude_spectrum) does.
    ///
    /// # Panics
    ///
    /// Panics if `signal.len()` differs from the planned length.
    pub fn magnitude_into(
        &self,
        signal: &[f64],
        scratch: &mut SpectrumScratch,
        out: &mut Vec<f64>,
    ) {
        assert_eq!(
            signal.len(),
            self.len(),
            "SpectrumPlan::magnitude_into: length mismatch"
        );
        out.clear();
        let n = signal.len();
        if n == 0 {
            return;
        }
        let mean = signal.iter().sum::<f64>() / n as f64;
        scratch.centered.clear();
        scratch.centered.extend(signal.iter().map(|&s| s - mean));
        self.real.process_into(
            &scratch.centered,
            &mut scratch.packed,
            &mut scratch.fft,
            &mut scratch.bins,
        );
        let scale_n = n as f64;
        out.extend(scratch.bins.iter().map(|z| z.abs() * 2.0 / scale_n));
    }

    /// Batched fast path: the magnitude spectra of **four** same-length
    /// signals in one pass — the shape of the deployed pipeline, which
    /// transforms exactly four magnitude streams per window (phone/watch ×
    /// accelerometer/gyroscope).
    ///
    /// The signals are mean-removed, interleaved into the SoA layout of
    /// [`BatchSpectrumScratch`], and pushed through 4-lane variants of the
    /// radix-2 / Bluestein / real-packing kernels in which every butterfly
    /// is four independent contiguous scalar butterflies — no shuffles, no
    /// cross-lane arithmetic — so the autovectorizer emits 4-wide vector
    /// ops while each lane performs the scalar path's operations in the
    /// scalar path's order.
    ///
    /// **Parity contract:** every transform stage is bit-identical per lane
    /// to [`SpectrumPlan::magnitude_into`]; the single deviation is the
    /// final magnitude, computed as `sqrt(re² + im²)` instead of `hypot`
    /// (≈1 ulp relative; `hypot`'s over/underflow guards are unreachable
    /// for centred sensor magnitudes, and `hypot` costs ~5× as much). The
    /// batch-parity proptests pin the agreement bound. Callers needing
    /// bit-exact spectra (the flag-off parity suites) use the scalar path.
    ///
    /// # Panics
    ///
    /// Panics if any signal's length differs from the planned length.
    pub fn magnitude_batch4_into(
        &self,
        signals: [&[f64]; 4],
        scratch: &mut BatchSpectrumScratch,
        outs: [&mut Vec<f64>; 4],
    ) {
        let n = self.len();
        for s in signals {
            assert_eq!(
                s.len(),
                n,
                "SpectrumPlan::magnitude_batch4_into: length mismatch"
            );
        }
        let [o0, o1, o2, o3] = outs;
        o0.clear();
        o1.clear();
        o2.clear();
        o3.clear();
        if n == 0 {
            return;
        }
        // Per-lane scalar mean in slice order — bit-identical to the
        // scalar path's mean removal.
        let mut means = [0.0f64; 4];
        for (m, sig) in means.iter_mut().zip(&signals) {
            *m = sig.iter().sum::<f64>() / n as f64;
        }
        scratch.centered.clear();
        scratch.centered.resize(4 * n, 0.0);
        for (l, sig) in signals.iter().enumerate() {
            let m = means[l];
            for (t, &v) in sig.iter().enumerate() {
                scratch.centered[4 * t + l] = v - m;
            }
        }
        self.real.process_batch4_interleaved(scratch);
        let scale = 2.0 / n as f64;
        let nb = self.bins();
        for (l, o) in [o0, o1, o2, o3].into_iter().enumerate() {
            o.reserve(nb);
            for k in 0..nb {
                let re = scratch.bins_re[4 * k + l];
                let im = scratch.bins_im[4 * k + l];
                o.push((re * re + im * im).sqrt() * scale);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dft;

    fn signal(n: usize) -> Vec<Complex> {
        (0..n)
            .map(|i| Complex::from_real((i as f64 * 0.37).sin() + 0.3 * (i as f64 * 1.9).cos()))
            .collect()
    }

    fn assert_close(a: &[Complex], b: &[Complex], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert!(
                (x.re - y.re).abs() < tol && (x.im - y.im).abs() < tol,
                "{x:?} != {y:?}"
            );
        }
    }

    #[test]
    fn plan_matches_dft_across_strategies() {
        let mut scratch = FftScratch::default();
        // Trivial, radix-2, and Bluestein lengths, including the paper's 300.
        for n in [0usize, 1, 2, 3, 7, 8, 60, 64, 100, 150, 300] {
            let x = signal(n);
            let mut buf = x.clone();
            FftPlan::new(n).process(&mut buf, &mut scratch);
            assert_close(&buf, &dft(&x), 1e-8 * (n.max(1) as f64));
        }
    }

    #[test]
    fn plan_inverse_roundtrips() {
        let mut scratch = FftScratch::default();
        for n in [1usize, 8, 33, 300] {
            let x = signal(n);
            let plan = FftPlan::new(n);
            let mut buf = x.clone();
            plan.process(&mut buf, &mut scratch);
            plan.process_inverse(&mut buf, &mut scratch);
            assert_close(&buf, &x, 1e-9 * (n as f64));
        }
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn plan_rejects_wrong_length() {
        let mut scratch = FftScratch::default();
        FftPlan::new(8).process(&mut [Complex::ZERO; 4], &mut scratch);
    }

    #[test]
    fn real_plan_matches_complex_dft_bins() {
        let mut packed = Vec::new();
        let mut scratch = FftScratch::default();
        let mut out = Vec::new();
        // Even (packed) and odd (direct) lengths.
        for n in [2usize, 4, 9, 10, 64, 151, 300] {
            let x = signal(n);
            let real: Vec<f64> = x.iter().map(|z| z.re).collect();
            let plan = RealFftPlan::new(n);
            assert_eq!(plan.bins(), n / 2 + 1);
            plan.process_into(&real, &mut packed, &mut scratch, &mut out);
            let reference = dft(&x);
            assert_close(&out, &reference[..=n / 2], 1e-8 * (n as f64));
        }
    }

    #[test]
    fn real_plan_empty_input() {
        let plan = RealFftPlan::new(0);
        assert!(plan.is_empty());
        assert_eq!(plan.bins(), 0);
        let mut out = vec![Complex::ONE];
        plan.process_into(&[], &mut Vec::new(), &mut FftScratch::default(), &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn batched_spectrum_matches_scalar_path() {
        // Radix-2, Bluestein (incl. the paper's 300), odd (direct) and
        // trivial lengths; four distinct lanes each.
        for n in [0usize, 1, 2, 4, 9, 10, 64, 150, 151, 300] {
            let plan = SpectrumPlan::new(n);
            let lanes: Vec<Vec<f64>> = (0..4)
                .map(|l| {
                    (0..n)
                        .map(|i| {
                            9.81 * (l == 0) as u64 as f64
                                + (i as f64 * (0.21 + 0.13 * l as f64)).sin()
                                + 0.4 * (i as f64 * (1.7 + 0.31 * l as f64)).cos()
                        })
                        .collect()
                })
                .collect();
            let mut scalar_scratch = SpectrumScratch::default();
            let mut expect = vec![Vec::new(); 4];
            for (l, sig) in lanes.iter().enumerate() {
                plan.magnitude_into(sig, &mut scalar_scratch, &mut expect[l]);
            }
            let mut batch_scratch = BatchSpectrumScratch::default();
            let mut got = [Vec::new(), Vec::new(), Vec::new(), Vec::new()];
            let [g0, g1, g2, g3] = &mut got;
            plan.magnitude_batch4_into(
                [&lanes[0], &lanes[1], &lanes[2], &lanes[3]],
                &mut batch_scratch,
                [g0, g1, g2, g3],
            );
            for l in 0..4 {
                assert_eq!(got[l].len(), expect[l].len(), "n={n} lane {l}");
                for (k, (a, b)) in got[l].iter().zip(&expect[l]).enumerate() {
                    // Only the final |z| differs (sqrt vs hypot): ≈1 ulp.
                    assert!(
                        (a - b).abs() <= 1e-12 * b.abs().max(1e-9),
                        "n={n} lane {l} bin {k}: {a} vs {b}"
                    );
                }
            }
        }
    }

    #[test]
    fn batched_spectrum_reuses_buffers_without_reallocating() {
        let plan = SpectrumPlan::new(300);
        let mut scratch = BatchSpectrumScratch::default();
        let sigs: Vec<Vec<f64>> = (0..4)
            .map(|l| {
                (0..300)
                    .map(|i| (i as f64 * (0.2 + l as f64)).sin())
                    .collect()
            })
            .collect();
        let mut outs = [Vec::new(), Vec::new(), Vec::new(), Vec::new()];
        let run = |scratch: &mut BatchSpectrumScratch, outs: &mut [Vec<f64>; 4]| {
            let [o0, o1, o2, o3] = outs;
            plan.magnitude_batch4_into(
                [&sigs[0], &sigs[1], &sigs[2], &sigs[3]],
                scratch,
                [o0, o1, o2, o3],
            );
        };
        run(&mut scratch, &mut outs);
        let caps = (
            scratch.centered.capacity(),
            scratch.packed_re.capacity(),
            scratch.aux_re.capacity(),
            scratch.bins_re.capacity(),
        );
        for _ in 0..10 {
            run(&mut scratch, &mut outs);
        }
        assert_eq!(
            caps,
            (
                scratch.centered.capacity(),
                scratch.packed_re.capacity(),
                scratch.aux_re.capacity(),
                scratch.bins_re.capacity(),
            ),
            "steady-state batched spectra must not reallocate"
        );
    }

    #[test]
    fn spectrum_plan_reuses_buffers_without_reallocating() {
        let plan = SpectrumPlan::new(300);
        let mut scratch = SpectrumScratch::default();
        let mut out = Vec::new();
        let sig: Vec<f64> = (0..300).map(|i| (i as f64 * 0.21).sin()).collect();
        plan.magnitude_into(&sig, &mut scratch, &mut out);
        let caps = (
            scratch.packed.capacity(),
            scratch.fft.aux.capacity(),
            scratch.bins.capacity(),
            scratch.centered.capacity(),
            out.capacity(),
        );
        for _ in 0..10 {
            plan.magnitude_into(&sig, &mut scratch, &mut out);
        }
        assert_eq!(
            caps,
            (
                scratch.packed.capacity(),
                scratch.fft.aux.capacity(),
                scratch.bins.capacity(),
                scratch.centered.capacity(),
                out.capacity(),
            ),
            "steady-state spectrum computation must not reallocate"
        );
    }
}
