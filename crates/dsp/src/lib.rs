//! Signal-processing substrate for the SmarterYou reproduction.
//!
//! The paper derives frequency-domain features (main/secondary spectral
//! peaks, §V-C) from 50 Hz accelerometer and gyroscope streams via the
//! discrete Fourier transform. This crate implements the required DSP from
//! scratch: complex numbers, planned O(n log n) FFTs for *arbitrary*
//! lengths (radix-2 Cooley–Tukey plus a Bluestein chirp-z path — the
//! paper's 6 s × 50 Hz = 300-sample window is not a power of two), a
//! real-input half-complex fast path, window functions, spectral-peak
//! extraction, the 3-axis magnitude reduction, and simple
//! filters/segmenters used by the sensor simulator.
//!
//! Throughput-critical callers precompute an [`FftPlan`] / [`SpectrumPlan`]
//! per window length and reuse [`FftScratch`] / [`SpectrumScratch`]
//! workspace, making steady-state transforms allocation-free (see the
//! [`plan`] module docs).
//!
//! # Example
//!
//! Extract the dominant frequency of a 2 Hz sinusoid sampled at 50 Hz:
//!
//! ```
//! use smarteryou_dsp::{magnitude_spectrum, spectral_peaks};
//!
//! let fs = 50.0;
//! let signal: Vec<f64> = (0..300)
//!     .map(|i| (2.0 * std::f64::consts::PI * 2.0 * i as f64 / fs).sin())
//!     .collect();
//! let spectrum = magnitude_spectrum(&signal);
//! let peaks = spectral_peaks(&spectrum, fs).expect("non-empty spectrum");
//! assert!((peaks.main_frequency - 2.0).abs() < 0.2);
//! ```

mod complex;
mod fft;
mod filter;
pub mod plan;
mod segment;
mod spectrum;
mod window;

pub use complex::Complex;
pub use fft::{dft, dft_fallback_count, fft, ifft};
pub use filter::{MovingAverage, SinglePoleLowPass};
pub use plan::{
    BatchSpectrumScratch, FftPlan, FftScratch, RealFftPlan, SpectrumPlan, SpectrumScratch,
};
pub use segment::Segmenter;
pub use spectrum::{magnitude_spectrum, spectral_peaks, SpectralPeaks};
pub use window::WindowFunction;

/// Magnitude of a 3-axis sample: `sqrt(x² + y² + z²)` (§V-C of the paper).
pub fn axis_magnitude(x: f64, y: f64, z: f64) -> f64 {
    (x * x + y * y + z * z).sqrt()
}

/// Applies [`axis_magnitude`] over parallel axis slices.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn magnitude_series(x: &[f64], y: &[f64], z: &[f64]) -> Vec<f64> {
    let mut out = Vec::new();
    magnitude_series_into(x, y, z, &mut out);
    out
}

/// [`magnitude_series`] into a caller-owned buffer (cleared first), so hot
/// loops can reuse one allocation across windows.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn magnitude_series_into(x: &[f64], y: &[f64], z: &[f64], out: &mut Vec<f64>) {
    assert!(
        x.len() == y.len() && y.len() == z.len(),
        "magnitude_series: axis length mismatch"
    );
    let n = x.len();
    out.clear();
    out.resize(n, 0.0);
    // 4-lane chunked form of the elementwise map: same per-element
    // expression as [`axis_magnitude`], so results are bit-identical to the
    // scalar loop — the chunking only gives the autovectorizer independent
    // lanes to fuse the three multiply-adds and the sqrt across.
    let main = n - n % 4;
    for (((o, xc), yc), zc) in out[..main]
        .chunks_exact_mut(4)
        .zip(x[..main].chunks_exact(4))
        .zip(y[..main].chunks_exact(4))
        .zip(z[..main].chunks_exact(4))
    {
        for l in 0..4 {
            o[l] = (xc[l] * xc[l] + yc[l] * yc[l] + zc[l] * zc[l]).sqrt();
        }
    }
    for i in main..n {
        out[i] = axis_magnitude(x[i], y[i], z[i]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn magnitude_of_unit_axes() {
        assert!((axis_magnitude(1.0, 0.0, 0.0) - 1.0).abs() < 1e-12);
        assert!((axis_magnitude(1.0, 2.0, 2.0) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn magnitude_series_matches_pointwise() {
        let m = magnitude_series(&[3.0, 0.0], &[4.0, 0.0], &[0.0, 5.0]);
        assert_eq!(m, vec![5.0, 5.0]);
    }
}
