use std::f64::consts::PI;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::plan::{FftPlan, FftScratch};
use crate::Complex;

/// Process-wide count of [`dft`] invocations.
///
/// The direct O(n²) transform is a *reference* implementation: every
/// production path runs a planned O(n log n) transform ([`FftPlan`] handles
/// arbitrary lengths via Bluestein), so outside of tests this counter must
/// stay at zero. The fleet benchmark asserts exactly that, guarding against
/// a future change quietly reintroducing the quadratic fallback.
static DFT_CALLS: AtomicU64 = AtomicU64::new(0);

/// Number of times the O(n²) [`dft`] reference has run in this process.
pub fn dft_fallback_count() -> u64 {
    DFT_CALLS.load(Ordering::Relaxed)
}

/// Discrete Fourier transform by direct summation: O(n²).
///
/// The reference implementation that the planned transforms are tested
/// against. Not used by any production path — see [`dft_fallback_count`].
pub fn dft(input: &[Complex]) -> Vec<Complex> {
    DFT_CALLS.fetch_add(1, Ordering::Relaxed);
    let n = input.len();
    if n == 0 {
        return Vec::new();
    }
    let step = -2.0 * PI / n as f64;
    (0..n)
        .map(|k| {
            let mut acc = Complex::ZERO;
            for (t, &x) in input.iter().enumerate() {
                acc += x * Complex::cis(step * (k * t % n) as f64);
            }
            acc
        })
        .collect()
}

/// Forward Fourier transform of any length in O(n log n).
///
/// Plans the transform on the fly ([`FftPlan`]): radix-2 Cooley–Tukey for
/// power-of-two lengths, Bluestein's chirp-z algorithm otherwise. Hot paths
/// that transform many same-length buffers should hold an [`FftPlan`] (or a
/// [`SpectrumPlan`](crate::SpectrumPlan)) instead of calling this.
pub fn fft(input: &[Complex]) -> Vec<Complex> {
    let mut buf = input.to_vec();
    FftPlan::new(input.len()).process(&mut buf, &mut FftScratch::default());
    buf
}

/// Inverse Fourier transform, normalised by `1/n` so `ifft(fft(x)) == x`.
///
/// Same planning strategy as [`fft`].
pub fn ifft(input: &[Complex]) -> Vec<Complex> {
    let mut buf = input.to_vec();
    FftPlan::new(input.len()).process_inverse(&mut buf, &mut FftScratch::default());
    buf
}

#[cfg(test)]
mod tests {
    use super::*;

    fn real_signal(n: usize, f: impl Fn(usize) -> f64) -> Vec<Complex> {
        (0..n).map(|i| Complex::from_real(f(i))).collect()
    }

    fn assert_close(a: &[Complex], b: &[Complex], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert!(
                (x.re - y.re).abs() < tol && (x.im - y.im).abs() < tol,
                "{x:?} != {y:?}"
            );
        }
    }

    #[test]
    fn empty_input_is_empty_output() {
        assert!(fft(&[]).is_empty());
        assert!(ifft(&[]).is_empty());
        assert!(dft(&[]).is_empty());
    }

    #[test]
    fn dft_calls_are_counted() {
        let before = dft_fallback_count();
        dft(&[Complex::ONE, Complex::ZERO]);
        assert!(dft_fallback_count() > before);
    }

    #[test]
    fn dc_signal_concentrates_in_bin_zero() {
        let x = real_signal(8, |_| 1.0);
        let y = fft(&x);
        assert!((y[0].re - 8.0).abs() < 1e-9);
        for z in &y[1..] {
            assert!(z.abs() < 1e-9);
        }
    }

    #[test]
    fn fft_matches_dft_on_power_of_two() {
        let x = real_signal(64, |i| {
            (i as f64 * 0.37).sin() + 0.2 * (i as f64 * 1.7).cos()
        });
        assert_close(&fft(&x), &dft(&x), 1e-8);
    }

    #[test]
    fn non_power_of_two_matches_dft() {
        // 300 samples (the paper's deployed window) runs Bluestein, not the
        // quadratic fallback — and agrees with the direct reference.
        let x = real_signal(300, |i| (i as f64 * 0.21).sin());
        assert_close(&fft(&x), &dft(&x), 1e-7);
    }

    #[test]
    fn ifft_inverts_fft_power_of_two() {
        let x = real_signal(128, |i| (i as f64).sin() * 0.5 + (i % 7) as f64);
        let back = ifft(&fft(&x));
        assert_close(&back, &x, 1e-9);
    }

    #[test]
    fn ifft_inverts_fft_arbitrary_length() {
        let x = real_signal(150, |i| (i as f64 * 0.11).cos());
        let back = ifft(&fft(&x));
        assert_close(&back, &x, 1e-7);
    }

    #[test]
    fn single_tone_lands_in_expected_bin() {
        // 8 cycles over 64 samples -> bin 8 (and its mirror 56).
        let n = 64;
        let x = real_signal(n, |i| (2.0 * PI * 8.0 * i as f64 / n as f64).cos());
        let y = fft(&x);
        let mags: Vec<f64> = y.iter().map(|z| z.abs()).collect();
        let peak = mags
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0;
        assert!(peak == 8 || peak == n - 8);
    }

    #[test]
    fn parseval_energy_is_preserved() {
        let n = 256;
        let x = real_signal(n, |i| ((i * i) as f64 * 0.01).sin());
        let y = fft(&x);
        let time_energy: f64 = x.iter().map(|z| z.norm_sqr()).sum();
        let freq_energy: f64 = y.iter().map(|z| z.norm_sqr()).sum::<f64>() / n as f64;
        assert!((time_energy - freq_energy).abs() < 1e-6 * time_energy.max(1.0));
    }
}
