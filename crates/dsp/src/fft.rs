use std::f64::consts::PI;

use crate::Complex;

/// Discrete Fourier transform by direct summation: O(n²).
///
/// Used as the reference implementation and as the fallback for lengths that
/// are not powers of two (the paper's 6 s × 50 Hz = 300-sample windows are
/// one such length).
pub fn dft(input: &[Complex]) -> Vec<Complex> {
    let n = input.len();
    if n == 0 {
        return Vec::new();
    }
    let step = -2.0 * PI / n as f64;
    (0..n)
        .map(|k| {
            let mut acc = Complex::ZERO;
            for (t, &x) in input.iter().enumerate() {
                acc += x * Complex::cis(step * (k * t % n) as f64);
            }
            acc
        })
        .collect()
}

/// Forward Fourier transform.
///
/// Uses an in-place iterative radix-2 Cooley–Tukey FFT (O(n log n)) when the
/// length is a power of two, and falls back to the direct [`dft`] otherwise.
/// Returns the empty vector for empty input.
pub fn fft(input: &[Complex]) -> Vec<Complex> {
    let n = input.len();
    if n == 0 {
        return Vec::new();
    }
    if !n.is_power_of_two() {
        return dft(input);
    }
    let mut buf = input.to_vec();
    fft_in_place(&mut buf, false);
    buf
}

/// Inverse Fourier transform, normalised by `1/n` so `ifft(fft(x)) == x`.
///
/// Same radix-2/direct strategy as [`fft`].
pub fn ifft(input: &[Complex]) -> Vec<Complex> {
    let n = input.len();
    if n == 0 {
        return Vec::new();
    }
    let scale = 1.0 / n as f64;
    if !n.is_power_of_two() {
        // Inverse DFT via conjugation: IDFT(x) = conj(DFT(conj(x))) / n.
        let conj: Vec<Complex> = input.iter().map(|z| z.conj()).collect();
        return dft(&conj)
            .into_iter()
            .map(|z| z.conj().scale(scale))
            .collect();
    }
    let mut buf = input.to_vec();
    fft_in_place(&mut buf, true);
    for z in &mut buf {
        *z = z.scale(scale);
    }
    buf
}

/// Iterative radix-2 Cooley–Tukey. `inverse` flips the twiddle sign; the
/// caller applies the 1/n normalisation.
fn fft_in_place(buf: &mut [Complex], inverse: bool) {
    let n = buf.len();
    debug_assert!(n.is_power_of_two());
    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = (i.reverse_bits() >> (usize::BITS - bits)) & (n - 1);
        if j > i {
            buf.swap(i, j);
        }
    }
    let sign = if inverse { 2.0 * PI } else { -2.0 * PI };
    let mut len = 2;
    while len <= n {
        let ang = sign / len as f64;
        let wlen = Complex::cis(ang);
        for start in (0..n).step_by(len) {
            let mut w = Complex::ONE;
            for k in 0..len / 2 {
                let even = buf[start + k];
                let odd = buf[start + k + len / 2] * w;
                buf[start + k] = even + odd;
                buf[start + k + len / 2] = even - odd;
                w = w * wlen;
            }
        }
        len <<= 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn real_signal(n: usize, f: impl Fn(usize) -> f64) -> Vec<Complex> {
        (0..n).map(|i| Complex::from_real(f(i))).collect()
    }

    fn assert_close(a: &[Complex], b: &[Complex], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert!(
                (x.re - y.re).abs() < tol && (x.im - y.im).abs() < tol,
                "{x:?} != {y:?}"
            );
        }
    }

    #[test]
    fn empty_input_is_empty_output() {
        assert!(fft(&[]).is_empty());
        assert!(ifft(&[]).is_empty());
        assert!(dft(&[]).is_empty());
    }

    #[test]
    fn dc_signal_concentrates_in_bin_zero() {
        let x = real_signal(8, |_| 1.0);
        let y = fft(&x);
        assert!((y[0].re - 8.0).abs() < 1e-9);
        for z in &y[1..] {
            assert!(z.abs() < 1e-9);
        }
    }

    #[test]
    fn fft_matches_dft_on_power_of_two() {
        let x = real_signal(64, |i| {
            (i as f64 * 0.37).sin() + 0.2 * (i as f64 * 1.7).cos()
        });
        assert_close(&fft(&x), &dft(&x), 1e-8);
    }

    #[test]
    fn non_power_of_two_falls_back_to_dft() {
        let x = real_signal(300, |i| (i as f64 * 0.21).sin());
        assert_close(&fft(&x), &dft(&x), 1e-7);
    }

    #[test]
    fn ifft_inverts_fft_power_of_two() {
        let x = real_signal(128, |i| (i as f64).sin() * 0.5 + (i % 7) as f64);
        let back = ifft(&fft(&x));
        assert_close(&back, &x, 1e-9);
    }

    #[test]
    fn ifft_inverts_fft_arbitrary_length() {
        let x = real_signal(150, |i| (i as f64 * 0.11).cos());
        let back = ifft(&fft(&x));
        assert_close(&back, &x, 1e-7);
    }

    #[test]
    fn single_tone_lands_in_expected_bin() {
        // 8 cycles over 64 samples -> bin 8 (and its mirror 56).
        let n = 64;
        let x = real_signal(n, |i| (2.0 * PI * 8.0 * i as f64 / n as f64).cos());
        let y = fft(&x);
        let mags: Vec<f64> = y.iter().map(|z| z.abs()).collect();
        let peak = mags
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0;
        assert!(peak == 8 || peak == n - 8);
    }

    #[test]
    fn parseval_energy_is_preserved() {
        let n = 256;
        let x = real_signal(n, |i| ((i * i) as f64 * 0.01).sin());
        let y = fft(&x);
        let time_energy: f64 = x.iter().map(|z| z.norm_sqr()).sum();
        let freq_energy: f64 = y.iter().map(|z| z.norm_sqr()).sum::<f64>() / n as f64;
        assert!((time_energy - freq_energy).abs() < 1e-6 * time_energy.max(1.0));
    }
}
