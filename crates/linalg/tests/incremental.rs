//! Property tests for the incremental Cholesky primitives: rank-1
//! update/downdate and bordered append/remove must agree with a full
//! refactorisation to tight epsilon over random SPD matrices, and a
//! downdate that would lose positive definiteness must surface a typed
//! error (never a NaN-poisoned factor).

use proptest::prelude::*;
use proptest::TestCaseError;
use smarteryou_linalg::{LinalgError, Matrix};

/// Strategy: a well-conditioned SPD matrix built as `A Aᵀ + n·I` from a
/// random square matrix with bounded entries.
fn spd_matrix(n: usize) -> impl Strategy<Value = Matrix> {
    prop::collection::vec(-2.0..2.0f64, n * n).prop_map(move |data| {
        let a = Matrix::from_vec(n, n, data).expect("sized data");
        let mut g = a.gram();
        g.add_diagonal(n as f64);
        g
    })
}

fn vec_n(n: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-2.0..2.0f64, n)
}

/// `A + v vᵀ` (or minus), densely.
fn rank1_shift(a: &Matrix, v: &[f64], sign: f64) -> Matrix {
    let n = a.rows();
    let mut out = a.clone();
    for i in 0..n {
        for j in 0..n {
            out[(i, j)] += sign * v[i] * v[j];
        }
    }
    out
}

fn assert_factor_close(
    incremental: &Matrix,
    refactored: &Matrix,
    eps: f64,
) -> Result<(), TestCaseError> {
    prop_assert_eq!(incremental.shape(), refactored.shape());
    for i in 0..incremental.rows() {
        for j in 0..=i {
            let (l, r) = (incremental[(i, j)], refactored[(i, j)]);
            let scale = 1.0f64.max(r.abs());
            prop_assert!(
                (l - r).abs() <= eps * scale,
                "L[{i}][{j}] diverged: incremental {l} vs refactored {r}"
            );
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn rank1_update_matches_refactorisation(a in spd_matrix(6), v in vec_n(6)) {
        let mut ch = a.cholesky().unwrap();
        ch.update(&v).unwrap();
        let full = rank1_shift(&a, &v, 1.0).cholesky().unwrap();
        assert_factor_close(ch.l(), full.l(), 1e-9)?;
    }

    #[test]
    fn rank1_downdate_matches_refactorisation(a in spd_matrix(6), v in vec_n(6)) {
        // Downdate the updated matrix: `(A + vvᵀ) − vvᵀ` is certainly SPD,
        // so the downdate must succeed and land back on chol(A).
        let up = rank1_shift(&a, &v, 1.0);
        let mut ch = up.cholesky().unwrap();
        ch.downdate(&v).unwrap();
        let full = a.cholesky().unwrap();
        assert_factor_close(ch.l(), full.l(), 1e-8)?;
    }

    #[test]
    fn bordered_append_matches_refactorisation(a in spd_matrix(7)) {
        // Factor the leading 6×6 principal minor, then border on the last
        // row/column of the full matrix.
        let n = a.rows() - 1;
        let mut leading = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                leading[(i, j)] = a[(i, j)];
            }
        }
        let border: Vec<f64> = (0..n).map(|i| a[(n, i)]).collect();
        let mut ch = leading.cholesky().unwrap();
        ch.append_row(&border, a[(n, n)]).unwrap();
        let full = a.cholesky().unwrap();
        assert_factor_close(ch.l(), full.l(), 1e-9)?;
    }

    #[test]
    fn remove_row_matches_refactorisation(a in spd_matrix(6), k in 0usize..6) {
        let mut ch = a.cholesky().unwrap();
        ch.remove_row(k).unwrap();
        let n = a.rows();
        let keep: Vec<usize> = (0..n).filter(|&i| i != k).collect();
        let mut minor = Matrix::zeros(n - 1, n - 1);
        for (ii, &i) in keep.iter().enumerate() {
            for (jj, &j) in keep.iter().enumerate() {
                minor[(ii, jj)] = a[(i, j)];
            }
        }
        let full = minor.cholesky().unwrap();
        assert_factor_close(ch.l(), full.l(), 1e-9)?;
    }

    #[test]
    fn append_then_remove_roundtrips(a in spd_matrix(6), v in vec_n(6), c in 8.0..16.0f64) {
        let mut ch = a.cholesky().unwrap();
        let before = ch.l().clone();
        // `c` is large enough for the bordered matrix to stay SPD (the
        // Schur complement c − ‖L⁻¹v‖² is positive for this strategy).
        ch.append_row(&v, c).unwrap();
        ch.remove_row(a.rows()).unwrap();
        assert_factor_close(ch.l(), &before, 1e-9)?;
    }

    #[test]
    fn singular_downdate_is_typed_error_not_nan(a in spd_matrix(5)) {
        // v = the factor's own first column zeroes the first pivot
        // bit-exactly (`L Lᵀ − l₀ l₀ᵀ` is rank-deficient), so the downdate
        // must refuse with the typed error and leave the factor untouched.
        let mut ch = a.cholesky().unwrap();
        let before = ch.l().clone();
        let v: Vec<f64> = (0..a.rows()).map(|i| before[(i, 0)]).collect();
        prop_assert_eq!(ch.downdate(&v), Err(LinalgError::DowndateNotPositiveDefinite));
        for i in 0..a.rows() {
            for j in 0..=i {
                prop_assert!(ch.l()[(i, j)].to_bits() == before[(i, j)].to_bits(),
                    "factor mutated by failed downdate at [{i}][{j}]");
                prop_assert!(ch.l()[(i, j)].is_finite());
            }
        }
    }

    #[test]
    fn solve_into_is_bit_identical_to_solve(a in spd_matrix(6), b in vec_n(6)) {
        let ch = a.cholesky().unwrap();
        let x = ch.solve(&b).unwrap();
        let mut y = b.clone();
        ch.solve_into(&mut y).unwrap();
        for (l, r) in x.iter().zip(&y) {
            prop_assert!(l.to_bits() == r.to_bits());
        }
    }

    #[test]
    fn updated_factor_solves_the_updated_system(a in spd_matrix(6), v in vec_n(6), b in vec_n(6)) {
        let mut ch = a.cholesky().unwrap();
        ch.update(&v).unwrap();
        let x = ch.solve(&b).unwrap();
        let ax = rank1_shift(&a, &v, 1.0).matvec(&x).unwrap();
        for (l, r) in ax.iter().zip(&b) {
            prop_assert!((l - r).abs() < 1e-6, "residual {l} vs {r}");
        }
    }
}

#[test]
fn downdate_dimension_checked() {
    let a = Matrix::from_rows(&[&[4.0, 1.0], &[1.0, 3.0]]).unwrap();
    let mut ch = a.cholesky().unwrap();
    assert!(matches!(
        ch.downdate(&[1.0]),
        Err(LinalgError::DimensionMismatch { .. })
    ));
    assert!(matches!(
        ch.update(&[1.0, 2.0, 3.0]),
        Err(LinalgError::DimensionMismatch { .. })
    ));
}

#[test]
fn remove_row_rejects_out_of_bounds_and_degenerate() {
    let a = Matrix::from_rows(&[&[4.0, 1.0], &[1.0, 3.0]]).unwrap();
    let mut ch = a.cholesky().unwrap();
    assert!(matches!(
        ch.remove_row(2),
        Err(LinalgError::InvalidShape(_))
    ));
    ch.remove_row(0).unwrap();
    assert!(matches!(
        ch.remove_row(0),
        Err(LinalgError::InvalidShape(_))
    ));
}
