//! Property-based tests for the linear-algebra substrate.

use proptest::prelude::*;
use smarteryou_linalg::{vector, Matrix};

/// Strategy: a well-conditioned SPD matrix built as `A Aᵀ + n·I` from a
/// random square matrix with bounded entries.
fn spd_matrix(n: usize) -> impl Strategy<Value = Matrix> {
    prop::collection::vec(-2.0..2.0f64, n * n).prop_map(move |data| {
        let a = Matrix::from_vec(n, n, data).expect("sized data");
        let mut g = a.gram();
        g.add_diagonal(n as f64);
        g
    })
}

fn vec_n(n: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-10.0..10.0f64, n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn lu_solve_satisfies_system(a in spd_matrix(6), b in vec_n(6)) {
        let x = a.solve(&b).expect("SPD is nonsingular");
        let ax = a.matvec(&x).unwrap();
        for (l, r) in ax.iter().zip(&b) {
            prop_assert!((l - r).abs() < 1e-6, "residual {l} vs {r}");
        }
    }

    #[test]
    fn cholesky_agrees_with_lu(a in spd_matrix(5), b in vec_n(5)) {
        let x_lu = a.solve(&b).unwrap();
        let x_ch = a.cholesky().unwrap().solve(&b).unwrap();
        for (l, r) in x_lu.iter().zip(&x_ch) {
            prop_assert!((l - r).abs() < 1e-6);
        }
    }

    #[test]
    fn inverse_times_self_is_identity(a in spd_matrix(4)) {
        let inv = a.inverse().unwrap();
        let prod = a.matmul(&inv).unwrap();
        for i in 0..4 {
            for j in 0..4 {
                let expect = if i == j { 1.0 } else { 0.0 };
                prop_assert!((prod[(i, j)] - expect).abs() < 1e-7);
            }
        }
    }

    #[test]
    fn transpose_is_involution(data in prop::collection::vec(-100.0..100.0f64, 12)) {
        let a = Matrix::from_vec(3, 4, data).unwrap();
        prop_assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn matmul_is_associative(
        a in prop::collection::vec(-3.0..3.0f64, 6),
        b in prop::collection::vec(-3.0..3.0f64, 6),
        c in prop::collection::vec(-3.0..3.0f64, 4),
    ) {
        let a = Matrix::from_vec(2, 3, a).unwrap();
        let b = Matrix::from_vec(3, 2, b).unwrap();
        let c = Matrix::from_vec(2, 2, c).unwrap();
        let left = a.matmul(&b).unwrap().matmul(&c).unwrap();
        let right = a.matmul(&b.matmul(&c).unwrap()).unwrap();
        for i in 0..2 {
            for j in 0..2 {
                prop_assert!((left[(i, j)] - right[(i, j)]).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn gram_matrices_are_psd_on_diagonal(data in prop::collection::vec(-5.0..5.0f64, 12)) {
        let a = Matrix::from_vec(4, 3, data).unwrap();
        let g = a.gram();
        for i in 0..4 {
            prop_assert!(g[(i, i)] >= -1e-12);
        }
        prop_assert!(g.is_symmetric(1e-12));
    }

    #[test]
    fn dot_cauchy_schwarz(a in vec_n(8), b in vec_n(8)) {
        let lhs = vector::dot(&a, &b).abs();
        let rhs = vector::norm(&a) * vector::norm(&b);
        prop_assert!(lhs <= rhs + 1e-9);
    }

    #[test]
    fn distance_triangle_inequality(a in vec_n(5), b in vec_n(5), c in vec_n(5)) {
        let ab = vector::distance(&a, &b);
        let bc = vector::distance(&b, &c);
        let ac = vector::distance(&a, &c);
        prop_assert!(ac <= ab + bc + 1e-9);
    }
}
