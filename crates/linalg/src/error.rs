use std::fmt;

/// Error type for all fallible linear-algebra operations in this crate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinalgError {
    /// Operand shapes are incompatible (e.g. multiplying a 3×2 by a 3×2).
    DimensionMismatch {
        /// Human-readable description of the operation that failed.
        op: &'static str,
        /// Shape of the left/first operand, `(rows, cols)`.
        lhs: (usize, usize),
        /// Shape of the right/second operand, `(rows, cols)`.
        rhs: (usize, usize),
    },
    /// A factorisation encountered a (numerically) singular matrix.
    Singular,
    /// Cholesky factorisation was asked for on a matrix that is not
    /// symmetric positive definite.
    NotPositiveDefinite,
    /// A constructor was given data whose length does not match the
    /// requested shape, or an empty/ragged row set.
    InvalidShape(String),
    /// A rank-1 downdate (or row removal) would drive the factored matrix
    /// out of positive definiteness: the subtracted `v vᵀ` removes at
    /// least as much mass as some pivot holds. The factor is left
    /// unchanged; callers should refactor from scratch if the downdated
    /// matrix is expected to be SPD.
    DowndateNotPositiveDefinite,
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::DimensionMismatch { op, lhs, rhs } => write!(
                f,
                "dimension mismatch in {op}: {}x{} vs {}x{}",
                lhs.0, lhs.1, rhs.0, rhs.1
            ),
            LinalgError::Singular => write!(f, "matrix is singular to working precision"),
            LinalgError::NotPositiveDefinite => {
                write!(f, "matrix is not symmetric positive definite")
            }
            LinalgError::InvalidShape(msg) => write!(f, "invalid shape: {msg}"),
            LinalgError::DowndateNotPositiveDefinite => write!(
                f,
                "rank-1 downdate would lose positive definiteness to working precision"
            ),
        }
    }
}

impl std::error::Error for LinalgError {}
