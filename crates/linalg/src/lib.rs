//! Dense linear-algebra substrate for the SmarterYou reproduction.
//!
//! The paper's classifiers (kernel ridge regression in particular) reduce to
//! solving small dense symmetric systems. This crate provides exactly what
//! they need — a row-major [`Matrix`], LU and Cholesky factorisations, and
//! a handful of vector helpers — implemented from scratch so the workspace
//! has no external numerical dependencies.
//!
//! # Example
//!
//! ```
//! use smarteryou_linalg::Matrix;
//!
//! # fn main() -> Result<(), smarteryou_linalg::LinalgError> {
//! let a = Matrix::from_rows(&[&[4.0, 1.0], &[1.0, 3.0]])?;
//! let x = a.solve(&[1.0, 2.0])?;
//! assert!((4.0 * x[0] + x[1] - 1.0).abs() < 1e-12);
//! # Ok(())
//! # }
//! ```

mod error;
mod matrix;
mod solve;
pub mod vector;

pub use error::LinalgError;
pub use matrix::Matrix;
pub use solve::{Cholesky, Lu};
