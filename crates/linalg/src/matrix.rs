use std::fmt;
use std::ops::{Index, IndexMut};

use serde::Serialize;

use crate::solve::{Cholesky, Lu};
use crate::LinalgError;

/// A dense, row-major matrix of `f64`.
///
/// This is deliberately small: the SmarterYou pipeline never needs more than
/// a few hundred rows/columns (the kernel ridge regression dual form tops out
/// at the training-set size, N ≈ 800).
///
/// # Example
///
/// ```
/// use smarteryou_linalg::Matrix;
///
/// # fn main() -> Result<(), smarteryou_linalg::LinalgError> {
/// let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]])?;
/// let b = a.matmul(&a.transpose())?;
/// assert_eq!(b[(0, 0)], 5.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

/// Hand-written (rather than derived) so deserialization is shape-checked:
/// a snapshot whose `data` length disagrees with `rows × cols` — truncated,
/// corrupted, or forged — is rejected with a typed error instead of
/// producing a matrix whose indexing would later panic.
impl serde::Deserialize for Matrix {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        let rows: usize = serde::__private::get_field(v, "Matrix", "rows")?;
        let cols: usize = serde::__private::get_field(v, "Matrix", "cols")?;
        let data: Vec<f64> = serde::__private::get_field(v, "Matrix", "data")?;
        Matrix::from_vec(rows, cols, data)
            .map_err(|e| serde::DeError::custom(format!("Matrix: {e}")))
    }
}

impl Matrix {
    /// Creates a `rows`×`cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates an `n`×`n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a matrix from row-major data.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::InvalidShape`] if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self, LinalgError> {
        // checked_mul: untrusted dimensions (e.g. a forged snapshot) must
        // not wrap in release builds and slip past the length check.
        let expected = rows.checked_mul(cols).ok_or_else(|| {
            LinalgError::InvalidShape(format!("{rows}x{cols} matrix size overflows"))
        })?;
        if data.len() != expected {
            return Err(LinalgError::InvalidShape(format!(
                "expected {expected} elements for a {rows}x{cols} matrix, got {}",
                data.len()
            )));
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Creates a matrix from a slice of equally sized rows.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::InvalidShape`] if `rows` is empty or ragged.
    pub fn from_rows<R: AsRef<[f64]>>(rows: &[R]) -> Result<Self, LinalgError> {
        if rows.is_empty() {
            return Err(LinalgError::InvalidShape("no rows".to_string()));
        }
        let cols = rows[0].as_ref().len();
        if cols == 0 {
            return Err(LinalgError::InvalidShape("empty rows".to_string()));
        }
        let mut data = Vec::with_capacity(rows.len() * cols);
        for (i, r) in rows.iter().enumerate() {
            let r = r.as_ref();
            if r.len() != cols {
                return Err(LinalgError::InvalidShape(format!(
                    "row {i} has {} columns, expected {cols}",
                    r.len()
                )));
            }
            data.extend_from_slice(r);
        }
        Ok(Matrix {
            rows: rows.len(),
            cols,
            data,
        })
    }

    /// Creates a column vector (n×1 matrix) from a slice.
    pub fn column(v: &[f64]) -> Self {
        Matrix {
            rows: v.len(),
            cols: 1,
            data: v.to_vec(),
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Shape as `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Borrows the underlying row-major data.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Consumes the matrix and returns the underlying row-major data.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Borrows row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`.
    pub fn row(&self, r: usize) -> &[f64] {
        assert!(r < self.rows, "row {r} out of bounds ({} rows)", self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrows row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`.
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        assert!(r < self.rows, "row {r} out of bounds ({} rows)", self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copies column `c` into a new `Vec`.
    ///
    /// # Panics
    ///
    /// Panics if `c >= self.cols()`.
    pub fn col(&self, c: usize) -> Vec<f64> {
        assert!(c < self.cols, "col {c} out of bounds ({} cols)", self.cols);
        (0..self.rows).map(|r| self[(r, c)]).collect()
    }

    /// Iterates over rows as slices.
    pub fn iter_rows(&self) -> impl Iterator<Item = &[f64]> {
        self.data.chunks_exact(self.cols)
    }

    /// Returns the transpose of `self`.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out[(c, r)] = self[(r, c)];
            }
        }
        out
    }

    /// Matrix product `self * rhs`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if
    /// `self.cols() != rhs.rows()`.
    pub fn matmul(&self, rhs: &Matrix) -> Result<Matrix, LinalgError> {
        if self.cols != rhs.rows {
            return Err(LinalgError::DimensionMismatch {
                op: "matmul",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        // ikj loop order keeps the inner loop contiguous in both operands.
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                let rhs_row = rhs.row(k);
                let out_row = out.row_mut(i);
                for (o, &b) in out_row.iter_mut().zip(rhs_row) {
                    *o += a * b;
                }
            }
        }
        Ok(out)
    }

    /// Matrix–vector product `self * v`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `self.cols() != v.len()`.
    pub fn matvec(&self, v: &[f64]) -> Result<Vec<f64>, LinalgError> {
        if self.cols != v.len() {
            return Err(LinalgError::DimensionMismatch {
                op: "matvec",
                lhs: self.shape(),
                rhs: (v.len(), 1),
            });
        }
        Ok(self
            .iter_rows()
            .map(|row| row.iter().zip(v).map(|(a, b)| a * b).sum())
            .collect())
    }

    /// Elementwise sum `self + rhs`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] on shape mismatch.
    pub fn add(&self, rhs: &Matrix) -> Result<Matrix, LinalgError> {
        if self.shape() != rhs.shape() {
            return Err(LinalgError::DimensionMismatch {
                op: "add",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| a + b)
            .collect();
        Ok(Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        })
    }

    /// Elementwise difference `self - rhs`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] on shape mismatch.
    pub fn sub(&self, rhs: &Matrix) -> Result<Matrix, LinalgError> {
        if self.shape() != rhs.shape() {
            return Err(LinalgError::DimensionMismatch {
                op: "sub",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| a - b)
            .collect();
        Ok(Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        })
    }

    /// Returns `self` scaled by `k`.
    pub fn scale(&self, k: f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|a| a * k).collect(),
        }
    }

    /// Adds `k` to each diagonal entry, in place. Used for ridge terms
    /// (`K + ρI`).
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn add_diagonal(&mut self, k: f64) {
        assert_eq!(
            self.rows, self.cols,
            "add_diagonal requires a square matrix"
        );
        for i in 0..self.rows {
            self[(i, i)] += k;
        }
    }

    /// Gram matrix `self * selfᵀ` (rows as vectors), exploiting symmetry.
    pub fn gram(&self) -> Matrix {
        let n = self.rows;
        let mut out = Matrix::zeros(n, n);
        for i in 0..n {
            for j in i..n {
                let dot: f64 = self
                    .row(i)
                    .iter()
                    .zip(self.row(j))
                    .map(|(a, b)| a * b)
                    .sum();
                out[(i, j)] = dot;
                out[(j, i)] = dot;
            }
        }
        out
    }

    /// Gram matrix of the columns: `selfᵀ * self`, exploiting symmetry.
    pub fn gram_columns(&self) -> Matrix {
        let m = self.cols;
        let mut out = Matrix::zeros(m, m);
        for row in self.iter_rows() {
            for i in 0..m {
                let a = row[i];
                if a == 0.0 {
                    continue;
                }
                for j in i..m {
                    out[(i, j)] += a * row[j];
                }
            }
        }
        for i in 0..m {
            for j in 0..i {
                out[(i, j)] = out[(j, i)];
            }
        }
        out
    }

    /// Maximum absolute entry (∞-norm over elements); 0 for empty matrices.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0, |acc, v| acc.max(v.abs()))
    }

    /// Returns `true` if the matrix is symmetric to within `tol`.
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if self.rows != self.cols {
            return false;
        }
        for i in 0..self.rows {
            for j in (i + 1)..self.cols {
                if (self[(i, j)] - self[(j, i)]).abs() > tol {
                    return false;
                }
            }
        }
        true
    }

    /// LU factorisation with partial pivoting.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::Singular`] if a zero pivot is encountered, or
    /// [`LinalgError::InvalidShape`] if the matrix is not square.
    pub fn lu(&self) -> Result<Lu, LinalgError> {
        Lu::factor(self)
    }

    /// Cholesky factorisation (`self = L Lᵀ`).
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::NotPositiveDefinite`] if the matrix is not
    /// symmetric positive definite, or [`LinalgError::InvalidShape`] if it is
    /// not square.
    pub fn cholesky(&self) -> Result<Cholesky, LinalgError> {
        Cholesky::factor(self)
    }

    /// Solves `self * x = b` via LU with partial pivoting.
    ///
    /// # Errors
    ///
    /// Propagates factorisation errors and dimension mismatches.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
        self.lu()?.solve(b)
    }

    /// Computes the inverse via LU.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::Singular`] for singular matrices.
    pub fn inverse(&self) -> Result<Matrix, LinalgError> {
        self.lu()?.solve_many(&Matrix::identity(self.rows))
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in 0..self.rows {
            for c in 0..self.cols {
                if c > 0 {
                    write!(f, " ")?;
                }
                write!(f, "{:10.4}", self[(r, c)])?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_identity() {
        let z = Matrix::zeros(2, 3);
        assert_eq!(z.shape(), (2, 3));
        assert!(z.as_slice().iter().all(|&v| v == 0.0));
        let i = Matrix::identity(3);
        assert_eq!(i[(0, 0)], 1.0);
        assert_eq!(i[(0, 1)], 0.0);
        assert_eq!(i[(2, 2)], 1.0);
    }

    #[test]
    fn from_vec_shape_checked() {
        assert!(Matrix::from_vec(2, 2, vec![1.0; 4]).is_ok());
        assert!(matches!(
            Matrix::from_vec(2, 2, vec![1.0; 3]),
            Err(LinalgError::InvalidShape(_))
        ));
    }

    #[test]
    fn deserialize_is_shape_checked() {
        let m = Matrix::from_rows(&[&[1.5, -2.0], &[0.25, 4.0]]).unwrap();
        let json = serde_json::to_string(&m).unwrap();
        let back: Matrix = serde_json::from_str(&json).unwrap();
        assert_eq!(m, back);
        // Same dims, short data: typed error, not a panic later.
        let bad = json.replace("[1.5,-2.0,0.25,4.0]", "[1.5,-2.0,0.25]");
        assert_ne!(bad, json, "corruption must have applied");
        assert!(serde_json::from_str::<Matrix>(&bad).is_err());
        // Inconsistent dims with plausible data length.
        let bad = json.replace("\"rows\":2", "\"rows\":3");
        assert!(serde_json::from_str::<Matrix>(&bad).is_err());
        // Forged dims whose product wraps usize: typed error, not a
        // zero-storage matrix that panics on first index.
        let huge = (1usize << 32).to_string();
        let bad = json
            .replace("\"rows\":2", &format!("\"rows\":{huge}"))
            .replace("\"cols\":2", &format!("\"cols\":{huge}"));
        assert!(serde_json::from_str::<Matrix>(&bad).is_err());
    }

    #[test]
    fn from_rows_rejects_ragged() {
        let err = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0]]).unwrap_err();
        assert!(matches!(err, LinalgError::InvalidShape(_)));
        let err = Matrix::from_rows::<Vec<f64>>(&[]).unwrap_err();
        assert!(matches!(err, LinalgError::InvalidShape(_)));
    }

    #[test]
    fn transpose_roundtrip() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]).unwrap();
        let t = a.transpose();
        assert_eq!(t.shape(), (3, 2));
        assert_eq!(t[(2, 1)], 6.0);
        assert_eq!(t.transpose(), a);
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(
            c,
            Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]).unwrap()
        );
    }

    #[test]
    fn matmul_dimension_mismatch() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(matches!(
            a.matmul(&b),
            Err(LinalgError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn matvec_matches_matmul() {
        let a = Matrix::from_rows(&[&[1.0, -1.0], &[2.0, 0.5]]).unwrap();
        let v = [3.0, 4.0];
        let got = a.matvec(&v).unwrap();
        assert_eq!(got, vec![-1.0, 8.0]);
    }

    #[test]
    fn add_sub_scale() {
        let a = Matrix::from_rows(&[&[1.0, 2.0]]).unwrap();
        let b = Matrix::from_rows(&[&[3.0, -2.0]]).unwrap();
        assert_eq!(a.add(&b).unwrap().as_slice(), &[4.0, 0.0]);
        assert_eq!(a.sub(&b).unwrap().as_slice(), &[-2.0, 4.0]);
        assert_eq!(a.scale(2.0).as_slice(), &[2.0, 4.0]);
    }

    #[test]
    fn gram_is_x_xt() {
        let x = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[0.0, 1.0]]).unwrap();
        let g = x.gram();
        let expect = x.matmul(&x.transpose()).unwrap();
        assert_eq!(g, expect);
        assert!(g.is_symmetric(0.0));
    }

    #[test]
    fn gram_columns_is_xt_x() {
        let x = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[0.0, 1.0]]).unwrap();
        let g = x.gram_columns();
        let expect = x.transpose().matmul(&x).unwrap();
        for i in 0..2 {
            for j in 0..2 {
                assert!((g[(i, j)] - expect[(i, j)]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn add_diagonal_ridge() {
        let mut a = Matrix::zeros(3, 3);
        a.add_diagonal(0.5);
        assert_eq!(a[(1, 1)], 0.5);
        assert_eq!(a[(0, 1)], 0.0);
    }

    #[test]
    fn inverse_of_known_matrix() {
        let a = Matrix::from_rows(&[&[4.0, 7.0], &[2.0, 6.0]]).unwrap();
        let inv = a.inverse().unwrap();
        let prod = a.matmul(&inv).unwrap();
        for i in 0..2 {
            for j in 0..2 {
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((prod[(i, j)] - expect).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn singular_matrix_reports_error() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]).unwrap();
        assert!(matches!(a.solve(&[1.0, 1.0]), Err(LinalgError::Singular)));
    }

    #[test]
    fn display_is_nonempty() {
        let a = Matrix::identity(2);
        assert!(!format!("{a}").is_empty());
    }
}
