use serde::Serialize;

use crate::{LinalgError, Matrix};

/// LU factorisation with partial pivoting: `P * A = L * U`.
///
/// Produced by [`Matrix::lu`]; reusable across multiple right-hand sides,
/// which is how [`Matrix::inverse`] amortises the factorisation cost.
#[derive(Debug, Clone)]
pub struct Lu {
    /// Packed L (unit lower, below diagonal) and U (upper, including diagonal).
    lu: Matrix,
    /// Row permutation: `perm[i]` is the original index of factored row `i`.
    perm: Vec<usize>,
}

impl Lu {
    /// Factors a square matrix.
    ///
    /// # Errors
    ///
    /// [`LinalgError::InvalidShape`] for non-square input,
    /// [`LinalgError::Singular`] if no usable pivot exists.
    pub fn factor(a: &Matrix) -> Result<Self, LinalgError> {
        let n = a.rows();
        if a.cols() != n {
            return Err(LinalgError::InvalidShape(format!(
                "LU requires a square matrix, got {}x{}",
                a.rows(),
                a.cols()
            )));
        }
        let mut lu = a.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        // Scale of the matrix for the relative singularity threshold.
        let scale = lu.max_abs().max(1.0);
        let tiny = f64::EPSILON * scale * (n as f64);

        for k in 0..n {
            // Partial pivoting: pick the largest magnitude in column k.
            let mut pivot_row = k;
            let mut pivot_val = lu[(k, k)].abs();
            for r in (k + 1)..n {
                let v = lu[(r, k)].abs();
                if v > pivot_val {
                    pivot_val = v;
                    pivot_row = r;
                }
            }
            if pivot_val <= tiny {
                return Err(LinalgError::Singular);
            }
            if pivot_row != k {
                perm.swap(k, pivot_row);
                for c in 0..n {
                    let tmp = lu[(k, c)];
                    lu[(k, c)] = lu[(pivot_row, c)];
                    lu[(pivot_row, c)] = tmp;
                }
            }
            let pivot = lu[(k, k)];
            for r in (k + 1)..n {
                let factor = lu[(r, k)] / pivot;
                lu[(r, k)] = factor;
                if factor == 0.0 {
                    continue;
                }
                for c in (k + 1)..n {
                    let sub = factor * lu[(k, c)];
                    lu[(r, c)] -= sub;
                }
            }
        }
        Ok(Lu { lu, perm })
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.lu.rows()
    }

    /// Solves `A x = b` using the stored factorisation.
    ///
    /// # Errors
    ///
    /// [`LinalgError::DimensionMismatch`] if `b.len() != self.dim()`.
    #[allow(clippy::needless_range_loop)] // substitution kernels read clearest with indices
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
        let n = self.dim();
        if b.len() != n {
            return Err(LinalgError::DimensionMismatch {
                op: "lu solve",
                lhs: (n, n),
                rhs: (b.len(), 1),
            });
        }
        // Apply permutation, then forward substitution (L has unit diagonal).
        let mut x: Vec<f64> = self.perm.iter().map(|&i| b[i]).collect();
        for i in 1..n {
            let mut sum = x[i];
            for j in 0..i {
                sum -= self.lu[(i, j)] * x[j];
            }
            x[i] = sum;
        }
        // Backward substitution with U.
        for i in (0..n).rev() {
            let mut sum = x[i];
            for j in (i + 1)..n {
                sum -= self.lu[(i, j)] * x[j];
            }
            x[i] = sum / self.lu[(i, i)];
        }
        Ok(x)
    }

    /// Solves `A X = B` for every column of `B` with one stored
    /// factorisation. Each column gets exactly the arithmetic of
    /// [`Lu::solve`], so results are bit-identical to column-wise calls.
    ///
    /// # Errors
    ///
    /// [`LinalgError::DimensionMismatch`] if `b.rows() != self.dim()`.
    pub fn solve_many(&self, b: &Matrix) -> Result<Matrix, LinalgError> {
        let n = self.dim();
        if b.rows() != n {
            return Err(LinalgError::DimensionMismatch {
                op: "lu solve_many",
                lhs: (n, n),
                rhs: b.shape(),
            });
        }
        let mut out = Matrix::zeros(n, b.cols());
        let mut col = vec![0.0; n];
        for c in 0..b.cols() {
            for r in 0..n {
                col[r] = b[(r, c)];
            }
            let x = self.solve(&col)?;
            for r in 0..n {
                out[(r, c)] = x[r];
            }
        }
        Ok(out)
    }
}

/// Cholesky factorisation `A = L Lᵀ` of a symmetric positive definite matrix.
///
/// Roughly twice as fast as LU for the ridge systems (`K + ρI`) the ML crate
/// solves, and fails loudly when regularisation is missing (a useful
/// diagnostic: an unregularised gram matrix of collinear features is not PD).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Cholesky {
    /// Lower-triangular factor, stored densely.
    l: Matrix,
}

/// Hand-written (rather than derived) so deserialization is shape-checked:
/// a snapshot carrying a non-square factor — truncated, corrupted, or
/// forged — is rejected with a typed error instead of producing a factor
/// whose triangular solves would later panic.
impl serde::Deserialize for Cholesky {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        let l: Matrix = serde::__private::get_field(v, "Cholesky", "l")?;
        if l.rows() != l.cols() {
            return Err(serde::DeError::custom(format!(
                "Cholesky factor must be square, got {}x{}",
                l.rows(),
                l.cols()
            )));
        }
        Ok(Cholesky { l })
    }
}

impl Cholesky {
    /// Factors a symmetric positive definite matrix.
    ///
    /// # Errors
    ///
    /// [`LinalgError::InvalidShape`] for non-square input,
    /// [`LinalgError::NotPositiveDefinite`] if a non-positive pivot appears
    /// (the matrix is not SPD to working precision).
    pub fn factor(a: &Matrix) -> Result<Self, LinalgError> {
        let n = a.rows();
        if a.cols() != n {
            return Err(LinalgError::InvalidShape(format!(
                "Cholesky requires a square matrix, got {}x{}",
                a.rows(),
                a.cols()
            )));
        }
        let mut l = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let mut sum = a[(i, j)];
                for k in 0..j {
                    sum -= l[(i, k)] * l[(j, k)];
                }
                if i == j {
                    if sum <= 0.0 {
                        return Err(LinalgError::NotPositiveDefinite);
                    }
                    l[(i, j)] = sum.sqrt();
                } else {
                    l[(i, j)] = sum / l[(j, j)];
                }
            }
        }
        Ok(Cholesky { l })
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.l.rows()
    }

    /// Borrows the lower-triangular factor `L`.
    pub fn l(&self) -> &Matrix {
        &self.l
    }

    /// Solves `A x = b` via forward/backward substitution.
    ///
    /// # Errors
    ///
    /// [`LinalgError::DimensionMismatch`] if `b.len() != self.dim()`.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
        let mut x = b.to_vec();
        self.solve_into(&mut x)?;
        Ok(x)
    }

    /// Solves `A x = b` in place: on entry `b` holds the right-hand side,
    /// on exit the solution. The allocation-free variant of
    /// [`Cholesky::solve`] — same arithmetic, so results are bit-identical;
    /// hot refit paths reuse one buffer across many solves.
    ///
    /// # Errors
    ///
    /// [`LinalgError::DimensionMismatch`] if `b.len() != self.dim()`; `b`
    /// is untouched on error.
    #[allow(clippy::needless_range_loop)] // substitution kernels read clearest with indices
    pub fn solve_into(&self, b: &mut [f64]) -> Result<(), LinalgError> {
        let n = self.dim();
        if b.len() != n {
            return Err(LinalgError::DimensionMismatch {
                op: "cholesky solve",
                lhs: (n, n),
                rhs: (b.len(), 1),
            });
        }
        // Forward: L y = b.
        for i in 0..n {
            let mut sum = b[i];
            for j in 0..i {
                sum -= self.l[(i, j)] * b[j];
            }
            b[i] = sum / self.l[(i, i)];
        }
        // Backward: Lᵀ x = y.
        for i in (0..n).rev() {
            let mut sum = b[i];
            for j in (i + 1)..n {
                sum -= self.l[(j, i)] * b[j];
            }
            b[i] = sum / self.l[(i, i)];
        }
        Ok(())
    }

    /// Solves `A X = B` for every column of `B` with one stored
    /// factorisation — the batch-refit primitive the ML crate's KRR cache
    /// builds on. Each column gets exactly the arithmetic of
    /// [`Cholesky::solve`], so results are bit-identical to column-wise
    /// calls.
    ///
    /// # Errors
    ///
    /// [`LinalgError::DimensionMismatch`] if `b.rows() != self.dim()`.
    pub fn solve_many(&self, b: &Matrix) -> Result<Matrix, LinalgError> {
        let mut out = b.clone();
        self.solve_many_into(&mut out)?;
        Ok(out)
    }

    /// Solves `A X = B` column-by-column in place: on entry `b` holds the
    /// right-hand sides, on exit the solutions. The allocation-light
    /// variant of [`Cholesky::solve_many`] (one scratch column, however
    /// many right-hand sides) with identical per-column arithmetic.
    ///
    /// # Errors
    ///
    /// [`LinalgError::DimensionMismatch`] if `b.rows() != self.dim()`; `b`
    /// is untouched on error.
    pub fn solve_many_into(&self, b: &mut Matrix) -> Result<(), LinalgError> {
        let n = self.dim();
        if b.rows() != n {
            return Err(LinalgError::DimensionMismatch {
                op: "cholesky solve_many",
                lhs: (n, n),
                rhs: b.shape(),
            });
        }
        let mut col = vec![0.0; n];
        for c in 0..b.cols() {
            for r in 0..n {
                col[r] = b[(r, c)];
            }
            self.solve_into(&mut col)?;
            for r in 0..n {
                b[(r, c)] = col[r];
            }
        }
        Ok(())
    }

    /// Rank-1 **update**: rewrites the factor so it factors `A + v vᵀ`,
    /// in O(n²) instead of the O(n³) refactorisation. Uses the classic
    /// sequence of Givens-style plane rotations (one per pivot); an update
    /// can never lose positive definiteness, so it is infallible apart
    /// from the length check.
    ///
    /// # Errors
    ///
    /// [`LinalgError::DimensionMismatch`] if `v.len() != self.dim()`.
    pub fn update(&mut self, v: &[f64]) -> Result<(), LinalgError> {
        let n = self.dim();
        if v.len() != n {
            return Err(LinalgError::DimensionMismatch {
                op: "cholesky update",
                lhs: (n, n),
                rhs: (v.len(), 1),
            });
        }
        let mut w = v.to_vec();
        for k in 0..n {
            if w[k] == 0.0 {
                // c=1, s=0 — an exact no-op for this pivot; skipping keeps
                // rows untouched by the update bit-identical (remove_row
                // relies on this for its leading block).
                continue;
            }
            let lkk = self.l[(k, k)];
            let r = (lkk * lkk + w[k] * w[k]).sqrt();
            let c = r / lkk;
            let s = w[k] / lkk;
            self.l[(k, k)] = r;
            for (i, wi) in w.iter_mut().enumerate().skip(k + 1) {
                self.l[(i, k)] = (self.l[(i, k)] + s * *wi) / c;
                *wi = c * *wi - s * self.l[(i, k)];
            }
        }
        Ok(())
    }

    /// Rank-1 **downdate**: rewrites the factor so it factors `A − v vᵀ`,
    /// in O(n²). Unlike [`Cholesky::update`] this can fail — subtracting
    /// `v vᵀ` may drive a pivot to (or below, or within rounding of) zero.
    /// The feasibility of every pivot is checked on a scratch copy first,
    /// so on error the stored factor is **unchanged** and holds no NaNs.
    ///
    /// # Errors
    ///
    /// [`LinalgError::DimensionMismatch`] if `v.len() != self.dim()`;
    /// [`LinalgError::DowndateNotPositiveDefinite`] when the downdated
    /// matrix is not SPD to working precision (pivot² would fall below
    /// `ε · pivot²` of the current factor).
    pub fn downdate(&mut self, v: &[f64]) -> Result<(), LinalgError> {
        let n = self.dim();
        if v.len() != n {
            return Err(LinalgError::DimensionMismatch {
                op: "cholesky downdate",
                lhs: (n, n),
                rhs: (v.len(), 1),
            });
        }
        let mut l = self.l.clone();
        let mut w = v.to_vec();
        for k in 0..n {
            if w[k] == 0.0 {
                continue;
            }
            let lkk = l[(k, k)];
            let d = lkk * lkk - w[k] * w[k];
            // Relative guard: a pivot collapsing to within rounding error
            // of zero means the downdated matrix is (numerically) rank
            // deficient — surface a typed error instead of sqrt of a
            // negative (NaN) or a catastrophically cancelled pivot.
            if d <= f64::EPSILON * lkk * lkk {
                return Err(LinalgError::DowndateNotPositiveDefinite);
            }
            let r = d.sqrt();
            let c = r / lkk;
            let s = w[k] / lkk;
            l[(k, k)] = r;
            for i in (k + 1)..n {
                l[(i, k)] = (l[(i, k)] - s * w[i]) / c;
                w[i] = c * w[i] - s * l[(i, k)];
            }
        }
        self.l = l;
        Ok(())
    }

    /// **Bordering** extension: grows the factor of the n×n matrix `A`
    /// into the factor of the (n+1)×(n+1) matrix `[[A, b], [bᵀ, c]]` in
    /// O(n²) — one forward solve (`L l₂₁ = b`) plus a scalar pivot
    /// `l₂₂ = √(c − ‖l₂₁‖²)`. This is how a shared negative-block factor
    /// is extended with one positive sample per enrolling user without
    /// refactoring the shared block.
    ///
    /// # Errors
    ///
    /// [`LinalgError::DimensionMismatch`] if `b.len() != self.dim()`;
    /// [`LinalgError::NotPositiveDefinite`] when the bordered matrix is
    /// not SPD to working precision (`c − ‖l₂₁‖²` not safely positive).
    /// The factor is unchanged on error.
    pub fn append_row(&mut self, b: &[f64], c: f64) -> Result<(), LinalgError> {
        let n = self.dim();
        if b.len() != n {
            return Err(LinalgError::DimensionMismatch {
                op: "cholesky append_row",
                lhs: (n, n),
                rhs: (b.len(), 1),
            });
        }
        // Forward solve L l21 = b.
        let mut l21 = b.to_vec();
        for i in 0..n {
            let mut sum = l21[i];
            for (j, &lj) in l21.iter().enumerate().take(i) {
                sum -= self.l[(i, j)] * lj;
            }
            l21[i] = sum / self.l[(i, i)];
        }
        let d = c - l21.iter().map(|x| x * x).sum::<f64>();
        if d <= f64::EPSILON * c.abs().max(1.0) {
            return Err(LinalgError::NotPositiveDefinite);
        }
        let mut grown = Matrix::zeros(n + 1, n + 1);
        for i in 0..n {
            for j in 0..=i {
                grown[(i, j)] = self.l[(i, j)];
            }
        }
        for (j, &v) in l21.iter().enumerate() {
            grown[(n, j)] = v;
        }
        grown[(n, n)] = d.sqrt();
        self.l = grown;
        Ok(())
    }

    /// Removes row/column `k` from the factored matrix in O(n²): rows
    /// above `k` are kept, and the trailing block absorbs the deleted
    /// column's mass through a rank-1 [update](Cholesky::update) with the
    /// sub-diagonal segment `l₃₂` (`L₃₃' L₃₃'ᵀ = L₃₃ L₃₃ᵀ + l₃₂ l₃₂ᵀ`).
    /// Removal only ever *adds* mass to the trailing pivots, so it cannot
    /// lose positive definiteness.
    ///
    /// # Errors
    ///
    /// [`LinalgError::InvalidShape`] if `k` is out of bounds or the factor
    /// is 1×1 (nothing would remain).
    pub fn remove_row(&mut self, k: usize) -> Result<(), LinalgError> {
        let n = self.dim();
        if k >= n || n < 2 {
            return Err(LinalgError::InvalidShape(format!(
                "cannot remove row {k} from a {n}x{n} Cholesky factor"
            )));
        }
        let mut shrunk = Matrix::zeros(n - 1, n - 1);
        // Leading block (rows/cols before k) is untouched.
        for i in 0..k {
            for j in 0..=i {
                shrunk[(i, j)] = self.l[(i, j)];
            }
        }
        // Trailing rows shift up; the deleted column's sub-diagonal
        // segment l32 is folded back in with a rank-1 update below.
        let mut l32 = Vec::with_capacity(n - 1 - k);
        for i in (k + 1)..n {
            for j in 0..n {
                if j == k {
                    l32.push(self.l[(i, k)]);
                    continue;
                }
                let jj = if j < k { j } else { j - 1 };
                if jj < i {
                    shrunk[(i - 1, jj)] = self.l[(i, j)];
                }
            }
        }
        let mut next = Cholesky { l: shrunk };
        if !l32.is_empty() {
            // Update only the trailing (n-1-k)×(n-1-k) block: pad the
            // update vector with zeros for the untouched leading rows.
            let mut v = vec![0.0; n - 1];
            v[k..].copy_from_slice(&l32);
            next.update(&v)?;
        }
        self.l = next.l;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd3() -> Matrix {
        Matrix::from_rows(&[&[4.0, 1.0, 0.5], &[1.0, 3.0, 0.2], &[0.5, 0.2, 2.0]]).unwrap()
    }

    #[test]
    fn lu_solves_known_system() {
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]).unwrap();
        let x = a.solve(&[3.0, 5.0]).unwrap();
        assert!((x[0] - 0.8).abs() < 1e-12);
        assert!((x[1] - 1.4).abs() < 1e-12);
    }

    #[test]
    fn lu_requires_square() {
        let a = Matrix::zeros(2, 3);
        assert!(matches!(a.lu(), Err(LinalgError::InvalidShape(_))));
    }

    #[test]
    fn lu_handles_permutation() {
        // Leading zero forces a pivot swap.
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]).unwrap();
        let x = a.solve(&[2.0, 3.0]).unwrap();
        assert!((x[0] - 3.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn cholesky_reconstructs() {
        let a = spd3();
        let ch = a.cholesky().unwrap();
        let recon = ch.l().matmul(&ch.l().transpose()).unwrap();
        for i in 0..3 {
            for j in 0..3 {
                assert!((recon[(i, j)] - a[(i, j)]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn cholesky_solve_matches_lu_solve() {
        let a = spd3();
        let b = [1.0, -2.0, 0.5];
        let x1 = a.cholesky().unwrap().solve(&b).unwrap();
        let x2 = a.solve(&b).unwrap();
        for (u, v) in x1.iter().zip(&x2) {
            assert!((u - v).abs() < 1e-10);
        }
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]).unwrap();
        assert!(matches!(
            a.cholesky(),
            Err(LinalgError::NotPositiveDefinite)
        ));
    }

    #[test]
    fn solve_many_matches_columnwise_solve() {
        let a = spd3();
        let b = Matrix::from_rows(&[&[1.0, 0.5], &[-2.0, 1.5], &[0.5, -0.25]]).unwrap();
        let ch = a.cholesky().unwrap();
        let lu = a.lu().unwrap();
        let xs_ch = ch.solve_many(&b).unwrap();
        let xs_lu = lu.solve_many(&b).unwrap();
        for c in 0..2 {
            let col = b.col(c);
            let x_ch = ch.solve(&col).unwrap();
            let x_lu = lu.solve(&col).unwrap();
            for r in 0..3 {
                assert_eq!(xs_ch[(r, c)].to_bits(), x_ch[r].to_bits());
                assert_eq!(xs_lu[(r, c)].to_bits(), x_lu[r].to_bits());
            }
        }
    }

    #[test]
    fn solve_many_checks_shape() {
        let a = spd3();
        let b = Matrix::zeros(2, 2);
        assert!(matches!(
            a.cholesky().unwrap().solve_many(&b),
            Err(LinalgError::DimensionMismatch { .. })
        ));
        assert!(matches!(
            a.lu().unwrap().solve_many(&b),
            Err(LinalgError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn cholesky_serde_roundtrips_bit_exactly_and_rejects_non_square() {
        let ch = spd3().cholesky().unwrap();
        let json = serde_json::to_string(&ch).unwrap();
        let back: Cholesky = serde_json::from_str(&json).unwrap();
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(back.l()[(i, j)].to_bits(), ch.l()[(i, j)].to_bits());
            }
        }
        let forged = r#"{"l":{"rows":2,"cols":1,"data":[1.0,1.0]}}"#;
        assert!(serde_json::from_str::<Cholesky>(forged).is_err());
    }

    #[test]
    fn solve_checks_rhs_length() {
        let a = spd3();
        assert!(matches!(
            a.cholesky().unwrap().solve(&[1.0]),
            Err(LinalgError::DimensionMismatch { .. })
        ));
        assert!(matches!(
            a.lu().unwrap().solve(&[1.0]),
            Err(LinalgError::DimensionMismatch { .. })
        ));
    }
}
