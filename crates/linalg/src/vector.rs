//! Free functions over `&[f64]` slices.
//!
//! Feature vectors flow through the pipeline as plain slices; these helpers
//! keep that code free of ad-hoc loops.

/// Dot product of two equal-length slices.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot: length mismatch");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Euclidean (L2) norm.
pub fn norm(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// Squared Euclidean distance between two equal-length slices.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn squared_distance(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "squared_distance: length mismatch");
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Euclidean distance between two equal-length slices.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn distance(a: &[f64], b: &[f64]) -> f64 {
    squared_distance(a, b).sqrt()
}

/// In-place `y += alpha * x`.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// Elementwise mean of a set of equal-length vectors; `None` when empty.
pub fn mean_vector<'a, I>(vectors: I) -> Option<Vec<f64>>
where
    I: IntoIterator<Item = &'a [f64]>,
{
    let mut iter = vectors.into_iter();
    let first = iter.next()?;
    let mut acc = first.to_vec();
    let mut count = 1usize;
    for v in iter {
        assert_eq!(v.len(), acc.len(), "mean_vector: length mismatch");
        axpy(1.0, v, &mut acc);
        count += 1;
    }
    let k = 1.0 / count as f64;
    for a in &mut acc {
        *a *= k;
    }
    Some(acc)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_norm() {
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        assert!((norm(&[3.0, 4.0]) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn distances() {
        assert_eq!(squared_distance(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
        assert!((distance(&[0.0, 0.0], &[3.0, 4.0]) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn axpy_updates_in_place() {
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[1.0, -1.0], &mut y);
        assert_eq!(y, vec![3.0, -1.0]);
    }

    #[test]
    fn mean_vector_averages() {
        let a = [1.0, 2.0];
        let b = [3.0, 4.0];
        let m = mean_vector([a.as_slice(), b.as_slice()]).unwrap();
        assert_eq!(m, vec![2.0, 3.0]);
        assert!(mean_vector(std::iter::empty::<&[f64]>()).is_none());
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot_panics_on_mismatch() {
        dot(&[1.0], &[1.0, 2.0]);
    }
}
