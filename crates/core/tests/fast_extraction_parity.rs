//! Parity and plumbing tests for the vectorized fast-extraction path.
//!
//! Two contracts, mirroring `docs/perf.md`:
//!
//! 1. **Flag off (default): bit-identical.** Extraction with the fast path
//!    disabled must produce byte-for-byte the same vectors as the public
//!    per-purpose extractors ([`FeatureExtractor::auth_features`] /
//!    [`FeatureExtractor::context_features`]), whose outputs the parity
//!    suites pinned before the fast path existed.
//! 2. **Flag on: epsilon-pinned.** Fast extraction agrees with the
//!    reference within a tight relative bound (the only deviations are the
//!    fused summary's one-pass variance and the batched spectrum's
//!    `sqrt(re² + im²)` magnitude).
//!
//! Plus the runtime-flag plumbing: the flag never rides in a snapshot, and
//! a [`FleetEngine`] re-applies its own setting to every pipeline it
//! registers or rehydrates.

use std::sync::{Arc, OnceLock};

use parking_lot::Mutex;
use proptest::prelude::*;
use proptest::TestCaseError;
use rand::rngs::StdRng;
use rand::SeedableRng;

use smarteryou_core::{
    ContextDetector, ContextDetectorConfig, DeviceSet, FeatureExtractor, FeatureScratch,
    FleetEngine, MemorySnapshotStore, SmarterYou, SystemConfig, TrainingServer,
};
use smarteryou_sensors::{
    DualDeviceWindow, Population, RawContext, TraceGenerator, UserId, WindowSpec,
};

fn windows(seed: u64, count: usize, window_secs: f64) -> Vec<DualDeviceWindow> {
    let spec = WindowSpec::from_seconds(window_secs, 50.0);
    let population = Population::generate(2, seed);
    let mut out = Vec::new();
    for user in population.users() {
        let mut gen = TraceGenerator::new(user.clone(), seed ^ 0x5EED);
        out.extend(gen.generate_windows(RawContext::SittingStanding, spec, count / 2));
        out.extend(gen.generate_windows(RawContext::MovingAround, spec, count - count / 2));
    }
    out
}

fn check_window(
    extractor: &FeatureExtractor,
    w: &DualDeviceWindow,
    devices: DeviceSet,
) -> Result<(), TestCaseError> {
    // Contract 1: flag off is bit-identical to the seed-era extractors.
    let mut reference_scratch = FeatureScratch::default();
    let reference = extractor.window_features(w, devices, &mut reference_scratch);
    let want_ctx = extractor.context_features(w);
    let want_auth = extractor.auth_features(w, devices);
    prop_assert_eq!(reference.context_features(), want_ctx.as_slice());
    let got_auth = reference.into_auth_features(devices);
    prop_assert_eq!(got_auth.len(), want_auth.len());
    for (a, b) in got_auth.iter().zip(&want_auth) {
        prop_assert!(a.to_bits() == b.to_bits(), "flag-off not bit-identical");
    }

    // Contract 2: flag on agrees within epsilon.
    let mut fast_scratch = FeatureScratch::default().with_fast_path(true);
    let fast = extractor.window_features(w, devices, &mut fast_scratch);
    let got = fast.into_auth_features(devices);
    prop_assert_eq!(got.len(), want_auth.len());
    for (i, (a, b)) in got.iter().zip(&want_auth).enumerate() {
        prop_assert!(
            (a - b).abs() <= 1e-9 * b.abs().max(1.0),
            "feature {}: fast {} vs reference {}",
            i,
            a,
            b
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn fast_extraction_parity(seed in 0u64..1_000_000) {
        let extractor = FeatureExtractor::paper_default(50.0);
        // 6.0 s is the paper's deployed window (300 samples, even length →
        // packed real path); 2.56 s lands on 128 samples (pure radix-2).
        for secs in [6.0, 2.56] {
            for w in windows(seed, 4, secs) {
                for devices in [DeviceSet::Combined, DeviceSet::WatchOnly, DeviceSet::PhoneOnly] {
                    check_window(&extractor, &w, devices)?;
                }
            }
        }
    }
}

/// Shared fixture for the pipeline-level tests: a trained context detector
/// is the expensive part, built once.
fn fixture() -> &'static (SystemConfig, ContextDetector, Arc<Mutex<TrainingServer>>) {
    static FIXTURE: OnceLock<(SystemConfig, ContextDetector, Arc<Mutex<TrainingServer>>)> =
        OnceLock::new();
    FIXTURE.get_or_init(|| {
        let cfg = SystemConfig::paper_default()
            .with_window_secs(2.0)
            .with_data_size(40);
        let spec = WindowSpec::from_seconds(cfg.window_secs(), cfg.sample_rate());
        let extractor = FeatureExtractor::paper_default(cfg.sample_rate());
        let population = Population::generate(4, 777);
        let mut ctx_features = Vec::new();
        let mut ctx_labels = Vec::new();
        let mut server = TrainingServer::new();
        for user in population.users() {
            let mut gen = TraceGenerator::new(user.clone(), 31);
            for raw in [RawContext::SittingStanding, RawContext::MovingAround] {
                let ws = gen.generate_windows(raw, spec, 20);
                for w in &ws {
                    ctx_features.push(extractor.context_features(w));
                    ctx_labels.push(raw.coarse());
                }
                server.contribute(
                    raw.coarse(),
                    ws.iter()
                        .map(|w| extractor.auth_features(w, DeviceSet::Combined)),
                );
            }
        }
        let mut rng = StdRng::seed_from_u64(5);
        let detector = ContextDetector::train(
            extractor,
            &ctx_features,
            &ctx_labels,
            ContextDetectorConfig {
                num_trees: 8,
                max_depth: 6,
            },
            &mut rng,
        )
        .expect("detector trains");
        (cfg, detector, Arc::new(Mutex::new(server)))
    })
}

fn pipeline(seed: u64) -> SmarterYou {
    let (cfg, detector, server) = fixture();
    SmarterYou::new(cfg.clone(), detector.clone(), server.clone(), seed).expect("valid config")
}

/// The flag is runtime-only: a snapshot round-trip drops it, so a restored
/// standalone pipeline always starts on the reference path.
#[test]
fn snapshot_roundtrip_resets_fast_extraction() {
    let mut sys = pipeline(1);
    sys.set_fast_extraction(true);
    assert!(sys.fast_extraction());
    let snapshot = sys.into_snapshot();
    let restored = SmarterYou::restore(snapshot, fixture().2.clone()).expect("restores");
    assert!(
        !restored.fast_extraction(),
        "snapshots must not carry the runtime fast-extraction flag"
    );
}

/// A fleet engine re-applies its own setting on registration and after
/// every rehydration, so eviction churn cannot silently downgrade a fleet
/// to the scalar path.
#[test]
fn fleet_engine_reapplies_flag_across_eviction() {
    let mut engine = FleetEngine::new()
        .with_fast_extraction(true)
        .with_eviction(Box::new(MemorySnapshotStore::new()), 1);
    let (a, b) = (UserId(1), UserId(2));
    engine.register(a, pipeline(2)).expect("register");
    engine.register(b, pipeline(3)).expect("register");
    assert!(engine.pipeline(a).expect("resident").fast_extraction());

    // Capacity 1: ticking parks the least recently submitted user.
    engine.tick();
    let parked = if engine.is_resident(a) == Some(false) {
        a
    } else {
        b
    };
    assert_eq!(engine.is_resident(parked), Some(false), "one user evicts");
    engine.rehydrate(parked).expect("rehydrates");
    assert!(
        engine.pipeline(parked).expect("resident").fast_extraction(),
        "rehydration must re-apply the engine's fast-extraction setting"
    );

    // Flipping the engine's setting reaches already-resident pipelines.
    engine.set_fast_extraction(false);
    assert!(!engine.pipeline(parked).expect("resident").fast_extraction());
}
