//! Property suite for the bounded ingest ring's backpressure contract:
//! the queue never exceeds its bound, a `Reject` queue loses exactly the
//! entries it reported `QueueFull` for (and hands each one back to the
//! producer untouched), a `BlockingWait` queue loses nothing however the
//! producers and the drainer interleave, and drain order per user is FIFO.

use std::collections::HashSet;
use std::sync::Arc;

use proptest::prelude::*;
use smarteryou_core::engine::ingest::{BackpressurePolicy, IngestQueue};
use smarteryou_core::IngestError;

/// A deterministic single-threaded schedule step: push the next tagged
/// entry, pop one entry, or drain everything pending.
#[derive(Debug, Clone, Copy)]
enum Op {
    Push,
    Pop,
    Drain,
}

fn op_schedule() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(0u32..4, 1..200).prop_map(|codes| {
        codes
            .into_iter()
            .map(|c| match c {
                // Pushes twice as likely as each consumer op, so full-queue
                // rejections actually happen.
                0 | 1 => Op::Push,
                2 => Op::Pop,
                _ => Op::Drain,
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Under any push/pop/drain interleaving the queue length never
    /// exceeds the bound, and with the `Reject` policy the accounting is
    /// exact: every entry is either delivered (popped/drained/still
    /// queued) or was handed back with `QueueFull` — the two sets
    /// partition the pushes, so the queue loses exactly what it reported.
    #[test]
    fn bound_holds_and_reject_loses_exactly_what_it_reports(
        capacity in 1usize..16,
        ops in op_schedule(),
    ) {
        let queue: IngestQueue<u32> = IngestQueue::new(capacity, BackpressurePolicy::Reject);
        let mut next = 0u32;
        let mut rejected = HashSet::new();
        let mut delivered = Vec::new();
        for op in ops {
            match op {
                Op::Push => {
                    let tag = next;
                    next += 1;
                    match queue.push(tag) {
                        Ok(()) => prop_assert!(queue.len() <= capacity),
                        Err((back, e)) => {
                            // The rejected entry comes back untouched, with
                            // the typed reason, only ever at the bound.
                            prop_assert_eq!(back, tag);
                            prop_assert_eq!(e, IngestError::QueueFull { capacity });
                            prop_assert_eq!(queue.len(), capacity);
                            rejected.insert(tag);
                        }
                    }
                }
                Op::Pop => delivered.extend(queue.pop()),
                Op::Drain => delivered.extend(queue.drain_pending()),
            }
            prop_assert!(queue.len() <= capacity, "queue exceeded its bound");
        }
        delivered.extend(queue.drain_pending());
        // Exact partition: pushed = delivered ∪ rejected, disjoint.
        prop_assert_eq!(delivered.len() + rejected.len(), next as usize);
        for tag in &delivered {
            prop_assert!(!rejected.contains(tag), "entry {} both delivered and rejected", tag);
        }
        // Single producer ⇒ delivery preserves push order end to end.
        let mut sorted = delivered.clone();
        sorted.sort_unstable();
        prop_assert_eq!(delivered, sorted);
    }

    /// `BlockingWait` producers lose nothing: with concurrent producer
    /// threads pushing into a tiny ring while the consumer drains, every
    /// pushed entry is eventually delivered exactly once, and each
    /// producer's own sequence arrives in FIFO order.
    #[test]
    fn blocking_wait_loses_none_and_keeps_per_producer_fifo(
        capacity in 1usize..8,
        producers in 1usize..5,
        per_producer in 1usize..40,
    ) {
        let queue: Arc<IngestQueue<(usize, u32)>> =
            Arc::new(IngestQueue::new(capacity, BackpressurePolicy::BlockingWait));
        let mut delivered: Vec<(usize, u32)> = Vec::new();
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..producers)
                .map(|p| {
                    let queue = Arc::clone(&queue);
                    s.spawn(move || {
                        for seq in 0..per_producer as u32 {
                            queue.push((p, seq)).expect("queue never closes mid-run");
                        }
                    })
                })
                .collect();
            while handles.iter().any(|h| !h.is_finished()) {
                delivered.extend(queue.drain_pending());
            }
            for handle in handles {
                handle.join().expect("producer thread");
            }
        });
        delivered.extend(queue.drain_pending());
        // Nothing lost, nothing duplicated...
        assert_eq!(delivered.len(), producers * per_producer);
        let unique: HashSet<_> = delivered.iter().collect();
        assert_eq!(unique.len(), delivered.len(), "duplicated delivery");
        // ...and each producer's entries arrive in its push order.
        let mut next_seq = vec![0u32; producers];
        for &(p, seq) in &delivered {
            assert_eq!(seq, next_seq[p], "producer {p} delivered out of order");
            next_seq[p] += 1;
        }
    }

    /// Drain order per user is FIFO even when users' pushes interleave:
    /// one round-robin producer over several users, drained at arbitrary
    /// points, must never reorder any single user's sequence.
    #[test]
    fn interleaved_users_stay_fifo_per_user(
        capacity in 2usize..12,
        users in 1usize..6,
        schedule in prop::collection::vec(0u32..3, 1..120),
    ) {
        let queue: IngestQueue<(usize, u32)> =
            IngestQueue::new(capacity, BackpressurePolicy::Reject);
        let mut next_push = vec![0u32; users];
        let mut next_deliver = vec![0u32; users];
        let mut user = 0usize;
        let mut check = |drained: Vec<(usize, u32)>| {
            for (u, seq) in drained {
                assert_eq!(seq, next_deliver[u], "user {u} drained out of order");
                next_deliver[u] += 1;
            }
        };
        for step in schedule {
            match step {
                0 | 1 => {
                    // Round-robin pushes; a rejection re-tries the same
                    // sequence number later, exactly like a real producer.
                    if queue.push((user, next_push[user])).is_ok() {
                        next_push[user] += 1;
                    }
                    user = (user + 1) % users;
                }
                _ => check(queue.drain_pending()),
            }
        }
        check(queue.drain_pending());
        prop_assert_eq!(next_push, next_deliver);
    }
}
