//! Property suite for the pipeline snapshot format: arbitrary pipelines —
//! random seeds, contexts, enrollment-buffer fill levels, and mid-retrain
//! tracker states — must satisfy `restore(snapshot(p)) == p` field for
//! field **through the JSON wire form**, and corrupted or truncated
//! snapshots must be rejected with a typed error, never a panic.

use std::sync::{Arc, OnceLock};

use parking_lot::Mutex;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use smarteryou_core::persist::{PersistError, PipelineSnapshot};
use smarteryou_core::{
    ContextDetector, ContextDetectorConfig, DeviceSet, FeatureExtractor, ProcessOutcome,
    ResponsePolicy, RetrainPolicy, SmarterYou, SystemConfig, TrainingServer,
};
use smarteryou_sensors::{
    DualDeviceWindow, Population, RawContext, TraceGenerator, UserProfile, WindowSpec,
};

/// Shared infra (detector + anonymized pool) that every generated pipeline
/// attaches to — built once, the expensive part of the fixture.
struct World {
    cfg: SystemConfig,
    detector: ContextDetector,
    server: Arc<Mutex<TrainingServer>>,
    spec: WindowSpec,
    users: Vec<UserProfile>,
}

fn world() -> &'static World {
    static WORLD: OnceLock<World> = OnceLock::new();
    WORLD.get_or_init(|| {
        let cfg = SystemConfig::paper_default()
            .with_window_secs(2.0)
            .with_data_size(40);
        let spec = WindowSpec::from_seconds(cfg.window_secs(), cfg.sample_rate());
        let population = Population::generate(7, 90_210);
        let extractor = FeatureExtractor::paper_default(cfg.sample_rate());

        let mut ctx_features = Vec::new();
        let mut ctx_labels = Vec::new();
        let mut server = TrainingServer::new();
        for user in &population.users()[3..] {
            let mut gen = TraceGenerator::new(user.clone(), 19);
            for raw in [RawContext::SittingStanding, RawContext::MovingAround] {
                let windows = gen.generate_windows(raw, spec, 25);
                for w in &windows {
                    ctx_features.push(extractor.context_features(w));
                    ctx_labels.push(raw.coarse());
                }
                server.contribute(
                    raw.coarse(),
                    windows
                        .iter()
                        .map(|w| extractor.auth_features(w, DeviceSet::Combined)),
                );
            }
        }
        let mut rng = StdRng::seed_from_u64(23);
        let detector = ContextDetector::train(
            extractor,
            &ctx_features,
            &ctx_labels,
            ContextDetectorConfig {
                num_trees: 12,
                max_depth: 8,
            },
            &mut rng,
        )
        .expect("detector trains");
        World {
            cfg,
            detector,
            server: Arc::new(Mutex::new(server)),
            spec,
            users: population.users()[..3].to_vec(),
        }
    })
}

/// Builds a pipeline and advances it through `enroll_rounds` alternating
/// enrollment rounds and then `auth_windows` authentication windows — so
/// low parameters leave it mid-enrollment with partially filled buffers,
/// and higher ones land it mid-retrain-window in continuous auth.
fn arbitrary_pipeline(
    seed: u64,
    user: usize,
    enroll_rounds: usize,
    auth_windows: usize,
    period: usize,
) -> (SmarterYou, TraceGenerator) {
    let w = world();
    let mut sys = SmarterYou::new(w.cfg.clone(), w.detector.clone(), w.server.clone(), seed)
        .expect("valid config")
        .with_response_policy(ResponsePolicy { rejects_to_lock: 3 })
        .with_retrain_policy(RetrainPolicy {
            threshold: 0.9,
            period,
            max_reject_fraction: 0.5,
        });
    let mut gen = TraceGenerator::new(w.users[user].clone(), seed ^ 0xABCD);
    for round in 0..enroll_rounds {
        let ctx = if round % 2 == 0 {
            RawContext::SittingStanding
        } else {
            RawContext::MovingAround
        };
        for w in gen.generate_windows(ctx, world().spec, 2) {
            sys.process_window(&w).expect("process");
        }
    }
    for round in 0..auth_windows.div_ceil(3) {
        let ctx = if round % 2 == 0 {
            RawContext::MovingAround
        } else {
            RawContext::SittingStanding
        };
        for w in gen.generate_windows(ctx, world().spec, 3) {
            sys.process_window(&w).expect("process");
        }
    }
    (sys, gen)
}

fn future_windows(gen: &mut TraceGenerator, n: usize) -> Vec<DualDeviceWindow> {
    let mut out = gen.generate_windows(RawContext::SittingStanding, world().spec, n / 2);
    out.extend(gen.generate_windows(RawContext::MovingAround, world().spec, n - n / 2));
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn roundtrip_is_field_for_field_identical(
        params in (
            (0..1_000u64, 0..3usize),         // pipeline seed, user profile
            (0..18usize, 0..16usize, 2..7usize), // enrollment rounds (13+
                // finishes enrollment), post-enrollment windows, retrain
                // rolling-window period
        )
    ) {
        let ((seed, user), (enroll_rounds, auth_windows, period)) = params;
        let (mut original, mut gen) =
            arbitrary_pipeline(seed, user, enroll_rounds, auth_windows, period);

        // Snapshot → JSON → parse → restore.
        let snap = original.snapshot();
        let wire = snap.to_json();
        let parsed = PipelineSnapshot::from_json(&wire);
        prop_assert!(parsed.is_ok(), "valid wire form rejected: {parsed:?}");
        let parsed = parsed.unwrap();
        prop_assert_eq!(&snap, &parsed);
        let restored = SmarterYou::restore(parsed, world().server.clone());
        prop_assert!(restored.is_ok(), "restore failed: {restored:?}");
        let mut restored = restored.unwrap();

        // Field-for-field: re-snapshotting the restored pipeline captures
        // exactly the same state, and the observable accessors agree.
        prop_assert_eq!(&restored.snapshot(), &snap);
        prop_assert_eq!(restored.phase(), original.phase());
        prop_assert_eq!(restored.events(), original.events());
        prop_assert_eq!(restored.is_locked(), original.is_locked());
        prop_assert_eq!(
            restored.confidence_tracker().rolling_len(),
            original.confidence_tracker().rolling_len()
        );
        prop_assert_eq!(
            restored.confidence_tracker().windows_since_retrain(),
            original.confidence_tracker().windows_since_retrain()
        );

        // Behavioural equality: both advance identically over the same
        // future windows (retrains included — the RNG stream must match).
        for w in future_windows(&mut gen, 6) {
            let a = original.process_window(&w).expect("original");
            let b = restored.process_window(&w).expect("restored");
            match (a, b) {
                (
                    ProcessOutcome::Decision { decision: da, action: aa, retrained: ra },
                    ProcessOutcome::Decision { decision: db, action: ab, retrained: rb },
                ) => {
                    prop_assert_eq!(da.confidence.to_bits(), db.confidence.to_bits());
                    prop_assert_eq!(da.accepted, db.accepted);
                    prop_assert_eq!(da.context, db.context);
                    prop_assert_eq!(aa, ab);
                    prop_assert_eq!(ra, rb);
                }
                (a, b) => prop_assert_eq!(a, b),
            }
        }
        prop_assert_eq!(original.snapshot(), restored.snapshot());
    }

    #[test]
    fn corrupted_snapshots_are_rejected_not_panics(
        params in (0..1_000usize, 0..256u32)
    ) {
        let (cut, flip) = params;
        static WIRE: OnceLock<String> = OnceLock::new();
        let wire = WIRE.get_or_init(|| {
            let (sys, _) = arbitrary_pipeline(42, 0, 16, 6, 4);
            sys.snapshot().to_json()
        });

        // Truncation at an arbitrary byte: typed error, never a panic.
        let at = (cut * wire.len() / 1_000).min(wire.len() - 1);
        prop_assert!(wire.is_char_boundary(at));
        prop_assert!(PipelineSnapshot::from_json(&wire[..at]).is_err());

        // Single-byte corruption anywhere: must never panic. (It may still
        // parse — flipping a digit yields a different but valid snapshot —
        // so only the absence of a crash is asserted.)
        let pos = (flip as usize * 997) % wire.len();
        let mut bytes = wire.clone().into_bytes();
        bytes[pos] = bytes[pos].wrapping_add(1).clamp(0x20, 0x7e);
        if let Ok(s) = String::from_utf8(bytes) {
            let _ = PipelineSnapshot::from_json(&s);
        }
    }
}

/// An over-long **legacy** snapshot — written before the event log and
/// tracker history were ring-buffered, so both arrays are huge and the
/// bounding fields are absent — must restore with the logs truncated to
/// their most recent entries, without a version bump (the fields were
/// always plain JSON arrays).
#[test]
fn overlong_legacy_snapshot_restores_truncated() {
    use serde::Value;
    use smarteryou_core::DEFAULT_EVENT_CAPACITY;

    fn obj_remove(value: &mut Value, key: &str) {
        if let Value::Object(entries) = value {
            entries.retain(|(k, _)| k != key);
        }
    }
    fn obj_get_mut<'v>(value: &'v mut Value, key: &str) -> &'v mut Value {
        match value {
            Value::Object(entries) => entries
                .iter_mut()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v)
                .expect("key present"),
            other => panic!("expected object, found {}", other.kind()),
        }
    }

    let (sys, _) = arbitrary_pipeline(11, 2, 16, 9, 4);
    let period = sys.confidence_tracker().policy().period;
    let mut value: Value =
        serde_json::from_str(&sys.snapshot().to_json()).expect("snapshot parses as a value tree");

    // Strip the post-v1 fields, turning this into a legacy document …
    obj_remove(&mut value, "event_capacity");
    obj_remove(&mut value, "negative_epoch");
    obj_remove(obj_get_mut(&mut value, "tracker"), "retention");
    // … and blow up both unbounded-era logs far past today's bounds.
    let events: Vec<Value> = (0..DEFAULT_EVENT_CAPACITY + 700)
        .map(|i| {
            Value::Object(vec![(
                "Retrained".to_string(),
                Value::Object(vec![("day".to_string(), Value::Float(i as f64))]),
            )])
        })
        .collect();
    *obj_get_mut(&mut value, "events") = Value::Array(events);
    let history: Vec<Value> = (0..5_000)
        .map(|i| Value::Array(vec![Value::Float(i as f64), Value::Float(0.5)]))
        .collect();
    *obj_get_mut(obj_get_mut(&mut value, "tracker"), "history") = Value::Array(history);

    let legacy_json = serde_json::to_string(&value).expect("value tree serializes");
    let parsed = PipelineSnapshot::from_json(&legacy_json).expect("legacy wire form parses");
    let restored =
        SmarterYou::restore(parsed, world().server.clone()).expect("legacy snapshot restores");

    // Both logs come back bounded, keeping their most recent entries.
    assert_eq!(restored.event_capacity(), DEFAULT_EVENT_CAPACITY);
    assert_eq!(restored.events().len(), DEFAULT_EVENT_CAPACITY);
    assert!(matches!(
        restored.events().last(),
        Some(smarteryou_core::SystemEvent::Retrained { day })
            if *day == (DEFAULT_EVENT_CAPACITY + 700 - 1) as f64
    ));
    let tracker = restored.confidence_tracker();
    assert_eq!(tracker.history_retention(), period);
    assert_eq!(tracker.history().len(), period);
    assert!((tracker.history().back().unwrap().0 - 4_999.0).abs() < 1e-12);

    // And the bounded state round-trips stably from here on.
    let again = restored.snapshot();
    let back = PipelineSnapshot::from_json(&again.to_json()).expect("reserialize");
    assert_eq!(back, again);
}

#[test]
fn versioned_header_mismatch_is_a_typed_error() {
    let (sys, _) = arbitrary_pipeline(7, 1, 16, 4, 3);
    let wire = sys.snapshot().to_json();

    let future = wire.replacen("\"version\":1", "\"version\":9", 1);
    assert_ne!(future, wire);
    assert!(matches!(
        PipelineSnapshot::from_json(&future),
        Err(PersistError::UnsupportedVersion {
            found: 9,
            supported: 1
        })
    ));

    let alien = wire.replacen("smarteryou.pipeline", "acme.toaster", 1);
    assert!(matches!(
        PipelineSnapshot::from_json(&alien),
        Err(PersistError::WrongFormat(f)) if f == "acme.toaster"
    ));

    // Dropping the header entirely is malformed, not a panic.
    assert!(matches!(
        PipelineSnapshot::from_json("{}"),
        Err(PersistError::Malformed(_))
    ));
    assert!(matches!(
        PipelineSnapshot::from_json("not json at all"),
        Err(PersistError::Malformed(_))
    ));
}
