//! Cross-process ownership protocol suite for [`FileSnapshotStore`]: the
//! epoch compare-and-swap under concurrent acquirers, the epoch tombstone
//! on remove, typed corruption errors, orphan-temp sweeping, dead-holder
//! lock stealing, and write-ahead-journal recovery at every labeled kill
//! point (panic-mode fault injection — the crash-faithful abort-mode
//! matrix lives in `tests/crash_recovery.rs` at the workspace root).

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex as StdMutex, OnceLock};

use parking_lot::Mutex;
use proptest::prelude::*;

use smarteryou_core::fault::{points, FaultPlan};
use smarteryou_core::persist::{
    FileSnapshotStore, JournalResolution, PersistError, PipelineSnapshot, SnapshotStore,
};
use smarteryou_core::{
    ContextDetector, ContextDetectorConfig, FeatureExtractor, SmarterYou, SystemConfig,
    TrainingServer,
};
use smarteryou_sensors::{UsageContext, UserId};

fn temp_store_dir(tag: &str) -> PathBuf {
    static UNIQ: AtomicUsize = AtomicUsize::new(0);
    std::env::temp_dir().join(format!(
        "smarteryou-epoch-cas-{tag}-{}-{}",
        std::process::id(),
        UNIQ.fetch_add(1, Ordering::Relaxed)
    ))
}

/// A small but fully valid pipeline snapshot (fresh, unenrolled pipeline
/// over a 4-window toy detector); `seed` varies the RNG state so two
/// snapshots with different seeds differ at the byte level.
fn tiny_snapshot(seed: u64) -> PipelineSnapshot {
    static DETECTOR: OnceLock<ContextDetector> = OnceLock::new();
    let detector = DETECTOR.get_or_init(|| {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let extractor = FeatureExtractor::paper_default(50.0);
        let mut rng: StdRng = SeedableRng::seed_from_u64(7);
        ContextDetector::train(
            extractor,
            &[
                vec![0.0, 1.0],
                vec![1.0, 0.0],
                vec![0.1, 0.9],
                vec![0.9, 0.1],
            ],
            &[
                UsageContext::Stationary,
                UsageContext::Moving,
                UsageContext::Stationary,
                UsageContext::Moving,
            ],
            ContextDetectorConfig {
                num_trees: 2,
                max_depth: 2,
            },
            &mut rng,
        )
        .expect("toy detector trains")
    });
    let server = Arc::new(Mutex::new(TrainingServer::new()));
    SmarterYou::new(
        SystemConfig::paper_default(),
        detector.clone(),
        server,
        seed,
    )
    .expect("valid config")
    .snapshot()
}

#[test]
fn cas_single_winner_among_racing_processes_handles() {
    // N independent store handles on one directory (each handle is what a
    // separate process would hold) all CAS from the same observed epoch:
    // exactly one wins, everyone else gets a typed StaleEpoch carrying the
    // actual stored value.
    let dir = temp_store_dir("single-winner");
    let id = UserId(4);
    let results: Vec<_> = (0..4)
        .map(|_| {
            let dir = dir.clone();
            std::thread::spawn(move || {
                let mut store = FileSnapshotStore::new(dir).unwrap();
                store.acquire_cas(id, 0)
            })
        })
        .collect::<Vec<_>>()
        .into_iter()
        .map(|h| h.join().unwrap())
        .collect();
    let winners = results.iter().filter(|r| r.is_ok()).count();
    assert_eq!(winners, 1, "exactly one CAS winner: {results:?}");
    for r in &results {
        match r {
            Ok(e) => assert_eq!(*e, 1),
            Err(PersistError::StaleEpoch {
                held: 0, stored, ..
            }) => {
                assert_eq!(*stored, 1, "losers observe the winner's claim")
            }
            Err(other) => panic!("losers must fail typed, got {other:?}"),
        }
    }
    let mut store = FileSnapshotStore::new(&dir).unwrap();
    assert_eq!(store.epoch(id).unwrap(), 1);
    std::fs::remove_dir_all(&dir).ok();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Concurrent unconditional acquirers (CAS retry loops under the hood)
    /// over one directory: every claim wins a *distinct* epoch value — no
    /// epoch is ever handed out twice, no claim is silently overwritten —
    /// and the final stored epoch equals the total number of claims.
    #[test]
    fn concurrent_acquirers_never_share_an_epoch(
        threads in 2usize..5,
        claims_per_thread in 1usize..4,
    ) {
        let dir = temp_store_dir("acquirers");
        let id = UserId(1);
        let claimed: Arc<StdMutex<Vec<u64>>> = Arc::new(StdMutex::new(Vec::new()));
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let dir = dir.clone();
                let claimed = Arc::clone(&claimed);
                std::thread::spawn(move || {
                    let mut store = FileSnapshotStore::new(dir).unwrap();
                    for _ in 0..claims_per_thread {
                        let epoch = store.acquire(id).unwrap();
                        claimed.lock().unwrap().push(epoch);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let mut epochs = claimed.lock().unwrap().clone();
        let total = threads * claims_per_thread;
        prop_assert_eq!(epochs.len(), total);
        epochs.sort_unstable();
        let expected: Vec<u64> = (1..=total as u64).collect();
        // Distinct + dense: epochs 1..=total each won exactly once.
        prop_assert_eq!(epochs, expected);
        let mut store = FileSnapshotStore::new(&dir).unwrap();
        prop_assert_eq!(store.epoch(id).unwrap(), total as u64);
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn stale_owner_cannot_resurrect_a_removed_user() {
    // Regression for the epoch tombstone: remove used to delete the
    // `.epoch` sidecar, so a stale owner's save after remove+re-register
    // passed the (reset-to-0) fence and resurrected the deregistered user.
    let dir = temp_store_dir("tombstone");
    let mut store = FileSnapshotStore::new(&dir).unwrap();
    let id = UserId(3);
    let stale_snap = tiny_snapshot(111);
    let fresh_snap = tiny_snapshot(222);
    assert_ne!(stale_snap.to_json(), fresh_snap.to_json());

    let old_held = store.acquire(id).unwrap();
    store.save_fenced(id, old_held, &stale_snap).unwrap();
    // Deregistration drops the snapshot but the fence survives...
    store.remove(id).unwrap();
    assert_eq!(store.load(id).unwrap(), None);
    assert_eq!(store.epoch(id).unwrap(), old_held);
    // ...so after re-registration the stale owner stays fenced out.
    let new_held = store.acquire(id).unwrap();
    store.save_fenced(id, new_held, &fresh_snap).unwrap();
    assert!(matches!(
        store.save_fenced(id, old_held, &stale_snap),
        Err(PersistError::StaleEpoch { held, stored, .. }) if held == old_held && stored == new_held
    ));
    assert_eq!(store.load(id).unwrap(), Some(fresh_snap));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn corrupt_epoch_is_malformed_and_unreadable_is_io() {
    let dir = temp_store_dir("epoch-errors");
    let mut store = FileSnapshotStore::new(&dir).unwrap();
    let id = UserId(5);
    // Corruption arm: garbage in the sidecar is on-disk damage, typed
    // Malformed so recovery policy can treat it differently from a
    // transient read failure.
    std::fs::write(dir.join(format!("{id}.epoch")), "not-a-number").unwrap();
    assert!(matches!(
        store.epoch(id),
        Err(PersistError::Malformed(msg)) if msg.contains("epoch")
    ));
    // I/O arm: a sidecar that cannot be read as a file at all (here: it is
    // a directory) is transient-or-environmental, typed Io.
    let id2 = UserId(6);
    std::fs::create_dir(dir.join(format!("{id2}.epoch"))).unwrap();
    assert!(matches!(store.epoch(id2), Err(PersistError::Io(_))));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn try_len_distinguishes_broken_store_from_empty() {
    let dir = temp_store_dir("try-len");
    let store = FileSnapshotStore::new(&dir).unwrap();
    assert_eq!(store.try_len().unwrap(), 0);
    assert_eq!(store.len(), 0);
    // Pull the directory out from under the handle: the lossy `len()`
    // still reads 0, but `try_len` surfaces the failure.
    std::fs::remove_dir_all(&dir).unwrap();
    assert!(matches!(store.try_len(), Err(PersistError::Io(_))));
    assert_eq!(store.len(), 0);
}

#[test]
fn orphaned_temps_are_swept_on_open_and_never_counted() {
    let dir = temp_store_dir("temp-sweep");
    let id = UserId(2);
    {
        let mut store = FileSnapshotStore::new(&dir).unwrap();
        store.save(id, &tiny_snapshot(9)).unwrap();
    }
    // A crash between temp-write and rename strands `*.tmp` files; plant
    // the debris a dead writer would leave.
    std::fs::write(dir.join("user09.snapshot.json.tmp"), "half-written").unwrap();
    std::fs::write(dir.join("user09.epoch.tmp"), "4").unwrap();
    let mut store = FileSnapshotStore::new(&dir).unwrap();
    assert_eq!(store.recovery_report().swept_temps, 2);
    assert_eq!(store.try_len().unwrap(), 1, "temps are never counted");
    assert_eq!(
        store.load(UserId(9)).unwrap(),
        None,
        "temps are never loaded"
    );
    assert_eq!(store.epoch(UserId(9)).unwrap(), 0);
    assert!(!dir.join("user09.snapshot.json.tmp").exists());
    assert_eq!(store.load(id).unwrap(), Some(tiny_snapshot(9)));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn dead_holder_lock_is_stolen_live_holder_is_respected() {
    let dir = temp_store_dir("locks");
    let id = UserId(8);
    {
        FileSnapshotStore::new(&dir).unwrap();
    }
    // A lock whose holder PID provably no longer runs is reaped at open.
    std::fs::write(dir.join(format!("{id}.lock")), "4000000000").unwrap();
    let mut store = FileSnapshotStore::new(&dir).unwrap();
    assert_eq!(store.recovery_report().stale_locks, 1);
    assert!(!dir.join(format!("{id}.lock")).exists());
    assert_eq!(store.acquire(id).unwrap(), 1);

    // A lock held by a live process (here: ourselves — the conservative
    // direction) is left alone, and a journal under it is that holder's to
    // resolve, not ours.
    std::fs::write(
        dir.join(format!("{id}.lock")),
        format!("{}", std::process::id()),
    )
    .unwrap();
    std::fs::write(
        dir.join(format!("{id}.journal")),
        r#"{"op":"acquire","state":"intent","epoch":2,"hash":0,"len":0}"#,
    )
    .unwrap();
    let mut reopened = FileSnapshotStore::new(&dir).unwrap();
    assert_eq!(reopened.recovery_report().stale_locks, 0);
    assert!(reopened.recovery_report().journals.is_empty());
    assert!(dir.join(format!("{id}.lock")).exists());
    assert!(dir.join(format!("{id}.journal")).exists());
    // Once the "live" holder is gone, on-demand recovery resolves it: the
    // intent never bumped the epoch, so the claim rolls back.
    std::fs::remove_file(dir.join(format!("{id}.lock"))).unwrap();
    assert_eq!(
        reopened.recover_user(id).unwrap(),
        Some(JournalResolution::AcquireRolledBack { to: 2 })
    );
    assert_eq!(reopened.epoch(id).unwrap(), 1);
    std::fs::remove_dir_all(&dir).ok();
}

/// Journal recovery at every store-internal kill point, in panic mode: the
/// fault unwinds (releasing the lock guard, as a non-crash error path
/// would) but leaves the journal exactly as a crash at that point does.
/// Reopening the directory must resolve each to the documented verdict and
/// leave the snapshot+epoch pair consistent.
#[test]
fn journal_recovery_matrix_under_panic_faults() {
    let id = UserId(1);
    let old_snap = tiny_snapshot(1000);
    let new_snap = tiny_snapshot(2000);

    struct Case {
        point: &'static str,
        op: Op,
        expect: JournalResolution,
        /// Snapshot expected on disk after recovery: `true` = the new
        /// (interrupted) write, `false` = the old one.
        new_data_visible: bool,
        /// Epoch expected on disk after recovery.
        epoch_after: u64,
    }
    enum Op {
        SaveFenced,
        Acquire,
        Remove,
    }
    // Every case starts from: epoch 1 held, `old_snap` saved under it.
    let cases = [
        Case {
            point: points::SAVE_INTENT,
            op: Op::SaveFenced,
            expect: JournalResolution::SaveRolledBack { epoch: 1 },
            new_data_visible: false,
            epoch_after: 1,
        },
        Case {
            point: points::SAVE_DATA,
            op: Op::SaveFenced,
            expect: JournalResolution::SaveCommitted { epoch: 1 },
            new_data_visible: true,
            epoch_after: 1,
        },
        Case {
            point: points::SAVE_COMMIT,
            op: Op::SaveFenced,
            expect: JournalResolution::SaveCommitted { epoch: 1 },
            new_data_visible: true,
            epoch_after: 1,
        },
        Case {
            point: points::ACQUIRE_INTENT,
            op: Op::Acquire,
            expect: JournalResolution::AcquireRolledBack { to: 2 },
            new_data_visible: false,
            epoch_after: 1,
        },
        Case {
            point: points::ACQUIRE_EPOCH,
            op: Op::Acquire,
            expect: JournalResolution::AcquireCommitted { to: 2 },
            new_data_visible: false,
            epoch_after: 2,
        },
        Case {
            point: points::ACQUIRE_COMMIT,
            op: Op::Acquire,
            expect: JournalResolution::AcquireCommitted { to: 2 },
            new_data_visible: false,
            epoch_after: 2,
        },
        Case {
            point: points::REMOVE_DATA,
            op: Op::Remove,
            expect: JournalResolution::RemoveCommitted,
            new_data_visible: false,
            epoch_after: 1,
        },
    ];

    for case in cases {
        let dir = temp_store_dir("journal-matrix");
        {
            let mut seeded = FileSnapshotStore::new(&dir).unwrap();
            let held = seeded.acquire(id).unwrap();
            assert_eq!(held, 1);
            seeded.save_fenced(id, held, &old_snap).unwrap();
        }
        let plan = FaultPlan::panic_at(case.point, 1);
        let mut store = FileSnapshotStore::with_fault_plan(&dir, Arc::clone(&plan)).unwrap();
        let unwound = catch_unwind(AssertUnwindSafe(|| match case.op {
            Op::SaveFenced => store.save_fenced(id, 1, &new_snap).map(|_| ()),
            Op::Acquire => store.acquire_cas(id, 1).map(|_| ()),
            Op::Remove => store.remove(id),
        }));
        assert!(unwound.is_err(), "{}: fault must fire", case.point);
        assert!(
            dir.join(format!("{id}.journal")).exists(),
            "{}: the interrupted op leaves its journal",
            case.point
        );
        drop(store);

        // A survivor opening the directory resolves the stranded journal.
        let mut survivor = FileSnapshotStore::new(&dir).unwrap();
        let report = survivor.recovery_report().clone();
        assert_eq!(
            report.journals,
            vec![(id.to_string(), case.expect)],
            "{}: resolution verdict",
            case.point
        );
        assert!(
            !dir.join(format!("{id}.journal")).exists(),
            "{}: resolved journal is removed",
            case.point
        );
        let on_disk = survivor.load(id).unwrap();
        match case.op {
            Op::Remove => assert_eq!(on_disk, None, "{}: snapshot removed", case.point),
            _ => {
                let expected = if case.new_data_visible {
                    &new_snap
                } else {
                    &old_snap
                };
                assert_eq!(
                    on_disk.as_ref(),
                    Some(expected),
                    "{}: snapshot consistency",
                    case.point
                );
            }
        }
        assert_eq!(
            survivor.epoch(id).unwrap(),
            case.epoch_after,
            "{}: epoch consistency",
            case.point
        );
        // The store is fully operational after recovery: the next CAS from
        // the recovered epoch succeeds.
        let next = survivor.acquire_cas(id, case.epoch_after).unwrap();
        assert_eq!(next, case.epoch_after + 1);
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn enter_points_fire_before_anything_is_written() {
    // The `.enter` points sit before the lock and the journal: a crash
    // there leaves no debris at all, and recovery is a no-op.
    let id = UserId(4);
    for point in [
        points::SAVE_ENTER,
        points::ACQUIRE_ENTER,
        points::REMOVE_ENTER,
    ] {
        let dir = temp_store_dir("enter-points");
        let plan = FaultPlan::panic_at(point, 1);
        let mut store = FileSnapshotStore::with_fault_plan(&dir, plan).unwrap();
        let snap = tiny_snapshot(5);
        let unwound = catch_unwind(AssertUnwindSafe(|| match point {
            p if p == points::SAVE_ENTER => store.save(id, &snap).map(|_| ()),
            p if p == points::ACQUIRE_ENTER => store.acquire(id).map(|_| ()),
            _ => store.remove(id),
        }));
        assert!(unwound.is_err(), "{point}: fault must fire");
        drop(store);
        let survivor = FileSnapshotStore::new(&dir).unwrap();
        assert_eq!(
            survivor.recovery_report(),
            &smarteryou_core::persist::RecoveryReport::default()
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}
