use serde::{Deserialize, Serialize};

use smarteryou_linalg::Matrix;
use smarteryou_ml::{BinaryClassifier, KrrModel, Scaler};
use smarteryou_sensors::UsageContext;

use crate::config::ContextMode;
use crate::CoreError;

/// One trained per-context authentication model: a feature scaler plus the
/// KRR classifier whose parameters the smartphone downloads from the
/// authentication server (§IV-A3).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AuthModel {
    scaler: Scaler,
    krr: KrrModel,
}

impl AuthModel {
    /// Packages a scaler + classifier pair.
    pub fn new(scaler: Scaler, krr: KrrModel) -> Self {
        AuthModel { scaler, krr }
    }

    /// The confidence score `CS(k) = xₖᵀ w*` (§V-I) of a raw (unscaled)
    /// authentication feature vector.
    ///
    /// # Panics
    ///
    /// Panics if the feature width differs from the training width.
    pub fn confidence(&self, features: &[f64]) -> f64 {
        self.krr.decision(&self.scaler.transform_vec(features))
    }

    /// Confidence scores for every row of a raw feature matrix in one pass:
    /// the matrix is scaled once and scored through
    /// [`KrrModel::decision_batch`]. Scores are bit-identical to calling
    /// [`AuthModel::confidence`] row by row.
    ///
    /// # Panics
    ///
    /// Panics if `features.cols()` differs from the training width.
    pub fn confidence_batch(&self, features: &Matrix) -> Vec<f64> {
        self.krr.decision_batch(&self.scaler.transform(features))
    }

    /// Number of raw features expected.
    pub fn num_features(&self) -> usize {
        self.scaler.num_features()
    }

    /// Borrows the underlying classifier.
    pub fn classifier(&self) -> &KrrModel {
        &self.krr
    }
}

/// Outcome of authenticating one window.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AuthDecision {
    /// Whether the window was attributed to the legitimate owner.
    pub accepted: bool,
    /// Confidence score (distance from the classifier boundary).
    pub confidence: f64,
    /// Context under which the decision was made.
    pub context: UsageContext,
}

/// The authentication component of the testing module (§IV-A2): holds the
/// per-context models and classifies authentication feature vectors.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Authenticator {
    mode: ContextMode,
    /// Per [`UsageContext::index`] slot; `Unified` mode stores one model in
    /// slot 0.
    models: Vec<AuthModel>,
    threshold: f64,
}

impl Authenticator {
    /// Builds a per-context authenticator from models indexed like
    /// [`UsageContext::ALL`].
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] if the model count or feature
    /// widths are inconsistent.
    pub fn per_context(models: Vec<AuthModel>, threshold: f64) -> Result<Self, CoreError> {
        if models.len() != UsageContext::ALL.len() {
            return Err(CoreError::InvalidConfig(format!(
                "expected {} per-context models, got {}",
                UsageContext::ALL.len(),
                models.len()
            )));
        }
        if models[1..]
            .iter()
            .any(|m| m.num_features() != models[0].num_features())
        {
            return Err(CoreError::InvalidConfig(
                "per-context models disagree on feature width".into(),
            ));
        }
        Ok(Authenticator {
            mode: ContextMode::PerContext,
            models,
            threshold,
        })
    }

    /// Builds a unified (context-ignoring) authenticator.
    pub fn unified(model: AuthModel, threshold: f64) -> Self {
        Authenticator {
            mode: ContextMode::Unified,
            models: vec![model],
            threshold,
        }
    }

    /// Context handling mode.
    pub fn mode(&self) -> ContextMode {
        self.mode
    }

    /// Acceptance threshold on the confidence score.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// Number of raw features expected per window.
    pub fn num_features(&self) -> usize {
        self.models[0].num_features()
    }

    /// The model that would be used under `context`.
    pub fn model_for(&self, context: UsageContext) -> &AuthModel {
        match self.mode {
            ContextMode::Unified => &self.models[0],
            ContextMode::PerContext => &self.models[context.index()],
        }
    }

    /// Authenticates one window's feature vector under the detected context.
    ///
    /// # Panics
    ///
    /// Panics if the feature width differs from the training width.
    pub fn authenticate(&self, context: UsageContext, features: &[f64]) -> AuthDecision {
        let confidence = self.model_for(context).confidence(features);
        AuthDecision {
            accepted: confidence >= self.threshold,
            confidence,
            context,
        }
    }

    /// Authenticates every row of a feature matrix captured under one
    /// context, scaling and scoring the whole matrix in a single pass.
    /// Decisions are bit-identical to per-row [`Authenticator::authenticate`]
    /// calls.
    ///
    /// # Panics
    ///
    /// Panics if `features.cols()` differs from the training width.
    pub fn authenticate_batch(
        &self,
        context: UsageContext,
        features: &Matrix,
    ) -> Vec<AuthDecision> {
        self.model_for(context)
            .confidence_batch(features)
            .into_iter()
            .map(|confidence| AuthDecision {
                accepted: confidence >= self.threshold,
                confidence,
                context,
            })
            .collect()
    }

    /// Authenticates a mixed-context window batch: rows are regrouped by
    /// detected context so each per-context model scores its group as one
    /// matrix, and the decisions come back in input order. This is the
    /// fleet engine's scoring primitive.
    pub fn authenticate_grouped(&self, items: &[(UsageContext, Vec<f64>)]) -> Vec<AuthDecision> {
        let mut out: Vec<Option<AuthDecision>> = vec![None; items.len()];
        for ctx in UsageContext::ALL {
            let indices: Vec<usize> = items
                .iter()
                .enumerate()
                .filter(|(_, (c, _))| *c == ctx)
                .map(|(i, _)| i)
                .collect();
            if indices.is_empty() {
                continue;
            }
            let rows: Vec<&[f64]> = indices.iter().map(|&i| items[i].1.as_slice()).collect();
            let matrix = Matrix::from_rows(&rows).expect("uniform feature width");
            for (&i, decision) in indices.iter().zip(self.authenticate_batch(ctx, &matrix)) {
                out[i] = Some(decision);
            }
        }
        out.into_iter()
            .map(|d| d.expect("every context grouped"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smarteryou_linalg::Matrix;
    use smarteryou_ml::KernelRidge;

    /// Builds a trivial model that accepts vectors near (1, 1).
    fn model(positive_at: f64) -> AuthModel {
        let rows: Vec<Vec<f64>> = (0..10)
            .map(|i| {
                let jitter = i as f64 * 0.01;
                if i % 2 == 0 {
                    vec![positive_at + jitter, positive_at - jitter]
                } else {
                    vec![-positive_at - jitter, -positive_at + jitter]
                }
            })
            .collect();
        let y: Vec<f64> = (0..10)
            .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        let x = Matrix::from_rows(&rows).unwrap();
        let scaler = Scaler::fit(&x);
        let xs = scaler.transform(&x);
        let krr = KernelRidge::new(0.1).fit(&xs, &y).unwrap();
        AuthModel::new(scaler, krr)
    }

    #[test]
    fn per_context_routes_to_the_right_model() {
        let auth = Authenticator::per_context(vec![model(1.0), model(1.0)], 0.0).unwrap();
        let d = auth.authenticate(UsageContext::Moving, &[1.0, 1.0]);
        assert!(d.accepted);
        assert_eq!(d.context, UsageContext::Moving);
        assert!(d.confidence > 0.0);
        let d = auth.authenticate(UsageContext::Stationary, &[-1.0, -1.0]);
        assert!(!d.accepted);
    }

    #[test]
    fn unified_uses_single_model() {
        let auth = Authenticator::unified(model(2.0), 0.0);
        assert_eq!(auth.mode(), ContextMode::Unified);
        let a = auth.authenticate(UsageContext::Stationary, &[2.0, 2.0]);
        let b = auth.authenticate(UsageContext::Moving, &[2.0, 2.0]);
        assert_eq!(a.confidence, b.confidence);
    }

    #[test]
    fn threshold_shifts_decisions() {
        let strict = Authenticator::unified(model(1.0), 10.0);
        assert!(
            !strict
                .authenticate(UsageContext::Moving, &[1.0, 1.0])
                .accepted
        );
        let lax = Authenticator::unified(model(1.0), -10.0);
        assert!(
            lax.authenticate(UsageContext::Moving, &[-1.0, -1.0])
                .accepted
        );
    }

    #[test]
    fn per_context_validates_model_count() {
        let err = Authenticator::per_context(vec![model(1.0)], 0.0).unwrap_err();
        assert!(matches!(err, CoreError::InvalidConfig(_)));
    }

    #[test]
    fn batch_paths_match_scalar_paths_bit_exactly() {
        let auth = Authenticator::per_context(vec![model(1.0), model(2.0)], 0.1).unwrap();
        let probes = [
            vec![1.0, 1.0],
            vec![-0.5, 0.25],
            vec![2.0, -2.0],
            vec![0.0, 0.0],
        ];
        let matrix = Matrix::from_rows(&probes).unwrap();
        for ctx in UsageContext::ALL {
            let batch = auth.authenticate_batch(ctx, &matrix);
            for (row, d) in probes.iter().zip(&batch) {
                let scalar = auth.authenticate(ctx, row);
                assert_eq!(d.confidence.to_bits(), scalar.confidence.to_bits());
                assert_eq!(d.accepted, scalar.accepted);
                assert_eq!(d.context, scalar.context);
            }
        }

        // Mixed-context grouping preserves input order and per-row results.
        let items: Vec<(UsageContext, Vec<f64>)> = probes
            .iter()
            .enumerate()
            .map(|(i, p)| (UsageContext::ALL[i % 2], p.clone()))
            .collect();
        let grouped = auth.authenticate_grouped(&items);
        for ((ctx, feats), d) in items.iter().zip(&grouped) {
            let scalar = auth.authenticate(*ctx, feats);
            assert_eq!(d.confidence.to_bits(), scalar.confidence.to_bits());
            assert_eq!(d.accepted, scalar.accepted);
            assert_eq!(d.context, *ctx);
        }
    }

    #[test]
    fn grouped_handles_empty_and_single_context_batches() {
        let auth = Authenticator::unified(model(1.0), 0.0);
        assert!(auth.authenticate_grouped(&[]).is_empty());
        let items = vec![(UsageContext::Moving, vec![1.0, 1.0])];
        let out = auth.authenticate_grouped(&items);
        assert_eq!(out.len(), 1);
        assert!(out[0].accepted);
    }

    #[test]
    fn model_exposes_confidence_and_width() {
        let m = model(1.0);
        assert_eq!(m.num_features(), 2);
        assert!(m.confidence(&[1.0, 1.0]) > 0.0);
        assert!(m.classifier().weights().is_some());
    }
}
