use std::fmt;

use smarteryou_ml::MlError;

/// Error type for the SmarterYou core pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// A model-training step failed.
    Training(MlError),
    /// The pipeline was asked to authenticate before enrollment finished.
    NotEnrolled,
    /// Not enough data to perform the requested operation.
    InsufficientData(String),
    /// A configuration value is out of its valid range.
    InvalidConfig(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Training(e) => write!(f, "training failed: {e}"),
            CoreError::NotEnrolled => write!(f, "authenticator not yet enrolled"),
            CoreError::InsufficientData(msg) => write!(f, "insufficient data: {msg}"),
            CoreError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Training(e) => Some(e),
            _ => None,
        }
    }
}

impl From<MlError> for CoreError {
    fn from(e: MlError) -> Self {
        CoreError::Training(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = CoreError::NotEnrolled;
        assert!(format!("{e}").contains("enrolled"));
        let e: CoreError = MlError::InvalidParameter("rho".into()).into();
        assert!(matches!(e, CoreError::Training(_)));
        assert!(std::error::Error::source(&e).is_some());
    }
}
