use std::fmt;

use smarteryou_ml::MlError;
use smarteryou_sensors::UserId;

use crate::persist::PersistError;

/// Error type for the SmarterYou core pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// A model-training step failed.
    Training(MlError),
    /// The pipeline was asked to authenticate before enrollment finished.
    NotEnrolled,
    /// Not enough data to perform the requested operation.
    InsufficientData(String),
    /// A configuration value is out of its valid range.
    InvalidConfig(String),
    /// A fleet-engine operation referenced a user that was never
    /// registered. Distinct from [`CoreError::Persist`]: a *known* user
    /// whose evicted snapshot cannot be rehydrated reports the persistence
    /// failure, not an unknown-user error.
    UnknownUser(UserId),
    /// A registration (`register` / `register_parked`) named a user this
    /// engine already holds — resident or parked. Typed so callers can
    /// branch on it; the existing registration (pipeline, epoch, queued
    /// windows) is left untouched, never overwritten.
    AlreadyRegistered(UserId),
    /// Snapshot/restore persistence failed (eviction, rehydration, or a
    /// snapshot store operation).
    Persist(PersistError),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Training(e) => write!(f, "training failed: {e}"),
            CoreError::NotEnrolled => write!(f, "authenticator not yet enrolled"),
            CoreError::InsufficientData(msg) => write!(f, "insufficient data: {msg}"),
            CoreError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            CoreError::UnknownUser(id) => write!(f, "{id} is not registered"),
            CoreError::AlreadyRegistered(id) => write!(f, "{id} is already registered"),
            CoreError::Persist(e) => write!(f, "persistence failed: {e}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Training(e) => Some(e),
            CoreError::Persist(e) => Some(e),
            _ => None,
        }
    }
}

impl From<MlError> for CoreError {
    fn from(e: MlError) -> Self {
        CoreError::Training(e)
    }
}

impl From<PersistError> for CoreError {
    fn from(e: PersistError) -> Self {
        CoreError::Persist(e)
    }
}

/// Why an [`IngestQueue`](crate::engine::ingest::IngestQueue) refused a
/// window. Always paired with the window itself being handed back to the
/// producer (see
/// [`RejectedWindow`](crate::engine::ingest::RejectedWindow)) — refusal is
/// backpressure, never loss.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IngestError {
    /// The queue is at its bound and the policy is
    /// [`Reject`](crate::engine::ingest::BackpressurePolicy::Reject): the
    /// producer must retry after the next drain or shed the window. A
    /// `Reject` queue loses exactly the windows it reported this error
    /// for, nothing more (property-tested in
    /// `crates/core/tests/ingest_backpressure.rs`).
    QueueFull {
        /// The queue's fixed bound.
        capacity: usize,
    },
    /// The queue was closed (fleet shutdown or ingest reconfiguration);
    /// producers parked by
    /// [`BlockingWait`](crate::engine::ingest::BackpressurePolicy::BlockingWait)
    /// are woken with this error.
    Closed,
}

impl fmt::Display for IngestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IngestError::QueueFull { capacity } => {
                write!(f, "ingest queue full ({capacity} windows queued)")
            }
            IngestError::Closed => write!(f, "ingest queue closed"),
        }
    }
}

impl std::error::Error for IngestError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = CoreError::NotEnrolled;
        assert!(format!("{e}").contains("enrolled"));
        let e: CoreError = MlError::InvalidParameter("rho".into()).into();
        assert!(matches!(e, CoreError::Training(_)));
        assert!(std::error::Error::source(&e).is_some());
    }

    #[test]
    fn ingest_and_registration_errors_are_typed() {
        let full = IngestError::QueueFull { capacity: 8 };
        assert!(format!("{full}").contains("full"));
        assert_ne!(full, IngestError::Closed);
        assert!(format!("{}", IngestError::Closed).contains("closed"));
        let dup = CoreError::AlreadyRegistered(UserId(3));
        assert!(format!("{dup}").contains("already registered"));
        assert_ne!(dup, CoreError::UnknownUser(UserId(3)));
    }

    #[test]
    fn unknown_user_and_persist_are_distinct() {
        let unknown = CoreError::UnknownUser(UserId(7));
        assert!(format!("{unknown}").contains("user07"));
        assert!(std::error::Error::source(&unknown).is_none());
        let persist: CoreError = PersistError::MissingSnapshot(UserId(7)).into();
        assert_ne!(unknown, persist);
        assert!(format!("{persist}").contains("no snapshot"));
        assert!(std::error::Error::source(&persist).is_some());
    }
}
