//! The design-alternatives toolkit of §V-B/C/D: sensor selection by Fisher
//! score (Table II), feature-quality screening by KS test (Figure 3), and
//! redundancy screening by Pearson correlation (Tables III and IV).
//!
//! These functions consume generated sensor windows grouped by user and
//! emit the tables the paper reports; the benchmark binaries print them side
//! by side with the paper's values.

use serde::{Deserialize, Serialize};

use smarteryou_linalg::Matrix;
use smarteryou_sensors::{DeviceKind, DualDeviceWindow, SensorKind};
use smarteryou_stats::{fisher_score, ks_test, pearson, BoxStats};

use crate::features::{FeatureKind, FeatureSet};

/// Significance level used by the paper's KS screening.
pub const KS_ALPHA: f64 = 0.05;

/// One row of Table II: a sensor axis and its Fisher scores on both devices.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FisherRow {
    /// Axis label, e.g. `"Acc(x)"` or `"Light"`.
    pub label: String,
    /// Fisher score over the smartphone population data.
    pub phone: f64,
    /// Fisher score over the smartwatch population data.
    pub watch: f64,
}

/// Computes Table II: per-axis Fisher scores of every candidate sensor.
///
/// The per-window statistic is the axis RMS (root mean square), which
/// captures both static posture (accelerometer: gravity projection) and
/// oscillation energy (gyroscope: gesture/gait rotation) in one number.
/// `windows_by_user[u]` holds user `u`'s windows.
///
/// Two requirements on the input, or the scores are meaningless:
///
/// * windows must span **multiple sessions** per user, otherwise the
///   environment-dominated sensors (magnetometer/orientation/light) show no
///   within-user variance and score spuriously high;
/// * windows should come from **one coarse context** — cross-context
///   behaviour differences are not "within-class noise" (that observation
///   is the whole argument for per-context models, §IV-B). Call once per
///   context and average, as `repro-table2` does.
///
/// # Panics
///
/// Panics if fewer than two users are provided.
pub fn sensor_fisher_scores(windows_by_user: &[Vec<DualDeviceWindow>]) -> Vec<FisherRow> {
    assert!(windows_by_user.len() >= 2, "need at least two users");
    let mut rows = Vec::new();
    for sensor in SensorKind::ALL {
        for axis in 0..sensor.num_axes() {
            let label = if sensor.num_axes() == 1 {
                sensor.name().to_string()
            } else {
                format!("{}({})", sensor.name(), ["x", "y", "z"][axis])
            };
            let mut scores = [0.0f64; 2];
            for (d, device) in DeviceKind::ALL.iter().enumerate() {
                let groups: Vec<Vec<f64>> = windows_by_user
                    .iter()
                    .map(|windows| {
                        windows
                            .iter()
                            .map(|w| rms(w.device(*device).sensor_axes(sensor)[axis]))
                            .collect()
                    })
                    .collect();
                scores[d] = fisher_score(&groups);
            }
            rows.push(FisherRow {
                label,
                phone: scores[0],
                watch: scores[1],
            });
        }
    }
    rows
}

fn rms(stream: &[f64]) -> f64 {
    if stream.is_empty() {
        return 0.0;
    }
    (stream.iter().map(|v| v * v).sum::<f64>() / stream.len() as f64).sqrt()
}

/// KS-screening result for one feature on one device (one box of Figure 3).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KsFeatureQuality {
    /// Feature label, e.g. `"accPeak2 f"`.
    pub label: String,
    /// Box-plot summary of the p-values over all user pairs.
    pub p_values: BoxStats,
    /// Fraction of user pairs significantly different at α = 0.05.
    pub fraction_significant: f64,
}

impl KsFeatureQuality {
    /// The paper's drop rule: a feature is "bad" when most user pairs are
    /// *not* significantly different (median p-value above α).
    pub fn is_bad(&self) -> bool {
        self.p_values.median > KS_ALPHA
    }
}

/// Computes Figure 3 for one device: per candidate feature, the KS-test
/// p-values across all user pairs.
///
/// `features_by_user[u]` holds one feature matrix per user, rows = windows,
/// columns = the 18 per-sensor candidate features (9 kinds × accel, gyro) in
/// [`FeatureSet::all_candidates`] order.
///
/// # Panics
///
/// Panics if fewer than two users are provided or widths differ.
pub fn ks_feature_quality(features_by_user: &[Matrix]) -> Vec<KsFeatureQuality> {
    assert!(features_by_user.len() >= 2, "need at least two users");
    let width = features_by_user[0].cols();
    assert!(
        features_by_user.iter().all(|m| m.cols() == width),
        "feature width mismatch"
    );
    let labels = candidate_labels();
    assert_eq!(labels.len(), width, "expected candidate-feature layout");

    let mut out = Vec::with_capacity(width);
    for (col, label) in labels.iter().enumerate() {
        let columns: Vec<Vec<f64>> = features_by_user.iter().map(|m| m.col(col)).collect();
        let mut p_values = Vec::new();
        for i in 0..columns.len() {
            for j in (i + 1)..columns.len() {
                p_values.push(ks_test(&columns[i], &columns[j]).p_value);
            }
        }
        out.push(KsFeatureQuality {
            label: label.clone(),
            p_values: BoxStats::from_slice(&p_values).expect("non-empty pairs"),
            fraction_significant: BoxStats::fraction_below(&p_values, KS_ALPHA),
        });
    }
    out
}

/// Labels of the 18 per-device candidate features, sensor-major
/// (`accMean … accPeak2 f`, then `gyrMean … gyrPeak2 f`).
pub fn candidate_labels() -> Vec<String> {
    let mut out = Vec::new();
    for sensor in ["acc", "gyr"] {
        for kind in FeatureKind::ALL {
            out.push(format!("{sensor}{}", kind.name()));
        }
    }
    out
}

/// Average (over users) within-user Pearson correlation between every pair
/// of feature columns — Table III (one device) when `a == b`, Table IV
/// (cross-device) when `a` and `b` come from different devices.
///
/// `a_by_user[u]` and `b_by_user[u]` are the same user's windows × features
/// matrices; rows must align (same windows).
///
/// # Panics
///
/// Panics if shapes are inconsistent.
pub fn mean_feature_correlation(a_by_user: &[Matrix], b_by_user: &[Matrix]) -> Matrix {
    assert_eq!(a_by_user.len(), b_by_user.len(), "user count mismatch");
    assert!(!a_by_user.is_empty(), "need at least one user");
    let (wa, wb) = (a_by_user[0].cols(), b_by_user[0].cols());
    let mut acc = Matrix::zeros(wa, wb);
    let mut counts = Matrix::zeros(wa, wb);
    for (ma, mb) in a_by_user.iter().zip(b_by_user) {
        assert_eq!(ma.rows(), mb.rows(), "window count mismatch within user");
        for i in 0..wa {
            let ci = ma.col(i);
            for j in 0..wb {
                let cj = mb.col(j);
                let r = pearson(&ci, &cj);
                if r.is_finite() {
                    acc[(i, j)] += r;
                    counts[(i, j)] += 1.0;
                }
            }
        }
    }
    for i in 0..wa {
        for j in 0..wb {
            acc[(i, j)] = if counts[(i, j)] > 0.0 {
                acc[(i, j)] / counts[(i, j)]
            } else {
                f64::NAN
            };
        }
    }
    acc
}

/// Data-driven reproduction of the paper's feature selection: start from
/// all nine candidates, drop features whose KS screening marks them bad
/// (Figure 3 ⇒ `Peak2 f`), then drop one of every feature pair whose mean
/// within-device correlation exceeds `corr_threshold` (Table III ⇒ `Range`,
/// redundant with `Var`).
///
/// `quality` must cover one device's 18 candidate columns; `corr` is the
/// 18×18 within-device correlation matrix from
/// [`mean_feature_correlation`].
pub fn recommended_feature_set(
    quality: &[KsFeatureQuality],
    corr: &Matrix,
    corr_threshold: f64,
) -> FeatureSet {
    let n_kinds = FeatureKind::ALL.len();
    // A feature kind is dropped if it is bad on either sensor stream.
    let mut dropped = [false; 9];
    for (idx, q) in quality.iter().enumerate() {
        if q.is_bad() {
            dropped[idx % n_kinds] = true;
        }
    }
    // Correlation screening: consider each kind pair (averaged across the
    // two sensors and both orders) and drop the later kind of a redundant
    // pair, mirroring the paper's "drop Ran, keep Var/Max" choice.
    for i in 0..n_kinds {
        for j in (i + 1)..n_kinds {
            if dropped[i] || dropped[j] {
                continue;
            }
            let mut worst: f64 = 0.0;
            for s in [0, n_kinds] {
                worst = worst.max(corr[(s + i, s + j)].abs());
            }
            if worst > corr_threshold {
                dropped[j] = true;
            }
        }
    }
    let kinds: Vec<FeatureKind> = FeatureKind::ALL
        .into_iter()
        .enumerate()
        .filter(|(i, _)| !dropped[*i])
        .map(|(_, k)| k)
        .collect();
    FeatureSet::custom(kinds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use smarteryou_sensors::{Population, RawContext, TraceGenerator, WindowSpec};

    /// Multi-session, single-context windows (see the function docs for why
    /// both properties matter).
    fn windows_for(
        n_users: usize,
        sessions: usize,
        per_session: usize,
    ) -> Vec<Vec<DualDeviceWindow>> {
        let population = Population::generate(n_users, 13);
        population
            .iter()
            .map(|u| {
                let mut gen = TraceGenerator::new(u.clone(), 19);
                let spec = WindowSpec::from_seconds(2.0, 50.0);
                let mut ws = Vec::new();
                for _ in 0..sessions {
                    gen.advance_days(0.25);
                    ws.extend(gen.generate_windows(RawContext::SittingStanding, spec, per_session));
                }
                ws
            })
            .collect()
    }

    #[test]
    fn fisher_scores_rank_motion_sensors_above_environmental() {
        let windows = windows_for(8, 14, 3);
        let rows = sensor_fisher_scores(&windows);
        assert_eq!(rows.len(), 13); // 4 three-axis sensors + light
        let get = |label: &str| rows.iter().find(|r| r.label == label).unwrap();
        // Motion sensors carry user identity…
        let acc_x = get("Acc(x)");
        // …environmental sensors do not.
        let mag_x = get("Mag(x)");
        let light = get("Light");
        assert!(
            acc_x.phone > 4.0 * mag_x.phone.max(1e-9),
            "Acc(x) {} vs Mag(x) {}",
            acc_x.phone,
            mag_x.phone
        );
        assert!(acc_x.phone > 4.0 * light.phone.max(1e-9));
        assert!(
            acc_x.phone > 1.5,
            "Acc(x) carries identity: {}",
            acc_x.phone
        );
        assert!(
            mag_x.phone < 1.0,
            "Mag(x) is environmental: {}",
            mag_x.phone
        );
    }

    #[test]
    fn rms_of_constant_stream() {
        assert!((rms(&[3.0, 3.0, 3.0]) - 3.0).abs() < 1e-12);
        assert_eq!(rms(&[]), 0.0);
    }

    #[test]
    fn candidate_labels_cover_both_sensors() {
        let labels = candidate_labels();
        assert_eq!(labels.len(), 18);
        assert_eq!(labels[0], "accMean");
        assert!(labels[17].starts_with("gyr"));
    }

    #[test]
    fn correlation_matrix_shape_and_diagonal() {
        // Build tiny per-user feature matrices with known structure.
        let mk = |seed: f64| {
            let rows: Vec<Vec<f64>> = (0..30)
                .map(|i| {
                    let v = (i as f64 * 0.7 + seed).sin();
                    vec![v, 2.0 * v, (i as f64 * 1.3).cos()]
                })
                .collect();
            Matrix::from_rows(&rows).unwrap()
        };
        let users = vec![mk(0.0), mk(1.0)];
        let corr = mean_feature_correlation(&users, &users);
        assert_eq!(corr.shape(), (3, 3));
        // Column 1 = 2 × column 0 → correlation 1.
        assert!((corr[(0, 1)] - 1.0).abs() < 1e-9);
        assert!((corr[(0, 0)] - 1.0).abs() < 1e-9);
        assert!(corr[(0, 2)].abs() < 0.6);
    }

    #[test]
    fn recommended_set_drops_bad_and_redundant_features() {
        // Synthesize screening outputs that mirror the paper's findings:
        // Peak2 f bad on both sensors, Range ~ Var correlation 0.9.
        let labels = candidate_labels();
        let quality: Vec<KsFeatureQuality> = labels
            .iter()
            .map(|l| {
                let bad = l.contains("Peak2 f");
                let p = if bad { 0.4 } else { 0.001 };
                KsFeatureQuality {
                    label: l.clone(),
                    p_values: BoxStats::from_slice(&[p, p, p]).unwrap(),
                    fraction_significant: if bad { 0.2 } else { 0.99 },
                }
            })
            .collect();
        let mut corr = Matrix::identity(18);
        let var = 1usize; // FeatureKind::Var index
        let ran = 4usize; // FeatureKind::Range index
        for s in [0usize, 9] {
            corr[(s + var, s + ran)] = 0.9;
            corr[(s + ran, s + var)] = 0.9;
        }
        let set = recommended_feature_set(&quality, &corr, 0.85);
        assert_eq!(set, FeatureSet::paper_default());
    }
}
