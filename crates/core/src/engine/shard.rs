//! UserId-routed sharding over the fleet engine.
//!
//! The paper's pipeline is strictly per-user, which makes the fleet
//! embarrassingly shardable: a [`ShardRouter`] hashes each [`UserId`] to a
//! home shard, a [`ShardedFleet`] runs N independent [`FleetEngine`]s over
//! **one shared** [`SnapshotStore`] (through
//! [`SharedSnapshotStore`](crate::persist::SharedSnapshotStore)), and the
//! versioned pipeline snapshot doubles as the inter-shard wire format —
//! moving a user is an evict on the source shard and a lazy rehydration on
//! the target, no extra serialization layer.
//!
//! ```text
//!                         ┌────────────────────────────┐
//!        submit(id, w)    │        ShardedFleet        │
//!      ───────────────▶   │  ShardRouter: hash(UserId) │
//!                         └──────┬──────┬──────┬───────┘
//!                                │      │      │        owner map
//!                     ┌──────────┘      │      └───────────┐
//!                     ▼                 ▼                  ▼
//!              ┌────────────┐   ┌────────────┐      ┌────────────┐
//!              │ FleetEngine│   │ FleetEngine│  …   │ FleetEngine│
//!              │  shard 0   │   │  shard 1   │      │  shard N-1 │
//!              │ (resident  │   │ (resident  │      │ (resident  │
//!              │  slots +   │   │  slots +   │      │  slots +   │
//!              │  LRU evict)│   │  LRU evict)│      │  LRU evict)│
//!              └─────┬──────┘   └─────┬──────┘      └─────┬──────┘
//!                    │ save_fenced(epoch) / load / acquire │
//!                    ▼                 ▼                   ▼
//!              ┌───────────────────────────────────────────────┐
//!              │     SharedSnapshotStore (one mutex'd store)   │
//!              │  per-user: snapshot JSON + ownership epoch    │
//!              └───────────────────────────────────────────────┘
//! ```
//!
//! # Ownership: the epoch fence
//!
//! Exactly one shard may own a user's live pipeline. The shared store
//! persists a monotonic per-user **epoch**; registering a user on a shard
//! claims the next epoch ([`SnapshotStore::acquire`]) and every snapshot
//! save from that shard is fenced on the claim. A migration is therefore:
//!
//! 1. **source**: [`FleetEngine::release`] — snapshot + fenced save under
//!    the source's epoch, user forgotten;
//! 2. **target**: [`FleetEngine::register_parked`] — claims epoch + 1,
//!    rehydrates lazily on the first submit (undelivered windows are
//!    carried over).
//!
//! If the order ever inverts — the target claims before the source saved —
//! the source's save is rejected with [`PersistError::StaleEpoch`]: its
//! stale copy stays resident in memory (state is never silently dropped)
//! but can never again be persisted or rehydrated, so it cannot clobber
//! the new owner's state. Two shards can never both persist a live
//! pipeline.
//!
//! # Parity
//!
//! Sharding is behaviour-free: decisions, scores, and retrain events are
//! bit-identical to one eviction-disabled engine fed the same windows,
//! *including across forced migrations mid-stream* — enforced by
//! `tests/shard_parity.rs`.

use std::collections::HashMap;
use std::sync::Arc;

use rand::rngs::StdRng;

use smarteryou_sensors::{DualDeviceWindow, UserId};

use crate::engine::ingest::{BackpressurePolicy, IngestQueue, IngestRouter};
use crate::engine::training::TrainingService;
use crate::engine::{EnrollmentEntry, FleetEngine, TickReport};
use crate::parallel::parallel_map_mut;
use crate::persist::{SharedSnapshotStore, SnapshotStore};
use crate::pipeline::SmarterYou;
use crate::server::TrainingHandle;
use crate::CoreError;

#[cfg(doc)]
use crate::persist::PersistError;

/// Pure, process-stable `UserId → shard` routing. Uses a fixed-constant
/// mix (SplitMix64's finalizer), **not** the standard library's keyed
/// `HashMap` hasher: routing must be a function of the id alone, identical
/// across process restarts and across machines, so that every node of a
/// future multi-process deployment computes the same home shard without
/// coordination.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardRouter {
    num_shards: usize,
}

impl ShardRouter {
    /// A router over `num_shards` shards.
    ///
    /// # Panics
    ///
    /// Panics if `num_shards` is zero.
    pub fn new(num_shards: usize) -> Self {
        assert!(num_shards > 0, "router needs at least one shard");
        ShardRouter { num_shards }
    }

    /// Number of shards routed over.
    pub fn num_shards(&self) -> usize {
        self.num_shards
    }

    /// The home shard for `id` — a pure function of the id and the shard
    /// count.
    pub fn shard_of(&self, id: UserId) -> usize {
        (Self::mix(id.0 as u64) % self.num_shards as u64) as usize
    }

    /// SplitMix64 finalizer: a fixed, well-dispersed 64-bit mix so that
    /// dense sequential user ids spread evenly over the shards.
    fn mix(mut x: u64) -> u64 {
        x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^ (x >> 31)
    }
}

/// N [`FleetEngine`] shards behind a [`ShardRouter`], sharing one
/// epoch-fenced snapshot store. See the [module docs](self) for the
/// topology and ownership protocol.
#[derive(Debug)]
pub struct ShardedFleet {
    router: ShardRouter,
    shards: Vec<FleetEngine>,
    store: SharedSnapshotStore,
    /// Current owning shard per user. Starts at the router's home shard;
    /// diverges only through explicit [`ShardedFleet::migrate`] calls
    /// (rebalancing, drains).
    owner: HashMap<UserId, usize>,
    /// Lifetime count of completed cross-shard migrations.
    migrations: u64,
    /// Async ingestion front door, when enabled: one bounded queue per
    /// shard, drained by each shard's tick.
    ingest: Option<IngestRouter>,
}

impl ShardedFleet {
    /// A fleet of `num_shards` shards sharing `store`, each shard holding
    /// at most `capacity_per_shard` resident pipelines (idle ones park in
    /// the shared store, exactly as [`FleetEngine::with_eviction`]).
    ///
    /// # Panics
    ///
    /// Panics if `num_shards` or `capacity_per_shard` is zero.
    pub fn new(
        num_shards: usize,
        store: Box<dyn SnapshotStore>,
        capacity_per_shard: usize,
    ) -> Self {
        let router = ShardRouter::new(num_shards);
        let store = SharedSnapshotStore::new(store);
        let shards = (0..num_shards)
            .map(|_| FleetEngine::new().with_eviction(Box::new(store.clone()), capacity_per_shard))
            .collect();
        ShardedFleet {
            router,
            shards,
            store,
            owner: HashMap::new(),
            migrations: 0,
            ingest: None,
        }
    }

    /// Builder form of [`ShardedFleet::set_fast_extraction`].
    pub fn with_fast_extraction(mut self, on: bool) -> Self {
        self.set_fast_extraction(on);
        self
    }

    /// Switches every shard between the vectorized fast-extraction path
    /// and the scalar reference path (see
    /// [`FleetEngine::set_fast_extraction`]); each shard re-applies the
    /// setting to pipelines it registers, rehydrates or adopts.
    pub fn set_fast_extraction(&mut self, on: bool) {
        for shard in &mut self.shards {
            shard.set_fast_extraction(on);
        }
    }

    /// Enables async ingestion: one bounded queue (capacity
    /// `queue_capacity_per_shard`, backpressure `policy`) per shard,
    /// attached so each shard's tick drains its own queue. Returns the
    /// cloneable [`IngestRouter`] producers submit through; retrieve it
    /// again with [`ShardedFleet::ingest_router`].
    ///
    /// Reconfiguring (new capacity and/or policy) is allowed only while
    /// every queue is empty; the old queues are closed **before** the
    /// emptiness check — producers still holding the old router get
    /// [`IngestError::Closed`](crate::IngestError::Closed) instead of
    /// pushing into a queue nothing drains, and a racing push cannot slip
    /// in between check and swap.
    ///
    /// # Panics
    ///
    /// Panics if `queue_capacity_per_shard` is zero, or if a previously
    /// enabled router's queues still hold undrained windows.
    pub fn enable_ingest(
        &mut self,
        queue_capacity_per_shard: usize,
        policy: BackpressurePolicy,
    ) -> IngestRouter {
        if let Some(old) = &self.ingest {
            old.close();
            assert_eq!(
                old.backlog(),
                0,
                "cannot reconfigure ingest while queues hold windows — tick until drained first"
            );
        }
        let queues: Vec<_> = (0..self.shards.len())
            .map(|_| Arc::new(IngestQueue::new(queue_capacity_per_shard, policy)))
            .collect();
        for (shard, queue) in self.shards.iter_mut().zip(&queues) {
            shard.attach_ingest(queue.clone());
        }
        let router = IngestRouter::new(self.router, queues);
        self.ingest = Some(router.clone());
        router
    }

    /// The ingestion front door (`None` until
    /// [`ShardedFleet::enable_ingest`]).
    pub fn ingest_router(&self) -> Option<IngestRouter> {
        self.ingest.clone()
    }

    /// Attaches one [`TrainingService`] **per shard**, built by `make`
    /// (e.g. `|| TrainingService::with_workers(2)`). Services cannot be
    /// shared across shards: each shard's engine routes completed jobs
    /// through its own job→user map, so a shared service would deliver one
    /// shard's results into another's collection pass. Deferred retrains
    /// canceled by a [migration](ShardedFleet::migrate) re-issue on the
    /// target shard automatically — the captured request travels inside
    /// the snapshot and the target's next tick resubmits it.
    ///
    /// # Panics
    ///
    /// As [`FleetEngine::enable_training`]: panics if any shard's previous
    /// service still has jobs in flight.
    pub fn enable_training(&mut self, mut make: impl FnMut() -> TrainingService) {
        for shard in &mut self.shards {
            shard.enable_training(make());
        }
    }

    /// Whether every shard has a training service attached.
    pub fn training_enabled(&self) -> bool {
        self.shards.iter().all(FleetEngine::training_enabled)
    }

    /// Fleet-wide lifetime `(started, completed, canceled)` retrain-job
    /// totals, summed over the shards (see
    /// [`FleetEngine::retrain_totals`]).
    pub fn retrain_totals(&self) -> (u64, u64, u64) {
        self.shards.iter().fold((0, 0, 0), |acc, shard| {
            let (s, c, x) = shard.retrain_totals();
            (acc.0 + s, acc.1 + c, acc.2 + x)
        })
    }

    /// Retrain jobs currently in flight across all shards.
    pub fn retrains_in_flight(&self) -> usize {
        self.shards
            .iter()
            .map(FleetEngine::retrains_in_flight)
            .sum()
    }

    /// The routing function.
    pub fn router(&self) -> &ShardRouter {
        &self.router
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Registered users across all shards.
    pub fn len(&self) -> usize {
        self.owner.len()
    }

    /// Whether no users are registered.
    pub fn is_empty(&self) -> bool {
        self.owner.is_empty()
    }

    /// Resident pipelines across all shards.
    pub fn resident_count(&self) -> usize {
        self.shards.iter().map(FleetEngine::resident_count).sum()
    }

    /// Lifetime count of completed cross-shard migrations.
    pub fn migrations(&self) -> u64 {
        self.migrations
    }

    /// The shard currently owning `id` (`None` for unregistered users).
    /// Equal to [`ShardRouter::shard_of`] unless the user was explicitly
    /// migrated.
    pub fn shard_of(&self, id: UserId) -> Option<usize> {
        self.owner.get(&id).copied()
    }

    /// Borrows one shard's engine (e.g. for counters).
    pub fn shard(&self, index: usize) -> &FleetEngine {
        &self.shards[index]
    }

    /// Mutably borrows one shard's engine (e.g. to rehydrate or inspect a
    /// pipeline in place). Cross-shard invariants are the caller's
    /// responsibility — prefer the fleet-level API.
    pub fn shard_mut(&mut self, index: usize) -> &mut FleetEngine {
        &mut self.shards[index]
    }

    /// A cloneable handle on the shared snapshot store (operational
    /// tooling; every shard already holds one).
    pub fn store(&self) -> SharedSnapshotStore {
        self.store.clone()
    }

    /// Registers a user's pipeline on their router-assigned home shard.
    /// Returns the shard index.
    ///
    /// # Errors
    ///
    /// As [`FleetEngine::register`].
    pub fn register(&mut self, id: UserId, pipeline: SmarterYou) -> Result<usize, CoreError> {
        if self.owner.contains_key(&id) {
            return Err(CoreError::AlreadyRegistered(id));
        }
        let shard = self.router.shard_of(id);
        self.shards[shard].register(id, pipeline)?;
        self.owner.insert(id, shard);
        Ok(shard)
    }

    /// Registers a user whose snapshot already lives in the shared store,
    /// parked on their home shard (claiming their ownership epoch). The
    /// cheap path for enrolling an engine with known-but-idle users.
    ///
    /// # Errors
    ///
    /// As [`FleetEngine::register_parked`].
    pub fn register_parked(
        &mut self,
        id: UserId,
        server: Arc<dyn TrainingHandle>,
    ) -> Result<usize, CoreError> {
        if self.owner.contains_key(&id) {
            return Err(CoreError::AlreadyRegistered(id));
        }
        let shard = self.router.shard_of(id);
        self.shards[shard].register_parked(id, server)?;
        self.owner.insert(id, shard);
        Ok(shard)
    }

    /// Queues one window on the user's owning shard (rehydrating their
    /// pipeline from the shared store if parked).
    ///
    /// # Errors
    ///
    /// As [`FleetEngine::submit`].
    pub fn submit(&mut self, id: UserId, window: DualDeviceWindow) -> Result<(), CoreError> {
        let shard = *self.owner.get(&id).ok_or(CoreError::UnknownUser(id))?;
        self.shards[shard].submit(id, window)
    }

    /// Queues a stream of windows on the user's owning shard, preserving
    /// order.
    ///
    /// # Errors
    ///
    /// As [`FleetEngine::submit_many`].
    pub fn submit_many(
        &mut self,
        id: UserId,
        windows: impl IntoIterator<Item = DualDeviceWindow>,
    ) -> Result<(), CoreError> {
        let shard = *self.owner.get(&id).ok_or(CoreError::UnknownUser(id))?;
        self.shards[shard].submit_many(id, windows)
    }

    /// Batched enrollment across the fleet: groups `batch` by owning
    /// shard and runs one [`FleetEngine::enroll_many`] per shard, so each
    /// shard builds one shared negative-Gram workspace for its whole
    /// group (shard order, preserving `batch` order within a shard).
    /// Returns the total number of users enrolled.
    ///
    /// # Errors
    ///
    /// [`CoreError::UnknownUser`] if any user is unowned (checked before
    /// any shard enrolls); per-shard failures abort the remaining shards.
    pub fn enroll_many(
        &mut self,
        batch: Vec<EnrollmentEntry>,
        rng: &mut StdRng,
    ) -> Result<usize, CoreError> {
        let mut per_shard: Vec<Vec<EnrollmentEntry>> =
            (0..self.shards.len()).map(|_| Vec::new()).collect();
        for (id, buffers) in batch {
            let shard = *self.owner.get(&id).ok_or(CoreError::UnknownUser(id))?;
            per_shard[shard].push((id, buffers));
        }
        let mut enrolled = 0;
        for (shard, group) in per_shard.into_iter().enumerate() {
            if group.is_empty() {
                continue;
            }
            enrolled += self.shards[shard].enroll_many(group, rng)?;
        }
        Ok(enrolled)
    }

    /// Ticks every shard concurrently (one [`FleetEngine::tick`] each; the
    /// nested per-pipeline maps split the machine's thread budget across
    /// the shard workers, so total concurrency stays ≈ the core count —
    /// see [`crate::parallel`]). Returns one report per shard,
    /// index-aligned with the shard array.
    ///
    /// With ingest enabled, each shard's tick first drains its own queue
    /// (windows score on this very tick). Drained windows whose user was
    /// [migrated](ShardedFleet::migrate) away from their home shard are
    /// then re-delivered to the current owning shard — counted in
    /// [`TickReport::ingest_forwarded`] on the *home* shard's report —
    /// and score on the owner's next tick. A window is never scored on a
    /// stale shard; the only drop path is a user no shard knows, reported
    /// as a typed [`CoreError::UnknownUser`] in
    /// [`TickReport::ingest_errors`].
    pub fn tick(&mut self) -> Vec<TickReport> {
        let mut reports = parallel_map_mut(&mut self.shards, FleetEngine::tick);
        for report in &mut reports {
            let misrouted = report.take_misrouted();
            if misrouted.is_empty() {
                continue;
            }
            let mut forwarded = 0;
            for (id, window) in misrouted {
                let Some(&owner) = self.owner.get(&id) else {
                    report.push_ingest_error(id, CoreError::UnknownUser(id));
                    continue;
                };
                forwarded += 1;
                // A failed rehydration stashes the window on the owner's
                // parked entry — retained, delivered at the next
                // successful rehydration — so the error is informational.
                if let Err(e) = self.shards[owner].deliver_ingest(id, window) {
                    report.push_ingest_error(id, e);
                }
            }
            report.note_forwarded(forwarded);
        }
        reports
    }

    /// Moves a user to `target` shard: fenced evict on the source
    /// ([`FleetEngine::release`]), epoch claim + parked adoption on the
    /// target, undelivered queued windows carried over. No-op when the
    /// user already lives on `target`. The user's pipeline stays parked
    /// until their next submit on the target shard (lazy rehydration).
    ///
    /// # Errors
    ///
    /// [`CoreError::UnknownUser`] for unregistered users;
    /// [`CoreError::InvalidConfig`] for an out-of-range target;
    /// [`CoreError::Persist`] when the source save or the target's epoch
    /// claim fails — the user then stays on their current shard. Neither
    /// trained state nor queued windows are ever lost: once the handoff
    /// has committed, carried windows that cannot be re-queued right away
    /// (the target store failing a rehydration) are stashed on the parked
    /// entry and delivered at the user's next successful rehydration, and
    /// the migration still reports success.
    ///
    /// # Panics
    ///
    /// Panics if, after a failed target adoption, the source store cannot
    /// re-claim the user either (two consecutive epoch-claim failures on
    /// the same shared store) — continuing would leave the user registered
    /// nowhere while the fleet still routes for them.
    pub fn migrate(&mut self, id: UserId, target: usize) -> Result<(), CoreError> {
        let source = *self.owner.get(&id).ok_or(CoreError::UnknownUser(id))?;
        if target >= self.shards.len() {
            return Err(CoreError::InvalidConfig(format!(
                "target shard {target} out of range ({} shards)",
                self.shards.len()
            )));
        }
        if source == target {
            return Ok(());
        }
        // The source's held epoch is what the store will read after its
        // fenced release save — the target adopts with a CAS against it,
        // so an interloper (another process sharing the store) claiming
        // the user between release and adoption surfaces as a typed
        // `StaleEpoch` instead of silently fencing that claimant out.
        let source_epoch = self.shards[source]
            .epoch_of(id)
            .expect("owner map and shard registration agree");
        let (windows, server) = self.shards[source].release(id)?;
        // From here the user is registered nowhere; adopt on the target
        // (or, failing that, re-adopt on the source) before returning.
        if let Err(adopt_error) =
            self.shards[target].register_parked_at(id, server.clone(), source_epoch)
        {
            self.shards[source]
                .register_parked(id, server)
                .expect("re-claiming a just-released user on its own shard cannot fail twice");
            self.shards[source].stash_windows(id, windows);
            return Err(adopt_error);
        }
        self.owner.insert(id, target);
        self.migrations += 1;
        if !windows.is_empty() {
            // Re-queue the carried windows on the new owner — normally the
            // pipeline rehydrates immediately and they score on the next
            // tick. If the store cannot rehydrate right now, the migration
            // has already committed, so the windows are stashed for the
            // next successful rehydration rather than dropped (and rather
            // than reporting a half-done migration as failed).
            match self.shards[target].rehydrate(id) {
                Ok(()) => self.shards[target]
                    .submit_many(id, windows)
                    .expect("submitting to a resident pipeline cannot fail"),
                Err(_) => self.shards[target].stash_windows(id, windows),
            }
        }
        Ok(())
    }
}

impl Drop for ShardedFleet {
    fn drop(&mut self) {
        // Wake any producer parked on a full queue: the fleet that would
        // have drained it is going away, so they get a typed `Closed`
        // error instead of blocking forever.
        if let Some(ingest) = &self.ingest {
            ingest.close();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn router_is_a_pure_stable_function() {
        let router = ShardRouter::new(4);
        for id in 0..1000 {
            let shard = router.shard_of(UserId(id));
            assert!(shard < 4);
            assert_eq!(shard, ShardRouter::new(4).shard_of(UserId(id)));
        }
    }

    #[test]
    fn router_spreads_dense_ids() {
        let router = ShardRouter::new(4);
        let mut counts = [0usize; 4];
        for id in 0..10_000 {
            counts[router.shard_of(UserId(id))] += 1;
        }
        for &c in &counts {
            assert!(
                (2_000..=3_000).contains(&c),
                "unbalanced routing: {counts:?}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_is_rejected() {
        ShardRouter::new(0);
    }
}
