//! The fleet's training service: retrain jobs leave the tick path.
//!
//! A retrain used to run synchronously inside [`FleetEngine::tick`]
//! (`SmarterYou::retrain` behind the [`TrainingHandle`] seam), stalling
//! every co-resident user's scoring for the duration of two KRR fits. This
//! module moves the fit onto a [`TrainingService`]: the pipeline *captures*
//! everything a retrain needs into a self-contained [`RetrainRequest`]
//! (positive windows, config, RNG state, negative epoch, fit caches), the
//! engine submits it at the tick boundary, workers execute it off-thread,
//! and the fitted [`RetrainOutput`] is applied back onto the pipeline at a
//! *later* tick boundary — the pipeline keeps scoring on its old model in
//! between.
//!
//! # Shared-workspace retrains
//!
//! Retrain jobs do **not** pay a fresh negative pass plus an O(n³) refit:
//! every job resolves its pinned [`NegativeEpoch`] through the service's
//! [`RetrainWorkspaceCache`], so the negative-Gram block is computed once
//! per epoch and each fit is one m×m closed-form solve. The request also
//! carries the pipeline's per-context positive-tail factor identity
//! ([`KrrTailState`]); when only a few buffer windows changed since the
//! previous fit, the Cholesky factor is slid with rank-1 updates instead of
//! refactored. The synchronous parity mode and inline retraining use the
//! same entry point, so deferred-vs-inline bit-parity is preserved.
//!
//! # Determinism
//!
//! [`execute`] is a pure function of its request: it rebuilds the
//! pipeline's RNG from the captured state, runs the same
//! [`TrainingHandle::train_authenticator_epoch_shared`] call inline
//! retraining would have run, and carries the post-training
//! RNG/epoch/cache/tail state back
//! in the output. A service in *synchronous* mode
//! ([`TrainingService::synchronous`]) runs submitted jobs in submission
//! order on the caller's thread during [`TrainingService::run_pending`], so
//! a deferred retrain applied at the same tick boundary is bit-identical
//! to the inline path (`tests/training_parity.rs` pins this). Worker-thread
//! mode trades that lockstep for tick latency: results land whenever they
//! finish, and only the *application* stays tick-aligned.
//!
//! # Cancellation
//!
//! Every job carries a [`CancelToken`](crate::parallel::CancelToken).
//! Cancellation and result delivery race through one atomic
//! compare-and-swap: a worker *commits* the token immediately before
//! pushing its result, so a job whose cancel won can never deliver — the
//! invariant eviction and migration rely on to abandon in-flight retrains
//! without ever applying a stale model (see `docs/training.md`).
//!
//! [`FleetEngine::tick`]: crate::engine::FleetEngine::tick
//! [`TrainingHandle`]: crate::server::TrainingHandle
//! [`TrainingHandle::train_authenticator_epoch_shared`]:
//!     crate::server::TrainingHandle::train_authenticator_epoch_shared

use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Condvar, Mutex};

use rand::rngs::StdRng;

use smarteryou_ml::{KrrFitCache, KrrTailState};

use crate::auth::Authenticator;
use crate::config::SystemConfig;
use crate::error::CoreError;
use crate::parallel::CancelToken;
use crate::server::{NegativeEpoch, RetrainWorkspaceCache, TrainingHandle};

/// Identifies one submitted retrain job within its [`TrainingService`].
/// Monotonic per service; never reused.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct JobId(pub u64);

/// Everything a retrain needs, captured from the pipeline at trigger time.
/// Self-contained by construction: executing the request must not read any
/// further pipeline state, so the job can run on another thread while the
/// pipeline keeps scoring (and mutating its buffers) on the old model.
#[derive(Debug, Clone)]
pub struct RetrainRequest {
    /// Per-context positive windows (a clone of the pipeline's rolling
    /// `recent` buffers at trigger time).
    pub(crate) positives: [Vec<Vec<f64>>; 2],
    /// The pipeline's system configuration.
    pub(crate) cfg: SystemConfig,
    /// RNG state at trigger time. Scoring consumes no randomness, so this
    /// is still the pipeline's live state when the job executes — inline
    /// retraining would have drawn from exactly this point.
    pub(crate) rng_state: [u64; 4],
    /// The pipeline's negative epoch (redraw is keyed off the server's
    /// pool stamp, same as inline).
    pub(crate) negative_epoch: Option<NegativeEpoch>,
    /// Per-context KRR fit caches. Caches never change model bits, so a
    /// request rebuilt with cold caches (e.g. after evict/restore) still
    /// produces a bit-identical model.
    pub(crate) fit_caches: [KrrFitCache; 2],
    /// Per-context positive-tail factor identity from the pipeline's
    /// previous fit: lets the job slide the cached Cholesky factor when
    /// only a few buffer windows changed. Purely an accelerator — a
    /// request rebuilt with cold tails still produces an
    /// equivalent-to-epsilon model via the full closed-form refit.
    pub(crate) retrain_tails: [Option<KrrTailState>; 2],
    /// Pipeline day at trigger time — the timestamp the eventual
    /// `Retrained` event carries.
    pub(crate) day: f64,
}

/// The fitted model plus the post-training pipeline state a completed job
/// hands back: applying an output installs exactly what inline retraining
/// would have left behind.
#[derive(Debug)]
pub struct RetrainOutput {
    pub(crate) authenticator: Authenticator,
    pub(crate) rng_state: [u64; 4],
    pub(crate) negative_epoch: Option<NegativeEpoch>,
    pub(crate) fit_caches: [KrrFitCache; 2],
    pub(crate) retrain_tails: [Option<KrrTailState>; 2],
    pub(crate) day: f64,
}

/// Executes one retrain request against a training handle. Pure in the
/// request: same request + same handle pool state → bit-identical output,
/// on any thread. Builds its shared workspace into a throwaway cache —
/// callers executing more than one job against the same epoch should use
/// [`execute_shared`] with a long-lived [`RetrainWorkspaceCache`] (the
/// service's workers do).
///
/// # Errors
///
/// Propagates training failures from the handle.
pub fn execute(
    handle: &Arc<dyn TrainingHandle>,
    request: RetrainRequest,
) -> Result<RetrainOutput, CoreError> {
    execute_shared(handle, request, &RetrainWorkspaceCache::new())
}

/// [`execute`] against a caller-owned [`RetrainWorkspaceCache`], so the
/// per-epoch negative-Gram block is built once and reused across jobs. The
/// cache never changes results — it only decides who pays the workspace
/// construction cost.
///
/// # Errors
///
/// Propagates training failures from the handle.
pub fn execute_shared(
    handle: &Arc<dyn TrainingHandle>,
    request: RetrainRequest,
    ws_cache: &RetrainWorkspaceCache,
) -> Result<RetrainOutput, CoreError> {
    let RetrainRequest {
        positives,
        cfg,
        rng_state,
        mut negative_epoch,
        mut fit_caches,
        mut retrain_tails,
        day,
    } = request;
    let mut rng = StdRng::from_state(rng_state);
    let authenticator = handle.train_authenticator_epoch_shared(
        &positives,
        &cfg,
        &mut rng,
        &mut negative_epoch,
        &mut fit_caches,
        &mut retrain_tails,
        ws_cache,
    )?;
    Ok(RetrainOutput {
        authenticator,
        rng_state: rng.state(),
        negative_epoch,
        fit_caches,
        retrain_tails,
        day,
    })
}

/// One queued job: the request plus the handle to execute it against and
/// the token deciding the cancel/deliver race.
struct Job {
    id: JobId,
    token: CancelToken,
    handle: Arc<dyn TrainingHandle>,
    request: RetrainRequest,
}

/// Worker-facing queue state.
struct JobQueue {
    jobs: VecDeque<Job>,
    /// Set by `Drop`: workers drain remaining jobs, then exit.
    closed: bool,
}

/// State shared between the service facade and its workers.
struct Shared {
    queue: Mutex<JobQueue>,
    available: Condvar,
    /// Completed results awaiting [`TrainingService::collect_ready`].
    /// Push order = completion order (= submission order in sync mode).
    ready: Mutex<Vec<(JobId, Result<RetrainOutput, CoreError>)>>,
    /// Tokens of jobs submitted but not yet finished or canceled, keyed by
    /// job id — the cancel entry point.
    tokens: Mutex<HashMap<JobId, CancelToken>>,
    /// Per-epoch shared negative-Gram workspaces, reused across every job
    /// the service executes (worker or synchronous mode alike).
    ws_cache: RetrainWorkspaceCache,
}

impl Shared {
    /// Runs one job to completion: skip if canceled, otherwise execute and
    /// deliver iff the commit beats any concurrent cancel.
    fn run_job(&self, job: Job) {
        let Job {
            id,
            token,
            handle,
            request,
        } = job;
        if !token.is_canceled() {
            let result = execute_shared(&handle, request, &self.ws_cache);
            if token.try_commit() {
                self.ready
                    .lock()
                    .expect("ready queue poisoned")
                    .push((id, result));
            }
        }
        self.tokens.lock().expect("token map poisoned").remove(&id);
    }
}

/// Accepts retrain jobs and returns fitted models asynchronously, with
/// per-job cancellation. Two modes:
///
/// - **Synchronous** ([`TrainingService::synchronous`]): no workers; jobs
///   run in submission order on the caller's thread during
///   [`TrainingService::run_pending`]. Deterministic — the mode the parity
///   suites pin against inline retraining.
/// - **Worker threads** ([`TrainingService::with_workers`]): jobs run on a
///   pool behind a condvar'd queue; [`TrainingService::run_pending`] is a
///   no-op and results land in [`TrainingService::collect_ready`] whenever
///   they finish.
///
/// All methods take `&self`: the service is shared-nothing from the
/// caller's perspective, with interior synchronization.
pub struct TrainingService {
    shared: Arc<Shared>,
    workers: Vec<std::thread::JoinHandle<()>>,
    next_job: std::sync::atomic::AtomicU64,
}

impl std::fmt::Debug for TrainingService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TrainingService")
            .field("workers", &self.workers.len())
            .field("in_flight", &self.in_flight())
            .finish()
    }
}

impl TrainingService {
    /// A deterministic service with no worker threads: submitted jobs wait
    /// for [`TrainingService::run_pending`] and execute in submission order
    /// on the calling thread.
    #[must_use]
    pub fn synchronous() -> Self {
        Self::build(0)
    }

    /// A service running jobs on `workers` background threads.
    ///
    /// # Panics
    ///
    /// Panics if `workers` is zero (use
    /// [`TrainingService::synchronous`] for the deterministic mode).
    #[must_use]
    pub fn with_workers(workers: usize) -> Self {
        assert!(workers > 0, "worker mode needs at least one thread");
        Self::build(workers)
    }

    fn build(workers: usize) -> Self {
        let shared = Arc::new(Shared {
            queue: Mutex::new(JobQueue {
                jobs: VecDeque::new(),
                closed: false,
            }),
            available: Condvar::new(),
            ready: Mutex::new(Vec::new()),
            tokens: Mutex::new(HashMap::new()),
            ws_cache: RetrainWorkspaceCache::new(),
        });
        let workers = (0..workers)
            .map(|k| {
                let shared = shared.clone();
                std::thread::Builder::new()
                    .name(format!("smarteryou-train-{k}"))
                    .spawn(move || loop {
                        let job = {
                            let mut queue = shared.queue.lock().expect("job queue poisoned");
                            loop {
                                if let Some(job) = queue.jobs.pop_front() {
                                    break job;
                                }
                                if queue.closed {
                                    return;
                                }
                                queue = shared.available.wait(queue).expect("job queue poisoned");
                            }
                        };
                        shared.run_job(job);
                    })
                    .expect("spawn training worker")
            })
            .collect();
        TrainingService {
            shared,
            workers,
            next_job: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// Whether this service runs in the deterministic no-worker mode.
    #[must_use]
    pub fn is_synchronous(&self) -> bool {
        self.workers.is_empty()
    }

    /// Queues a retrain job against `handle`; workers (or the next
    /// [`TrainingService::run_pending`] in sync mode) pick it up.
    pub fn submit(&self, handle: Arc<dyn TrainingHandle>, request: RetrainRequest) -> JobId {
        let id = JobId(
            self.next_job
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed),
        );
        let token = CancelToken::new();
        self.shared
            .tokens
            .lock()
            .expect("token map poisoned")
            .insert(id, token.clone());
        {
            let mut queue = self.shared.queue.lock().expect("job queue poisoned");
            queue.jobs.push_back(Job {
                id,
                token,
                handle,
                request,
            });
        }
        self.shared.available.notify_one();
        id
    }

    /// Cancels a job. Returns `true` iff the cancel won the race — the job
    /// will never deliver a result. `false` means the job already finished
    /// (its result may already sit in the ready queue, or have been
    /// collected) or was already canceled.
    pub fn cancel(&self, job: JobId) -> bool {
        match self
            .shared
            .tokens
            .lock()
            .expect("token map poisoned")
            .remove(&job)
        {
            Some(token) => token.cancel(),
            None => false,
        }
    }

    /// Synchronous mode's execution step: runs every queued job, in
    /// submission order, on the calling thread. No-op in worker mode (the
    /// pool is already on it).
    pub fn run_pending(&self) {
        if !self.is_synchronous() {
            return;
        }
        loop {
            let job = {
                let mut queue = self.shared.queue.lock().expect("job queue poisoned");
                queue.jobs.pop_front()
            };
            match job {
                Some(job) => self.shared.run_job(job),
                None => break,
            }
        }
    }

    /// Drains completed jobs, in completion order. Canceled jobs never
    /// appear here.
    #[must_use]
    pub fn collect_ready(&self) -> Vec<(JobId, Result<RetrainOutput, CoreError>)> {
        std::mem::take(&mut *self.shared.ready.lock().expect("ready queue poisoned"))
    }

    /// Jobs submitted but not yet finished or canceled. Exact in sync mode
    /// and at quiescence; a moving target while workers are mid-job.
    #[must_use]
    pub fn in_flight(&self) -> usize {
        self.shared.tokens.lock().expect("token map poisoned").len()
    }
}

impl Drop for TrainingService {
    fn drop(&mut self) {
        {
            let mut queue = self.shared.queue.lock().expect("job queue poisoned");
            queue.closed = true;
        }
        self.shared.available.notify_all();
        for worker in self.workers.drain(..) {
            // A worker that panicked already surfaced its panic where the
            // result was awaited; don't double-panic in drop.
            let _ = worker.join();
        }
    }
}
