//! Tick result types and aggregation helpers for the fleet engine.
//!
//! The counters a [`TickReport`] aggregates are produced by the planned
//! batch scoring path — cached per-window feature extraction
//! ([`crate::WindowFeatures`]) followed by grouped per-context matrix
//! scoring — and are bit-identical to what sequential
//! [`SmarterYou::process_window`](crate::SmarterYou::process_window) calls
//! would report (see `tests/batch_parity.rs`).

use smarteryou_sensors::{DualDeviceWindow, UserId};

use crate::persist::PersistError;
use crate::pipeline::ProcessOutcome;
use crate::response::ResponseAction;
use crate::CoreError;

/// One user's outcomes from a tick, in their submission order.
#[derive(Debug, Clone, PartialEq)]
pub struct UserOutcomes {
    /// The user the outcomes belong to.
    pub user: UserId,
    /// One outcome per queued window, in submission order.
    pub outcomes: Vec<ProcessOutcome>,
}

/// Everything a [`FleetEngine::tick`](crate::engine::FleetEngine::tick)
/// scored, grouped per user in registration order, plus aggregate counters
/// for monitoring and the throughput benchmarks.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TickReport {
    users: Vec<UserOutcomes>,
    errors: Vec<(UserId, CoreError)>,
    windows: usize,
    enrolling: usize,
    accepts: usize,
    rejections: usize,
    locks: usize,
    retrains: usize,
    evictions: usize,
    rehydrations: usize,
    resident: usize,
    scanned: usize,
    eviction_errors: Vec<(UserId, PersistError)>,
    ingested: usize,
    ingest_forwarded: usize,
    ingest_errors: Vec<(UserId, CoreError)>,
    misrouted: Vec<(UserId, DualDeviceWindow)>,
    retrains_started: usize,
    retrains_completed: usize,
    retrains_canceled: usize,
    retrains_in_flight: usize,
}

impl TickReport {
    /// Builds a report, computing the aggregate counters in one pass.
    pub(crate) fn new(users: Vec<UserOutcomes>, errors: Vec<(UserId, CoreError)>) -> Self {
        let mut report = TickReport {
            users,
            errors,
            ..TickReport::default()
        };
        for user in &report.users {
            for outcome in &user.outcomes {
                report.windows += 1;
                match outcome {
                    ProcessOutcome::Enrolling { .. } => report.enrolling += 1,
                    ProcessOutcome::Decision {
                        decision,
                        action,
                        retrained,
                    } => {
                        if decision.accepted {
                            report.accepts += 1;
                        } else {
                            report.rejections += 1;
                        }
                        if *action == ResponseAction::Lock {
                            report.locks += 1;
                        }
                        if *retrained {
                            report.retrains += 1;
                        }
                    }
                }
            }
        }
        report
    }

    /// Records the tick's fleet-residency stats (eviction pass results and
    /// rehydrations since the previous tick).
    pub(crate) fn with_fleet_state(
        mut self,
        evictions: usize,
        rehydrations: usize,
        resident: usize,
        scanned: usize,
        eviction_errors: Vec<(UserId, PersistError)>,
    ) -> Self {
        self.evictions = evictions;
        self.rehydrations = rehydrations;
        self.resident = resident;
        self.scanned = scanned;
        self.eviction_errors = eviction_errors;
        self
    }

    /// Records the tick's ingest-drain results.
    pub(crate) fn with_ingest(
        mut self,
        ingested: usize,
        misrouted: Vec<(UserId, DualDeviceWindow)>,
        ingest_errors: Vec<(UserId, CoreError)>,
    ) -> Self {
        self.ingested = ingested;
        self.misrouted = misrouted;
        self.ingest_errors = ingest_errors;
        self
    }

    /// Records the tick's training-cycle results (deferred-retrain jobs).
    pub(crate) fn with_training(
        mut self,
        started: usize,
        completed: usize,
        canceled: usize,
        in_flight: usize,
    ) -> Self {
        self.retrains_started = started;
        self.retrains_completed = completed;
        self.retrains_canceled = canceled;
        self.retrains_in_flight = in_flight;
        self
    }

    /// Takes the misrouted windows out of the report — the sharded fleet's
    /// tick consumes them to re-deliver to the owning shard.
    pub(crate) fn take_misrouted(&mut self) -> Vec<(UserId, DualDeviceWindow)> {
        std::mem::take(&mut self.misrouted)
    }

    /// Appends an ingest-delivery error discovered after the shard tick
    /// (fleet-level forwarding).
    pub(crate) fn push_ingest_error(&mut self, id: UserId, error: CoreError) {
        self.ingest_errors.push((id, error));
    }

    /// Records how many of this shard's misrouted windows the fleet
    /// re-delivered to their owning shards.
    pub(crate) fn note_forwarded(&mut self, forwarded: usize) {
        self.ingest_forwarded = forwarded;
    }

    /// Per-user outcomes, in engine registration order.
    pub fn users(&self) -> &[UserOutcomes] {
        &self.users
    }

    /// Per-user pipeline *scoring* failures this tick. A failing user's
    /// queued windows were consumed without producing outcomes; all other
    /// users are unaffected. Snapshot-save failures from the eviction pass
    /// are **not** here — they never invalidate scored outcomes — see
    /// [`TickReport::eviction_errors`].
    pub fn errors(&self) -> &[(UserId, CoreError)] {
        &self.errors
    }

    /// Snapshot-save failures from this tick's eviction pass. Each listed
    /// user's pipeline stayed resident (state is never dropped unsaved) and
    /// their already-scored outcomes remain valid; the engine simply runs
    /// over capacity until a later save succeeds.
    pub fn eviction_errors(&self) -> &[(UserId, PersistError)] {
        &self.eviction_errors
    }

    /// Total windows processed this tick (enrolling + authenticated).
    pub fn windows_scored(&self) -> usize {
        self.windows
    }

    /// Windows that were buffered for enrollment.
    pub fn enrolling(&self) -> usize {
        self.enrolling
    }

    /// Authenticated windows attributed to the legitimate owner.
    pub fn accepts(&self) -> usize {
        self.accepts
    }

    /// Authenticated windows rejected as impostor behaviour.
    pub fn rejections(&self) -> usize {
        self.rejections
    }

    /// Windows whose response action locked (or kept locked) the device.
    pub fn locks(&self) -> usize {
        self.locks
    }

    /// Automatic retrains triggered this tick.
    pub fn retrains(&self) -> usize {
        self.retrains
    }

    /// Pipelines snapshotted out of memory by this tick's eviction pass
    /// (always zero when eviction is disabled).
    pub fn evictions(&self) -> usize {
        self.evictions
    }

    /// Pipelines rehydrated from the snapshot store since the previous
    /// tick (lazy rehydration happens at submit time).
    pub fn rehydrations(&self) -> usize {
        self.rehydrations
    }

    /// Pipelines resident in memory after this tick's eviction pass.
    pub fn resident_pipelines(&self) -> usize {
        self.resident
    }

    /// Slots the tick actually walked — the O(resident) contract made
    /// observable: this tracks the resident count at tick start, never the
    /// registered-user count, however many users are parked.
    pub fn scanned_slots(&self) -> usize {
        self.scanned
    }

    /// Windows this tick drained from the attached ingest queue and
    /// retained for this engine's users (delivered into an inbox — and
    /// scored this tick — or, on a failed rehydration, stashed on the
    /// parked entry). Zero when no queue is attached.
    pub fn ingested(&self) -> usize {
        self.ingested
    }

    /// Misrouted windows (see [`TickReport::misrouted`]) the fleet
    /// re-delivered to the user's current owning shard after this shard's
    /// tick — they score on the owner's next tick. Only ever nonzero on
    /// reports returned by
    /// [`ShardedFleet::tick`](crate::engine::ShardedFleet::tick).
    pub fn ingest_forwarded(&self) -> usize {
        self.ingest_forwarded
    }

    /// Ingest deliveries that hit a typed failure this tick: a rehydration
    /// failure (the window is stashed on the parked entry, not lost) or —
    /// at fleet level — a window for a user no shard knows
    /// ([`CoreError::UnknownUser`]; the only path that drops a window, and
    /// it is reported, never silent).
    pub fn ingest_errors(&self) -> &[(UserId, CoreError)] {
        &self.ingest_errors
    }

    /// Deferred-retrain jobs this tick's training cycle submitted to the
    /// attached [`TrainingService`](crate::engine::TrainingService) —
    /// freshly triggered this tick, or pending requests carried in by
    /// rehydration/migration. Inline-mode pipelines never appear here (see
    /// [`TickReport::retrains`] for trigger counts in either mode).
    pub fn retrains_started(&self) -> usize {
        self.retrains_started
    }

    /// Deferred-retrain jobs whose fitted model was applied at this tick's
    /// boundary.
    pub fn retrains_completed(&self) -> usize {
        self.retrains_completed
    }

    /// Deferred-retrain jobs abandoned since the previous report: canceled
    /// by release/eviction/migration of their user, or failed in training
    /// (those also appear in [`TickReport::errors`]). Every started job
    /// ends as exactly one of completed or canceled, so across a run
    /// `Σstarted == Σcompleted + Σcanceled + ` final
    /// [`retrains_in_flight`](TickReport::retrains_in_flight).
    pub fn retrains_canceled(&self) -> usize {
        self.retrains_canceled
    }

    /// Deferred-retrain jobs still in flight after this tick's training
    /// cycle (always zero with a
    /// [synchronous](crate::engine::TrainingService::synchronous) service).
    /// Cancels performed by this tick's *eviction pass* (which runs after
    /// the training cycle) are still counted in here; they surface in the
    /// next report's [`retrains_canceled`](TickReport::retrains_canceled).
    pub fn retrains_in_flight(&self) -> usize {
        self.retrains_in_flight
    }

    /// Drained windows whose user is not registered on this engine. On a
    /// standalone [`FleetEngine`](crate::engine::FleetEngine) they stay
    /// here for the caller to reroute; a
    /// [`ShardedFleet`](crate::engine::ShardedFleet) tick consumes them
    /// (re-delivering to the owning shard, see
    /// [`TickReport::ingest_forwarded`]), so fleet-returned reports show
    /// an empty slice.
    pub fn misrouted(&self) -> &[(UserId, DualDeviceWindow)] {
        &self.misrouted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::auth::AuthDecision;
    use smarteryou_sensors::UsageContext;

    fn decision(accepted: bool, action: ResponseAction, retrained: bool) -> ProcessOutcome {
        ProcessOutcome::Decision {
            decision: AuthDecision {
                accepted,
                confidence: if accepted { 0.9 } else { -0.4 },
                context: UsageContext::Stationary,
            },
            action,
            retrained,
        }
    }

    #[test]
    fn report_aggregates_counters() {
        let report = TickReport::new(
            vec![
                UserOutcomes {
                    user: UserId(0),
                    outcomes: vec![
                        ProcessOutcome::Enrolling {
                            stationary: 1,
                            moving: 0,
                        },
                        decision(true, ResponseAction::Allow, false),
                    ],
                },
                UserOutcomes {
                    user: UserId(1),
                    outcomes: vec![
                        decision(false, ResponseAction::Lock, false),
                        decision(true, ResponseAction::Allow, true),
                    ],
                },
            ],
            Vec::new(),
        );
        assert!(report.errors().is_empty());
        assert_eq!(report.windows_scored(), 4);
        assert_eq!(report.enrolling(), 1);
        assert_eq!(report.accepts(), 2);
        assert_eq!(report.rejections(), 1);
        assert_eq!(report.locks(), 1);
        assert_eq!(report.retrains(), 1);
        assert_eq!(report.users().len(), 2);
    }

    #[test]
    fn empty_report_is_all_zero() {
        let report = TickReport::new(Vec::new(), Vec::new());
        assert_eq!(report.windows_scored(), 0);
        assert_eq!(report.accepts(), 0);
        assert_eq!(report.rejections(), 0);
        assert!(report.errors().is_empty());
    }
}
