//! Bounded async ingestion in front of the per-shard tick loop.
//!
//! The paper's deployed setting is a continuous 50 Hz sensor stream per
//! device: windows arrive bursty and unevenly timed from many devices at
//! once, while each shard's tick loop wants to consume them in calm,
//! batch-sized gulps. The synchronous [`FleetEngine::submit`] path couples
//! the two — a producer must hold `&mut` access to the owning shard for
//! every window. This module decouples them:
//!
//! * [`IngestQueue`] — a bounded multi-producer ring. Any number of
//!   threads push concurrently; the owning shard's tick drains whatever
//!   has arrived. The bound is enforced by a typed
//!   [`BackpressurePolicy`]: [`Reject`](BackpressurePolicy::Reject) hands
//!   the window straight back with
//!   [`IngestError::QueueFull`], [`BlockingWait`](BackpressurePolicy::BlockingWait)
//!   parks the producer until the consumer frees space. Nothing is ever
//!   silently dropped.
//! * [`IngestRouter`] — the cloneable, thread-safe front door of a
//!   [`ShardedFleet`](crate::engine::ShardedFleet): routes each
//!   `(UserId, DualDeviceWindow)` through the fleet's pure
//!   [`ShardRouter`](crate::engine::ShardRouter) and pushes it onto the
//!   home shard's queue.
//!
//! ```text
//!   producer threads                         shard tick loop
//!   ───────────────────┐
//!    submit(id, w) ────┤   ┌─────────────────────┐
//!    submit(id, w) ────┼──▶│ IngestQueue (ring,  │──▶ drain_pending()
//!    submit(id, w) ────┤   │  bounded, MPSC)     │     └▶ inboxes ▶ tick
//!   ───────────────────┘   └─────────────────────┘
//!          ▲ QueueFull / blocked when full (BackpressurePolicy)
//! ```
//!
//! # Ordering and parity
//!
//! Per-user FIFO is preserved end to end: a user's windows always route to
//! the same queue (the router is a pure function of the id), the ring is
//! FIFO, and the drain delivers into the pipeline inbox in pop order. Since
//! every pipeline's outcome stream is a function of its own window
//! sequence alone, a fleet fed through these queues stays **bit-identical**
//! to direct sequential [`SmarterYou::process_window`](crate::SmarterYou::process_window)
//! calls — enforced, with eviction churn and mid-stream migrations layered
//! on top, by `tests/ingest_parity.rs`.
//!
//! Cross-user interleaving (which user's window pops first) is *not*
//! specified and may vary run to run under concurrent producers; it cannot
//! affect any decision, because pipelines share no scoring state.
//!
//! # Migration
//!
//! Queues are addressed by the *home* shard (the pure hash), while
//! ownership can diverge through explicit
//! [`ShardedFleet::migrate`](crate::engine::ShardedFleet::migrate) calls.
//! A drained window whose user is not registered on the draining shard is
//! reported back as *misrouted* and re-delivered by the fleet to the
//! current owner — never scored on the stale shard, never lost. See
//! `docs/ingestion.md` for the full walk-through.

use std::fmt;
use std::sync::{Arc, Condvar, Mutex};

use smarteryou_sensors::{DualDeviceWindow, UserId};

use crate::engine::ShardRouter;
use crate::error::IngestError;

#[cfg(doc)]
use crate::engine::FleetEngine;

/// What a full ingest queue does to the producer. The policy is fixed at
/// queue construction so every producer observes the same contract.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackpressurePolicy {
    /// A push against a full queue fails fast with
    /// [`IngestError::QueueFull`], handing the window back to the caller
    /// (who may retry after the next drain, shed the load, or buffer it
    /// upstream). The queue loses exactly the windows it reported —
    /// nothing more.
    Reject,
    /// A push against a full queue blocks the producer thread until the
    /// consumer drains space (or the queue is closed). No window handed to
    /// a `BlockingWait` queue is ever lost.
    BlockingWait,
}

/// The payload queue a [`FleetEngine`] drains: one `(user, window)` entry
/// per submitted sensor window.
pub type WindowQueue = IngestQueue<(UserId, DualDeviceWindow)>;

/// Ring state behind the queue's mutex.
struct RingState<T> {
    /// Fixed-capacity ring storage; `None` slots are free.
    buf: Box<[Option<T>]>,
    /// Index of the oldest entry.
    head: usize,
    /// Entries currently queued.
    len: usize,
    /// Once closed, pushes fail with [`IngestError::Closed`]; draining the
    /// remaining entries stays allowed.
    closed: bool,
}

impl<T> RingState<T> {
    fn enqueue(&mut self, item: T) {
        debug_assert!(self.len < self.buf.len());
        let tail = (self.head + self.len) % self.buf.len();
        debug_assert!(self.buf[tail].is_none());
        self.buf[tail] = Some(item);
        self.len += 1;
    }

    fn dequeue(&mut self) -> Option<T> {
        if self.len == 0 {
            return None;
        }
        let item = self.buf[self.head].take().expect("queued slot is filled");
        self.head = (self.head + 1) % self.buf.len();
        self.len -= 1;
        Some(item)
    }
}

/// A bounded multi-producer / single-drainer ring with a typed
/// backpressure policy. Producers share it behind an [`Arc`]; the owning
/// engine drains it at the start of every tick.
///
/// Generic over the payload so the backpressure invariants are
/// property-testable without building sensor windows
/// (`crates/core/tests/ingest_backpressure.rs`); the fleet instantiates it
/// as [`WindowQueue`].
pub struct IngestQueue<T> {
    state: Mutex<RingState<T>>,
    /// Signalled whenever space frees up or the queue closes, waking
    /// [`BlockingWait`](BackpressurePolicy::BlockingWait) producers.
    space: Condvar,
    capacity: usize,
    policy: BackpressurePolicy,
}

impl<T> IngestQueue<T> {
    /// A queue bounded at `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize, policy: BackpressurePolicy) -> Self {
        assert!(capacity > 0, "ingest queue capacity must be positive");
        IngestQueue {
            state: Mutex::new(RingState {
                buf: (0..capacity).map(|_| None).collect(),
                head: 0,
                len: 0,
                closed: false,
            }),
            space: Condvar::new(),
            capacity,
            policy,
        }
    }

    /// The fixed bound. [`IngestQueue::len`] never exceeds this.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The backpressure policy every producer observes.
    pub fn policy(&self) -> BackpressurePolicy {
        self.policy
    }

    /// Entries currently queued (a snapshot — concurrent producers may
    /// change it immediately).
    pub fn len(&self) -> usize {
        self.lock().len
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether [`IngestQueue::close`] has been called.
    pub fn is_closed(&self) -> bool {
        self.lock().closed
    }

    /// Enqueues one entry, honouring the backpressure policy. On failure
    /// the entry is handed back untouched alongside the typed error, so a
    /// rejected window is the *caller's* to retry or shed — the queue
    /// never swallows it.
    ///
    /// # Errors
    ///
    /// [`IngestError::QueueFull`] when the queue is at capacity under
    /// [`BackpressurePolicy::Reject`]; [`IngestError::Closed`] once
    /// [`IngestQueue::close`] has been called (a
    /// [`BlockingWait`](BackpressurePolicy::BlockingWait) producer parked
    /// on a full queue is woken with this error too).
    pub fn push(&self, item: T) -> Result<(), (T, IngestError)> {
        let mut state = self.lock();
        loop {
            if state.closed {
                return Err((item, IngestError::Closed));
            }
            if state.len < self.capacity {
                state.enqueue(item);
                return Ok(());
            }
            match self.policy {
                BackpressurePolicy::Reject => {
                    return Err((
                        item,
                        IngestError::QueueFull {
                            capacity: self.capacity,
                        },
                    ));
                }
                BackpressurePolicy::BlockingWait => {
                    state = self
                        .space
                        .wait(state)
                        .unwrap_or_else(|poisoned| poisoned.into_inner());
                }
            }
        }
    }

    /// Pops the oldest entry, freeing space for blocked producers. Allowed
    /// after [`IngestQueue::close`] — closing stops intake, not drainage.
    pub fn pop(&self) -> Option<T> {
        let mut state = self.lock();
        let item = state.dequeue();
        if item.is_some() {
            drop(state);
            self.space.notify_all();
        }
        item
    }

    /// Drains every entry present when the call acquired the lock, in FIFO
    /// order, then wakes blocked producers. Entries pushed while the drain
    /// is handing back its batch wait for the next drain — so one drain
    /// never exceeds `capacity` entries and a fast producer cannot trap
    /// the consumer in an endless pop loop.
    pub fn drain_pending(&self) -> Vec<T> {
        let mut state = self.lock();
        let count = state.len;
        let mut drained = Vec::with_capacity(count);
        for _ in 0..count {
            drained.push(state.dequeue().expect("len entries are queued"));
        }
        if count > 0 {
            drop(state);
            self.space.notify_all();
        }
        drained
    }

    /// Closes the queue: subsequent pushes fail with
    /// [`IngestError::Closed`] and every producer parked on a full queue
    /// is woken with the same error. Queued entries remain drainable.
    pub fn close(&self) {
        self.lock().closed = true;
        self.space.notify_all();
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, RingState<T>> {
        // A producer can only poison the mutex by panicking mid-push; the
        // ring mutates atomically per operation, so the state is still
        // consistent — keep draining rather than cascading the panic.
        self.state
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

impl<T> fmt::Debug for IngestQueue<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let state = self.lock();
        f.debug_struct("IngestQueue")
            .field("capacity", &self.capacity)
            .field("policy", &self.policy)
            .field("len", &state.len)
            .field("closed", &state.closed)
            .finish()
    }
}

/// A window the queue would not take, handed back to the producer with the
/// typed reason. Nothing about the window was consumed — it can be
/// resubmitted as-is after the next drain.
#[derive(Debug, Clone, PartialEq)]
pub struct RejectedWindow {
    /// The user the window was submitted for.
    pub user: UserId,
    /// The home shard whose queue was full (or closed).
    pub shard: usize,
    /// The window itself, returned untouched.
    pub window: DualDeviceWindow,
    /// Why the queue refused it.
    pub error: IngestError,
}

/// The cloneable, thread-safe submission front door of a sharded fleet:
/// routes each window through the fleet's pure [`ShardRouter`] and pushes
/// it onto the home shard's bounded [`IngestQueue`]. Obtain one from
/// [`ShardedFleet::enable_ingest`](crate::engine::ShardedFleet::enable_ingest)
/// and clone it freely into producer threads.
#[derive(Debug, Clone)]
pub struct IngestRouter {
    router: ShardRouter,
    queues: Arc<[Arc<WindowQueue>]>,
}

impl IngestRouter {
    /// Builds a router over one queue per shard. The fleet constructs this
    /// (and attaches the same queues to its shard engines).
    ///
    /// # Panics
    ///
    /// Panics if the queue count differs from the router's shard count.
    pub(crate) fn new(router: ShardRouter, queues: Vec<Arc<WindowQueue>>) -> Self {
        assert_eq!(
            router.num_shards(),
            queues.len(),
            "one ingest queue per shard"
        );
        IngestRouter {
            router,
            queues: queues.into(),
        }
    }

    /// Number of shards (and queues) routed over.
    pub fn num_shards(&self) -> usize {
        self.queues.len()
    }

    /// The home shard `id` routes to — a pure function of the id, never
    /// affected by migrations (see the module docs).
    pub fn shard_of(&self, id: UserId) -> usize {
        self.router.shard_of(id)
    }

    /// The backpressure policy of the underlying queues.
    pub fn policy(&self) -> BackpressurePolicy {
        self.queues[0].policy()
    }

    /// Per-queue bound.
    pub fn queue_capacity(&self) -> usize {
        self.queues[0].capacity()
    }

    /// Entries currently queued on one shard's queue.
    pub fn queue_len(&self, shard: usize) -> usize {
        self.queues[shard].len()
    }

    /// Entries currently queued across all shards.
    pub fn backlog(&self) -> usize {
        self.queues.iter().map(|q| q.len()).sum()
    }

    /// Submits one window for `id` onto its home shard's queue, honouring
    /// the backpressure policy. Thread-safe; callable from any number of
    /// producers concurrently. The fleet scores it on the tick that drains
    /// it (per-user FIFO preserved).
    ///
    /// # Errors
    ///
    /// [`RejectedWindow`] (boxed — it carries the full window back
    /// untouched), with [`IngestError::QueueFull`] under
    /// [`BackpressurePolicy::Reject`] or [`IngestError::Closed`] after the
    /// fleet shut the queues down. A
    /// [`BackpressurePolicy::BlockingWait`] router only ever fails with
    /// `Closed`.
    pub fn submit(&self, id: UserId, window: DualDeviceWindow) -> Result<(), Box<RejectedWindow>> {
        let shard = self.router.shard_of(id);
        self.queues[shard]
            .push((id, window))
            .map_err(|((user, window), error)| {
                Box::new(RejectedWindow {
                    user,
                    shard,
                    window,
                    error,
                })
            })
    }

    /// Closes every queue: blocked producers wake with
    /// [`IngestError::Closed`], new submissions fail, queued windows stay
    /// drainable by the fleet.
    pub fn close(&self) {
        for queue in self.queues.iter() {
            queue.close();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_is_fifo_and_bounded() {
        let queue: IngestQueue<u32> = IngestQueue::new(3, BackpressurePolicy::Reject);
        assert_eq!(queue.capacity(), 3);
        assert!(queue.is_empty());
        for i in 0..3 {
            queue.push(i).expect("space");
        }
        assert_eq!(queue.len(), 3);
        let (back, err) = queue.push(99).expect_err("full");
        assert_eq!(back, 99);
        assert_eq!(err, IngestError::QueueFull { capacity: 3 });
        assert_eq!(queue.pop(), Some(0));
        queue.push(3).expect("space freed");
        assert_eq!(queue.drain_pending(), vec![1, 2, 3]);
        assert!(queue.is_empty());
        assert_eq!(queue.pop(), None);
    }

    #[test]
    fn close_fails_pushes_but_keeps_entries_drainable() {
        let queue: IngestQueue<u32> = IngestQueue::new(4, BackpressurePolicy::Reject);
        queue.push(7).expect("space");
        queue.close();
        assert!(queue.is_closed());
        let (back, err) = queue.push(8).expect_err("closed");
        assert_eq!((back, err), (8, IngestError::Closed));
        assert_eq!(queue.drain_pending(), vec![7]);
    }

    #[test]
    fn blocking_wait_parks_until_space_frees() {
        let queue: Arc<IngestQueue<u32>> =
            Arc::new(IngestQueue::new(1, BackpressurePolicy::BlockingWait));
        queue.push(0).expect("space");
        let producer = {
            let queue = Arc::clone(&queue);
            std::thread::spawn(move || queue.push(1))
        };
        // The producer is (or is about to be) parked on the full ring.
        // Pop exactly once: FIFO hands back the pre-existing entry and
        // frees the space the parked push is waiting for — the producer's
        // own entry must stay queued for the final drain.
        assert_eq!(queue.pop(), Some(0));
        producer.join().expect("producer").expect("push succeeds");
        assert_eq!(queue.drain_pending(), vec![1]);
    }

    #[test]
    fn close_wakes_blocked_producers() {
        let queue: Arc<IngestQueue<u32>> =
            Arc::new(IngestQueue::new(1, BackpressurePolicy::BlockingWait));
        queue.push(0).expect("space");
        let producer = {
            let queue = Arc::clone(&queue);
            std::thread::spawn(move || queue.push(1))
        };
        // Give the producer a chance to park, then close under it.
        while !producer.is_finished() {
            queue.close();
            std::thread::yield_now();
        }
        let (back, err) = producer.join().expect("producer").expect_err("closed");
        assert_eq!((back, err), (1, IngestError::Closed));
        // The pre-close entry survived.
        assert_eq!(queue.drain_pending(), vec![0]);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_is_rejected() {
        IngestQueue::<u32>::new(0, BackpressurePolicy::Reject);
    }
}
