use serde::{Deserialize, Serialize};

use smarteryou_dsp::{magnitude_spectrum, spectral_peaks, SpectralPeaks};
use smarteryou_sensors::{DualDeviceWindow, SensorKind, SensorWindow};
use smarteryou_stats as stats;

/// The nine candidate statistical features of §V-C, computed per sensor
/// magnitude stream per window.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FeatureKind {
    /// Average value of the stream.
    Mean,
    /// Variance of the stream.
    Var,
    /// Maximum value.
    Max,
    /// Minimum value.
    Min,
    /// Range (max − min) — dropped by the correlation screening
    /// (redundant with `Var`, Table III).
    Range,
    /// Amplitude of the main spectral peak.
    Peak,
    /// Frequency of the main spectral peak.
    PeakFreq,
    /// Amplitude of the secondary spectral peak.
    Peak2,
    /// Frequency of the secondary spectral peak — dropped by the KS
    /// screening (indistinguishable across users, Figure 3).
    Peak2Freq,
}

impl FeatureKind {
    /// All nine candidates, in the paper's listing order.
    pub const ALL: [FeatureKind; 9] = [
        FeatureKind::Mean,
        FeatureKind::Var,
        FeatureKind::Max,
        FeatureKind::Min,
        FeatureKind::Range,
        FeatureKind::Peak,
        FeatureKind::PeakFreq,
        FeatureKind::Peak2,
        FeatureKind::Peak2Freq,
    ];

    /// Display name matching the paper's tables.
    pub fn name(&self) -> &'static str {
        match self {
            FeatureKind::Mean => "Mean",
            FeatureKind::Var => "Var",
            FeatureKind::Max => "Max",
            FeatureKind::Min => "Min",
            FeatureKind::Range => "Ran",
            FeatureKind::Peak => "Peak",
            FeatureKind::PeakFreq => "Peak f",
            FeatureKind::Peak2 => "Peak2",
            FeatureKind::Peak2Freq => "Peak2 f",
        }
    }

    /// Whether this is a time-domain feature (`SPᵗ` in Eq. 2).
    pub fn is_time_domain(&self) -> bool {
        matches!(
            self,
            FeatureKind::Mean
                | FeatureKind::Var
                | FeatureKind::Max
                | FeatureKind::Min
                | FeatureKind::Range
        )
    }
}

/// An ordered selection of features to extract per sensor stream.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FeatureSet {
    kinds: Vec<FeatureKind>,
}

impl FeatureSet {
    /// The deployed 7-feature set (Eq. 2): all nine candidates minus
    /// `Range` (redundant, Table III) and `Peak2 f` ("bad", Figure 3).
    pub fn paper_default() -> Self {
        FeatureSet {
            kinds: vec![
                FeatureKind::Mean,
                FeatureKind::Var,
                FeatureKind::Max,
                FeatureKind::Min,
                FeatureKind::Peak,
                FeatureKind::PeakFreq,
                FeatureKind::Peak2,
            ],
        }
    }

    /// All nine candidates — used by the selection studies (§V-C).
    pub fn all_candidates() -> Self {
        FeatureSet {
            kinds: FeatureKind::ALL.to_vec(),
        }
    }

    /// A custom selection.
    ///
    /// # Panics
    ///
    /// Panics if `kinds` is empty or contains duplicates.
    pub fn custom(kinds: Vec<FeatureKind>) -> Self {
        assert!(!kinds.is_empty(), "feature set must be non-empty");
        for (i, k) in kinds.iter().enumerate() {
            assert!(
                !kinds[..i].contains(k),
                "duplicate feature {k:?} in feature set"
            );
        }
        FeatureSet { kinds }
    }

    /// Features per sensor stream.
    pub fn len(&self) -> usize {
        self.kinds.len()
    }

    /// True when no features are selected (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.kinds.is_empty()
    }

    /// The selected kinds, in extraction order.
    pub fn kinds(&self) -> &[FeatureKind] {
        &self.kinds
    }

    /// Whether any selected feature needs the magnitude spectrum.
    pub fn needs_spectrum(&self) -> bool {
        self.kinds.iter().any(|k| !k.is_time_domain())
    }

    /// Extracts the features from one magnitude stream.
    ///
    /// Frequency features need at least 3 spectrum bins; degenerate windows
    /// yield zeros there rather than NaNs so downstream classifiers stay
    /// finite.
    pub fn extract(&self, magnitude: &[f64], sample_rate: f64) -> Vec<f64> {
        let summary = stats::Summary::from_slice(magnitude);
        let peaks = if self.needs_spectrum() {
            let spectrum = magnitude_spectrum(magnitude);
            spectral_peaks(&spectrum, sample_rate)
        } else {
            None
        };
        let mut out = Vec::with_capacity(self.kinds.len());
        self.extract_from_parts_into(&summary, peaks, &mut out);
        out
    }

    /// Appends the selected features to `out` from already-computed stream
    /// statistics and spectral peaks.
    ///
    /// This is the single feature-mapping kernel: both [`FeatureSet::extract`]
    /// and the cached per-window path
    /// ([`WindowFeatures`](crate::WindowFeatures)) go through it, which is
    /// what makes the two bit-identical.
    pub fn extract_from_parts_into(
        &self,
        summary: &stats::Summary,
        peaks: Option<SpectralPeaks>,
        out: &mut Vec<f64>,
    ) {
        out.extend(self.kinds.iter().map(|k| match k {
            FeatureKind::Mean => summary.mean,
            FeatureKind::Var => summary.variance,
            FeatureKind::Max => summary.max,
            FeatureKind::Min => summary.min,
            FeatureKind::Range => summary.range(),
            FeatureKind::Peak => peaks.map_or(0.0, |p| p.main_amplitude),
            FeatureKind::PeakFreq => peaks.map_or(0.0, |p| p.main_frequency),
            FeatureKind::Peak2 => peaks.map_or(0.0, |p| p.secondary_amplitude),
            FeatureKind::Peak2Freq => peaks.map_or(0.0, |p| p.secondary_frequency),
        }));
    }
}

/// Which devices contribute to the authentication feature vector — the
/// device ablation axis of Table VII and Figures 4/5.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DeviceSet {
    /// Smartphone sensors only (14 features with the default set).
    PhoneOnly,
    /// Smartwatch sensors only.
    WatchOnly,
    /// Both devices (28 features — Eq. 4).
    Combined,
}

impl DeviceSet {
    /// The three ablation configurations in the figures' legend order.
    pub const ALL: [DeviceSet; 3] = [
        DeviceSet::Combined,
        DeviceSet::PhoneOnly,
        DeviceSet::WatchOnly,
    ];

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            DeviceSet::PhoneOnly => "Smartphone",
            DeviceSet::WatchOnly => "Smartwatch",
            DeviceSet::Combined => "Combination",
        }
    }
}

/// Extracts authentication and context feature vectors from sensor windows
/// (Eqs. 1–4 of the paper).
///
/// # Example
///
/// ```
/// use smarteryou_core::{DeviceSet, FeatureExtractor};
/// use smarteryou_sensors::{Population, RawContext, TraceGenerator, WindowSpec};
///
/// let owner = Population::generate(1, 7).users()[0].clone();
/// let mut gen = TraceGenerator::new(owner, 1);
/// let window = gen.generate_windows(RawContext::MovingAround, WindowSpec::default(), 1)
///     .pop()
///     .unwrap();
///
/// let extractor = FeatureExtractor::paper_default(50.0);
/// let combined = extractor.auth_features(&window, DeviceSet::Combined);
/// assert_eq!(combined.len(), 28); // 7 features × 2 sensors × 2 devices
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FeatureExtractor {
    set: FeatureSet,
    sample_rate: f64,
}

impl FeatureExtractor {
    /// Extractor with the deployed 7-feature set.
    ///
    /// # Panics
    ///
    /// Panics if `sample_rate` is not positive.
    pub fn paper_default(sample_rate: f64) -> Self {
        FeatureExtractor::new(FeatureSet::paper_default(), sample_rate)
    }

    /// Extractor with a custom feature set.
    ///
    /// # Panics
    ///
    /// Panics if `sample_rate` is not positive.
    pub fn new(set: FeatureSet, sample_rate: f64) -> Self {
        assert!(sample_rate > 0.0, "sample rate must be positive");
        FeatureExtractor { set, sample_rate }
    }

    /// The per-stream feature selection.
    pub fn feature_set(&self) -> &FeatureSet {
        &self.set
    }

    /// Sampling rate used for frequency features.
    pub fn sample_rate(&self) -> f64 {
        self.sample_rate
    }

    /// Features of one sensor on one device — `SPᵢ(k)` of Eq. 1/2.
    pub fn sensor_features(&self, window: &SensorWindow, sensor: SensorKind) -> Vec<f64> {
        self.set
            .extract(&window.magnitude(sensor), self.sample_rate)
    }

    /// Features of one device — `SP(k)` of Eq. 3: accelerometer features
    /// followed by gyroscope features.
    pub fn device_features(&self, window: &SensorWindow) -> Vec<f64> {
        let mut out = self.sensor_features(window, SensorKind::Accelerometer);
        out.extend(self.sensor_features(window, SensorKind::Gyroscope));
        out
    }

    /// The authentication feature vector of Eq. 4 for the chosen device
    /// ablation: `[SP(k)]`, `[SW(k)]`, or `[SP(k), SW(k)]`.
    pub fn auth_features(&self, dual: &DualDeviceWindow, devices: DeviceSet) -> Vec<f64> {
        match devices {
            DeviceSet::PhoneOnly => self.device_features(&dual.phone),
            DeviceSet::WatchOnly => self.device_features(&dual.watch),
            DeviceSet::Combined => {
                let mut out = self.device_features(&dual.phone);
                out.extend(self.device_features(&dual.watch));
                out
            }
        }
    }

    /// The context feature vector (§V-E): the paper reuses the smartphone
    /// feature vector of Eq. 3 for user-agnostic context detection.
    pub fn context_features(&self, dual: &DualDeviceWindow) -> Vec<f64> {
        self.device_features(&dual.phone)
    }

    /// Number of features per device (`|SP(k)|`).
    pub fn features_per_device(&self) -> usize {
        2 * self.set.len()
    }

    /// Length of [`FeatureExtractor::auth_features`] output.
    pub fn auth_vector_len(&self, devices: DeviceSet) -> usize {
        match devices {
            DeviceSet::Combined => 2 * self.features_per_device(),
            _ => self.features_per_device(),
        }
    }

    /// Human-readable names of the authentication vector entries, e.g.
    /// `"phone.Acc.Mean"`, matching extraction order.
    pub fn feature_names(&self, devices: DeviceSet) -> Vec<String> {
        let per_device = |dev: &str| -> Vec<String> {
            let mut out = Vec::new();
            for sensor in [SensorKind::Accelerometer, SensorKind::Gyroscope] {
                for kind in self.set.kinds() {
                    out.push(format!("{dev}.{}.{}", sensor.name(), kind.name()));
                }
            }
            out
        };
        match devices {
            DeviceSet::PhoneOnly => per_device("phone"),
            DeviceSet::WatchOnly => per_device("watch"),
            DeviceSet::Combined => {
                let mut out = per_device("phone");
                out.extend(per_device("watch"));
                out
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smarteryou_sensors::{Population, RawContext, TraceGenerator, WindowSpec};

    fn sample_window() -> DualDeviceWindow {
        let owner = Population::generate(1, 3).users()[0].clone();
        let mut gen = TraceGenerator::new(owner, 5);
        gen.generate_windows(
            RawContext::MovingAround,
            WindowSpec::from_seconds(4.0, 50.0),
            1,
        )
        .pop()
        .unwrap()
    }

    #[test]
    fn paper_default_has_seven_features() {
        let set = FeatureSet::paper_default();
        assert_eq!(set.len(), 7);
        assert!(!set.kinds().contains(&FeatureKind::Range));
        assert!(!set.kinds().contains(&FeatureKind::Peak2Freq));
        assert!(!set.is_empty());
    }

    #[test]
    fn vector_lengths_match_the_paper() {
        // §V-F1: 7×2 = 14 for the phone, 7×2×2 = 28 combined.
        let e = FeatureExtractor::paper_default(50.0);
        assert_eq!(e.features_per_device(), 14);
        assert_eq!(e.auth_vector_len(DeviceSet::PhoneOnly), 14);
        assert_eq!(e.auth_vector_len(DeviceSet::Combined), 28);
        let w = sample_window();
        assert_eq!(e.auth_features(&w, DeviceSet::PhoneOnly).len(), 14);
        assert_eq!(e.auth_features(&w, DeviceSet::WatchOnly).len(), 14);
        assert_eq!(e.auth_features(&w, DeviceSet::Combined).len(), 28);
        assert_eq!(e.context_features(&w).len(), 14);
    }

    #[test]
    fn combined_vector_is_phone_then_watch() {
        let e = FeatureExtractor::paper_default(50.0);
        let w = sample_window();
        let combined = e.auth_features(&w, DeviceSet::Combined);
        let phone = e.auth_features(&w, DeviceSet::PhoneOnly);
        let watch = e.auth_features(&w, DeviceSet::WatchOnly);
        assert_eq!(&combined[..14], phone.as_slice());
        assert_eq!(&combined[14..], watch.as_slice());
    }

    #[test]
    fn features_are_finite_on_real_windows() {
        let e = FeatureExtractor::new(FeatureSet::all_candidates(), 50.0);
        let w = sample_window();
        for v in e.auth_features(&w, DeviceSet::Combined) {
            assert!(v.is_finite());
        }
    }

    #[test]
    fn known_signal_features() {
        // Constant magnitude stream: var 0, peak amplitudes ~0.
        let set = FeatureSet::all_candidates();
        let stream = vec![2.0; 100];
        let f = set.extract(&stream, 50.0);
        let by = |k: FeatureKind| f[FeatureKind::ALL.iter().position(|x| *x == k).unwrap()];
        assert_eq!(by(FeatureKind::Mean), 2.0);
        assert_eq!(by(FeatureKind::Var), 0.0);
        assert_eq!(by(FeatureKind::Max), 2.0);
        assert_eq!(by(FeatureKind::Min), 2.0);
        assert_eq!(by(FeatureKind::Range), 0.0);
        assert!(by(FeatureKind::Peak) < 1e-9);
    }

    #[test]
    fn peak_frequency_tracks_tone() {
        let set = FeatureSet::paper_default();
        let fs = 50.0;
        let stream: Vec<f64> = (0..300)
            .map(|i| 5.0 + (2.0 * std::f64::consts::PI * 2.5 * i as f64 / fs).sin())
            .collect();
        let f = set.extract(&stream, fs);
        let idx = set
            .kinds()
            .iter()
            .position(|k| *k == FeatureKind::PeakFreq)
            .unwrap();
        assert!((f[idx] - 2.5).abs() < 0.2, "peak f {}", f[idx]);
    }

    #[test]
    fn degenerate_window_yields_finite_features() {
        // A 2-sample window has a 2-bin spectrum — too short for peaks —
        // so the documented contract is: time-domain features are real
        // statistics, every frequency feature is exactly zero, and nothing
        // is NaN or infinite.
        let set = FeatureSet::paper_default();
        let f = set.extract(&[1.0, 2.0], 50.0);
        assert!(f.iter().all(|v| v.is_finite()), "non-finite feature: {f:?}");
        let by = |k: FeatureKind| f[set.kinds().iter().position(|x| *x == k).unwrap()];
        assert_eq!(by(FeatureKind::Mean), 1.5);
        assert_eq!(by(FeatureKind::Var), 0.5);
        assert_eq!(by(FeatureKind::Max), 2.0);
        assert_eq!(by(FeatureKind::Min), 1.0);
        assert_eq!(by(FeatureKind::Peak), 0.0);
        assert_eq!(by(FeatureKind::PeakFreq), 0.0);
        assert_eq!(by(FeatureKind::Peak2), 0.0);
    }

    #[test]
    fn feature_names_align_with_vector() {
        let e = FeatureExtractor::paper_default(50.0);
        let names = e.feature_names(DeviceSet::Combined);
        assert_eq!(names.len(), 28);
        assert_eq!(names[0], "phone.Acc.Mean");
        assert_eq!(names[14], "watch.Acc.Mean");
        assert!(names[7].starts_with("phone.Gyr"));
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn custom_set_rejects_duplicates() {
        FeatureSet::custom(vec![FeatureKind::Mean, FeatureKind::Mean]);
    }

    #[test]
    fn device_set_names() {
        assert_eq!(DeviceSet::Combined.name(), "Combination");
        assert_eq!(DeviceSet::ALL.len(), 3);
    }
}
