//! Zero-redundancy per-window feature extraction.
//!
//! The naive pipeline recomputes overlapping work three times per window:
//! the context detector extracts the phone feature vector
//! ([`FeatureExtractor::context_features`]), the authenticator extracts the
//! phone *and* watch vectors ([`FeatureExtractor::auth_features`]), and
//! every extraction rebuilds the magnitude streams, summaries, and spectra
//! from the raw axis samples — allocating on each step.
//!
//! [`WindowFeatures`] computes each device's per-sensor magnitude stream,
//! [`Summary`](smarteryou_stats::Summary), and magnitude spectrum **exactly
//! once** and serves both consumers from the result. [`FeatureScratch`]
//! carries the planned FFT ([`SpectrumPlan`]) for the current window length
//! plus all intermediate buffers, so a pipeline scoring a steady stream of
//! same-length windows performs no allocation and no transform planning in
//! the spectral kernels.
//!
//! Both paths funnel through the same kernels
//! ([`FeatureSet::extract_from_parts_into`](crate::FeatureSet::extract_from_parts_into),
//! [`SpectrumPlan::magnitude_into`]), so the cached vectors are
//! **bit-identical** to the naive ones — asserted by this module's tests and
//! relied on by the batch-parity suite.

use smarteryou_dsp::{spectral_peaks, SpectrumPlan, SpectrumScratch};
use smarteryou_sensors::{DualDeviceWindow, SensorKind, SensorWindow};
use smarteryou_stats as stats;

use crate::features::{DeviceSet, FeatureExtractor};

/// Reusable workspace for [`FeatureExtractor::window_features`]: the
/// spectrum plan for the current window length plus every intermediate
/// buffer the extraction touches.
///
/// Cloning yields an independent workspace (plans are plain precomputed
/// tables). The plan is rebuilt automatically if the window length changes,
/// so one scratch can serve mixed-length streams — it is simply fastest
/// when the length is stable, as in steady-state fleet scoring.
#[derive(Debug, Clone, Default)]
pub struct FeatureScratch {
    plan: Option<SpectrumPlan>,
    spectrum_scratch: SpectrumScratch,
    magnitude: Vec<f64>,
    spectrum: Vec<f64>,
}

impl FeatureScratch {
    /// Window length (in samples) the current spectrum plan was built for,
    /// or `None` when no window has been extracted yet. This is the plan
    /// key a pipeline snapshot records so a restored pipeline can re-plan
    /// its FFT before the first post-restore window arrives.
    pub fn planned_len(&self) -> Option<usize> {
        self.plan.as_ref().map(SpectrumPlan::len)
    }

    /// Ensures the spectrum plan covers `n`-sample windows, building it if
    /// missing or sized for a different length. Plans are pure precomputed
    /// tables, so warming one up never changes extraction results — it only
    /// moves the one-time planning cost out of the first window.
    pub fn prepare(&mut self, n: usize) {
        if self.plan.as_ref().map(SpectrumPlan::len) != Some(n) {
            self.plan = Some(SpectrumPlan::new(n));
        }
    }
}

/// The features of one [`DualDeviceWindow`], computed once and shared by
/// the context detector and the authenticator.
///
/// Produced by [`FeatureExtractor::window_features`]. The phone vector *is*
/// the context feature vector (§V-E reuses Eq. 3), so context detection
/// costs nothing beyond the authentication extraction.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowFeatures {
    devices: DeviceSet,
    phone: Vec<f64>,
    /// Empty when `devices == DeviceSet::PhoneOnly` (never requested).
    watch: Vec<f64>,
}

impl WindowFeatures {
    /// The context feature vector (§V-E): the smartphone vector of Eq. 3.
    /// Bit-identical to [`FeatureExtractor::context_features`].
    pub fn context_features(&self) -> &[f64] {
        &self.phone
    }

    /// The authentication feature vector of Eq. 4. Bit-identical to
    /// [`FeatureExtractor::auth_features`] with the same `devices`.
    ///
    /// # Panics
    ///
    /// Panics if `devices` needs the watch but the cache was computed for
    /// [`DeviceSet::PhoneOnly`].
    pub fn auth_features(&self, devices: DeviceSet) -> Vec<f64> {
        self.assert_serves(devices);
        match devices {
            DeviceSet::PhoneOnly => self.phone.clone(),
            DeviceSet::WatchOnly => self.watch.clone(),
            DeviceSet::Combined => {
                let mut out = Vec::with_capacity(self.phone.len() + self.watch.len());
                out.extend_from_slice(&self.phone);
                out.extend_from_slice(&self.watch);
                out
            }
        }
    }

    /// Consuming variant of [`WindowFeatures::auth_features`]: moves the
    /// cached vectors out instead of cloning, for the runtime hot path
    /// where the cache is dropped right after.
    ///
    /// # Panics
    ///
    /// Panics if `devices` needs the watch but the cache was computed for
    /// [`DeviceSet::PhoneOnly`].
    pub fn into_auth_features(self, devices: DeviceSet) -> Vec<f64> {
        self.assert_serves(devices);
        match devices {
            DeviceSet::PhoneOnly => self.phone,
            DeviceSet::WatchOnly => self.watch,
            DeviceSet::Combined => {
                let mut out = self.phone;
                out.extend_from_slice(&self.watch);
                out
            }
        }
    }

    fn assert_serves(&self, devices: DeviceSet) {
        if devices != DeviceSet::PhoneOnly {
            assert!(
                self.devices != DeviceSet::PhoneOnly,
                "WindowFeatures computed for PhoneOnly cannot serve {devices:?}"
            );
        }
    }
}

impl FeatureExtractor {
    /// Extracts every feature of `window` exactly once, for reuse by both
    /// the context detector and the authenticator.
    ///
    /// `devices` declares which authentication ablation will be served:
    /// [`DeviceSet::PhoneOnly`] skips the watch extraction entirely (the
    /// phone vector doubles as the context vector either way).
    ///
    /// The outputs are bit-identical to
    /// [`FeatureExtractor::context_features`] /
    /// [`FeatureExtractor::auth_features`] on the same window.
    pub fn window_features(
        &self,
        window: &DualDeviceWindow,
        devices: DeviceSet,
        scratch: &mut FeatureScratch,
    ) -> WindowFeatures {
        let phone = self.device_features_cached(&window.phone, scratch);
        let watch = if devices == DeviceSet::PhoneOnly {
            Vec::new()
        } else {
            self.device_features_cached(&window.watch, scratch)
        };
        WindowFeatures {
            devices,
            phone,
            watch,
        }
    }

    /// One device's feature vector (Eq. 3) through the planned, buffered
    /// extraction path.
    fn device_features_cached(
        &self,
        window: &SensorWindow,
        scratch: &mut FeatureScratch,
    ) -> Vec<f64> {
        let set = self.feature_set();
        let needs_spectrum = set.needs_spectrum();
        let mut out = Vec::with_capacity(self.features_per_device());
        for sensor in [SensorKind::Accelerometer, SensorKind::Gyroscope] {
            window.magnitude_into(sensor, &mut scratch.magnitude);
            let summary = stats::Summary::from_slice(&scratch.magnitude);
            let peaks = if needs_spectrum {
                let n = scratch.magnitude.len();
                scratch.prepare(n);
                let plan = scratch.plan.as_ref().expect("plan set above");
                plan.magnitude_into(
                    &scratch.magnitude,
                    &mut scratch.spectrum_scratch,
                    &mut scratch.spectrum,
                );
                spectral_peaks(&scratch.spectrum, self.sample_rate())
            } else {
                None
            };
            set.extract_from_parts_into(&summary, peaks, &mut out);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::FeatureSet;
    use smarteryou_sensors::{Population, RawContext, TraceGenerator, WindowSpec};

    fn windows(spec: WindowSpec, count: usize) -> Vec<DualDeviceWindow> {
        let owner = Population::generate(1, 41).users()[0].clone();
        let mut gen = TraceGenerator::new(owner, 9);
        let mut out = gen.generate_windows(RawContext::MovingAround, spec, count / 2);
        out.extend(gen.generate_windows(RawContext::SittingStanding, spec, count - count / 2));
        out
    }

    fn assert_bits_equal(a: &[f64], b: &[f64], label: &str) {
        assert_eq!(a.len(), b.len(), "{label}: length");
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "{label}: entry {i} diverges ({x} vs {y})"
            );
        }
    }

    #[test]
    fn cached_extraction_is_bit_identical_to_naive() {
        // The paper's deployed 300-sample window (Bluestein path) and a
        // power-of-two-friendly shorter one.
        for spec in [
            WindowSpec::from_seconds(6.0, 50.0),
            WindowSpec::from_seconds(2.56, 50.0),
        ] {
            let extractor = FeatureExtractor::paper_default(spec.sample_rate);
            let mut scratch = FeatureScratch::default();
            for (i, w) in windows(spec, 6).iter().enumerate() {
                let cached = extractor.window_features(w, DeviceSet::Combined, &mut scratch);
                assert_bits_equal(
                    cached.context_features(),
                    &extractor.context_features(w),
                    &format!("window {i} context"),
                );
                for devices in DeviceSet::ALL {
                    assert_bits_equal(
                        &cached.auth_features(devices),
                        &extractor.auth_features(w, devices),
                        &format!("window {i} auth {devices:?}"),
                    );
                    // The consuming hot-path variant must agree too.
                    assert_bits_equal(
                        &cached.clone().into_auth_features(devices),
                        &extractor.auth_features(w, devices),
                        &format!("window {i} into_auth {devices:?}"),
                    );
                }
            }
        }
    }

    #[test]
    fn all_candidate_features_also_match() {
        // Range/Peak2Freq exercise every branch of the mapping kernel.
        let spec = WindowSpec::from_seconds(3.0, 50.0);
        let extractor = FeatureExtractor::new(FeatureSet::all_candidates(), 50.0);
        let mut scratch = FeatureScratch::default();
        for w in windows(spec, 4) {
            let cached = extractor.window_features(&w, DeviceSet::Combined, &mut scratch);
            assert_bits_equal(
                &cached.auth_features(DeviceSet::Combined),
                &extractor.auth_features(&w, DeviceSet::Combined),
                "all-candidates",
            );
        }
    }

    #[test]
    fn phone_only_skips_watch_and_serves_phone() {
        let spec = WindowSpec::from_seconds(2.0, 50.0);
        let extractor = FeatureExtractor::paper_default(50.0);
        let mut scratch = FeatureScratch::default();
        let w = &windows(spec, 2)[0];
        let cached = extractor.window_features(w, DeviceSet::PhoneOnly, &mut scratch);
        assert_bits_equal(
            &cached.auth_features(DeviceSet::PhoneOnly),
            &extractor.auth_features(w, DeviceSet::PhoneOnly),
            "phone-only",
        );
        assert!(cached.watch.is_empty());
    }

    #[test]
    #[should_panic(expected = "PhoneOnly")]
    fn phone_only_cache_rejects_combined_request() {
        let spec = WindowSpec::from_seconds(2.0, 50.0);
        let extractor = FeatureExtractor::paper_default(50.0);
        let mut scratch = FeatureScratch::default();
        let w = &windows(spec, 2)[0];
        extractor
            .window_features(w, DeviceSet::PhoneOnly, &mut scratch)
            .auth_features(DeviceSet::Combined);
    }

    #[test]
    fn scratch_plan_follows_window_length() {
        let extractor = FeatureExtractor::paper_default(50.0);
        let mut scratch = FeatureScratch::default();
        for spec in [
            WindowSpec::from_seconds(2.0, 50.0),
            WindowSpec::from_seconds(6.0, 50.0),
        ] {
            let w = &windows(spec, 2)[0];
            extractor.window_features(w, DeviceSet::Combined, &mut scratch);
            assert_eq!(
                scratch.plan.as_ref().map(SpectrumPlan::len),
                Some(spec.samples),
                "plan tracks the most recent window length"
            );
        }
    }
}
