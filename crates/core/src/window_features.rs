//! Zero-redundancy per-window feature extraction.
//!
//! The naive pipeline recomputes overlapping work three times per window:
//! the context detector extracts the phone feature vector
//! ([`FeatureExtractor::context_features`]), the authenticator extracts the
//! phone *and* watch vectors ([`FeatureExtractor::auth_features`]), and
//! every extraction rebuilds the magnitude streams, summaries, and spectra
//! from the raw axis samples — allocating on each step.
//!
//! [`WindowFeatures`] computes each device's per-sensor magnitude stream,
//! [`Summary`](smarteryou_stats::Summary), and magnitude spectrum **exactly
//! once** and serves both consumers from the result. [`FeatureScratch`]
//! carries the planned FFT ([`SpectrumPlan`]) for the current window length
//! plus all intermediate buffers, so a pipeline scoring a steady stream of
//! same-length windows performs no allocation and no transform planning in
//! the spectral kernels.
//!
//! Both paths funnel through the same kernels
//! ([`FeatureSet::extract_from_parts_into`](crate::FeatureSet::extract_from_parts_into),
//! [`SpectrumPlan::magnitude_into`]), so the cached vectors are
//! **bit-identical** to the naive ones — asserted by this module's tests and
//! relied on by the batch-parity suite.

use smarteryou_dsp::{spectral_peaks, BatchSpectrumScratch, SpectrumPlan, SpectrumScratch};
use smarteryou_sensors::{DualDeviceWindow, SensorKind, SensorWindow};
use smarteryou_stats as stats;

use crate::features::{DeviceSet, FeatureExtractor};

/// Reusable workspace for [`FeatureExtractor::window_features`]: the
/// spectrum plan for the current window length plus every intermediate
/// buffer the extraction touches.
///
/// Cloning yields an independent workspace (plans are plain precomputed
/// tables). The plan is rebuilt automatically if the window length changes,
/// so one scratch can serve mixed-length streams — it is simply fastest
/// when the length is stable, as in steady-state fleet scoring.
#[derive(Debug, Clone, Default)]
pub struct FeatureScratch {
    plan: Option<SpectrumPlan>,
    spectrum_scratch: SpectrumScratch,
    magnitude: Vec<f64>,
    spectrum: Vec<f64>,
    /// Whether extraction runs the vectorized fast path (fused 4-lane
    /// summaries + 4-stream batched spectra). Default **off**: the fast
    /// path is epsilon-equal, not bit-identical, to the reference (see
    /// `docs/perf.md`), so parity suites and snapshot-replay paths keep
    /// the scalar kernels unless a caller opts in.
    fast_path: bool,
    /// The four magnitude streams of one window (phone/watch ×
    /// accel/gyro), gathered for the batched spectrum transform.
    batch_magnitude: [Vec<f64>; 4],
    /// The four corresponding one-sided magnitude spectra.
    batch_spectrum: [Vec<f64>; 4],
    batch_scratch: BatchSpectrumScratch,
}

impl FeatureScratch {
    /// Builder form of [`FeatureScratch::set_fast_path`].
    pub fn with_fast_path(mut self, on: bool) -> Self {
        self.fast_path = on;
        self
    }

    /// Enables (or disables) the vectorized extraction fast path for every
    /// subsequent [`FeatureExtractor::window_features`] call using this
    /// scratch. Feature values move by at most a few ulps relative to the
    /// reference (pinned by the fast-extraction parity suite); with the
    /// flag off, extraction is bit-identical to the seed behaviour.
    pub fn set_fast_path(&mut self, on: bool) {
        self.fast_path = on;
    }

    /// Whether the vectorized fast path is enabled.
    pub fn fast_path(&self) -> bool {
        self.fast_path
    }
    /// Window length (in samples) the current spectrum plan was built for,
    /// or `None` when no window has been extracted yet. This is the plan
    /// key a pipeline snapshot records so a restored pipeline can re-plan
    /// its FFT before the first post-restore window arrives.
    pub fn planned_len(&self) -> Option<usize> {
        self.plan.as_ref().map(SpectrumPlan::len)
    }

    /// Ensures the spectrum plan covers `n`-sample windows, building it if
    /// missing or sized for a different length. Plans are pure precomputed
    /// tables, so warming one up never changes extraction results — it only
    /// moves the one-time planning cost out of the first window.
    pub fn prepare(&mut self, n: usize) {
        if self.plan.as_ref().map(SpectrumPlan::len) != Some(n) {
            self.plan = Some(SpectrumPlan::new(n));
        }
    }
}

/// The features of one [`DualDeviceWindow`], computed once and shared by
/// the context detector and the authenticator.
///
/// Produced by [`FeatureExtractor::window_features`]. The phone vector *is*
/// the context feature vector (§V-E reuses Eq. 3), so context detection
/// costs nothing beyond the authentication extraction.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowFeatures {
    devices: DeviceSet,
    phone: Vec<f64>,
    /// Empty when `devices == DeviceSet::PhoneOnly` (never requested).
    watch: Vec<f64>,
}

impl WindowFeatures {
    /// The context feature vector (§V-E): the smartphone vector of Eq. 3.
    /// Bit-identical to [`FeatureExtractor::context_features`].
    pub fn context_features(&self) -> &[f64] {
        &self.phone
    }

    /// The authentication feature vector of Eq. 4. Bit-identical to
    /// [`FeatureExtractor::auth_features`] with the same `devices`.
    ///
    /// # Panics
    ///
    /// Panics if `devices` needs the watch but the cache was computed for
    /// [`DeviceSet::PhoneOnly`].
    pub fn auth_features(&self, devices: DeviceSet) -> Vec<f64> {
        self.assert_serves(devices);
        match devices {
            DeviceSet::PhoneOnly => self.phone.clone(),
            DeviceSet::WatchOnly => self.watch.clone(),
            DeviceSet::Combined => {
                let mut out = Vec::with_capacity(self.phone.len() + self.watch.len());
                out.extend_from_slice(&self.phone);
                out.extend_from_slice(&self.watch);
                out
            }
        }
    }

    /// Consuming variant of [`WindowFeatures::auth_features`]: moves the
    /// cached vectors out instead of cloning, for the runtime hot path
    /// where the cache is dropped right after.
    ///
    /// # Panics
    ///
    /// Panics if `devices` needs the watch but the cache was computed for
    /// [`DeviceSet::PhoneOnly`].
    pub fn into_auth_features(self, devices: DeviceSet) -> Vec<f64> {
        self.assert_serves(devices);
        match devices {
            DeviceSet::PhoneOnly => self.phone,
            DeviceSet::WatchOnly => self.watch,
            DeviceSet::Combined => {
                let mut out = self.phone;
                out.extend_from_slice(&self.watch);
                out
            }
        }
    }

    fn assert_serves(&self, devices: DeviceSet) {
        if devices != DeviceSet::PhoneOnly {
            assert!(
                self.devices != DeviceSet::PhoneOnly,
                "WindowFeatures computed for PhoneOnly cannot serve {devices:?}"
            );
        }
    }
}

impl FeatureExtractor {
    /// Extracts every feature of `window` exactly once, for reuse by both
    /// the context detector and the authenticator.
    ///
    /// `devices` declares which authentication ablation will be served:
    /// [`DeviceSet::PhoneOnly`] skips the watch extraction entirely (the
    /// phone vector doubles as the context vector either way).
    ///
    /// The outputs are bit-identical to
    /// [`FeatureExtractor::context_features`] /
    /// [`FeatureExtractor::auth_features`] on the same window.
    pub fn window_features(
        &self,
        window: &DualDeviceWindow,
        devices: DeviceSet,
        scratch: &mut FeatureScratch,
    ) -> WindowFeatures {
        if scratch.fast_path {
            // The deployed shape — both devices, spectral features on —
            // batches all four magnitude streams through one 4-lane
            // transform. Other shapes still get the fused summaries but
            // keep per-stream spectra.
            if devices != DeviceSet::PhoneOnly && self.feature_set().needs_spectrum() {
                if let Some(wf) = self.window_features_batched(window, devices, scratch) {
                    return wf;
                }
            }
            let phone = self.device_features_cached(&window.phone, scratch, true);
            let watch = if devices == DeviceSet::PhoneOnly {
                Vec::new()
            } else {
                self.device_features_cached(&window.watch, scratch, true)
            };
            return WindowFeatures {
                devices,
                phone,
                watch,
            };
        }
        let phone = self.device_features_cached(&window.phone, scratch, false);
        let watch = if devices == DeviceSet::PhoneOnly {
            Vec::new()
        } else {
            self.device_features_cached(&window.watch, scratch, false)
        };
        WindowFeatures {
            devices,
            phone,
            watch,
        }
    }

    /// Fast-path extraction of both devices at once: the window's four
    /// magnitude streams (phone/watch × accelerometer/gyroscope) are
    /// summarised by the fused single-pass kernel and transformed by one
    /// 4-lane batched spectrum call instead of four scalar FFTs. Returns
    /// `None` when the devices' stream lengths disagree (the scalar path
    /// handles that degenerate shape).
    fn window_features_batched(
        &self,
        window: &DualDeviceWindow,
        devices: DeviceSet,
        scratch: &mut FeatureScratch,
    ) -> Option<WindowFeatures> {
        let n = window.phone.len();
        if window.watch.len() != n || n == 0 {
            return None;
        }
        let streams = [
            (&window.phone, SensorKind::Accelerometer),
            (&window.phone, SensorKind::Gyroscope),
            (&window.watch, SensorKind::Accelerometer),
            (&window.watch, SensorKind::Gyroscope),
        ];
        for (buf, (device, sensor)) in scratch.batch_magnitude.iter_mut().zip(streams) {
            device.magnitude_into(sensor, buf);
        }
        let summaries = [
            stats::Summary::from_slice_fused(&scratch.batch_magnitude[0]),
            stats::Summary::from_slice_fused(&scratch.batch_magnitude[1]),
            stats::Summary::from_slice_fused(&scratch.batch_magnitude[2]),
            stats::Summary::from_slice_fused(&scratch.batch_magnitude[3]),
        ];
        scratch.prepare(n);
        let FeatureScratch {
            plan,
            batch_magnitude,
            batch_spectrum,
            batch_scratch,
            ..
        } = scratch;
        let plan = plan.as_ref().expect("prepared above");
        let [m0, m1, m2, m3] = batch_magnitude;
        let [s0, s1, s2, s3] = batch_spectrum;
        plan.magnitude_batch4_into(
            [m0.as_slice(), m1.as_slice(), m2.as_slice(), m3.as_slice()],
            batch_scratch,
            [s0, s1, s2, s3],
        );
        let set = self.feature_set();
        let mut phone = Vec::with_capacity(self.features_per_device());
        let mut watch = Vec::with_capacity(self.features_per_device());
        for (l, summary) in summaries.iter().enumerate() {
            let peaks = spectral_peaks(&scratch.batch_spectrum[l], self.sample_rate());
            let out = if l < 2 { &mut phone } else { &mut watch };
            set.extract_from_parts_into(summary, peaks, out);
        }
        Some(WindowFeatures {
            devices,
            phone,
            watch,
        })
    }

    /// One device's feature vector (Eq. 3) through the planned, buffered
    /// extraction path. `fused` selects the single-pass 4-lane summary
    /// kernel (epsilon-equal) over the bit-exact reference.
    fn device_features_cached(
        &self,
        window: &SensorWindow,
        scratch: &mut FeatureScratch,
        fused: bool,
    ) -> Vec<f64> {
        let set = self.feature_set();
        let needs_spectrum = set.needs_spectrum();
        let mut out = Vec::with_capacity(self.features_per_device());
        for sensor in [SensorKind::Accelerometer, SensorKind::Gyroscope] {
            window.magnitude_into(sensor, &mut scratch.magnitude);
            let summary = if fused {
                stats::Summary::from_slice_fused(&scratch.magnitude)
            } else {
                stats::Summary::from_slice(&scratch.magnitude)
            };
            let peaks = if needs_spectrum {
                let n = scratch.magnitude.len();
                scratch.prepare(n);
                let plan = scratch.plan.as_ref().expect("plan set above");
                plan.magnitude_into(
                    &scratch.magnitude,
                    &mut scratch.spectrum_scratch,
                    &mut scratch.spectrum,
                );
                spectral_peaks(&scratch.spectrum, self.sample_rate())
            } else {
                None
            };
            set.extract_from_parts_into(&summary, peaks, &mut out);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::FeatureSet;
    use smarteryou_sensors::{Population, RawContext, TraceGenerator, WindowSpec};

    fn windows(spec: WindowSpec, count: usize) -> Vec<DualDeviceWindow> {
        let owner = Population::generate(1, 41).users()[0].clone();
        let mut gen = TraceGenerator::new(owner, 9);
        let mut out = gen.generate_windows(RawContext::MovingAround, spec, count / 2);
        out.extend(gen.generate_windows(RawContext::SittingStanding, spec, count - count / 2));
        out
    }

    fn assert_bits_equal(a: &[f64], b: &[f64], label: &str) {
        assert_eq!(a.len(), b.len(), "{label}: length");
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "{label}: entry {i} diverges ({x} vs {y})"
            );
        }
    }

    #[test]
    fn cached_extraction_is_bit_identical_to_naive() {
        // The paper's deployed 300-sample window (Bluestein path) and a
        // power-of-two-friendly shorter one.
        for spec in [
            WindowSpec::from_seconds(6.0, 50.0),
            WindowSpec::from_seconds(2.56, 50.0),
        ] {
            let extractor = FeatureExtractor::paper_default(spec.sample_rate);
            let mut scratch = FeatureScratch::default();
            for (i, w) in windows(spec, 6).iter().enumerate() {
                let cached = extractor.window_features(w, DeviceSet::Combined, &mut scratch);
                assert_bits_equal(
                    cached.context_features(),
                    &extractor.context_features(w),
                    &format!("window {i} context"),
                );
                for devices in DeviceSet::ALL {
                    assert_bits_equal(
                        &cached.auth_features(devices),
                        &extractor.auth_features(w, devices),
                        &format!("window {i} auth {devices:?}"),
                    );
                    // The consuming hot-path variant must agree too.
                    assert_bits_equal(
                        &cached.clone().into_auth_features(devices),
                        &extractor.auth_features(w, devices),
                        &format!("window {i} into_auth {devices:?}"),
                    );
                }
            }
        }
    }

    #[test]
    fn all_candidate_features_also_match() {
        // Range/Peak2Freq exercise every branch of the mapping kernel.
        let spec = WindowSpec::from_seconds(3.0, 50.0);
        let extractor = FeatureExtractor::new(FeatureSet::all_candidates(), 50.0);
        let mut scratch = FeatureScratch::default();
        for w in windows(spec, 4) {
            let cached = extractor.window_features(&w, DeviceSet::Combined, &mut scratch);
            assert_bits_equal(
                &cached.auth_features(DeviceSet::Combined),
                &extractor.auth_features(&w, DeviceSet::Combined),
                "all-candidates",
            );
        }
    }

    #[test]
    fn phone_only_skips_watch_and_serves_phone() {
        let spec = WindowSpec::from_seconds(2.0, 50.0);
        let extractor = FeatureExtractor::paper_default(50.0);
        let mut scratch = FeatureScratch::default();
        let w = &windows(spec, 2)[0];
        let cached = extractor.window_features(w, DeviceSet::PhoneOnly, &mut scratch);
        assert_bits_equal(
            &cached.auth_features(DeviceSet::PhoneOnly),
            &extractor.auth_features(w, DeviceSet::PhoneOnly),
            "phone-only",
        );
        assert!(cached.watch.is_empty());
    }

    #[test]
    #[should_panic(expected = "PhoneOnly")]
    fn phone_only_cache_rejects_combined_request() {
        let spec = WindowSpec::from_seconds(2.0, 50.0);
        let extractor = FeatureExtractor::paper_default(50.0);
        let mut scratch = FeatureScratch::default();
        let w = &windows(spec, 2)[0];
        extractor
            .window_features(w, DeviceSet::PhoneOnly, &mut scratch)
            .auth_features(DeviceSet::Combined);
    }

    #[test]
    fn fast_path_matches_reference_within_epsilon() {
        // Bluestein (300) and radix-2-friendly lengths, batched and
        // non-batched device shapes.
        for spec in [
            WindowSpec::from_seconds(6.0, 50.0),
            WindowSpec::from_seconds(2.56, 50.0),
        ] {
            let extractor = FeatureExtractor::paper_default(spec.sample_rate);
            let mut reference = FeatureScratch::default();
            let mut fast = FeatureScratch::default().with_fast_path(true);
            assert!(fast.fast_path());
            for (i, w) in windows(spec, 6).iter().enumerate() {
                for devices in DeviceSet::ALL {
                    let r = extractor.window_features(w, devices, &mut reference);
                    let f = extractor.window_features(w, devices, &mut fast);
                    let rv = r.auth_features(devices);
                    let fv = f.auth_features(devices);
                    assert_eq!(rv.len(), fv.len());
                    for (j, (a, b)) in fv.iter().zip(&rv).enumerate() {
                        assert!(
                            (a - b).abs() <= 1e-9 * b.abs().max(1.0),
                            "window {i} {devices:?} feature {j}: {a} vs {b}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn scratch_plan_follows_window_length() {
        let extractor = FeatureExtractor::paper_default(50.0);
        let mut scratch = FeatureScratch::default();
        for spec in [
            WindowSpec::from_seconds(2.0, 50.0),
            WindowSpec::from_seconds(6.0, 50.0),
        ] {
            let w = &windows(spec, 2)[0];
            extractor.window_features(w, DeviceSet::Combined, &mut scratch);
            assert_eq!(
                scratch.plan.as_ref().map(SpectrumPlan::len),
                Some(spec.samples),
                "plan tracks the most recent window length"
            );
        }
    }
}
