use std::collections::VecDeque;

use serde::{Deserialize, Serialize};

/// When to retrain the authentication models (§V-I).
///
/// The paper's rule: retrain when the confidence score of an authenticated
/// user stays below a threshold `ε_CS` for a period of time. We implement
/// the "period of low scores" test robustly as a **rolling median** over the
/// last `period` windows: occasional outlier windows (a bump produces an
/// extreme score) neither trigger nor suppress retraining.
///
/// Attacker safety (§V-I): a trigger additionally requires the rolling
/// median to be non-negative *and* rejections to be rare within the window.
/// An attacker's windows are overwhelmingly rejected (negative scores), so
/// he cannot steer the system into retraining on his data.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RetrainPolicy {
    /// The confidence threshold `ε_CS` (the paper uses 0.2).
    pub threshold: f64,
    /// Rolling-window length in windows.
    pub period: usize,
    /// Maximum fraction of rejected (negative-score) windows tolerated
    /// inside the rolling window.
    pub max_reject_fraction: f64,
}

impl Default for RetrainPolicy {
    fn default() -> Self {
        RetrainPolicy {
            threshold: 0.2,
            period: 30,
            max_reject_fraction: 0.4,
        }
    }
}

/// Tracks the time series of confidence scores and decides when retraining
/// is warranted (the right-hand plot of Figure 7).
///
/// The retrain decision only ever reads the rolling window of the last
/// `period` scores; the `(day, score)` history exists for the Figure 7
/// plots. At one window a minute an unbounded history grows by ~500k
/// entries a year — and rides along in every pipeline snapshot — so it is
/// ring-buffered to [`ConfidenceTracker::history_retention`] entries: the
/// runtime default keeps just the rolling window's worth, and experiment
/// harnesses that plot the series opt into a larger retention with
/// [`ConfidenceTracker::with_history_retention`].
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ConfidenceTracker {
    policy: RetrainPolicy,
    recent: VecDeque<f64>,
    since_retrain: usize,
    /// Ring of the last `retention` scores; a deque so the one-in-one-out
    /// at the cap is O(1) whatever the retention (serialized as a plain
    /// JSON array either way).
    history: VecDeque<(f64, f64)>,
    retention: usize,
}

/// Hand-written so snapshots written before the history ring existed (no
/// `retention` field) still parse: they restore with the default retention
/// and an over-long legacy history is truncated to its most recent
/// entries. The vendored serde derive has no `#[serde(default)]`.
impl serde::Deserialize for ConfidenceTracker {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        use serde::__private::get_field;
        let policy: RetrainPolicy = get_field(v, "ConfidenceTracker", "policy")?;
        let retention = match v.get("retention") {
            Some(entry) => usize::from_value(entry)
                .map_err(|e| serde::DeError::custom(format!("ConfidenceTracker.retention: {e}")))?,
            None => policy.period,
        };
        let mut history: VecDeque<(f64, f64)> = get_field(v, "ConfidenceTracker", "history")?;
        if history.len() > retention {
            history.drain(..history.len() - retention);
        }
        Ok(ConfidenceTracker {
            policy,
            recent: get_field(v, "ConfidenceTracker", "recent")?,
            since_retrain: get_field(v, "ConfidenceTracker", "since_retrain")?,
            history,
            retention,
        })
    }
}

impl ConfidenceTracker {
    /// Creates a tracker with the given policy and the default history
    /// retention (one rolling window's worth of entries).
    ///
    /// # Panics
    ///
    /// Panics if the policy period is zero.
    pub fn new(policy: RetrainPolicy) -> Self {
        assert!(policy.period > 0, "retrain period must be positive");
        ConfidenceTracker {
            policy,
            recent: VecDeque::with_capacity(policy.period),
            since_retrain: 0,
            history: VecDeque::new(),
            retention: policy.period,
        }
    }

    /// Overrides how many `(day, score)` history entries are retained for
    /// plotting (the retrain decision never reads beyond the rolling
    /// window). Experiment harnesses regenerating Figure 7 pass a retention
    /// covering the whole run; truncates immediately if already over.
    pub fn with_history_retention(mut self, retention: usize) -> Self {
        self.retention = retention;
        if self.history.len() > retention {
            self.history.drain(..self.history.len() - retention);
        }
        self
    }

    /// The configured history ring size.
    pub fn history_retention(&self) -> usize {
        self.retention
    }

    /// The active policy.
    pub fn policy(&self) -> &RetrainPolicy {
        &self.policy
    }

    /// Records the confidence score of one window at simulated `day`.
    /// Returns `true` when the rolling window signals sustained low-but-
    /// legitimate confidence — the caller should retrain and then call
    /// [`ConfidenceTracker::mark_retrained`].
    pub fn record(&mut self, day: f64, confidence: f64) -> bool {
        if self.retention > 0 {
            if self.history.len() == self.retention {
                self.history.pop_front();
            }
            self.history.push_back((day, confidence));
        }
        if self.recent.len() == self.policy.period {
            self.recent.pop_front();
        }
        self.recent.push_back(confidence);
        self.since_retrain += 1;
        if self.recent.len() < self.policy.period || self.since_retrain < self.policy.period {
            return false;
        }
        let vals: Vec<f64> = self.recent.iter().copied().collect();
        let med = smarteryou_stats::median(&vals);
        let reject_fraction = vals.iter().filter(|&&v| v < 0.0).count() as f64 / vals.len() as f64;
        med >= 0.0
            && med < self.policy.threshold
            && reject_fraction <= self.policy.max_reject_fraction
    }

    /// Resets the rolling window after a retrain (history is kept).
    pub fn mark_retrained(&mut self) {
        self.recent.clear();
        self.since_retrain = 0;
    }

    /// Scores currently held in the rolling window (`0..=period`). Together
    /// with [`ConfidenceTracker::windows_since_retrain`] this is the
    /// mid-retrain state a pipeline snapshot must carry: a tracker restored
    /// with a half-full window must trigger on exactly the same future
    /// window as one that never left memory.
    pub fn rolling_len(&self) -> usize {
        self.recent.len()
    }

    /// Windows recorded since the last retrain (or since creation, before
    /// the first retrain).
    pub fn windows_since_retrain(&self) -> usize {
        self.since_retrain
    }

    /// Number of below-threshold scores currently in the rolling window.
    pub fn below_count(&self) -> usize {
        self.recent
            .iter()
            .filter(|&&v| v < self.policy.threshold)
            .count()
    }

    /// Retained `(day, confidence)` history, oldest first (the most recent
    /// [`ConfidenceTracker::history_retention`] entries).
    pub fn history(&self) -> &VecDeque<(f64, f64)> {
        &self.history
    }

    /// Mean confidence per integer day.
    pub fn daily_means(&self) -> Vec<(u32, f64)> {
        let mut sums: std::collections::BTreeMap<u32, (f64, usize)> = Default::default();
        for &(day, cs) in &self.history {
            let e = sums.entry(day.floor() as u32).or_insert((0.0, 0));
            e.0 += cs;
            e.1 += 1;
        }
        sums.into_iter()
            .map(|(d, (sum, n))| (d, sum / n as f64))
            .collect()
    }

    /// Median confidence per integer day — the series plotted in Figure 7.
    /// (Median, not mean: the occasional bump/drop window produces an
    /// extreme score that would dominate a daily mean.)
    pub fn daily_medians(&self) -> Vec<(u32, f64)> {
        let mut by_day: std::collections::BTreeMap<u32, Vec<f64>> = Default::default();
        for &(day, cs) in &self.history {
            by_day.entry(day.floor() as u32).or_default().push(cs);
        }
        by_day
            .into_iter()
            .map(|(d, vals)| (d, smarteryou_stats::median(&vals)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tracker(period: usize) -> ConfidenceTracker {
        ConfidenceTracker::new(RetrainPolicy {
            threshold: 0.2,
            period,
            max_reject_fraction: 0.2,
        })
    }

    #[test]
    fn healthy_scores_never_trigger() {
        let mut t = tracker(3);
        for i in 0..20 {
            assert!(!t.record(i as f64 * 0.1, 0.8));
        }
        assert_eq!(t.below_count(), 0);
    }

    #[test]
    fn sustained_low_scores_trigger() {
        let mut t = tracker(3);
        assert!(!t.record(0.0, 0.1));
        assert!(!t.record(0.1, 0.15));
        assert!(t.record(0.2, 0.05), "window full of low scores triggers");
        t.mark_retrained();
        // After retraining the window must refill before triggering again.
        assert!(!t.record(0.3, 0.1));
        assert!(!t.record(0.4, 0.1));
        assert!(t.record(0.5, 0.1));
    }

    #[test]
    fn single_outlier_does_not_mask_the_trend() {
        let mut t = tracker(5);
        // Four low scores and one huge outlier: median still low → trigger.
        t.record(0.0, 0.1);
        t.record(0.1, 0.12);
        t.record(0.2, 40.0);
        t.record(0.3, 0.08);
        assert!(t.record(0.4, 0.1));
    }

    #[test]
    fn recovery_keeps_the_median_high() {
        let mut t = tracker(3);
        t.record(0.0, 0.1);
        // Majority-healthy window: median 0.9 → no trigger.
        assert!(!t.record(0.1, 0.9));
        assert!(!t.record(0.2, 0.9));
    }

    #[test]
    fn attacker_rejections_cannot_trigger_retraining() {
        // Mostly-negative scores: median negative → blocked.
        let mut t = tracker(4);
        for i in 0..40 {
            assert!(!t.record(i as f64, -0.5), "attacker window {i}");
        }
        // Mixed accept/reject: reject fraction 50% > 20% → still blocked.
        let mut t = tracker(4);
        for i in 0..40 {
            let cs = if i % 2 == 0 { 0.1 } else { -0.4 };
            assert!(!t.record(i as f64, cs), "alternating window {i}");
        }
    }

    #[test]
    fn daily_series_aggregate_by_day() {
        let mut t = tracker(100);
        t.record(0.2, 1.0);
        t.record(0.8, 0.5);
        t.record(1.1, 0.3);
        let means = t.daily_means();
        assert_eq!(means.len(), 2);
        assert!((means[0].1 - 0.75).abs() < 1e-12);
        let medians = t.daily_medians();
        assert!((medians[0].1 - 0.75).abs() < 1e-12);
        assert!((medians[1].1 - 0.3).abs() < 1e-12);
        assert_eq!(t.history().len(), 3);
    }

    #[test]
    #[should_panic(expected = "period")]
    fn zero_period_is_rejected() {
        tracker(0);
    }

    #[test]
    fn history_is_ring_buffered_to_the_retention() {
        let mut t = tracker(4); // default retention = period = 4
        assert_eq!(t.history_retention(), 4);
        for i in 0..10 {
            t.record(i as f64 * 0.01, 0.5 + i as f64);
        }
        // Only the last four (day, score) pairs survive; the rolling
        // window and trigger logic are unaffected by the trim.
        assert_eq!(t.history().len(), 4);
        assert!((t.history()[0].1 - 6.5).abs() < 1e-12);
        assert!((t.history()[3].1 - 9.5).abs() < 1e-12);
        assert_eq!(t.rolling_len(), 4);
    }

    #[test]
    fn custom_retention_keeps_more_and_truncates_on_shrink() {
        let mut t = tracker(3).with_history_retention(100);
        for i in 0..50 {
            t.record(i as f64, 0.5);
        }
        assert_eq!(t.history().len(), 50);
        let t = t.with_history_retention(10);
        assert_eq!(t.history().len(), 10);
        assert!((t.history()[0].0 - 40.0).abs() < 1e-12);
        // Zero retention keeps no plot history at all (pure runtime mode).
        let mut t = tracker(3).with_history_retention(0);
        assert!(!t.record(0.0, 0.1));
        assert!(t.history().is_empty());
        assert_eq!(t.rolling_len(), 1, "rolling window still tracks");
    }
}
