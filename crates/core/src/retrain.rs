use std::collections::VecDeque;

use serde::{Deserialize, Serialize};

/// When to retrain the authentication models (§V-I).
///
/// The paper's rule: retrain when the confidence score of an authenticated
/// user stays below a threshold `ε_CS` for a period of time. We implement
/// the "period of low scores" test robustly as a **rolling median** over the
/// last `period` windows: occasional outlier windows (a bump produces an
/// extreme score) neither trigger nor suppress retraining.
///
/// Attacker safety (§V-I): a trigger additionally requires the rolling
/// median to be non-negative *and* rejections to be rare within the window.
/// An attacker's windows are overwhelmingly rejected (negative scores), so
/// he cannot steer the system into retraining on his data.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RetrainPolicy {
    /// The confidence threshold `ε_CS` (the paper uses 0.2).
    pub threshold: f64,
    /// Rolling-window length in windows.
    pub period: usize,
    /// Maximum fraction of rejected (negative-score) windows tolerated
    /// inside the rolling window.
    pub max_reject_fraction: f64,
}

impl Default for RetrainPolicy {
    fn default() -> Self {
        RetrainPolicy {
            threshold: 0.2,
            period: 30,
            max_reject_fraction: 0.4,
        }
    }
}

/// Tracks the time series of confidence scores and decides when retraining
/// is warranted (the right-hand plot of Figure 7).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConfidenceTracker {
    policy: RetrainPolicy,
    recent: VecDeque<f64>,
    since_retrain: usize,
    history: Vec<(f64, f64)>,
}

impl ConfidenceTracker {
    /// Creates a tracker with the given policy.
    ///
    /// # Panics
    ///
    /// Panics if the policy period is zero.
    pub fn new(policy: RetrainPolicy) -> Self {
        assert!(policy.period > 0, "retrain period must be positive");
        ConfidenceTracker {
            policy,
            recent: VecDeque::with_capacity(policy.period),
            since_retrain: 0,
            history: Vec::new(),
        }
    }

    /// The active policy.
    pub fn policy(&self) -> &RetrainPolicy {
        &self.policy
    }

    /// Records the confidence score of one window at simulated `day`.
    /// Returns `true` when the rolling window signals sustained low-but-
    /// legitimate confidence — the caller should retrain and then call
    /// [`ConfidenceTracker::mark_retrained`].
    pub fn record(&mut self, day: f64, confidence: f64) -> bool {
        self.history.push((day, confidence));
        if self.recent.len() == self.policy.period {
            self.recent.pop_front();
        }
        self.recent.push_back(confidence);
        self.since_retrain += 1;
        if self.recent.len() < self.policy.period || self.since_retrain < self.policy.period {
            return false;
        }
        let vals: Vec<f64> = self.recent.iter().copied().collect();
        let med = smarteryou_stats::median(&vals);
        let reject_fraction = vals.iter().filter(|&&v| v < 0.0).count() as f64 / vals.len() as f64;
        med >= 0.0
            && med < self.policy.threshold
            && reject_fraction <= self.policy.max_reject_fraction
    }

    /// Resets the rolling window after a retrain (history is kept).
    pub fn mark_retrained(&mut self) {
        self.recent.clear();
        self.since_retrain = 0;
    }

    /// Scores currently held in the rolling window (`0..=period`). Together
    /// with [`ConfidenceTracker::windows_since_retrain`] this is the
    /// mid-retrain state a pipeline snapshot must carry: a tracker restored
    /// with a half-full window must trigger on exactly the same future
    /// window as one that never left memory.
    pub fn rolling_len(&self) -> usize {
        self.recent.len()
    }

    /// Windows recorded since the last retrain (or since creation, before
    /// the first retrain).
    pub fn windows_since_retrain(&self) -> usize {
        self.since_retrain
    }

    /// Number of below-threshold scores currently in the rolling window.
    pub fn below_count(&self) -> usize {
        self.recent
            .iter()
            .filter(|&&v| v < self.policy.threshold)
            .count()
    }

    /// Full `(day, confidence)` history, in arrival order.
    pub fn history(&self) -> &[(f64, f64)] {
        &self.history
    }

    /// Mean confidence per integer day.
    pub fn daily_means(&self) -> Vec<(u32, f64)> {
        let mut sums: std::collections::BTreeMap<u32, (f64, usize)> = Default::default();
        for &(day, cs) in &self.history {
            let e = sums.entry(day.floor() as u32).or_insert((0.0, 0));
            e.0 += cs;
            e.1 += 1;
        }
        sums.into_iter()
            .map(|(d, (sum, n))| (d, sum / n as f64))
            .collect()
    }

    /// Median confidence per integer day — the series plotted in Figure 7.
    /// (Median, not mean: the occasional bump/drop window produces an
    /// extreme score that would dominate a daily mean.)
    pub fn daily_medians(&self) -> Vec<(u32, f64)> {
        let mut by_day: std::collections::BTreeMap<u32, Vec<f64>> = Default::default();
        for &(day, cs) in &self.history {
            by_day.entry(day.floor() as u32).or_default().push(cs);
        }
        by_day
            .into_iter()
            .map(|(d, vals)| (d, smarteryou_stats::median(&vals)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tracker(period: usize) -> ConfidenceTracker {
        ConfidenceTracker::new(RetrainPolicy {
            threshold: 0.2,
            period,
            max_reject_fraction: 0.2,
        })
    }

    #[test]
    fn healthy_scores_never_trigger() {
        let mut t = tracker(3);
        for i in 0..20 {
            assert!(!t.record(i as f64 * 0.1, 0.8));
        }
        assert_eq!(t.below_count(), 0);
    }

    #[test]
    fn sustained_low_scores_trigger() {
        let mut t = tracker(3);
        assert!(!t.record(0.0, 0.1));
        assert!(!t.record(0.1, 0.15));
        assert!(t.record(0.2, 0.05), "window full of low scores triggers");
        t.mark_retrained();
        // After retraining the window must refill before triggering again.
        assert!(!t.record(0.3, 0.1));
        assert!(!t.record(0.4, 0.1));
        assert!(t.record(0.5, 0.1));
    }

    #[test]
    fn single_outlier_does_not_mask_the_trend() {
        let mut t = tracker(5);
        // Four low scores and one huge outlier: median still low → trigger.
        t.record(0.0, 0.1);
        t.record(0.1, 0.12);
        t.record(0.2, 40.0);
        t.record(0.3, 0.08);
        assert!(t.record(0.4, 0.1));
    }

    #[test]
    fn recovery_keeps_the_median_high() {
        let mut t = tracker(3);
        t.record(0.0, 0.1);
        // Majority-healthy window: median 0.9 → no trigger.
        assert!(!t.record(0.1, 0.9));
        assert!(!t.record(0.2, 0.9));
    }

    #[test]
    fn attacker_rejections_cannot_trigger_retraining() {
        // Mostly-negative scores: median negative → blocked.
        let mut t = tracker(4);
        for i in 0..40 {
            assert!(!t.record(i as f64, -0.5), "attacker window {i}");
        }
        // Mixed accept/reject: reject fraction 50% > 20% → still blocked.
        let mut t = tracker(4);
        for i in 0..40 {
            let cs = if i % 2 == 0 { 0.1 } else { -0.4 };
            assert!(!t.record(i as f64, cs), "alternating window {i}");
        }
    }

    #[test]
    fn daily_series_aggregate_by_day() {
        let mut t = tracker(100);
        t.record(0.2, 1.0);
        t.record(0.8, 0.5);
        t.record(1.1, 0.3);
        let means = t.daily_means();
        assert_eq!(means.len(), 2);
        assert!((means[0].1 - 0.75).abs() < 1e-12);
        let medians = t.daily_medians();
        assert!((medians[0].1 - 0.75).abs() < 1e-12);
        assert!((medians[1].1 - 0.3).abs() < 1e-12);
        assert_eq!(t.history().len(), 3);
    }

    #[test]
    #[should_panic(expected = "period")]
    fn zero_period_is_rejected() {
        tracker(0);
    }
}
