//! Versioned snapshot/restore persistence for per-user pipelines.
//!
//! A fleet deployment cannot keep millions of [`SmarterYou`] pipelines
//! resident: most devices are idle most of the time, yet their models must
//! survive process restarts and device/session churn without re-enrollment
//! (§V-I's continuous retraining makes the state genuinely stateful — the
//! enrollment and retrain buffers, confidence tracker, and RNG position all
//! influence future decisions). This module provides the wire format for
//! parking that state:
//!
//! * [`PipelineSnapshot`] — a self-contained, schema-checked capture of one
//!   pipeline: configuration, context-detector forest, per-context KRR
//!   models, enrollment + retrain ring buffers, confidence tracker,
//!   response-module state, event log, clock, RNG state, and the
//!   window-length FFT plan key.
//! * [`SmarterYou::snapshot`] / [`SmarterYou::restore`] — the round-trip.
//!   Restoration is **bit-identical**: a pipeline evicted after window *k*
//!   and restored produces exactly the same decisions, scores, and retrain
//!   events for windows *k+1..n* as one that never left memory (enforced by
//!   `tests/persist_parity.rs` and the round-trip property suite).
//! * [`SnapshotStore`] — pluggable storage, with [`MemorySnapshotStore`]
//!   (JSON strings in a map — every save/load still exercises the wire
//!   format) and [`FileSnapshotStore`] (one JSON file per user, written
//!   atomically) provided. The fleet engine drives either through its
//!   idle-eviction policy.
//!
//! # Version & compatibility policy
//!
//! Snapshots are externally tagged with a format magic
//! ([`SNAPSHOT_FORMAT`]) and a version number ([`SNAPSHOT_VERSION`]),
//! checked **before** the body is decoded:
//!
//! * A snapshot with the wrong magic is rejected with
//!   [`PersistError::WrongFormat`] — it is some other JSON document.
//! * A snapshot with a different version is rejected with
//!   [`PersistError::UnsupportedVersion`]. Version *N* readers never guess
//!   at version *M* bodies; a future version bump must ship an explicit
//!   migration that reads the old body shape.
//! * A snapshot that parses but violates the schema (truncated JSON, a
//!   matrix whose data length disagrees with its dimensions, ragged feature
//!   buffers, a zero retrain period) is rejected with
//!   [`PersistError::Malformed`]. Corruption is always a typed error,
//!   never a panic and never a silently wrong pipeline.
//!
//! The version covers the *semantic* content too: any change to what the
//! recorded numbers mean (feature order, RNG algorithm, tracker semantics)
//! must bump [`SNAPSHOT_VERSION`], because a restored pipeline replays
//! those semantics. CI pins this with a committed golden
//! `fixtures/pipeline_v1.snapshot.json` that the current code must keep
//! restoring.
//!
//! This format is also the planned wire format between shards: moving a
//! user from one engine process to another is an evict on the source and a
//! rehydrate on the target.

use std::collections::HashMap;
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

use serde::{Deserialize, Serialize};

use crate::fault::{points, FaultPlan};

use smarteryou_ml::KrrTailState;
use smarteryou_sensors::{UserId, WindowSpec};

use crate::auth::Authenticator;
use crate::config::SystemConfig;
use crate::context_detect::ContextDetector;
use crate::engine::training::RetrainRequest;
use crate::pipeline::{RetrainMode, SystemEvent};
use crate::response::ResponseModule;
use crate::retrain::ConfidenceTracker;
use crate::server::NegativeEpoch;
#[cfg(doc)]
use crate::SmarterYou;

/// Format magic every pipeline snapshot starts with.
pub const SNAPSHOT_FORMAT: &str = "smarteryou.pipeline";

/// Snapshot schema version written and accepted by this build.
pub const SNAPSHOT_VERSION: u32 = 1;

/// Why a snapshot could not be produced, stored, loaded, or restored.
#[derive(Debug, Clone, PartialEq)]
pub enum PersistError {
    /// The document's format magic is not [`SNAPSHOT_FORMAT`].
    WrongFormat(String),
    /// The document's version differs from [`SNAPSHOT_VERSION`].
    UnsupportedVersion {
        /// Version recorded in the document.
        found: u32,
        /// Version this build reads and writes.
        supported: u32,
    },
    /// The document is not valid JSON, or decodes into state that violates
    /// the schema's invariants (ragged buffers, inconsistent widths, …).
    Malformed(String),
    /// A store was asked to rehydrate a user it holds no snapshot for.
    MissingSnapshot(UserId),
    /// An epoch-fenced operation lost the ownership race: the store has
    /// already been claimed at a newer epoch by another engine (see
    /// [`SnapshotStore::acquire`]). The caller no longer owns this user and
    /// must drop its copy of the pipeline instead of persisting it.
    StaleEpoch {
        /// The user whose ownership was contested.
        id: UserId,
        /// The epoch the caller holds (its claim when it last acquired).
        held: u64,
        /// The newer epoch persisted in the store.
        stored: u64,
    },
    /// The underlying storage failed (I/O errors from a file-backed store).
    Io(String),
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::WrongFormat(found) => {
                write!(f, "not a {SNAPSHOT_FORMAT} snapshot (format tag `{found}`)")
            }
            PersistError::UnsupportedVersion { found, supported } => {
                write!(
                    f,
                    "snapshot version {found} unsupported (this build reads {supported})"
                )
            }
            PersistError::Malformed(msg) => write!(f, "malformed snapshot: {msg}"),
            PersistError::MissingSnapshot(id) => {
                write!(f, "no snapshot stored for {id}")
            }
            PersistError::StaleEpoch { id, held, stored } => {
                write!(
                    f,
                    "stale ownership epoch for {id}: holding {held}, store at {stored}"
                )
            }
            PersistError::Io(msg) => write!(f, "snapshot store I/O failed: {msg}"),
        }
    }
}

impl std::error::Error for PersistError {}

/// The version/format envelope, decoded on its own before the body so that
/// an incompatible snapshot fails with a version error rather than a
/// confusing missing-field error from a different schema.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct SnapshotHeader {
    format: String,
    version: u32,
}

/// The wire form of an outstanding deferred retrain: the trigger-time
/// request minus what restore can rebuild locally — fit caches come back
/// cold (they never change model bits) and the config is the pipeline's
/// own. A job id is deliberately not persisted: it is meaningless outside
/// the engine that issued it, and a restored pipeline always re-enters the
/// *pending* state for its owning engine to resubmit.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct PersistedRetrain {
    pub(crate) positives: [Vec<Vec<f64>>; 2],
    pub(crate) rng_state: [u64; 4],
    pub(crate) negative_epoch: Option<NegativeEpoch>,
    /// Positive-tail factor identity captured with the request. Unlike the
    /// fit caches, tails persist: a slid factor is not bit-identical to a
    /// fresh one, so dropping them would break restore bit-parity for a
    /// request resumed on another engine.
    pub(crate) retrain_tails: [Option<KrrTailState>; 2],
    pub(crate) day: f64,
}

/// Hand-written so requests persisted before `retrain_tails` existed keep
/// parsing (cold tails — the job simply refits from scratch); the vendored
/// serde derive has no `#[serde(default)]`.
impl serde::Deserialize for PersistedRetrain {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        use serde::__private::get_field;
        let retrain_tails = match v.get("retrain_tails") {
            Some(entry) => <[Option<KrrTailState>; 2]>::from_value(entry).map_err(|e| {
                serde::DeError::custom(format!("PersistedRetrain.retrain_tails: {e}"))
            })?,
            None => [None, None],
        };
        Ok(PersistedRetrain {
            positives: get_field(v, "PersistedRetrain", "positives")?,
            rng_state: get_field(v, "PersistedRetrain", "rng_state")?,
            negative_epoch: get_field(v, "PersistedRetrain", "negative_epoch")?,
            retrain_tails,
            day: get_field(v, "PersistedRetrain", "day")?,
        })
    }
}

impl PersistedRetrain {
    /// Strips a live request down to its wire form.
    pub(crate) fn from_request(request: &RetrainRequest) -> Self {
        PersistedRetrain {
            positives: request.positives.clone(),
            rng_state: request.rng_state,
            negative_epoch: request.negative_epoch.clone(),
            retrain_tails: request.retrain_tails.clone(),
            day: request.day,
        }
    }

    /// Rebuilds a live request for the restored pipeline (cold caches).
    pub(crate) fn into_request(self, cfg: SystemConfig) -> RetrainRequest {
        RetrainRequest {
            positives: self.positives,
            cfg,
            rng_state: self.rng_state,
            negative_epoch: self.negative_epoch,
            fit_caches: Default::default(),
            retrain_tails: self.retrain_tails,
            day: self.day,
        }
    }
}

/// A self-contained capture of one [`SmarterYou`] pipeline's state — see
/// the [module docs](self) for the format and compatibility policy.
///
/// Produced by [`SmarterYou::snapshot`]; consumed by [`SmarterYou::restore`]
/// (which reattaches the shared [`TrainingHandle`](crate::TrainingHandle),
/// the only part of a pipeline that is fleet-shared rather than per-user).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct PipelineSnapshot {
    pub(crate) format: String,
    pub(crate) version: u32,
    pub(crate) cfg: SystemConfig,
    pub(crate) detector: ContextDetector,
    pub(crate) authenticator: Option<Authenticator>,
    pub(crate) response: ResponseModule,
    pub(crate) tracker: ConfidenceTracker,
    pub(crate) buffers: [Vec<Vec<f64>>; 2],
    pub(crate) recent: [Vec<Vec<f64>>; 2],
    pub(crate) events: Vec<SystemEvent>,
    pub(crate) day: f64,
    pub(crate) rng_state: [u64; 4],
    /// Window-length plan key: shape of the windows the pipeline's FFT plan
    /// was built for, so restore can re-plan before the first window
    /// arrives. `None` when no window had been extracted yet.
    pub(crate) planned_window: Option<WindowSpec>,
    /// Ring-buffer bound on the [`SystemEvent`] log. Snapshots written
    /// before the bound existed restore with the default capacity (and an
    /// over-long legacy log is truncated to its most recent entries).
    pub(crate) event_capacity: usize,
    /// Frozen per-device negative sample driving label-stable retrains
    /// (see [`NegativeEpoch`]); `None` until the first retrain drew one.
    /// Absent in pre-epoch snapshots, which restore with `None`.
    pub(crate) negative_epoch: Option<NegativeEpoch>,
    /// Per-context positive-tail factor identity from the previous
    /// shared-workspace retrain ([`KrrTailState`]); persisted because a
    /// slid factor is not bit-identical to a fresh one, so restore
    /// bit-parity depends on it. Absent in pre-tail snapshots, which
    /// restore cold (the next retrain refits from scratch).
    pub(crate) retrain_tails: [Option<KrrTailState>; 2],
    /// How retrain triggers execute ([`RetrainMode::Inline`] historically
    /// and by default; absent in pre-training-service snapshots).
    pub(crate) retrain_mode: RetrainMode,
    /// An outstanding deferred retrain, captured at trigger time. `None`
    /// when idle — and always `None` in inline mode.
    pub(crate) retrain_in_flight: Option<PersistedRetrain>,
}

/// Hand-written so that fields added after version 1 shipped can default
/// when missing — the vendored serde derive has no `#[serde(default)]`,
/// and the committed golden v1 fixture must keep restoring without a
/// version bump (the additions change no existing field's meaning).
impl serde::Deserialize for PipelineSnapshot {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        use serde::__private::get_field;
        fn field_or<T: serde::Deserialize>(
            v: &serde::Value,
            field: &str,
            default: T,
        ) -> Result<T, serde::DeError> {
            match v.get(field) {
                Some(entry) => T::from_value(entry)
                    .map_err(|e| serde::DeError::custom(format!("PipelineSnapshot.{field}: {e}"))),
                None => Ok(default),
            }
        }
        Ok(PipelineSnapshot {
            format: get_field(v, "PipelineSnapshot", "format")?,
            version: get_field(v, "PipelineSnapshot", "version")?,
            cfg: get_field(v, "PipelineSnapshot", "cfg")?,
            detector: get_field(v, "PipelineSnapshot", "detector")?,
            authenticator: get_field(v, "PipelineSnapshot", "authenticator")?,
            response: get_field(v, "PipelineSnapshot", "response")?,
            tracker: get_field(v, "PipelineSnapshot", "tracker")?,
            buffers: get_field(v, "PipelineSnapshot", "buffers")?,
            recent: get_field(v, "PipelineSnapshot", "recent")?,
            events: get_field(v, "PipelineSnapshot", "events")?,
            day: get_field(v, "PipelineSnapshot", "day")?,
            rng_state: get_field(v, "PipelineSnapshot", "rng_state")?,
            planned_window: get_field(v, "PipelineSnapshot", "planned_window")?,
            event_capacity: field_or(v, "event_capacity", crate::pipeline::DEFAULT_EVENT_CAPACITY)?,
            negative_epoch: field_or(v, "negative_epoch", None)?,
            retrain_tails: field_or(v, "retrain_tails", [None, None])?,
            retrain_mode: field_or(v, "retrain_mode", RetrainMode::Inline)?,
            retrain_in_flight: field_or(v, "retrain_in_flight", None)?,
        })
    }
}

impl PipelineSnapshot {
    /// Schema version recorded in this snapshot.
    pub fn version(&self) -> u32 {
        self.version
    }

    /// Whether the captured pipeline had finished enrollment.
    pub fn is_enrolled(&self) -> bool {
        self.authenticator.is_some()
    }

    /// Serializes to the canonical compact-JSON wire form.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("snapshot data model always serializes")
    }

    /// Parses and schema-checks a snapshot from its JSON wire form.
    ///
    /// # Errors
    ///
    /// * [`PersistError::Malformed`] for invalid JSON or invariant
    ///   violations (see [`PipelineSnapshot::validate`]);
    /// * [`PersistError::WrongFormat`] / [`PersistError::UnsupportedVersion`]
    ///   from the envelope check, which runs before body decoding.
    pub fn from_json(json: &str) -> Result<Self, PersistError> {
        // One parse of the (large) document; the envelope is checked on
        // the value tree before the body is decoded, so an incompatible
        // snapshot still fails with a version error rather than a
        // missing-field error from a different schema.
        let value: serde::Value =
            serde_json::from_str(json).map_err(|e| PersistError::Malformed(e.to_string()))?;
        let header = SnapshotHeader::from_value(&value)
            .map_err(|e| PersistError::Malformed(e.to_string()))?;
        if header.format != SNAPSHOT_FORMAT {
            return Err(PersistError::WrongFormat(header.format));
        }
        if header.version != SNAPSHOT_VERSION {
            return Err(PersistError::UnsupportedVersion {
                found: header.version,
                supported: SNAPSHOT_VERSION,
            });
        }
        let snapshot = PipelineSnapshot::from_value(&value)
            .map_err(|e| PersistError::Malformed(e.to_string()))?;
        snapshot.validate()?;
        Ok(snapshot)
    }

    /// Checks the cross-field invariants a structurally valid decode can
    /// still violate. [`SmarterYou::restore`] runs this too, so a snapshot
    /// assembled in memory gets the same scrutiny as one off the wire.
    ///
    /// # Errors
    ///
    /// [`PersistError`] variants as described on each check.
    pub fn validate(&self) -> Result<(), PersistError> {
        if self.format != SNAPSHOT_FORMAT {
            return Err(PersistError::WrongFormat(self.format.clone()));
        }
        if self.version != SNAPSHOT_VERSION {
            return Err(PersistError::UnsupportedVersion {
                found: self.version,
                supported: SNAPSHOT_VERSION,
            });
        }
        if !self.day.is_finite() {
            return Err(PersistError::Malformed(format!(
                "non-finite clock day {}",
                self.day
            )));
        }
        if self.tracker.policy().period == 0 {
            return Err(PersistError::Malformed(
                "confidence tracker period is zero".into(),
            ));
        }
        // All-zero is xoshiro256++'s degenerate fixed point (every output
        // 0 forever) and unreachable from any real generator — a restored
        // pipeline must never sample from it silently.
        if self.rng_state == [0u64; 4] {
            return Err(PersistError::Malformed(
                "all-zero RNG state is not a valid generator".into(),
            ));
        }
        if self.event_capacity == 0 {
            return Err(PersistError::Malformed("event log capacity is zero".into()));
        }
        if let Some(retrain) = &self.retrain_in_flight {
            // The captured request replays a training call: its RNG state
            // and day obey the same invariants as the pipeline's own.
            if retrain.rng_state == [0u64; 4] {
                return Err(PersistError::Malformed(
                    "all-zero RNG state in the in-flight retrain".into(),
                ));
            }
            if !retrain.day.is_finite() {
                return Err(PersistError::Malformed(format!(
                    "non-finite in-flight retrain day {}",
                    retrain.day
                )));
            }
        }
        // Every buffered feature vector must share one width, and that
        // width must match the models that will score future windows.
        let mut width: Option<usize> = self.authenticator.as_ref().map(|a| a.num_features());
        let epoch_rows = self
            .negative_epoch
            .iter()
            .flat_map(|e| e.rows().iter().enumerate())
            .map(|(ctx, buf)| ("negative epoch", ctx, buf));
        let retrain_rows = self
            .retrain_in_flight
            .iter()
            .flat_map(|r| r.positives.iter().enumerate())
            .map(|(ctx, buf)| ("in-flight retrain", ctx, buf));
        for (kind, ctx, buf) in [("enrollment", &self.buffers), ("retrain", &self.recent)]
            .into_iter()
            .flat_map(|(kind, buffers)| buffers.iter().enumerate().map(move |(c, b)| (kind, c, b)))
            .chain(epoch_rows)
            .chain(retrain_rows)
        {
            for row in buf {
                match width {
                    None => width = Some(row.len()),
                    Some(w) if row.len() == w => {}
                    Some(w) => {
                        return Err(PersistError::Malformed(format!(
                            "{kind} buffer for context {ctx} holds a {}-feature \
                             vector where {w} features are expected",
                            row.len()
                        )));
                    }
                }
            }
        }
        Ok(())
    }
}

/// Where evicted pipelines go. Implementations deal in whole snapshots and
/// must be durable enough for the deployment: an engine that evicts through
/// a store trusts [`SnapshotStore::load`] to return exactly what
/// [`SnapshotStore::save`] was given.
///
/// # Ownership epochs
///
/// When one store is shared by several engines (the sharded fleet), the
/// store doubles as the ownership arbiter: next to each snapshot it
/// persists a **monotonic per-user epoch**. An engine claims a user with
/// [`SnapshotStore::acquire`] (bumping the epoch) and passes its claimed
/// epoch to every [`SnapshotStore::save_fenced`]; a save carrying an epoch
/// older than the persisted one means another engine has since claimed the
/// user, and is rejected with [`PersistError::StaleEpoch`] — so two shards
/// can never both persist state for one live pipeline, whatever the
/// interleaving. Epochs survive restarts wherever the snapshots do.
pub trait SnapshotStore: fmt::Debug + Send {
    /// Persists `snapshot` under `id`, replacing any previous snapshot.
    /// Unfenced: single-engine deployments that never share the store may
    /// skip the epoch protocol.
    ///
    /// # Errors
    ///
    /// [`PersistError::Io`] (or store-specific variants) on failure; the
    /// engine keeps the pipeline resident when a save fails.
    fn save(&mut self, id: UserId, snapshot: &PipelineSnapshot) -> Result<(), PersistError>;

    /// Loads the snapshot stored under `id`, or `None` when absent.
    ///
    /// Note: the engine leaves a user's last-saved snapshot in place after
    /// rehydrating them (a crash-recovery copy, overwritten by the next
    /// eviction), so a store may hold entries for currently resident users.
    ///
    /// # Errors
    ///
    /// Propagates storage and decode failures.
    fn load(&mut self, id: UserId) -> Result<Option<PipelineSnapshot>, PersistError>;

    /// Drops the snapshot stored under `id` (no-op when absent) — but
    /// **retains the ownership epoch as a tombstone**. Deleting the epoch
    /// would reset the fence to 0, letting an engine that still holds a
    /// stale claim pass [`SnapshotStore::save_fenced`] and resurrect a
    /// deregistered user; keeping it means such a save stays a typed
    /// [`PersistError::StaleEpoch`] even across remove + re-register.
    ///
    /// # Errors
    ///
    /// [`PersistError::Io`] on storage failure.
    fn remove(&mut self, id: UserId) -> Result<(), PersistError>;

    /// The ownership epoch persisted for `id` (0 when never acquired).
    ///
    /// # Errors
    ///
    /// [`PersistError::Io`] on storage failure.
    fn epoch(&mut self, id: UserId) -> Result<u64, PersistError>;

    /// Claims the next ownership epoch for `id`: persists and returns
    /// `epoch(id) + 1`. From this instant any engine still holding an older
    /// epoch is fenced out — its next [`SnapshotStore::save_fenced`] fails.
    ///
    /// # Errors
    ///
    /// [`PersistError::Io`] on storage failure.
    fn acquire(&mut self, id: UserId) -> Result<u64, PersistError>;

    /// Compare-and-swap form of [`SnapshotStore::acquire`]: claims epoch
    /// `expected + 1` **iff** the persisted epoch is exactly `expected`,
    /// returning the newly held epoch. A mismatch is a typed
    /// [`PersistError::StaleEpoch`] carrying the actual stored epoch — the
    /// caller lost an ownership race (or holds outdated knowledge) and
    /// must not adopt the user.
    ///
    /// The default implementation is check-then-acquire, which is atomic
    /// only for stores driven from one thread at a time; a store shared
    /// across threads or processes must make the CAS genuinely atomic
    /// ([`SharedSnapshotStore`] holds its mutex across the compound call,
    /// [`FileSnapshotStore`] serializes through a per-user lock file).
    ///
    /// # Errors
    ///
    /// [`PersistError::StaleEpoch`] when the stored epoch is not
    /// `expected`; [`PersistError::Io`] on storage failure.
    fn acquire_cas(&mut self, id: UserId, expected: u64) -> Result<u64, PersistError> {
        let stored = self.epoch(id)?;
        if stored != expected {
            return Err(PersistError::StaleEpoch {
                id,
                held: expected,
                stored,
            });
        }
        self.acquire(id)
    }

    /// [`SnapshotStore::save`] guarded by the ownership fence: rejected
    /// with [`PersistError::StaleEpoch`] when `epoch` is older than the
    /// persisted epoch for `id`. Nothing is written on rejection.
    ///
    /// # Errors
    ///
    /// [`PersistError::StaleEpoch`] on a lost ownership race;
    /// [`PersistError::Io`] on storage failure.
    fn save_fenced(
        &mut self,
        id: UserId,
        epoch: u64,
        snapshot: &PipelineSnapshot,
    ) -> Result<(), PersistError> {
        let stored = self.epoch(id)?;
        if epoch < stored {
            return Err(PersistError::StaleEpoch {
                id,
                held: epoch,
                stored,
            });
        }
        self.save(id, snapshot)
    }

    /// Number of snapshots currently stored. A convenience view that may
    /// report 0 when the backing storage is unreadable — callers that must
    /// distinguish "empty" from "broken" use [`SnapshotStore::try_len`].
    fn len(&self) -> usize;

    /// Number of snapshots currently stored, with storage failures
    /// surfaced instead of swallowed: an unreadable store directory is
    /// [`PersistError::Io`], never a silent `Ok(0)`.
    ///
    /// # Errors
    ///
    /// [`PersistError::Io`] when the backing storage cannot be enumerated.
    fn try_len(&self) -> Result<usize, PersistError> {
        Ok(self.len())
    }

    /// Whether the store holds no snapshots.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// In-memory [`SnapshotStore`] keeping each snapshot as its serialized JSON
/// wire form — saves and loads go through the full encode/decode path, so
/// even in-process eviction proves the round-trip, and the stored bytes are
/// exactly what a cross-process shard handoff would ship.
#[derive(Debug, Default)]
pub struct MemorySnapshotStore {
    entries: HashMap<usize, String>,
    epochs: HashMap<usize, u64>,
}

impl MemorySnapshotStore {
    /// An empty store.
    pub fn new() -> Self {
        MemorySnapshotStore::default()
    }

    /// Total bytes of serialized snapshots held.
    pub fn stored_bytes(&self) -> usize {
        self.entries.values().map(String::len).sum()
    }
}

impl SnapshotStore for MemorySnapshotStore {
    fn save(&mut self, id: UserId, snapshot: &PipelineSnapshot) -> Result<(), PersistError> {
        self.entries.insert(id.0, snapshot.to_json());
        Ok(())
    }

    fn load(&mut self, id: UserId) -> Result<Option<PipelineSnapshot>, PersistError> {
        self.entries
            .get(&id.0)
            .map(|json| PipelineSnapshot::from_json(json))
            .transpose()
    }

    fn remove(&mut self, id: UserId) -> Result<(), PersistError> {
        // The epoch stays behind as a tombstone — see the trait docs.
        self.entries.remove(&id.0);
        Ok(())
    }

    fn epoch(&mut self, id: UserId) -> Result<u64, PersistError> {
        Ok(self.epochs.get(&id.0).copied().unwrap_or(0))
    }

    fn acquire(&mut self, id: UserId) -> Result<u64, PersistError> {
        let epoch = self.epochs.entry(id.0).or_insert(0);
        *epoch += 1;
        Ok(*epoch)
    }

    fn len(&self) -> usize {
        self.entries.len()
    }
}

/// One write-ahead-journal record: the intent (or commit) of a compound
/// store operation, persisted *before* the operation's data write so a
/// crash in between leaves evidence instead of ambiguity. One record per
/// journal file; the journal itself is written atomically, so recovery
/// only ever sees a whole record or no journal at all.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct JournalRecord {
    /// `"save"`, `"acquire"`, or `"remove"`.
    op: String,
    /// `"intent"` (data write may or may not have landed) or `"commit"`
    /// (data write landed; only the journal cleanup remained).
    state: String,
    /// For saves: the fence epoch the save carried (0 when unfenced).
    /// For acquires: the epoch being claimed.
    epoch: u64,
    /// For saves: FNV-1a hash of the snapshot JSON being written, so
    /// recovery can tell whether the data write landed.
    hash: u64,
    /// For saves: byte length of the snapshot JSON (a cheap pre-filter for
    /// the hash comparison).
    len: u64,
}

/// How a stranded write-ahead journal was resolved during recovery — the
/// store's verdict on what a crashed process's in-flight operation
/// amounted to. Survivors use this to pick the correct replay point: a
/// committed save means the crashed owner's last window checkpoint landed;
/// a rolled-back save means it did not and the window must be re-derived.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JournalResolution {
    /// The interrupted save's data write landed (or the save had already
    /// committed); the stored snapshot is the journaled one.
    SaveCommitted {
        /// Fence epoch the save carried (0 when unfenced).
        epoch: u64,
    },
    /// The interrupted save never wrote its data; the stored snapshot is
    /// the previous committed one.
    SaveRolledBack {
        /// Fence epoch the save carried (0 when unfenced).
        epoch: u64,
    },
    /// The interrupted acquire's epoch bump landed: the (now dead) claimant
    /// holds `to` on disk, and the next CAS must expect it.
    AcquireCommitted {
        /// The epoch the crashed claimant had claimed.
        to: u64,
    },
    /// The interrupted acquire never bumped the epoch; the previous owner's
    /// claim stands.
    AcquireRolledBack {
        /// The epoch the crashed claimant was trying to claim.
        to: u64,
    },
    /// The interrupted remove deleted the snapshot (tombstoned epoch
    /// retained either way).
    RemoveCommitted,
    /// The interrupted remove never deleted the snapshot.
    RemoveRolledBack,
}

/// What [`FileSnapshotStore::new`] cleaned up while opening a directory —
/// the crash debris of whatever process died over it.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RecoveryReport {
    /// Orphaned `*.tmp` files swept (a crash between temp-write and
    /// rename). Never counted by `len()` and never loadable.
    pub swept_temps: usize,
    /// Per-user lock files whose holding process is provably dead.
    pub stale_locks: usize,
    /// Stranded journals resolved, as `(file stem, resolution)` pairs.
    pub journals: Vec<(String, JournalResolution)>,
}

/// RAII guard for a per-user lock file: the path exists for exactly as
/// long as the guard lives. Dropped on unwind too — which is why the
/// crash-faithful fault mode is `abort` (no unwinding), leaving the lock
/// held for the survivor's staleness check to reap.
#[derive(Debug)]
struct StemLock {
    path: PathBuf,
}

impl Drop for StemLock {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

/// FNV-1a over the snapshot wire bytes: cheap, dependency-free, and stable
/// across processes — exactly what the journal needs to decide whether an
/// interrupted data write landed (this is integrity evidence against a
/// *crash*, not an adversary).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// How long a lock attempt spins against a *live* holder before giving up
/// with a typed error. Compound store ops are milliseconds; seconds of
/// contention means something is wedged.
const LOCK_PATIENCE: Duration = Duration::from_secs(5);
/// Sleep between lock attempts while a live holder works.
const LOCK_RETRY_SLEEP: Duration = Duration::from_millis(2);
/// Age past which a lock file with no readable holder PID (the holder died
/// between creating the file and writing its PID, or the platform has no
/// liveness probe) is considered abandoned.
const LOCK_UNKNOWN_HOLDER_GRACE: Duration = Duration::from_secs(10);
/// Bound on unconditional-acquire CAS retries; beyond this the store
/// reports contention instead of livelocking.
const ACQUIRE_RETRY_LIMIT: u32 = 64;

/// File-backed [`SnapshotStore`]: one `<user>.snapshot.json` per user in a
/// directory, written atomically (temp file + rename) so a crash mid-save
/// never leaves a truncated snapshot under the user's name.
///
/// # Cross-process crash safety
///
/// This store is safe to share between OS processes over one directory:
///
/// * Every compound operation (fenced save, epoch acquire, remove) is
///   serialized by a per-user **lock file** (`<user>.lock`, created with
///   `O_EXCL`, holding the owner's PID). A lock whose holder is provably
///   dead is stolen and the dead holder's debris recovered first.
/// * Each compound operation runs under a per-user **write-ahead journal**
///   (`<user>.journal`): intent record → data write → commit record →
///   journal removal, every step an atomic rename. A process killed at any
///   point leaves a journal that [`FileSnapshotStore::new`] (or the next
///   lock winner) resolves to a consistent snapshot+epoch pair — see
///   [`JournalResolution`].
/// * [`SnapshotStore::acquire_cas`] is a true compare-and-swap under the
///   lock: of N processes racing to claim epoch `e+1`, exactly one wins
///   and the rest get typed [`PersistError::StaleEpoch`].
///
/// A [`FaultPlan`] can be injected at construction to kill the process at
/// any labeled protocol point ([`crate::fault::points`]); production code
/// paths pay one branch per point.
#[derive(Debug)]
pub struct FileSnapshotStore {
    dir: PathBuf,
    fault: Option<Arc<FaultPlan>>,
    recovery: RecoveryReport,
}

impl FileSnapshotStore {
    /// Opens (creating if needed) a snapshot directory, then runs crash
    /// recovery over it: sweeps orphaned `*.tmp` files, reaps lock files
    /// whose holders are dead, and resolves stranded write-ahead journals.
    /// The findings are available from
    /// [`FileSnapshotStore::recovery_report`].
    ///
    /// # Errors
    ///
    /// [`PersistError::Io`] when the directory cannot be created or
    /// enumerated; [`PersistError::Malformed`] when a stranded journal is
    /// unparseable.
    pub fn new(dir: impl Into<PathBuf>) -> Result<Self, PersistError> {
        Self::open(dir.into(), None)
    }

    /// [`FileSnapshotStore::new`] with a kill-point [`FaultPlan`] armed —
    /// the crash-recovery test matrix's entry point.
    ///
    /// # Errors
    ///
    /// As [`FileSnapshotStore::new`].
    pub fn with_fault_plan(
        dir: impl Into<PathBuf>,
        plan: Arc<FaultPlan>,
    ) -> Result<Self, PersistError> {
        Self::open(dir.into(), Some(plan))
    }

    fn open(dir: PathBuf, fault: Option<Arc<FaultPlan>>) -> Result<Self, PersistError> {
        std::fs::create_dir_all(&dir)
            .map_err(|e| PersistError::Io(format!("create {}: {e}", dir.display())))?;
        let mut store = FileSnapshotStore {
            dir,
            fault,
            recovery: RecoveryReport::default(),
        };
        store.recovery = store.recover_all()?;
        Ok(store)
    }

    /// The directory snapshots are stored in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// What opening this store cleaned up (crash debris of a previous
    /// process). Survivor logic reads the journal resolutions here to pick
    /// its replay point after adopting a crashed node's users.
    pub fn recovery_report(&self) -> &RecoveryReport {
        &self.recovery
    }

    /// Runs crash recovery for one user on demand: takes the per-user lock
    /// (stealing it from a dead holder if needed) and resolves any
    /// stranded journal. Returns the resolution, or `None` when there was
    /// nothing to recover. Useful when adopting a user from a node that
    /// died *after* this store was opened.
    ///
    /// # Errors
    ///
    /// [`PersistError::Io`] on lock contention against a live holder or
    /// storage failure; [`PersistError::Malformed`] for an unparseable
    /// journal.
    pub fn recover_user(&mut self, id: UserId) -> Result<Option<JournalResolution>, PersistError> {
        let stem = id.to_string();
        let (_lock, resolution) = self.lock_stem(&stem)?;
        Ok(resolution)
    }

    fn snapshot_path_of(&self, stem: &str) -> PathBuf {
        self.dir.join(format!("{stem}.snapshot.json"))
    }

    /// Sidecar carrying the ownership epoch — separate from the snapshot so
    /// pre-epoch snapshot files keep loading (a missing sidecar reads as
    /// epoch 0) and an [`SnapshotStore::acquire`] never rewrites the (much
    /// larger) snapshot body.
    fn epoch_path_of(&self, stem: &str) -> PathBuf {
        self.dir.join(format!("{stem}.epoch"))
    }

    fn lock_path_of(&self, stem: &str) -> PathBuf {
        self.dir.join(format!("{stem}.lock"))
    }

    fn journal_path_of(&self, stem: &str) -> PathBuf {
        self.dir.join(format!("{stem}.journal"))
    }

    fn fault_hit(&self, label: &str) {
        if let Some(plan) = &self.fault {
            plan.hit(label);
        }
    }

    /// Atomically writes `content` to `path` (temp file + fsync + rename +
    /// directory sync), so a crash mid-write never leaves a truncated file
    /// under the final name.
    fn write_atomic(&self, path: &Path, content: &str) -> Result<(), PersistError> {
        use std::io::Write;
        let tmp = path.with_extension(
            path.extension()
                .map(|e| format!("{}.tmp", e.to_string_lossy()))
                .unwrap_or_else(|| "tmp".to_string()),
        );
        // Write + fsync the temp file *before* the rename: journalling
        // filesystems may commit the rename ahead of the data blocks, and
        // an un-synced rename could surface an empty file under the final
        // name after a crash.
        let mut file = std::fs::File::create(&tmp)
            .map_err(|e| PersistError::Io(format!("create {}: {e}", tmp.display())))?;
        file.write_all(content.as_bytes())
            .map_err(|e| PersistError::Io(format!("write {}: {e}", tmp.display())))?;
        file.sync_all()
            .map_err(|e| PersistError::Io(format!("sync {}: {e}", tmp.display())))?;
        drop(file);
        std::fs::rename(&tmp, path)
            .map_err(|e| PersistError::Io(format!("rename to {}: {e}", path.display())))?;
        // Sync the directory too: callers drop their in-memory copy the
        // moment this returns, so the rename itself must be durable, not
        // just the file contents.
        std::fs::File::open(&self.dir)
            .and_then(|dir| dir.sync_all())
            .map_err(|e| PersistError::Io(format!("sync {}: {e}", self.dir.display())))
    }

    /// Whether the process named in a lock file is provably no longer
    /// running. Conservative: "unknown" means *not* dead (except for very
    /// old locks with no readable PID).
    fn lock_holder_dead(path: &Path) -> bool {
        let content = std::fs::read_to_string(path).unwrap_or_default();
        match content.trim().parse::<u32>() {
            Ok(pid) if pid == std::process::id() => false,
            Ok(pid) => {
                if cfg!(target_os = "linux") {
                    // PID liveness via procfs. A recycled PID reads as
                    // alive — the safe direction (we wait instead of
                    // stealing a live holder's lock).
                    !Path::new("/proc").join(pid.to_string()).exists()
                } else {
                    Self::lock_older_than(path, LOCK_UNKNOWN_HOLDER_GRACE)
                }
            }
            // The holder died between creating the lock and writing its
            // PID (or the file is unreadable): only age can convict it.
            Err(_) => Self::lock_older_than(path, LOCK_UNKNOWN_HOLDER_GRACE),
        }
    }

    fn lock_older_than(path: &Path, age: Duration) -> bool {
        path.metadata()
            .and_then(|m| m.modified())
            .ok()
            .and_then(|t| t.elapsed().ok())
            .map(|elapsed| elapsed > age)
            .unwrap_or(false)
    }

    /// One attempt to take the per-user lock: `Ok(Some(..))` on success
    /// (with any stranded journal already resolved), `Ok(None)` when a
    /// live process holds it. Dead holders are reaped inline.
    fn try_lock_stem(
        &self,
        stem: &str,
    ) -> Result<Option<(StemLock, Option<JournalResolution>)>, PersistError> {
        use std::io::Write;
        let path = self.lock_path_of(stem);
        loop {
            match std::fs::OpenOptions::new()
                .write(true)
                .create_new(true)
                .open(&path)
            {
                Ok(mut file) => {
                    // Best-effort PID stamp: failing to write it only
                    // degrades a future staleness check to the age rule.
                    let _ = write!(file, "{}", std::process::id());
                    let _ = file.sync_all();
                    let guard = StemLock { path };
                    // Whoever wins the lock inherits the duty of resolving
                    // the previous (possibly crashed) holder's journal
                    // before building on the files it governs.
                    let resolution = self.resolve_journal(stem)?;
                    return Ok(Some((guard, resolution)));
                }
                Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => {
                    if Self::lock_holder_dead(&path) {
                        // Reap and retry; racing survivors may both
                        // remove (idempotent) — exactly one wins the
                        // subsequent create_new.
                        let _ = std::fs::remove_file(&path);
                        continue;
                    }
                    return Ok(None);
                }
                Err(e) => {
                    return Err(PersistError::Io(format!(
                        "create lock {}: {e}",
                        path.display()
                    )));
                }
            }
        }
    }

    /// Takes the per-user lock, waiting out a live holder up to
    /// [`LOCK_PATIENCE`]. Returns the guard plus any journal resolution
    /// performed on the way in.
    fn lock_stem(&self, stem: &str) -> Result<(StemLock, Option<JournalResolution>), PersistError> {
        let deadline = std::time::Instant::now() + LOCK_PATIENCE;
        loop {
            if let Some(locked) = self.try_lock_stem(stem)? {
                return Ok(locked);
            }
            if std::time::Instant::now() >= deadline {
                return Err(PersistError::Io(format!(
                    "lock {}: held by a live process past {:?}",
                    self.lock_path_of(stem).display(),
                    LOCK_PATIENCE
                )));
            }
            std::thread::sleep(LOCK_RETRY_SLEEP);
        }
    }

    /// Resolves the stranded journal for `stem`, if any. Caller must hold
    /// the per-user lock (or otherwise have exclusive access). See
    /// [`JournalResolution`] for the verdicts; the journal file is removed
    /// once resolved.
    fn resolve_journal(&self, stem: &str) -> Result<Option<JournalResolution>, PersistError> {
        let jpath = self.journal_path_of(stem);
        let text = match std::fs::read_to_string(&jpath) {
            Ok(text) => text,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(PersistError::Io(format!("read {}: {e}", jpath.display()))),
        };
        let record: JournalRecord = serde_json::from_str(&text)
            .map_err(|e| PersistError::Malformed(format!("journal {}: {e}", jpath.display())))?;
        let resolution = match (record.op.as_str(), record.state.as_str()) {
            ("save", "commit") => JournalResolution::SaveCommitted {
                epoch: record.epoch,
            },
            ("save", "intent") => {
                // Did the interrupted data write land? The snapshot file
                // is only ever replaced by a whole atomic rename, so its
                // content is either the journaled write or the previous
                // committed one — the hash decides which.
                let landed = match std::fs::read(self.snapshot_path_of(stem)) {
                    Ok(bytes) => bytes.len() as u64 == record.len && fnv1a(&bytes) == record.hash,
                    Err(_) => false,
                };
                if landed {
                    JournalResolution::SaveCommitted {
                        epoch: record.epoch,
                    }
                } else {
                    JournalResolution::SaveRolledBack {
                        epoch: record.epoch,
                    }
                }
            }
            ("acquire", "commit") => JournalResolution::AcquireCommitted { to: record.epoch },
            ("acquire", "intent") => {
                let stored = self.read_epoch(stem)?;
                if stored >= record.epoch {
                    JournalResolution::AcquireCommitted { to: record.epoch }
                } else {
                    JournalResolution::AcquireRolledBack { to: record.epoch }
                }
            }
            ("remove", "commit") => JournalResolution::RemoveCommitted,
            ("remove", "intent") => {
                if self.snapshot_path_of(stem).exists() {
                    JournalResolution::RemoveRolledBack
                } else {
                    JournalResolution::RemoveCommitted
                }
            }
            (op, state) => {
                return Err(PersistError::Malformed(format!(
                    "journal {}: unknown op/state `{op}`/`{state}`",
                    jpath.display()
                )));
            }
        };
        self.remove_journal(stem)?;
        Ok(Some(resolution))
    }

    /// Removes the journal file (the final step of every compound op) and
    /// makes the removal durable.
    fn remove_journal(&self, stem: &str) -> Result<(), PersistError> {
        let jpath = self.journal_path_of(stem);
        match std::fs::remove_file(&jpath) {
            Ok(()) => {}
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(PersistError::Io(format!("remove {}: {e}", jpath.display()))),
        }
        std::fs::File::open(&self.dir)
            .and_then(|dir| dir.sync_all())
            .map_err(|e| PersistError::Io(format!("sync {}: {e}", self.dir.display())))
    }

    /// Reads the epoch sidecar for `stem` (0 when absent). A corrupt
    /// sidecar is on-disk corruption, not transient I/O — typed
    /// [`PersistError::Malformed`] so recovery policy can tell them apart.
    fn read_epoch(&self, stem: &str) -> Result<u64, PersistError> {
        let path = self.epoch_path_of(stem);
        match std::fs::read_to_string(&path) {
            Ok(text) => text.trim().parse::<u64>().map_err(|e| {
                PersistError::Malformed(format!("corrupt epoch file {}: {e}", path.display()))
            }),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(0),
            Err(e) => Err(PersistError::Io(format!("read {}: {e}", path.display()))),
        }
    }

    /// The open-time sweep: orphaned temps, dead holders' locks, stranded
    /// journals. Users whose lock is held by a *live* process are skipped
    /// entirely — that holder owns their cleanup.
    fn recover_all(&mut self) -> Result<RecoveryReport, PersistError> {
        let mut report = RecoveryReport::default();
        let mut temps = Vec::new();
        let mut locks = Vec::new();
        let mut journal_stems = Vec::new();
        let entries = std::fs::read_dir(&self.dir)
            .map_err(|e| PersistError::Io(format!("read dir {}: {e}", self.dir.display())))?;
        for entry in entries {
            let entry = entry
                .map_err(|e| PersistError::Io(format!("read dir {}: {e}", self.dir.display())))?;
            let name = entry.file_name().to_string_lossy().into_owned();
            if name.ends_with(".tmp") {
                temps.push(entry.path());
            } else if name.ends_with(".lock") {
                locks.push(entry.path());
            } else if let Some(stem) = name.strip_suffix(".journal") {
                journal_stems.push(stem.to_string());
            }
        }
        // Temps first: a half-written journal or snapshot temp must be gone
        // before journals are interpreted. Sweeping can race a live
        // writer's in-flight temp; the writer's rename then fails with a
        // typed Io error and its engine keeps the pipeline resident —
        // never a corrupt file. (Fleet deployments open stores before
        // serving, so in practice the directory is quiet here.)
        for tmp in temps {
            if std::fs::remove_file(&tmp).is_ok() {
                report.swept_temps += 1;
            }
        }
        for lock in locks {
            if Self::lock_holder_dead(&lock) && std::fs::remove_file(&lock).is_ok() {
                report.stale_locks += 1;
            }
        }
        for stem in journal_stems {
            // A journal under a live holder's lock is that holder's to
            // finish; try once and move on.
            match self.try_lock_stem(&stem)? {
                Some((_lock, Some(resolution))) => report.journals.push((stem, resolution)),
                Some((_lock, None)) => {}
                None => {}
            }
        }
        Ok(report)
    }

    /// The shared body of [`SnapshotStore::save`] and
    /// [`SnapshotStore::save_fenced`]: fence check (when `fence` is given),
    /// then journaled atomic write, all under the per-user lock.
    fn save_journaled(
        &mut self,
        id: UserId,
        snapshot: &PipelineSnapshot,
        fence: Option<u64>,
    ) -> Result<(), PersistError> {
        self.fault_hit(points::SAVE_ENTER);
        let stem = id.to_string();
        let (_lock, _prior) = self.lock_stem(&stem)?;
        if let Some(held) = fence {
            let stored = self.read_epoch(&stem)?;
            if held < stored {
                return Err(PersistError::StaleEpoch { id, held, stored });
            }
        }
        let json = snapshot.to_json();
        let mut record = JournalRecord {
            op: "save".to_string(),
            state: "intent".to_string(),
            epoch: fence.unwrap_or(0),
            hash: fnv1a(json.as_bytes()),
            len: json.len() as u64,
        };
        let jpath = self.journal_path_of(&stem);
        self.write_atomic(
            &jpath,
            &serde_json::to_string(&record).expect("journal record serializes"),
        )?;
        self.fault_hit(points::SAVE_INTENT);
        self.write_atomic(&self.snapshot_path_of(&stem), &json)?;
        self.fault_hit(points::SAVE_DATA);
        record.state = "commit".to_string();
        self.write_atomic(
            &jpath,
            &serde_json::to_string(&record).expect("journal record serializes"),
        )?;
        self.fault_hit(points::SAVE_COMMIT);
        self.remove_journal(&stem)
    }
}

impl SnapshotStore for FileSnapshotStore {
    fn save(&mut self, id: UserId, snapshot: &PipelineSnapshot) -> Result<(), PersistError> {
        self.save_journaled(id, snapshot, None)
    }

    fn save_fenced(
        &mut self,
        id: UserId,
        epoch: u64,
        snapshot: &PipelineSnapshot,
    ) -> Result<(), PersistError> {
        // Unlike the trait's default check-then-save, the check and the
        // write share one per-user lock hold — a concurrent cross-process
        // acquire cannot slip between them.
        self.save_journaled(id, snapshot, Some(epoch))
    }

    fn load(&mut self, id: UserId) -> Result<Option<PipelineSnapshot>, PersistError> {
        let path = self.snapshot_path_of(&id.to_string());
        match std::fs::read_to_string(&path) {
            Ok(json) => PipelineSnapshot::from_json(&json).map(Some),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(PersistError::Io(format!("read {}: {e}", path.display()))),
        }
    }

    fn remove(&mut self, id: UserId) -> Result<(), PersistError> {
        self.fault_hit(points::REMOVE_ENTER);
        let stem = id.to_string();
        let (_lock, _prior) = self.lock_stem(&stem)?;
        let record = JournalRecord {
            op: "remove".to_string(),
            state: "intent".to_string(),
            epoch: 0,
            hash: 0,
            len: 0,
        };
        let jpath = self.journal_path_of(&stem);
        self.write_atomic(
            &jpath,
            &serde_json::to_string(&record).expect("journal record serializes"),
        )?;
        let path = self.snapshot_path_of(&stem);
        match std::fs::remove_file(&path) {
            Ok(()) => {}
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(PersistError::Io(format!("remove {}: {e}", path.display()))),
        }
        self.fault_hit(points::REMOVE_DATA);
        // The `.epoch` sidecar is deliberately left behind as a tombstone —
        // see the trait docs on `remove`.
        self.remove_journal(&stem)
    }

    fn epoch(&mut self, id: UserId) -> Result<u64, PersistError> {
        self.read_epoch(&id.to_string())
    }

    fn acquire(&mut self, id: UserId) -> Result<u64, PersistError> {
        // Unconditional claim as a bounded CAS retry loop: each round reads
        // the current epoch and race-safely claims the next; losing a round
        // just means someone else moved the epoch first.
        for _ in 0..ACQUIRE_RETRY_LIMIT {
            let current = self.epoch(id)?;
            match self.acquire_cas(id, current) {
                Err(PersistError::StaleEpoch { .. }) => continue,
                outcome => return outcome,
            }
        }
        Err(PersistError::Io(format!(
            "acquire {id}: CAS retry limit ({ACQUIRE_RETRY_LIMIT}) exhausted under contention"
        )))
    }

    fn acquire_cas(&mut self, id: UserId, expected: u64) -> Result<u64, PersistError> {
        self.fault_hit(points::ACQUIRE_ENTER);
        let stem = id.to_string();
        let (_lock, _prior) = self.lock_stem(&stem)?;
        let stored = self.read_epoch(&stem)?;
        if stored != expected {
            return Err(PersistError::StaleEpoch {
                id,
                held: expected,
                stored,
            });
        }
        let next = expected + 1;
        let mut record = JournalRecord {
            op: "acquire".to_string(),
            state: "intent".to_string(),
            epoch: next,
            hash: 0,
            len: 0,
        };
        let jpath = self.journal_path_of(&stem);
        self.write_atomic(
            &jpath,
            &serde_json::to_string(&record).expect("journal record serializes"),
        )?;
        self.fault_hit(points::ACQUIRE_INTENT);
        self.write_atomic(&self.epoch_path_of(&stem), &next.to_string())?;
        self.fault_hit(points::ACQUIRE_EPOCH);
        record.state = "commit".to_string();
        self.write_atomic(
            &jpath,
            &serde_json::to_string(&record).expect("journal record serializes"),
        )?;
        self.fault_hit(points::ACQUIRE_COMMIT);
        self.remove_journal(&stem)?;
        Ok(next)
    }

    fn len(&self) -> usize {
        self.try_len().unwrap_or(0)
    }

    fn try_len(&self) -> Result<usize, PersistError> {
        let entries = std::fs::read_dir(&self.dir)
            .map_err(|e| PersistError::Io(format!("read dir {}: {e}", self.dir.display())))?;
        let mut count = 0;
        for entry in entries {
            let entry = entry
                .map_err(|e| PersistError::Io(format!("read dir {}: {e}", self.dir.display())))?;
            if entry
                .file_name()
                .to_string_lossy()
                .ends_with(".snapshot.json")
            {
                count += 1;
            }
        }
        Ok(count)
    }
}

/// A cloneable [`SnapshotStore`] handle letting several engines — the
/// shards of a [`ShardedFleet`](crate::engine::shard::ShardedFleet) —
/// share one underlying store. Every operation takes the store mutex, so a
/// compound fenced save (epoch check + write) is atomic with respect to
/// the other shards, which is exactly what makes the ownership fence
/// race-free in-process. For cross-process sharding the same contract must
/// come from the backing storage (compare-and-swap on the epoch).
#[derive(Debug, Clone)]
pub struct SharedSnapshotStore {
    inner: std::sync::Arc<parking_lot::Mutex<Box<dyn SnapshotStore>>>,
}

impl SharedSnapshotStore {
    /// Wraps `store` for sharing; clone the handle once per shard.
    pub fn new(store: Box<dyn SnapshotStore>) -> Self {
        SharedSnapshotStore {
            inner: std::sync::Arc::new(parking_lot::Mutex::new(store)),
        }
    }

    /// Runs `f` with exclusive access to the underlying store (e.g. for
    /// operational tooling inspecting parked snapshots).
    pub fn with_store<R>(&self, f: impl FnOnce(&mut dyn SnapshotStore) -> R) -> R {
        f(&mut **self.inner.lock())
    }
}

impl SnapshotStore for SharedSnapshotStore {
    fn save(&mut self, id: UserId, snapshot: &PipelineSnapshot) -> Result<(), PersistError> {
        self.inner.lock().save(id, snapshot)
    }

    fn load(&mut self, id: UserId) -> Result<Option<PipelineSnapshot>, PersistError> {
        self.inner.lock().load(id)
    }

    fn remove(&mut self, id: UserId) -> Result<(), PersistError> {
        self.inner.lock().remove(id)
    }

    fn epoch(&mut self, id: UserId) -> Result<u64, PersistError> {
        self.inner.lock().epoch(id)
    }

    fn acquire(&mut self, id: UserId) -> Result<u64, PersistError> {
        self.inner.lock().acquire(id)
    }

    fn acquire_cas(&mut self, id: UserId, expected: u64) -> Result<u64, PersistError> {
        // One mutex hold across the whole compound CAS — in-process racers
        // serialize here; the inner store's own protocol (if any) handles
        // cross-process racers.
        self.inner.lock().acquire_cas(id, expected)
    }

    fn save_fenced(
        &mut self,
        id: UserId,
        epoch: u64,
        snapshot: &PipelineSnapshot,
    ) -> Result<(), PersistError> {
        // One mutex hold across check + write: the fence must not
        // interleave with another shard's acquire. Delegating (rather than
        // re-implementing check-then-save here) also preserves the inner
        // store's own compound protocol — a file-backed store fences under
        // its cross-process per-user lock.
        self.inner.lock().save_fenced(id, epoch, snapshot)
    }

    fn len(&self) -> usize {
        self.inner.lock().len()
    }

    fn try_len(&self) -> Result<usize, PersistError> {
        self.inner.lock().try_len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A minimal structurally valid snapshot (enrollment phase, nothing
    /// buffered) for format-level tests; full-pipeline round-trips live in
    /// the integration suites.
    fn minimal_snapshot() -> PipelineSnapshot {
        use crate::features::FeatureExtractor;
        use crate::response::ResponsePolicy;
        use crate::retrain::RetrainPolicy;
        use rand::rngs::StdRng;
        use rand::SeedableRng;

        let extractor = FeatureExtractor::paper_default(50.0);
        let mut rng: StdRng = SeedableRng::seed_from_u64(7);
        let detector = crate::context_detect::ContextDetector::train(
            extractor,
            &[
                vec![0.0, 1.0],
                vec![1.0, 0.0],
                vec![0.1, 0.9],
                vec![0.9, 0.1],
            ],
            &[
                smarteryou_sensors::UsageContext::Stationary,
                smarteryou_sensors::UsageContext::Moving,
                smarteryou_sensors::UsageContext::Stationary,
                smarteryou_sensors::UsageContext::Moving,
            ],
            crate::context_detect::ContextDetectorConfig {
                num_trees: 2,
                max_depth: 2,
            },
            &mut rng,
        )
        .unwrap();
        PipelineSnapshot {
            format: SNAPSHOT_FORMAT.to_string(),
            version: SNAPSHOT_VERSION,
            cfg: SystemConfig::paper_default(),
            detector,
            authenticator: None,
            response: ResponseModule::new(ResponsePolicy::default()),
            tracker: ConfidenceTracker::new(RetrainPolicy::default()),
            buffers: [vec![vec![1.0, 2.0]], Vec::new()],
            recent: [Vec::new(), Vec::new()],
            events: vec![SystemEvent::EnrollmentComplete { day: 0.5 }],
            day: 0.5,
            rng_state: [1, 2, 3, u64::MAX],
            planned_window: Some(WindowSpec::from_seconds(6.0, 50.0)),
            event_capacity: crate::pipeline::DEFAULT_EVENT_CAPACITY,
            negative_epoch: None,
            retrain_tails: [None, None],
            retrain_mode: RetrainMode::Inline,
            retrain_in_flight: None,
        }
    }

    #[test]
    fn json_roundtrip_preserves_every_field() {
        let snap = minimal_snapshot();
        let back = PipelineSnapshot::from_json(&snap.to_json()).unwrap();
        assert_eq!(snap, back);
        assert_eq!(back.version(), SNAPSHOT_VERSION);
        assert!(!back.is_enrolled());
    }

    #[test]
    fn wrong_format_and_version_are_typed_errors() {
        let snap = minimal_snapshot();
        let json = snap.to_json();
        let wrong = json.replacen(SNAPSHOT_FORMAT, "someone.else", 1);
        assert!(matches!(
            PipelineSnapshot::from_json(&wrong),
            Err(PersistError::WrongFormat(f)) if f == "someone.else"
        ));
        let newer = json.replacen("\"version\":1", "\"version\":2", 1);
        assert_ne!(newer, json);
        assert!(matches!(
            PipelineSnapshot::from_json(&newer),
            Err(PersistError::UnsupportedVersion {
                found: 2,
                supported: SNAPSHOT_VERSION
            })
        ));
    }

    #[test]
    fn ragged_buffers_are_rejected() {
        let mut snap = minimal_snapshot();
        snap.buffers[1].push(vec![1.0, 2.0, 3.0]); // width 3 vs width 2
        assert!(matches!(
            PipelineSnapshot::from_json(&snap.to_json()),
            Err(PersistError::Malformed(_))
        ));
    }

    #[test]
    fn all_zero_rng_state_is_rejected() {
        let mut snap = minimal_snapshot();
        snap.rng_state = [0; 4];
        assert!(matches!(
            snap.validate(),
            Err(PersistError::Malformed(msg)) if msg.contains("RNG")
        ));
    }

    #[test]
    fn memory_store_roundtrips_and_counts() {
        let mut store = MemorySnapshotStore::new();
        let snap = minimal_snapshot();
        assert!(store.is_empty());
        assert_eq!(store.load(UserId(3)).unwrap(), None);
        store.save(UserId(3), &snap).unwrap();
        assert_eq!(store.len(), 1);
        assert!(store.stored_bytes() > 0);
        assert_eq!(store.load(UserId(3)).unwrap(), Some(snap));
        store.remove(UserId(3)).unwrap();
        assert!(store.is_empty());
    }

    #[test]
    fn legacy_snapshot_without_new_fields_restores_with_defaults() {
        // A v1 document written before `event_capacity` / `negative_epoch`
        // existed: strip the new fields from the wire form and parse.
        let snap = minimal_snapshot();
        let json = snap.to_json();
        let legacy = json
            .replace(
                &format!(
                    ",\"event_capacity\":{}",
                    crate::pipeline::DEFAULT_EVENT_CAPACITY
                ),
                "",
            )
            .replace(",\"negative_epoch\":null", "")
            .replace(",\"retrain_tails\":[null,null]", "")
            .replace(",\"retrain_mode\":\"Inline\"", "")
            .replace(",\"retrain_in_flight\":null", "");
        assert!(legacy.len() < json.len(), "fields were not stripped");
        assert!(
            !legacy.contains("retrain_mode")
                && !legacy.contains("retrain_in_flight")
                && !legacy.contains("retrain_tails"),
            "training-service fields were not stripped"
        );
        let parsed = PipelineSnapshot::from_json(&legacy).expect("legacy v1 parses");
        assert_eq!(
            parsed.event_capacity,
            crate::pipeline::DEFAULT_EVENT_CAPACITY
        );
        assert_eq!(parsed.negative_epoch, None);
        assert_eq!(parsed.retrain_mode, RetrainMode::Inline);
        assert_eq!(parsed.retrain_in_flight, None);
        assert_eq!(parsed, snap);
    }

    #[test]
    fn in_flight_retrain_roundtrips_and_is_validated() {
        // An outstanding deferred retrain rides the wire with the
        // trigger-time request; its rows join the width check and its RNG
        // state obeys the non-degenerate rule.
        let mut snap = minimal_snapshot();
        snap.retrain_mode = RetrainMode::Deferred;
        snap.retrain_in_flight = Some(PersistedRetrain {
            positives: [vec![vec![3.0, 4.0]], Vec::new()],
            rng_state: [9, 8, 7, 6],
            negative_epoch: None,
            retrain_tails: [None, None],
            day: 1.25,
        });
        let back = PipelineSnapshot::from_json(&snap.to_json()).unwrap();
        assert_eq!(back, snap);

        let mut ragged = snap.clone();
        ragged.retrain_in_flight.as_mut().unwrap().positives[1].push(vec![1.0, 2.0, 3.0]);
        assert!(matches!(
            ragged.validate(),
            Err(PersistError::Malformed(msg)) if msg.contains("in-flight retrain")
        ));

        let mut degenerate = snap;
        degenerate.retrain_in_flight.as_mut().unwrap().rng_state = [0; 4];
        assert!(matches!(
            degenerate.validate(),
            Err(PersistError::Malformed(msg)) if msg.contains("in-flight retrain")
        ));
    }

    #[test]
    fn memory_store_epoch_fence() {
        let mut store = MemorySnapshotStore::new();
        let snap = minimal_snapshot();
        let id = UserId(5);
        assert_eq!(store.epoch(id).unwrap(), 0);
        // First owner claims epoch 1 and saves under it.
        let held = store.acquire(id).unwrap();
        assert_eq!(held, 1);
        store.save_fenced(id, held, &snap).unwrap();
        // A second owner claims epoch 2: the first owner's next save is a
        // typed stale-epoch rejection and writes nothing.
        let newer = store.acquire(id).unwrap();
        assert_eq!(newer, 2);
        assert_eq!(
            store.save_fenced(id, held, &snap),
            Err(PersistError::StaleEpoch {
                id,
                held: 1,
                stored: 2
            })
        );
        store.save_fenced(id, newer, &snap).unwrap();
        // Removal drops the snapshot but tombstones the epoch: a stale
        // owner's save after remove + re-register is still fenced out.
        store.remove(id).unwrap();
        assert_eq!(store.epoch(id).unwrap(), newer);
        let reregistered = store.acquire(id).unwrap();
        assert_eq!(reregistered, newer + 1);
        assert!(matches!(
            store.save_fenced(id, held, &snap),
            Err(PersistError::StaleEpoch { .. })
        ));
    }

    #[test]
    fn file_store_epoch_fence_persists_across_reopen() {
        static UNIQ: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);
        let dir = std::env::temp_dir().join(format!(
            "smarteryou-epoch-test-{}-{}",
            std::process::id(),
            UNIQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
        ));
        let snap = minimal_snapshot();
        let id = UserId(2);
        let held = {
            let mut store = FileSnapshotStore::new(&dir).unwrap();
            let held = store.acquire(id).unwrap();
            store.save_fenced(id, held, &snap).unwrap();
            held
        };
        // A fresh handle on the same directory (a process restart) sees the
        // persisted epoch and keeps fencing.
        let mut store = FileSnapshotStore::new(&dir).unwrap();
        assert_eq!(store.epoch(id).unwrap(), held);
        assert_eq!(store.acquire(id).unwrap(), held + 1);
        assert!(matches!(
            store.save_fenced(id, held, &snap),
            Err(PersistError::StaleEpoch { .. })
        ));
        // The epoch sidecar is not mistaken for a snapshot.
        assert_eq!(store.len(), 1);
        // Remove tombstones the epoch: the fence survives deregistration.
        store.remove(id).unwrap();
        assert_eq!(store.epoch(id).unwrap(), held + 1);
        assert_eq!(store.load(id).unwrap(), None);
        assert!(matches!(
            store.save_fenced(id, held, &snap),
            Err(PersistError::StaleEpoch { .. })
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn shared_store_serializes_the_fence() {
        let mut a = SharedSnapshotStore::new(Box::new(MemorySnapshotStore::new()));
        let mut b = a.clone();
        let snap = minimal_snapshot();
        let id = UserId(9);
        let held_a = a.acquire(id).unwrap();
        let held_b = b.acquire(id).unwrap();
        assert_eq!((held_a, held_b), (1, 2));
        assert!(matches!(
            a.save_fenced(id, held_a, &snap),
            Err(PersistError::StaleEpoch { .. })
        ));
        b.save_fenced(id, held_b, &snap).unwrap();
        assert_eq!(a.len(), 1);
        assert_eq!(a.load(id).unwrap(), Some(snap));
        a.with_store(|s| s.remove(id)).unwrap();
        assert!(b.is_empty());
    }

    #[test]
    fn file_store_roundtrips_atomically() {
        static UNIQ: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);
        let dir = std::env::temp_dir().join(format!(
            "smarteryou-persist-test-{}-{}",
            std::process::id(),
            UNIQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
        ));
        let mut store = FileSnapshotStore::new(&dir).unwrap();
        assert_eq!(store.dir(), dir.as_path());
        let snap = minimal_snapshot();
        store.save(UserId(7), &snap).unwrap();
        assert_eq!(store.len(), 1);
        assert_eq!(store.load(UserId(7)).unwrap(), Some(snap.clone()));
        // Overwrite is a replace, not an append.
        store.save(UserId(7), &snap).unwrap();
        assert_eq!(store.len(), 1);
        store.remove(UserId(7)).unwrap();
        assert_eq!(store.load(UserId(7)).unwrap(), None);
        store.remove(UserId(7)).unwrap(); // absent remove is a no-op
        std::fs::remove_dir_all(&dir).ok();
    }
}
