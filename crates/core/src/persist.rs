//! Versioned snapshot/restore persistence for per-user pipelines.
//!
//! A fleet deployment cannot keep millions of [`SmarterYou`] pipelines
//! resident: most devices are idle most of the time, yet their models must
//! survive process restarts and device/session churn without re-enrollment
//! (§V-I's continuous retraining makes the state genuinely stateful — the
//! enrollment and retrain buffers, confidence tracker, and RNG position all
//! influence future decisions). This module provides the wire format for
//! parking that state:
//!
//! * [`PipelineSnapshot`] — a self-contained, schema-checked capture of one
//!   pipeline: configuration, context-detector forest, per-context KRR
//!   models, enrollment + retrain ring buffers, confidence tracker,
//!   response-module state, event log, clock, RNG state, and the
//!   window-length FFT plan key.
//! * [`SmarterYou::snapshot`] / [`SmarterYou::restore`] — the round-trip.
//!   Restoration is **bit-identical**: a pipeline evicted after window *k*
//!   and restored produces exactly the same decisions, scores, and retrain
//!   events for windows *k+1..n* as one that never left memory (enforced by
//!   `tests/persist_parity.rs` and the round-trip property suite).
//! * [`SnapshotStore`] — pluggable storage, with [`MemorySnapshotStore`]
//!   (JSON strings in a map — every save/load still exercises the wire
//!   format) and [`FileSnapshotStore`] (one JSON file per user, written
//!   atomically) provided. The fleet engine drives either through its
//!   idle-eviction policy.
//!
//! # Version & compatibility policy
//!
//! Snapshots are externally tagged with a format magic
//! ([`SNAPSHOT_FORMAT`]) and a version number ([`SNAPSHOT_VERSION`]),
//! checked **before** the body is decoded:
//!
//! * A snapshot with the wrong magic is rejected with
//!   [`PersistError::WrongFormat`] — it is some other JSON document.
//! * A snapshot with a different version is rejected with
//!   [`PersistError::UnsupportedVersion`]. Version *N* readers never guess
//!   at version *M* bodies; a future version bump must ship an explicit
//!   migration that reads the old body shape.
//! * A snapshot that parses but violates the schema (truncated JSON, a
//!   matrix whose data length disagrees with its dimensions, ragged feature
//!   buffers, a zero retrain period) is rejected with
//!   [`PersistError::Malformed`]. Corruption is always a typed error,
//!   never a panic and never a silently wrong pipeline.
//!
//! The version covers the *semantic* content too: any change to what the
//! recorded numbers mean (feature order, RNG algorithm, tracker semantics)
//! must bump [`SNAPSHOT_VERSION`], because a restored pipeline replays
//! those semantics. CI pins this with a committed golden
//! `fixtures/pipeline_v1.snapshot.json` that the current code must keep
//! restoring.
//!
//! This format is also the planned wire format between shards: moving a
//! user from one engine process to another is an evict on the source and a
//! rehydrate on the target.

use std::collections::HashMap;
use std::fmt;
use std::path::PathBuf;

use serde::{Deserialize, Serialize};

use smarteryou_ml::KrrTailState;
use smarteryou_sensors::{UserId, WindowSpec};

use crate::auth::Authenticator;
use crate::config::SystemConfig;
use crate::context_detect::ContextDetector;
use crate::engine::training::RetrainRequest;
use crate::pipeline::{RetrainMode, SystemEvent};
use crate::response::ResponseModule;
use crate::retrain::ConfidenceTracker;
use crate::server::NegativeEpoch;
#[cfg(doc)]
use crate::SmarterYou;

/// Format magic every pipeline snapshot starts with.
pub const SNAPSHOT_FORMAT: &str = "smarteryou.pipeline";

/// Snapshot schema version written and accepted by this build.
pub const SNAPSHOT_VERSION: u32 = 1;

/// Why a snapshot could not be produced, stored, loaded, or restored.
#[derive(Debug, Clone, PartialEq)]
pub enum PersistError {
    /// The document's format magic is not [`SNAPSHOT_FORMAT`].
    WrongFormat(String),
    /// The document's version differs from [`SNAPSHOT_VERSION`].
    UnsupportedVersion {
        /// Version recorded in the document.
        found: u32,
        /// Version this build reads and writes.
        supported: u32,
    },
    /// The document is not valid JSON, or decodes into state that violates
    /// the schema's invariants (ragged buffers, inconsistent widths, …).
    Malformed(String),
    /// A store was asked to rehydrate a user it holds no snapshot for.
    MissingSnapshot(UserId),
    /// An epoch-fenced operation lost the ownership race: the store has
    /// already been claimed at a newer epoch by another engine (see
    /// [`SnapshotStore::acquire`]). The caller no longer owns this user and
    /// must drop its copy of the pipeline instead of persisting it.
    StaleEpoch {
        /// The user whose ownership was contested.
        id: UserId,
        /// The epoch the caller holds (its claim when it last acquired).
        held: u64,
        /// The newer epoch persisted in the store.
        stored: u64,
    },
    /// The underlying storage failed (I/O errors from a file-backed store).
    Io(String),
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::WrongFormat(found) => {
                write!(f, "not a {SNAPSHOT_FORMAT} snapshot (format tag `{found}`)")
            }
            PersistError::UnsupportedVersion { found, supported } => {
                write!(
                    f,
                    "snapshot version {found} unsupported (this build reads {supported})"
                )
            }
            PersistError::Malformed(msg) => write!(f, "malformed snapshot: {msg}"),
            PersistError::MissingSnapshot(id) => {
                write!(f, "no snapshot stored for {id}")
            }
            PersistError::StaleEpoch { id, held, stored } => {
                write!(
                    f,
                    "stale ownership epoch for {id}: holding {held}, store at {stored}"
                )
            }
            PersistError::Io(msg) => write!(f, "snapshot store I/O failed: {msg}"),
        }
    }
}

impl std::error::Error for PersistError {}

/// The version/format envelope, decoded on its own before the body so that
/// an incompatible snapshot fails with a version error rather than a
/// confusing missing-field error from a different schema.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct SnapshotHeader {
    format: String,
    version: u32,
}

/// The wire form of an outstanding deferred retrain: the trigger-time
/// request minus what restore can rebuild locally — fit caches come back
/// cold (they never change model bits) and the config is the pipeline's
/// own. A job id is deliberately not persisted: it is meaningless outside
/// the engine that issued it, and a restored pipeline always re-enters the
/// *pending* state for its owning engine to resubmit.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct PersistedRetrain {
    pub(crate) positives: [Vec<Vec<f64>>; 2],
    pub(crate) rng_state: [u64; 4],
    pub(crate) negative_epoch: Option<NegativeEpoch>,
    /// Positive-tail factor identity captured with the request. Unlike the
    /// fit caches, tails persist: a slid factor is not bit-identical to a
    /// fresh one, so dropping them would break restore bit-parity for a
    /// request resumed on another engine.
    pub(crate) retrain_tails: [Option<KrrTailState>; 2],
    pub(crate) day: f64,
}

/// Hand-written so requests persisted before `retrain_tails` existed keep
/// parsing (cold tails — the job simply refits from scratch); the vendored
/// serde derive has no `#[serde(default)]`.
impl serde::Deserialize for PersistedRetrain {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        use serde::__private::get_field;
        let retrain_tails = match v.get("retrain_tails") {
            Some(entry) => <[Option<KrrTailState>; 2]>::from_value(entry).map_err(|e| {
                serde::DeError::custom(format!("PersistedRetrain.retrain_tails: {e}"))
            })?,
            None => [None, None],
        };
        Ok(PersistedRetrain {
            positives: get_field(v, "PersistedRetrain", "positives")?,
            rng_state: get_field(v, "PersistedRetrain", "rng_state")?,
            negative_epoch: get_field(v, "PersistedRetrain", "negative_epoch")?,
            retrain_tails,
            day: get_field(v, "PersistedRetrain", "day")?,
        })
    }
}

impl PersistedRetrain {
    /// Strips a live request down to its wire form.
    pub(crate) fn from_request(request: &RetrainRequest) -> Self {
        PersistedRetrain {
            positives: request.positives.clone(),
            rng_state: request.rng_state,
            negative_epoch: request.negative_epoch.clone(),
            retrain_tails: request.retrain_tails.clone(),
            day: request.day,
        }
    }

    /// Rebuilds a live request for the restored pipeline (cold caches).
    pub(crate) fn into_request(self, cfg: SystemConfig) -> RetrainRequest {
        RetrainRequest {
            positives: self.positives,
            cfg,
            rng_state: self.rng_state,
            negative_epoch: self.negative_epoch,
            fit_caches: Default::default(),
            retrain_tails: self.retrain_tails,
            day: self.day,
        }
    }
}

/// A self-contained capture of one [`SmarterYou`] pipeline's state — see
/// the [module docs](self) for the format and compatibility policy.
///
/// Produced by [`SmarterYou::snapshot`]; consumed by [`SmarterYou::restore`]
/// (which reattaches the shared [`TrainingHandle`](crate::TrainingHandle),
/// the only part of a pipeline that is fleet-shared rather than per-user).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct PipelineSnapshot {
    pub(crate) format: String,
    pub(crate) version: u32,
    pub(crate) cfg: SystemConfig,
    pub(crate) detector: ContextDetector,
    pub(crate) authenticator: Option<Authenticator>,
    pub(crate) response: ResponseModule,
    pub(crate) tracker: ConfidenceTracker,
    pub(crate) buffers: [Vec<Vec<f64>>; 2],
    pub(crate) recent: [Vec<Vec<f64>>; 2],
    pub(crate) events: Vec<SystemEvent>,
    pub(crate) day: f64,
    pub(crate) rng_state: [u64; 4],
    /// Window-length plan key: shape of the windows the pipeline's FFT plan
    /// was built for, so restore can re-plan before the first window
    /// arrives. `None` when no window had been extracted yet.
    pub(crate) planned_window: Option<WindowSpec>,
    /// Ring-buffer bound on the [`SystemEvent`] log. Snapshots written
    /// before the bound existed restore with the default capacity (and an
    /// over-long legacy log is truncated to its most recent entries).
    pub(crate) event_capacity: usize,
    /// Frozen per-device negative sample driving label-stable retrains
    /// (see [`NegativeEpoch`]); `None` until the first retrain drew one.
    /// Absent in pre-epoch snapshots, which restore with `None`.
    pub(crate) negative_epoch: Option<NegativeEpoch>,
    /// Per-context positive-tail factor identity from the previous
    /// shared-workspace retrain ([`KrrTailState`]); persisted because a
    /// slid factor is not bit-identical to a fresh one, so restore
    /// bit-parity depends on it. Absent in pre-tail snapshots, which
    /// restore cold (the next retrain refits from scratch).
    pub(crate) retrain_tails: [Option<KrrTailState>; 2],
    /// How retrain triggers execute ([`RetrainMode::Inline`] historically
    /// and by default; absent in pre-training-service snapshots).
    pub(crate) retrain_mode: RetrainMode,
    /// An outstanding deferred retrain, captured at trigger time. `None`
    /// when idle — and always `None` in inline mode.
    pub(crate) retrain_in_flight: Option<PersistedRetrain>,
}

/// Hand-written so that fields added after version 1 shipped can default
/// when missing — the vendored serde derive has no `#[serde(default)]`,
/// and the committed golden v1 fixture must keep restoring without a
/// version bump (the additions change no existing field's meaning).
impl serde::Deserialize for PipelineSnapshot {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        use serde::__private::get_field;
        fn field_or<T: serde::Deserialize>(
            v: &serde::Value,
            field: &str,
            default: T,
        ) -> Result<T, serde::DeError> {
            match v.get(field) {
                Some(entry) => T::from_value(entry)
                    .map_err(|e| serde::DeError::custom(format!("PipelineSnapshot.{field}: {e}"))),
                None => Ok(default),
            }
        }
        Ok(PipelineSnapshot {
            format: get_field(v, "PipelineSnapshot", "format")?,
            version: get_field(v, "PipelineSnapshot", "version")?,
            cfg: get_field(v, "PipelineSnapshot", "cfg")?,
            detector: get_field(v, "PipelineSnapshot", "detector")?,
            authenticator: get_field(v, "PipelineSnapshot", "authenticator")?,
            response: get_field(v, "PipelineSnapshot", "response")?,
            tracker: get_field(v, "PipelineSnapshot", "tracker")?,
            buffers: get_field(v, "PipelineSnapshot", "buffers")?,
            recent: get_field(v, "PipelineSnapshot", "recent")?,
            events: get_field(v, "PipelineSnapshot", "events")?,
            day: get_field(v, "PipelineSnapshot", "day")?,
            rng_state: get_field(v, "PipelineSnapshot", "rng_state")?,
            planned_window: get_field(v, "PipelineSnapshot", "planned_window")?,
            event_capacity: field_or(v, "event_capacity", crate::pipeline::DEFAULT_EVENT_CAPACITY)?,
            negative_epoch: field_or(v, "negative_epoch", None)?,
            retrain_tails: field_or(v, "retrain_tails", [None, None])?,
            retrain_mode: field_or(v, "retrain_mode", RetrainMode::Inline)?,
            retrain_in_flight: field_or(v, "retrain_in_flight", None)?,
        })
    }
}

impl PipelineSnapshot {
    /// Schema version recorded in this snapshot.
    pub fn version(&self) -> u32 {
        self.version
    }

    /// Whether the captured pipeline had finished enrollment.
    pub fn is_enrolled(&self) -> bool {
        self.authenticator.is_some()
    }

    /// Serializes to the canonical compact-JSON wire form.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("snapshot data model always serializes")
    }

    /// Parses and schema-checks a snapshot from its JSON wire form.
    ///
    /// # Errors
    ///
    /// * [`PersistError::Malformed`] for invalid JSON or invariant
    ///   violations (see [`PipelineSnapshot::validate`]);
    /// * [`PersistError::WrongFormat`] / [`PersistError::UnsupportedVersion`]
    ///   from the envelope check, which runs before body decoding.
    pub fn from_json(json: &str) -> Result<Self, PersistError> {
        // One parse of the (large) document; the envelope is checked on
        // the value tree before the body is decoded, so an incompatible
        // snapshot still fails with a version error rather than a
        // missing-field error from a different schema.
        let value: serde::Value =
            serde_json::from_str(json).map_err(|e| PersistError::Malformed(e.to_string()))?;
        let header = SnapshotHeader::from_value(&value)
            .map_err(|e| PersistError::Malformed(e.to_string()))?;
        if header.format != SNAPSHOT_FORMAT {
            return Err(PersistError::WrongFormat(header.format));
        }
        if header.version != SNAPSHOT_VERSION {
            return Err(PersistError::UnsupportedVersion {
                found: header.version,
                supported: SNAPSHOT_VERSION,
            });
        }
        let snapshot = PipelineSnapshot::from_value(&value)
            .map_err(|e| PersistError::Malformed(e.to_string()))?;
        snapshot.validate()?;
        Ok(snapshot)
    }

    /// Checks the cross-field invariants a structurally valid decode can
    /// still violate. [`SmarterYou::restore`] runs this too, so a snapshot
    /// assembled in memory gets the same scrutiny as one off the wire.
    ///
    /// # Errors
    ///
    /// [`PersistError`] variants as described on each check.
    pub fn validate(&self) -> Result<(), PersistError> {
        if self.format != SNAPSHOT_FORMAT {
            return Err(PersistError::WrongFormat(self.format.clone()));
        }
        if self.version != SNAPSHOT_VERSION {
            return Err(PersistError::UnsupportedVersion {
                found: self.version,
                supported: SNAPSHOT_VERSION,
            });
        }
        if !self.day.is_finite() {
            return Err(PersistError::Malformed(format!(
                "non-finite clock day {}",
                self.day
            )));
        }
        if self.tracker.policy().period == 0 {
            return Err(PersistError::Malformed(
                "confidence tracker period is zero".into(),
            ));
        }
        // All-zero is xoshiro256++'s degenerate fixed point (every output
        // 0 forever) and unreachable from any real generator — a restored
        // pipeline must never sample from it silently.
        if self.rng_state == [0u64; 4] {
            return Err(PersistError::Malformed(
                "all-zero RNG state is not a valid generator".into(),
            ));
        }
        if self.event_capacity == 0 {
            return Err(PersistError::Malformed("event log capacity is zero".into()));
        }
        if let Some(retrain) = &self.retrain_in_flight {
            // The captured request replays a training call: its RNG state
            // and day obey the same invariants as the pipeline's own.
            if retrain.rng_state == [0u64; 4] {
                return Err(PersistError::Malformed(
                    "all-zero RNG state in the in-flight retrain".into(),
                ));
            }
            if !retrain.day.is_finite() {
                return Err(PersistError::Malformed(format!(
                    "non-finite in-flight retrain day {}",
                    retrain.day
                )));
            }
        }
        // Every buffered feature vector must share one width, and that
        // width must match the models that will score future windows.
        let mut width: Option<usize> = self.authenticator.as_ref().map(|a| a.num_features());
        let epoch_rows = self
            .negative_epoch
            .iter()
            .flat_map(|e| e.rows().iter().enumerate())
            .map(|(ctx, buf)| ("negative epoch", ctx, buf));
        let retrain_rows = self
            .retrain_in_flight
            .iter()
            .flat_map(|r| r.positives.iter().enumerate())
            .map(|(ctx, buf)| ("in-flight retrain", ctx, buf));
        for (kind, ctx, buf) in [("enrollment", &self.buffers), ("retrain", &self.recent)]
            .into_iter()
            .flat_map(|(kind, buffers)| buffers.iter().enumerate().map(move |(c, b)| (kind, c, b)))
            .chain(epoch_rows)
            .chain(retrain_rows)
        {
            for row in buf {
                match width {
                    None => width = Some(row.len()),
                    Some(w) if row.len() == w => {}
                    Some(w) => {
                        return Err(PersistError::Malformed(format!(
                            "{kind} buffer for context {ctx} holds a {}-feature \
                             vector where {w} features are expected",
                            row.len()
                        )));
                    }
                }
            }
        }
        Ok(())
    }
}

/// Where evicted pipelines go. Implementations deal in whole snapshots and
/// must be durable enough for the deployment: an engine that evicts through
/// a store trusts [`SnapshotStore::load`] to return exactly what
/// [`SnapshotStore::save`] was given.
///
/// # Ownership epochs
///
/// When one store is shared by several engines (the sharded fleet), the
/// store doubles as the ownership arbiter: next to each snapshot it
/// persists a **monotonic per-user epoch**. An engine claims a user with
/// [`SnapshotStore::acquire`] (bumping the epoch) and passes its claimed
/// epoch to every [`SnapshotStore::save_fenced`]; a save carrying an epoch
/// older than the persisted one means another engine has since claimed the
/// user, and is rejected with [`PersistError::StaleEpoch`] — so two shards
/// can never both persist state for one live pipeline, whatever the
/// interleaving. Epochs survive restarts wherever the snapshots do.
pub trait SnapshotStore: fmt::Debug + Send {
    /// Persists `snapshot` under `id`, replacing any previous snapshot.
    /// Unfenced: single-engine deployments that never share the store may
    /// skip the epoch protocol.
    ///
    /// # Errors
    ///
    /// [`PersistError::Io`] (or store-specific variants) on failure; the
    /// engine keeps the pipeline resident when a save fails.
    fn save(&mut self, id: UserId, snapshot: &PipelineSnapshot) -> Result<(), PersistError>;

    /// Loads the snapshot stored under `id`, or `None` when absent.
    ///
    /// Note: the engine leaves a user's last-saved snapshot in place after
    /// rehydrating them (a crash-recovery copy, overwritten by the next
    /// eviction), so a store may hold entries for currently resident users.
    ///
    /// # Errors
    ///
    /// Propagates storage and decode failures.
    fn load(&mut self, id: UserId) -> Result<Option<PipelineSnapshot>, PersistError>;

    /// Drops the snapshot stored under `id` **and its epoch metadata**
    /// (no-op when absent) — the store forgets the user entirely.
    ///
    /// # Errors
    ///
    /// [`PersistError::Io`] on storage failure.
    fn remove(&mut self, id: UserId) -> Result<(), PersistError>;

    /// The ownership epoch persisted for `id` (0 when never acquired).
    ///
    /// # Errors
    ///
    /// [`PersistError::Io`] on storage failure.
    fn epoch(&mut self, id: UserId) -> Result<u64, PersistError>;

    /// Claims the next ownership epoch for `id`: persists and returns
    /// `epoch(id) + 1`. From this instant any engine still holding an older
    /// epoch is fenced out — its next [`SnapshotStore::save_fenced`] fails.
    ///
    /// # Errors
    ///
    /// [`PersistError::Io`] on storage failure.
    fn acquire(&mut self, id: UserId) -> Result<u64, PersistError>;

    /// [`SnapshotStore::save`] guarded by the ownership fence: rejected
    /// with [`PersistError::StaleEpoch`] when `epoch` is older than the
    /// persisted epoch for `id`. Nothing is written on rejection.
    ///
    /// # Errors
    ///
    /// [`PersistError::StaleEpoch`] on a lost ownership race;
    /// [`PersistError::Io`] on storage failure.
    fn save_fenced(
        &mut self,
        id: UserId,
        epoch: u64,
        snapshot: &PipelineSnapshot,
    ) -> Result<(), PersistError> {
        let stored = self.epoch(id)?;
        if epoch < stored {
            return Err(PersistError::StaleEpoch {
                id,
                held: epoch,
                stored,
            });
        }
        self.save(id, snapshot)
    }

    /// Number of snapshots currently stored.
    fn len(&self) -> usize;

    /// Whether the store holds no snapshots.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// In-memory [`SnapshotStore`] keeping each snapshot as its serialized JSON
/// wire form — saves and loads go through the full encode/decode path, so
/// even in-process eviction proves the round-trip, and the stored bytes are
/// exactly what a cross-process shard handoff would ship.
#[derive(Debug, Default)]
pub struct MemorySnapshotStore {
    entries: HashMap<usize, String>,
    epochs: HashMap<usize, u64>,
}

impl MemorySnapshotStore {
    /// An empty store.
    pub fn new() -> Self {
        MemorySnapshotStore::default()
    }

    /// Total bytes of serialized snapshots held.
    pub fn stored_bytes(&self) -> usize {
        self.entries.values().map(String::len).sum()
    }
}

impl SnapshotStore for MemorySnapshotStore {
    fn save(&mut self, id: UserId, snapshot: &PipelineSnapshot) -> Result<(), PersistError> {
        self.entries.insert(id.0, snapshot.to_json());
        Ok(())
    }

    fn load(&mut self, id: UserId) -> Result<Option<PipelineSnapshot>, PersistError> {
        self.entries
            .get(&id.0)
            .map(|json| PipelineSnapshot::from_json(json))
            .transpose()
    }

    fn remove(&mut self, id: UserId) -> Result<(), PersistError> {
        self.entries.remove(&id.0);
        self.epochs.remove(&id.0);
        Ok(())
    }

    fn epoch(&mut self, id: UserId) -> Result<u64, PersistError> {
        Ok(self.epochs.get(&id.0).copied().unwrap_or(0))
    }

    fn acquire(&mut self, id: UserId) -> Result<u64, PersistError> {
        let epoch = self.epochs.entry(id.0).or_insert(0);
        *epoch += 1;
        Ok(*epoch)
    }

    fn len(&self) -> usize {
        self.entries.len()
    }
}

/// File-backed [`SnapshotStore`]: one `<user>.snapshot.json` per user in a
/// directory, written atomically (temp file + rename) so a crash mid-save
/// never leaves a truncated snapshot under the user's name.
#[derive(Debug)]
pub struct FileSnapshotStore {
    dir: PathBuf,
}

impl FileSnapshotStore {
    /// Opens (creating if needed) a snapshot directory.
    ///
    /// # Errors
    ///
    /// [`PersistError::Io`] when the directory cannot be created.
    pub fn new(dir: impl Into<PathBuf>) -> Result<Self, PersistError> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)
            .map_err(|e| PersistError::Io(format!("create {}: {e}", dir.display())))?;
        Ok(FileSnapshotStore { dir })
    }

    /// The directory snapshots are stored in.
    pub fn dir(&self) -> &std::path::Path {
        &self.dir
    }

    fn path_for(&self, id: UserId) -> PathBuf {
        self.dir.join(format!("{id}.snapshot.json"))
    }

    /// Sidecar carrying the ownership epoch — separate from the snapshot so
    /// pre-epoch snapshot files keep loading (a missing sidecar reads as
    /// epoch 0) and an [`SnapshotStore::acquire`] never rewrites the (much
    /// larger) snapshot body.
    fn epoch_path_for(&self, id: UserId) -> PathBuf {
        self.dir.join(format!("{id}.epoch"))
    }

    /// Atomically writes `content` to `path` (temp file + fsync + rename +
    /// directory sync), so a crash mid-write never leaves a truncated file
    /// under the final name.
    fn write_atomic(&self, path: &std::path::Path, content: &str) -> Result<(), PersistError> {
        use std::io::Write;
        let tmp = path.with_extension(
            path.extension()
                .map(|e| format!("{}.tmp", e.to_string_lossy()))
                .unwrap_or_else(|| "tmp".to_string()),
        );
        // Write + fsync the temp file *before* the rename: journalling
        // filesystems may commit the rename ahead of the data blocks, and
        // an un-synced rename could surface an empty file under the final
        // name after a crash.
        let mut file = std::fs::File::create(&tmp)
            .map_err(|e| PersistError::Io(format!("create {}: {e}", tmp.display())))?;
        file.write_all(content.as_bytes())
            .map_err(|e| PersistError::Io(format!("write {}: {e}", tmp.display())))?;
        file.sync_all()
            .map_err(|e| PersistError::Io(format!("sync {}: {e}", tmp.display())))?;
        drop(file);
        std::fs::rename(&tmp, path)
            .map_err(|e| PersistError::Io(format!("rename to {}: {e}", path.display())))?;
        // Sync the directory too: callers drop their in-memory copy the
        // moment this returns, so the rename itself must be durable, not
        // just the file contents.
        std::fs::File::open(&self.dir)
            .and_then(|dir| dir.sync_all())
            .map_err(|e| PersistError::Io(format!("sync {}: {e}", self.dir.display())))
    }
}

impl SnapshotStore for FileSnapshotStore {
    fn save(&mut self, id: UserId, snapshot: &PipelineSnapshot) -> Result<(), PersistError> {
        let path = self.path_for(id);
        self.write_atomic(&path, &snapshot.to_json())
    }

    fn load(&mut self, id: UserId) -> Result<Option<PipelineSnapshot>, PersistError> {
        let path = self.path_for(id);
        match std::fs::read_to_string(&path) {
            Ok(json) => PipelineSnapshot::from_json(&json).map(Some),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(PersistError::Io(format!("read {}: {e}", path.display()))),
        }
    }

    fn remove(&mut self, id: UserId) -> Result<(), PersistError> {
        for path in [self.path_for(id), self.epoch_path_for(id)] {
            match std::fs::remove_file(&path) {
                Ok(()) => {}
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
                Err(e) => return Err(PersistError::Io(format!("remove {}: {e}", path.display()))),
            }
        }
        Ok(())
    }

    fn epoch(&mut self, id: UserId) -> Result<u64, PersistError> {
        let path = self.epoch_path_for(id);
        match std::fs::read_to_string(&path) {
            Ok(text) => text.trim().parse::<u64>().map_err(|e| {
                PersistError::Io(format!("corrupt epoch file {}: {e}", path.display()))
            }),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(0),
            Err(e) => Err(PersistError::Io(format!("read {}: {e}", path.display()))),
        }
    }

    fn acquire(&mut self, id: UserId) -> Result<u64, PersistError> {
        let next = self.epoch(id)? + 1;
        let path = self.epoch_path_for(id);
        self.write_atomic(&path, &next.to_string())?;
        Ok(next)
    }

    fn len(&self) -> usize {
        std::fs::read_dir(&self.dir)
            .map(|entries| {
                entries
                    .filter_map(Result::ok)
                    .filter(|e| e.file_name().to_string_lossy().ends_with(".snapshot.json"))
                    .count()
            })
            .unwrap_or(0)
    }
}

/// A cloneable [`SnapshotStore`] handle letting several engines — the
/// shards of a [`ShardedFleet`](crate::engine::shard::ShardedFleet) —
/// share one underlying store. Every operation takes the store mutex, so a
/// compound fenced save (epoch check + write) is atomic with respect to
/// the other shards, which is exactly what makes the ownership fence
/// race-free in-process. For cross-process sharding the same contract must
/// come from the backing storage (compare-and-swap on the epoch).
#[derive(Debug, Clone)]
pub struct SharedSnapshotStore {
    inner: std::sync::Arc<parking_lot::Mutex<Box<dyn SnapshotStore>>>,
}

impl SharedSnapshotStore {
    /// Wraps `store` for sharing; clone the handle once per shard.
    pub fn new(store: Box<dyn SnapshotStore>) -> Self {
        SharedSnapshotStore {
            inner: std::sync::Arc::new(parking_lot::Mutex::new(store)),
        }
    }

    /// Runs `f` with exclusive access to the underlying store (e.g. for
    /// operational tooling inspecting parked snapshots).
    pub fn with_store<R>(&self, f: impl FnOnce(&mut dyn SnapshotStore) -> R) -> R {
        f(&mut **self.inner.lock())
    }
}

impl SnapshotStore for SharedSnapshotStore {
    fn save(&mut self, id: UserId, snapshot: &PipelineSnapshot) -> Result<(), PersistError> {
        self.inner.lock().save(id, snapshot)
    }

    fn load(&mut self, id: UserId) -> Result<Option<PipelineSnapshot>, PersistError> {
        self.inner.lock().load(id)
    }

    fn remove(&mut self, id: UserId) -> Result<(), PersistError> {
        self.inner.lock().remove(id)
    }

    fn epoch(&mut self, id: UserId) -> Result<u64, PersistError> {
        self.inner.lock().epoch(id)
    }

    fn acquire(&mut self, id: UserId) -> Result<u64, PersistError> {
        self.inner.lock().acquire(id)
    }

    fn save_fenced(
        &mut self,
        id: UserId,
        epoch: u64,
        snapshot: &PipelineSnapshot,
    ) -> Result<(), PersistError> {
        // One lock hold across check + write: the fence must not interleave
        // with another shard's acquire.
        let mut store = self.inner.lock();
        let stored = store.epoch(id)?;
        if epoch < stored {
            return Err(PersistError::StaleEpoch {
                id,
                held: epoch,
                stored,
            });
        }
        store.save(id, snapshot)
    }

    fn len(&self) -> usize {
        self.inner.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A minimal structurally valid snapshot (enrollment phase, nothing
    /// buffered) for format-level tests; full-pipeline round-trips live in
    /// the integration suites.
    fn minimal_snapshot() -> PipelineSnapshot {
        use crate::features::FeatureExtractor;
        use crate::response::ResponsePolicy;
        use crate::retrain::RetrainPolicy;
        use rand::rngs::StdRng;
        use rand::SeedableRng;

        let extractor = FeatureExtractor::paper_default(50.0);
        let mut rng: StdRng = SeedableRng::seed_from_u64(7);
        let detector = crate::context_detect::ContextDetector::train(
            extractor,
            &[
                vec![0.0, 1.0],
                vec![1.0, 0.0],
                vec![0.1, 0.9],
                vec![0.9, 0.1],
            ],
            &[
                smarteryou_sensors::UsageContext::Stationary,
                smarteryou_sensors::UsageContext::Moving,
                smarteryou_sensors::UsageContext::Stationary,
                smarteryou_sensors::UsageContext::Moving,
            ],
            crate::context_detect::ContextDetectorConfig {
                num_trees: 2,
                max_depth: 2,
            },
            &mut rng,
        )
        .unwrap();
        PipelineSnapshot {
            format: SNAPSHOT_FORMAT.to_string(),
            version: SNAPSHOT_VERSION,
            cfg: SystemConfig::paper_default(),
            detector,
            authenticator: None,
            response: ResponseModule::new(ResponsePolicy::default()),
            tracker: ConfidenceTracker::new(RetrainPolicy::default()),
            buffers: [vec![vec![1.0, 2.0]], Vec::new()],
            recent: [Vec::new(), Vec::new()],
            events: vec![SystemEvent::EnrollmentComplete { day: 0.5 }],
            day: 0.5,
            rng_state: [1, 2, 3, u64::MAX],
            planned_window: Some(WindowSpec::from_seconds(6.0, 50.0)),
            event_capacity: crate::pipeline::DEFAULT_EVENT_CAPACITY,
            negative_epoch: None,
            retrain_tails: [None, None],
            retrain_mode: RetrainMode::Inline,
            retrain_in_flight: None,
        }
    }

    #[test]
    fn json_roundtrip_preserves_every_field() {
        let snap = minimal_snapshot();
        let back = PipelineSnapshot::from_json(&snap.to_json()).unwrap();
        assert_eq!(snap, back);
        assert_eq!(back.version(), SNAPSHOT_VERSION);
        assert!(!back.is_enrolled());
    }

    #[test]
    fn wrong_format_and_version_are_typed_errors() {
        let snap = minimal_snapshot();
        let json = snap.to_json();
        let wrong = json.replacen(SNAPSHOT_FORMAT, "someone.else", 1);
        assert!(matches!(
            PipelineSnapshot::from_json(&wrong),
            Err(PersistError::WrongFormat(f)) if f == "someone.else"
        ));
        let newer = json.replacen("\"version\":1", "\"version\":2", 1);
        assert_ne!(newer, json);
        assert!(matches!(
            PipelineSnapshot::from_json(&newer),
            Err(PersistError::UnsupportedVersion {
                found: 2,
                supported: SNAPSHOT_VERSION
            })
        ));
    }

    #[test]
    fn ragged_buffers_are_rejected() {
        let mut snap = minimal_snapshot();
        snap.buffers[1].push(vec![1.0, 2.0, 3.0]); // width 3 vs width 2
        assert!(matches!(
            PipelineSnapshot::from_json(&snap.to_json()),
            Err(PersistError::Malformed(_))
        ));
    }

    #[test]
    fn all_zero_rng_state_is_rejected() {
        let mut snap = minimal_snapshot();
        snap.rng_state = [0; 4];
        assert!(matches!(
            snap.validate(),
            Err(PersistError::Malformed(msg)) if msg.contains("RNG")
        ));
    }

    #[test]
    fn memory_store_roundtrips_and_counts() {
        let mut store = MemorySnapshotStore::new();
        let snap = minimal_snapshot();
        assert!(store.is_empty());
        assert_eq!(store.load(UserId(3)).unwrap(), None);
        store.save(UserId(3), &snap).unwrap();
        assert_eq!(store.len(), 1);
        assert!(store.stored_bytes() > 0);
        assert_eq!(store.load(UserId(3)).unwrap(), Some(snap));
        store.remove(UserId(3)).unwrap();
        assert!(store.is_empty());
    }

    #[test]
    fn legacy_snapshot_without_new_fields_restores_with_defaults() {
        // A v1 document written before `event_capacity` / `negative_epoch`
        // existed: strip the new fields from the wire form and parse.
        let snap = minimal_snapshot();
        let json = snap.to_json();
        let legacy = json
            .replace(
                &format!(
                    ",\"event_capacity\":{}",
                    crate::pipeline::DEFAULT_EVENT_CAPACITY
                ),
                "",
            )
            .replace(",\"negative_epoch\":null", "")
            .replace(",\"retrain_tails\":[null,null]", "")
            .replace(",\"retrain_mode\":\"Inline\"", "")
            .replace(",\"retrain_in_flight\":null", "");
        assert!(legacy.len() < json.len(), "fields were not stripped");
        assert!(
            !legacy.contains("retrain_mode")
                && !legacy.contains("retrain_in_flight")
                && !legacy.contains("retrain_tails"),
            "training-service fields were not stripped"
        );
        let parsed = PipelineSnapshot::from_json(&legacy).expect("legacy v1 parses");
        assert_eq!(
            parsed.event_capacity,
            crate::pipeline::DEFAULT_EVENT_CAPACITY
        );
        assert_eq!(parsed.negative_epoch, None);
        assert_eq!(parsed.retrain_mode, RetrainMode::Inline);
        assert_eq!(parsed.retrain_in_flight, None);
        assert_eq!(parsed, snap);
    }

    #[test]
    fn in_flight_retrain_roundtrips_and_is_validated() {
        // An outstanding deferred retrain rides the wire with the
        // trigger-time request; its rows join the width check and its RNG
        // state obeys the non-degenerate rule.
        let mut snap = minimal_snapshot();
        snap.retrain_mode = RetrainMode::Deferred;
        snap.retrain_in_flight = Some(PersistedRetrain {
            positives: [vec![vec![3.0, 4.0]], Vec::new()],
            rng_state: [9, 8, 7, 6],
            negative_epoch: None,
            retrain_tails: [None, None],
            day: 1.25,
        });
        let back = PipelineSnapshot::from_json(&snap.to_json()).unwrap();
        assert_eq!(back, snap);

        let mut ragged = snap.clone();
        ragged.retrain_in_flight.as_mut().unwrap().positives[1].push(vec![1.0, 2.0, 3.0]);
        assert!(matches!(
            ragged.validate(),
            Err(PersistError::Malformed(msg)) if msg.contains("in-flight retrain")
        ));

        let mut degenerate = snap;
        degenerate.retrain_in_flight.as_mut().unwrap().rng_state = [0; 4];
        assert!(matches!(
            degenerate.validate(),
            Err(PersistError::Malformed(msg)) if msg.contains("in-flight retrain")
        ));
    }

    #[test]
    fn memory_store_epoch_fence() {
        let mut store = MemorySnapshotStore::new();
        let snap = minimal_snapshot();
        let id = UserId(5);
        assert_eq!(store.epoch(id).unwrap(), 0);
        // First owner claims epoch 1 and saves under it.
        let held = store.acquire(id).unwrap();
        assert_eq!(held, 1);
        store.save_fenced(id, held, &snap).unwrap();
        // A second owner claims epoch 2: the first owner's next save is a
        // typed stale-epoch rejection and writes nothing.
        let newer = store.acquire(id).unwrap();
        assert_eq!(newer, 2);
        assert_eq!(
            store.save_fenced(id, held, &snap),
            Err(PersistError::StaleEpoch {
                id,
                held: 1,
                stored: 2
            })
        );
        store.save_fenced(id, newer, &snap).unwrap();
        // Removal forgets the user entirely, epoch included.
        store.remove(id).unwrap();
        assert_eq!(store.epoch(id).unwrap(), 0);
    }

    #[test]
    fn file_store_epoch_fence_persists_across_reopen() {
        static UNIQ: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);
        let dir = std::env::temp_dir().join(format!(
            "smarteryou-epoch-test-{}-{}",
            std::process::id(),
            UNIQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
        ));
        let snap = minimal_snapshot();
        let id = UserId(2);
        let held = {
            let mut store = FileSnapshotStore::new(&dir).unwrap();
            let held = store.acquire(id).unwrap();
            store.save_fenced(id, held, &snap).unwrap();
            held
        };
        // A fresh handle on the same directory (a process restart) sees the
        // persisted epoch and keeps fencing.
        let mut store = FileSnapshotStore::new(&dir).unwrap();
        assert_eq!(store.epoch(id).unwrap(), held);
        assert_eq!(store.acquire(id).unwrap(), held + 1);
        assert!(matches!(
            store.save_fenced(id, held, &snap),
            Err(PersistError::StaleEpoch { .. })
        ));
        // The epoch sidecar is not mistaken for a snapshot.
        assert_eq!(store.len(), 1);
        store.remove(id).unwrap();
        assert_eq!(store.epoch(id).unwrap(), 0);
        assert_eq!(store.load(id).unwrap(), None);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn shared_store_serializes_the_fence() {
        let mut a = SharedSnapshotStore::new(Box::new(MemorySnapshotStore::new()));
        let mut b = a.clone();
        let snap = minimal_snapshot();
        let id = UserId(9);
        let held_a = a.acquire(id).unwrap();
        let held_b = b.acquire(id).unwrap();
        assert_eq!((held_a, held_b), (1, 2));
        assert!(matches!(
            a.save_fenced(id, held_a, &snap),
            Err(PersistError::StaleEpoch { .. })
        ));
        b.save_fenced(id, held_b, &snap).unwrap();
        assert_eq!(a.len(), 1);
        assert_eq!(a.load(id).unwrap(), Some(snap));
        a.with_store(|s| s.remove(id)).unwrap();
        assert!(b.is_empty());
    }

    #[test]
    fn file_store_roundtrips_atomically() {
        static UNIQ: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);
        let dir = std::env::temp_dir().join(format!(
            "smarteryou-persist-test-{}-{}",
            std::process::id(),
            UNIQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
        ));
        let mut store = FileSnapshotStore::new(&dir).unwrap();
        assert_eq!(store.dir(), dir.as_path());
        let snap = minimal_snapshot();
        store.save(UserId(7), &snap).unwrap();
        assert_eq!(store.len(), 1);
        assert_eq!(store.load(UserId(7)).unwrap(), Some(snap.clone()));
        // Overwrite is a replace, not an append.
        store.save(UserId(7), &snap).unwrap();
        assert_eq!(store.len(), 1);
        store.remove(UserId(7)).unwrap();
        assert_eq!(store.load(UserId(7)).unwrap(), None);
        store.remove(UserId(7)).unwrap(); // absent remove is a no-op
        std::fs::remove_dir_all(&dir).ok();
    }
}
