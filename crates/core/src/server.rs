use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use serde::{Deserialize, Serialize};

use smarteryou_linalg::Matrix;
use smarteryou_ml::{KernelRidge, KrrFitCache, Scaler};
use smarteryou_sensors::UsageContext;

use crate::auth::{AuthModel, Authenticator};
use crate::config::{ContextMode, SystemConfig};
use crate::CoreError;

/// The cloud training module (§IV-A3).
///
/// Holds an **anonymized** pool of authentication feature vectors
/// contributed by participating users. When a phone requests a model, the
/// server combines the requesting user's positive windows with a balanced
/// sample of other users' windows as negatives and fits the per-context KRR
/// classifiers that are then downloaded to the device.
///
/// Feature vectors are stored without user identities — the only structure
/// kept is the coarse context label, mirroring the paper's privacy note
/// ("a user's training module can use other users' feature data but has no
/// way to know the other users' identities").
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TrainingServer {
    /// Negative pools per [`UsageContext::index`].
    pools: [Vec<Vec<f64>>; 2],
}

impl TrainingServer {
    /// An empty server.
    pub fn new() -> Self {
        TrainingServer::default()
    }

    /// Uploads anonymized feature vectors observed under `context`.
    pub fn contribute(
        &mut self,
        context: UsageContext,
        features: impl IntoIterator<Item = Vec<f64>>,
    ) {
        self.pools[context.index()].extend(features);
    }

    /// Number of pooled vectors for a context.
    pub fn pool_size(&self, context: UsageContext) -> usize {
        self.pools[context.index()].len()
    }

    /// Trains one model for `context` (or a unified model when `None`)
    /// from the user's positive windows and the anonymized pool.
    ///
    /// Sampling is balanced: `data_size/2` positives and as many negatives,
    /// shuffled by `rng`. The feature scaler is fitted on the combined
    /// training matrix (and shipped with the model, so the phone applies
    /// the same normalisation at test time).
    ///
    /// # Errors
    ///
    /// [`CoreError::InsufficientData`] when either side has no windows;
    /// training failures are propagated.
    pub fn train_model(
        &self,
        context: Option<UsageContext>,
        positives: &[Vec<f64>],
        cfg: &SystemConfig,
        rng: &mut StdRng,
    ) -> Result<AuthModel, CoreError> {
        self.train_model_impl(context, positives, cfg, rng, None)
    }

    /// [`TrainingServer::train_model`] with a reusable KRR fit cache: when a
    /// refit resolves to the exact same scaled training matrix and ridge
    /// parameter, the cached Cholesky factorisation is reused (bit-identical
    /// models either way). The fleet engine threads one cache per context
    /// through its retrain path.
    ///
    /// # Errors
    ///
    /// Same as [`TrainingServer::train_model`].
    pub fn train_model_cached(
        &self,
        context: Option<UsageContext>,
        positives: &[Vec<f64>],
        cfg: &SystemConfig,
        rng: &mut StdRng,
        cache: &mut KrrFitCache,
    ) -> Result<AuthModel, CoreError> {
        self.train_model_impl(context, positives, cfg, rng, Some(cache))
    }

    fn train_model_impl(
        &self,
        context: Option<UsageContext>,
        positives: &[Vec<f64>],
        cfg: &SystemConfig,
        rng: &mut StdRng,
        cache: Option<&mut KrrFitCache>,
    ) -> Result<AuthModel, CoreError> {
        let negatives: Vec<&Vec<f64>> = match context {
            Some(c) => self.pools[c.index()].iter().collect(),
            None => self.pools.iter().flatten().collect(),
        };
        if positives.is_empty() || negatives.is_empty() {
            return Err(CoreError::InsufficientData(format!(
                "positives={}, pool={}",
                positives.len(),
                negatives.len()
            )));
        }
        let per_class = cfg.data_size() / 2;

        let mut pos_idx: Vec<usize> = (0..positives.len()).collect();
        pos_idx.shuffle(rng);
        pos_idx.truncate(per_class.min(positives.len()));
        let mut neg_idx: Vec<usize> = (0..negatives.len()).collect();
        neg_idx.shuffle(rng);
        neg_idx.truncate(per_class.min(negatives.len()));

        let mut rows: Vec<&[f64]> = Vec::with_capacity(pos_idx.len() + neg_idx.len());
        let mut y = Vec::with_capacity(rows.capacity());
        for &i in &pos_idx {
            rows.push(&positives[i]);
            y.push(1.0);
        }
        for &i in &neg_idx {
            rows.push(negatives[i]);
            y.push(-1.0);
        }
        let x = Matrix::from_rows(&rows)
            .map_err(|e| CoreError::InsufficientData(format!("ragged features: {e}")))?;
        let scaler = Scaler::fit(&x);
        let xs = scaler.transform(&x);
        let trainer = KernelRidge::new(cfg.rho());
        let krr = match cache {
            Some(cache) => trainer.fit_with_cache(cache, &xs, &y)?,
            None => trainer.fit(&xs, &y)?,
        };
        Ok(AuthModel::new(scaler, krr))
    }

    /// Trains the full [`Authenticator`] for a user according to the
    /// configured [`ContextMode`]. `positives[c]` holds the user's windows
    /// for context index `c`.
    ///
    /// # Errors
    ///
    /// Propagates [`TrainingServer::train_model`] failures.
    pub fn train_authenticator(
        &self,
        positives: &[Vec<Vec<f64>>; 2],
        cfg: &SystemConfig,
        rng: &mut StdRng,
    ) -> Result<Authenticator, CoreError> {
        let mut caches: [KrrFitCache; 2] = Default::default();
        self.train_authenticator_cached(positives, cfg, rng, &mut caches)
    }

    /// [`TrainingServer::train_authenticator`] with per-context KRR fit
    /// caches, so a device's periodic retrains can skip refactoring when
    /// the sampled training matrix has not changed.
    ///
    /// # Errors
    ///
    /// Propagates [`TrainingServer::train_model`] failures.
    pub fn train_authenticator_cached(
        &self,
        positives: &[Vec<Vec<f64>>; 2],
        cfg: &SystemConfig,
        rng: &mut StdRng,
        caches: &mut [KrrFitCache; 2],
    ) -> Result<Authenticator, CoreError> {
        match cfg.context_mode() {
            ContextMode::Unified => {
                let all: Vec<Vec<f64>> = positives.iter().flatten().cloned().collect();
                let model = self.train_model_cached(None, &all, cfg, rng, &mut caches[0])?;
                Ok(Authenticator::unified(model, cfg.accept_threshold()))
            }
            ContextMode::PerContext => {
                let mut models = Vec::with_capacity(2);
                for ctx in UsageContext::ALL {
                    models.push(self.train_model_cached(
                        Some(ctx),
                        &positives[ctx.index()],
                        cfg,
                        rng,
                        &mut caches[ctx.index()],
                    )?);
                }
                Authenticator::per_context(models, cfg.accept_threshold())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(5)
    }

    /// Positive cluster near +2, negative pool near −2, two features.
    fn setup() -> (TrainingServer, Vec<Vec<f64>>) {
        let mut server = TrainingServer::new();
        for ctx in UsageContext::ALL {
            let negs: Vec<Vec<f64>> = (0..60)
                .map(|i| vec![-2.0 - 0.01 * i as f64, -2.0 + 0.01 * i as f64])
                .collect();
            server.contribute(ctx, negs);
        }
        let pos: Vec<Vec<f64>> = (0..60)
            .map(|i| vec![2.0 + 0.01 * i as f64, 2.0 - 0.01 * i as f64])
            .collect();
        (server, pos)
    }

    fn small_cfg() -> SystemConfig {
        SystemConfig::paper_default().with_data_size(80)
    }

    #[test]
    fn trains_separating_model() {
        let (server, pos) = setup();
        let model = server
            .train_model(
                Some(UsageContext::Stationary),
                &pos,
                &small_cfg(),
                &mut rng(),
            )
            .unwrap();
        assert!(model.confidence(&[2.0, 2.0]) > 0.0);
        assert!(model.confidence(&[-2.0, -2.0]) < 0.0);
    }

    #[test]
    fn pool_accounting() {
        let (server, _) = setup();
        assert_eq!(server.pool_size(UsageContext::Stationary), 60);
        assert_eq!(server.pool_size(UsageContext::Moving), 60);
    }

    #[test]
    fn empty_pool_is_an_error() {
        let server = TrainingServer::new();
        let err = server
            .train_model(
                Some(UsageContext::Moving),
                &[vec![1.0]],
                &small_cfg(),
                &mut rng(),
            )
            .unwrap_err();
        assert!(matches!(err, CoreError::InsufficientData(_)));
    }

    #[test]
    fn per_context_authenticator_has_two_models() {
        let (server, pos) = setup();
        let positives = [pos.clone(), pos.clone()];
        let auth = server
            .train_authenticator(&positives, &small_cfg(), &mut rng())
            .unwrap();
        assert_eq!(auth.mode(), ContextMode::PerContext);
        assert!(
            auth.authenticate(UsageContext::Moving, &[2.0, 2.0])
                .accepted
        );
    }

    #[test]
    fn unified_authenticator_pools_contexts() {
        let (server, pos) = setup();
        let positives = [pos.clone(), pos];
        let cfg = small_cfg().with_context_mode(ContextMode::Unified);
        let auth = server
            .train_authenticator(&positives, &cfg, &mut rng())
            .unwrap();
        assert_eq!(auth.mode(), ContextMode::Unified);
        let a = auth.authenticate(UsageContext::Stationary, &[2.0, 2.0]);
        let b = auth.authenticate(UsageContext::Moving, &[2.0, 2.0]);
        assert_eq!(a.confidence, b.confidence);
    }

    #[test]
    fn balanced_sampling_caps_at_data_size() {
        let (server, pos) = setup();
        // data_size 40 → 20 per class even though 60 are available.
        let cfg = SystemConfig::paper_default().with_data_size(40);
        // No direct observability of the sample count, but training must
        // succeed and produce a sane model.
        let model = server
            .train_model(Some(UsageContext::Moving), &pos, &cfg, &mut rng())
            .unwrap();
        assert!(model.confidence(&[2.5, 2.5]) > 0.0);
    }
}
