use std::fmt;
use std::sync::Arc;

use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use serde::{Deserialize, Serialize};

use smarteryou_linalg::Matrix;
use smarteryou_ml::{KernelRidge, KrrFitCache, KrrSharedWorkspace, KrrTailState, Scaler};
use smarteryou_sensors::UsageContext;

use crate::auth::{AuthModel, Authenticator};
use crate::config::{ContextMode, SystemConfig};
use crate::CoreError;

/// The cloud training module (§IV-A3).
///
/// Holds an **anonymized** pool of authentication feature vectors
/// contributed by participating users. When a phone requests a model, the
/// server combines the requesting user's positive windows with a balanced
/// sample of other users' windows as negatives and fits the per-context KRR
/// classifiers that are then downloaded to the device.
///
/// Feature vectors are stored without user identities — the only structure
/// kept is the coarse context label, mirroring the paper's privacy note
/// ("a user's training module can use other users' feature data but has no
/// way to know the other users' identities").
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TrainingServer {
    /// Negative pools per [`UsageContext::index`].
    pools: [Vec<Vec<f64>>; 2],
    /// Bumped on every pool-changing contribution; a device's frozen
    /// [`NegativeEpoch`] records the version it sampled, so an unchanged
    /// pool lets retrains reuse the sample (and with it the KRR fit
    /// cache).
    pool_version: u64,
    /// Order-sensitive running fingerprint of the pool contents, checked
    /// *alongside* the version: a snapshot's [`NegativeEpoch`] outlives
    /// this process, and a rebuilt server could coincidentally reach the
    /// same bare counter with entirely different data — the fingerprint
    /// ties the staleness check to what the pool actually holds.
    pool_fingerprint: u64,
}

impl TrainingServer {
    /// An empty server.
    pub fn new() -> Self {
        TrainingServer::default()
    }

    /// Uploads anonymized feature vectors observed under `context`.
    /// An empty contribution changes nothing — devices' pinned negative
    /// epochs stay valid.
    pub fn contribute(
        &mut self,
        context: UsageContext,
        features: impl IntoIterator<Item = Vec<f64>>,
    ) {
        let pool = &mut self.pools[context.index()];
        let before = pool.len();
        for row in features {
            // Fold the row into the running fingerprint (FNV-1a over the
            // context tag and raw f64 bits, rotated so ordering matters).
            let mut h = 0xcbf2_9ce4_8422_2325u64 ^ context.index() as u64;
            for &v in &row {
                h = (h ^ v.to_bits()).wrapping_mul(0x0000_0100_0000_01B3);
            }
            self.pool_fingerprint = self.pool_fingerprint.rotate_left(1) ^ h;
            pool.push(row);
        }
        if self.pools[context.index()].len() > before {
            self.pool_version += 1;
        }
    }

    /// Version counter of the anonymized pool, bumped per pool-changing
    /// contribution.
    pub fn pool_version(&self) -> u64 {
        self.pool_version
    }

    /// The `(version, content fingerprint)` pair a [`NegativeEpoch`] is
    /// pinned against.
    fn pool_stamp(&self) -> (u64, u64) {
        (self.pool_version, self.pool_fingerprint)
    }

    /// Number of pooled vectors for a context.
    pub fn pool_size(&self, context: UsageContext) -> usize {
        self.pools[context.index()].len()
    }

    /// Trains one model for `context` (or a unified model when `None`)
    /// from the user's positive windows and the anonymized pool.
    ///
    /// Sampling is balanced: `data_size/2` positives and as many negatives,
    /// shuffled by `rng`. The feature scaler is fitted on the combined
    /// training matrix (and shipped with the model, so the phone applies
    /// the same normalisation at test time).
    ///
    /// # Errors
    ///
    /// [`CoreError::InsufficientData`] when either side has no windows;
    /// training failures are propagated.
    pub fn train_model(
        &self,
        context: Option<UsageContext>,
        positives: &[Vec<f64>],
        cfg: &SystemConfig,
        rng: &mut StdRng,
    ) -> Result<AuthModel, CoreError> {
        self.train_model_impl(context, positives, cfg, rng, None)
    }

    /// [`TrainingServer::train_model`] with a reusable KRR fit cache: when a
    /// refit resolves to the exact same scaled training matrix and ridge
    /// parameter, the cached Cholesky factorisation is reused (bit-identical
    /// models either way). The fleet engine threads one cache per context
    /// through its retrain path.
    ///
    /// # Errors
    ///
    /// Same as [`TrainingServer::train_model`].
    pub fn train_model_cached(
        &self,
        context: Option<UsageContext>,
        positives: &[Vec<f64>],
        cfg: &SystemConfig,
        rng: &mut StdRng,
        cache: &mut KrrFitCache,
    ) -> Result<AuthModel, CoreError> {
        self.train_model_impl(context, positives, cfg, rng, Some(cache))
    }

    fn train_model_impl(
        &self,
        context: Option<UsageContext>,
        positives: &[Vec<f64>],
        cfg: &SystemConfig,
        rng: &mut StdRng,
        cache: Option<&mut KrrFitCache>,
    ) -> Result<AuthModel, CoreError> {
        let negatives: Vec<&Vec<f64>> = match context {
            Some(c) => self.pools[c.index()].iter().collect(),
            None => self.pools.iter().flatten().collect(),
        };
        if positives.is_empty() || negatives.is_empty() {
            return Err(CoreError::InsufficientData(format!(
                "positives={}, pool={}",
                positives.len(),
                negatives.len()
            )));
        }
        let per_class = cfg.data_size() / 2;

        let mut pos_idx: Vec<usize> = (0..positives.len()).collect();
        pos_idx.shuffle(rng);
        pos_idx.truncate(per_class.min(positives.len()));
        let mut neg_idx: Vec<usize> = (0..negatives.len()).collect();
        neg_idx.shuffle(rng);
        neg_idx.truncate(per_class.min(negatives.len()));

        let mut rows: Vec<&[f64]> = Vec::with_capacity(pos_idx.len() + neg_idx.len());
        let mut y = Vec::with_capacity(rows.capacity());
        for &i in &pos_idx {
            rows.push(&positives[i]);
            y.push(1.0);
        }
        for &i in &neg_idx {
            rows.push(negatives[i]);
            y.push(-1.0);
        }
        fit_model(rows, &y, cfg, cache)
    }

    /// Trains the full [`Authenticator`] for a user according to the
    /// configured [`ContextMode`]. `positives[c]` holds the user's windows
    /// for context index `c`.
    ///
    /// # Errors
    ///
    /// Propagates [`TrainingServer::train_model`] failures.
    pub fn train_authenticator(
        &self,
        positives: &[Vec<Vec<f64>>; 2],
        cfg: &SystemConfig,
        rng: &mut StdRng,
    ) -> Result<Authenticator, CoreError> {
        let mut caches: [KrrFitCache; 2] = Default::default();
        self.train_authenticator_cached(positives, cfg, rng, &mut caches)
    }

    /// [`TrainingServer::train_authenticator`] with per-context KRR fit
    /// caches, so a device's periodic retrains can skip refactoring when
    /// the sampled training matrix has not changed.
    ///
    /// # Errors
    ///
    /// Propagates [`TrainingServer::train_model`] failures.
    pub fn train_authenticator_cached(
        &self,
        positives: &[Vec<Vec<f64>>; 2],
        cfg: &SystemConfig,
        rng: &mut StdRng,
        caches: &mut [KrrFitCache; 2],
    ) -> Result<Authenticator, CoreError> {
        match cfg.context_mode() {
            ContextMode::Unified => {
                let all: Vec<Vec<f64>> = positives.iter().flatten().cloned().collect();
                let model = self.train_model_cached(None, &all, cfg, rng, &mut caches[0])?;
                Ok(Authenticator::unified(model, cfg.accept_threshold()))
            }
            ContextMode::PerContext => {
                let mut models = Vec::with_capacity(2);
                for ctx in UsageContext::ALL {
                    models.push(self.train_model_cached(
                        Some(ctx),
                        &positives[ctx.index()],
                        cfg,
                        rng,
                        &mut caches[ctx.index()],
                    )?);
                }
                Authenticator::per_context(models, cfg.accept_threshold())
            }
        }
    }

    /// Draws a device's frozen negative sample for the current pool
    /// version: `data_size/2` pooled vectors per model (per context, or one
    /// pooled draw in unified mode), shuffled by `rng` and then **pinned**.
    /// Retrains against a pinned sample keep the design-matrix rows stable,
    /// which is what lets [`KernelRidge::fit_with_cache`] reuse its
    /// Cholesky factorisation (see
    /// [`TrainingServer::train_authenticator_epoch`]).
    ///
    /// # Errors
    ///
    /// [`CoreError::InsufficientData`] when a required pool is empty.
    pub fn sample_negative_epoch(
        &self,
        cfg: &SystemConfig,
        rng: &mut StdRng,
    ) -> Result<NegativeEpoch, CoreError> {
        let per_class = cfg.data_size() / 2;
        let sample = |pool: Vec<&Vec<f64>>, rng: &mut StdRng| -> Result<Vec<Vec<f64>>, CoreError> {
            if pool.is_empty() {
                return Err(CoreError::InsufficientData("empty negative pool".into()));
            }
            let mut idx: Vec<usize> = (0..pool.len()).collect();
            idx.shuffle(rng);
            idx.truncate(per_class.min(pool.len()));
            Ok(idx.into_iter().map(|i| pool[i].clone()).collect())
        };
        let rows = match cfg.context_mode() {
            ContextMode::PerContext => [
                sample(self.pools[0].iter().collect(), rng)?,
                sample(self.pools[1].iter().collect(), rng)?,
            ],
            ContextMode::Unified => [
                sample(self.pools.iter().flatten().collect(), rng)?,
                Vec::new(),
            ],
        };
        Ok(NegativeEpoch {
            pool_version: self.pool_version,
            pool_fingerprint: self.pool_fingerprint,
            rows,
        })
    }

    /// Retrains the [`Authenticator`] with **epoch-stable sampling**: the
    /// negatives come from `epoch`'s frozen sample, (re)drawn only when the
    /// anonymized pool has changed since it was pinned, and the positives
    /// are the most recent `data_size/2` buffered windows in buffer order —
    /// no per-fit shuffling. A retrain whose inputs did not change between
    /// fits therefore presents the *identical* design matrix and reuses the
    /// cached Cholesky factorisation in `caches` (an `O(dim³)` →
    /// `O(dim²)` refit); inspect [`KrrFitCache::hits`] to observe it.
    ///
    /// # Errors
    ///
    /// [`CoreError::InsufficientData`] when either side of a model's
    /// training set is empty; training failures are propagated.
    pub fn train_authenticator_epoch(
        &self,
        positives: &[Vec<Vec<f64>>; 2],
        cfg: &SystemConfig,
        rng: &mut StdRng,
        epoch: &mut Option<NegativeEpoch>,
        caches: &mut [KrrFitCache; 2],
    ) -> Result<Authenticator, CoreError> {
        if epoch
            .as_ref()
            .is_none_or(|e| (e.pool_version, e.pool_fingerprint) != self.pool_stamp())
        {
            *epoch = Some(self.sample_negative_epoch(cfg, rng)?);
        }
        let epoch = epoch.as_ref().expect("pinned above");
        match cfg.context_mode() {
            ContextMode::Unified => {
                let all: Vec<Vec<f64>> = positives.iter().flatten().cloned().collect();
                let model = self.train_model_frozen(&all, &epoch.rows[0], cfg, &mut caches[0])?;
                Ok(Authenticator::unified(model, cfg.accept_threshold()))
            }
            ContextMode::PerContext => {
                let mut models = Vec::with_capacity(2);
                for ctx in UsageContext::ALL {
                    models.push(self.train_model_frozen(
                        &positives[ctx.index()],
                        &epoch.rows[ctx.index()],
                        cfg,
                        &mut caches[ctx.index()],
                    )?);
                }
                Authenticator::per_context(models, cfg.accept_threshold())
            }
        }
    }

    /// [`TrainingServer::train_authenticator_epoch`] routed through the
    /// same shared negative-Gram blocks enrollment uses: the per-epoch
    /// [`EnrollmentWorkspace`] is looked up in (or built into) `ws_cache`,
    /// so each retrain resolves to one m×m closed-form solve instead of a
    /// fresh negative pass plus an O(n³) refit. `tails` carries the
    /// positive-tail factor identity from the previous fit per context
    /// slot; when only a few buffer windows changed since then the
    /// Cholesky factor is *slid* with rank-1 updates/downdates instead of
    /// refactored (see `KernelRidge::fit_scaled_shared_tail`). A pool
    /// change resamples the epoch and clears the tails — a slid factor is
    /// only meaningful against the negatives it was built over.
    ///
    /// # Errors
    ///
    /// Same as [`TrainingServer::train_authenticator_epoch`].
    #[allow(clippy::too_many_arguments)]
    pub fn train_authenticator_epoch_shared(
        &self,
        positives: &[Vec<Vec<f64>>; 2],
        cfg: &SystemConfig,
        rng: &mut StdRng,
        epoch: &mut Option<NegativeEpoch>,
        caches: &mut [KrrFitCache; 2],
        tails: &mut [Option<KrrTailState>; 2],
        ws_cache: &RetrainWorkspaceCache,
    ) -> Result<Authenticator, CoreError> {
        if epoch
            .as_ref()
            .is_none_or(|e| (e.pool_version, e.pool_fingerprint) != self.pool_stamp())
        {
            *epoch = Some(self.sample_negative_epoch(cfg, rng)?);
            // The tails factor in the old epoch's negatives: stale.
            *tails = [None, None];
        }
        let epoch = epoch.as_ref().expect("pinned above");
        let ws = ws_cache.workspace_for(epoch, cfg)?;
        ws.train_authenticator_tail(positives, cfg, caches, tails)
    }

    /// Pins a fresh [`NegativeEpoch`] and precomputes the per-context
    /// [`KrrSharedWorkspace`] blocks over it — the shared prefix of every
    /// enrollment fit against this pool sample. Build once per enrollment
    /// batch, then call [`EnrollmentWorkspace::train_authenticator`] per
    /// user: each user pays O(n_pos·M² + M³) instead of a fresh pass over
    /// the negatives plus a full refactorisation.
    ///
    /// # Errors
    ///
    /// [`CoreError::InsufficientData`] when a required pool is empty;
    /// workspace construction failures are propagated.
    pub fn enrollment_workspace(
        &self,
        cfg: &SystemConfig,
        rng: &mut StdRng,
    ) -> Result<EnrollmentWorkspace, CoreError> {
        let epoch = self.sample_negative_epoch(cfg, rng)?;
        EnrollmentWorkspace::over(epoch, cfg)
    }

    /// Batched fleet enrollment: pins **one** negative epoch, precomputes
    /// the shared workspace over it, and fits every user's authenticator
    /// against the shared block. Returns the pinned epoch (each enrolled
    /// pipeline should adopt it so later retrains stay epoch-stable)
    /// alongside one authenticator per entry of `users`, in order.
    ///
    /// Decisions agree with per-user [`train_authenticator_epoch`]
    /// (seeded with the same epoch) to tight epsilon — pinned by the
    /// workspace-root `enroll_parity` suite.
    ///
    /// [`train_authenticator_epoch`]: TrainingServer::train_authenticator_epoch
    ///
    /// # Errors
    ///
    /// [`CoreError::InsufficientData`] when a required pool is empty or a
    /// user has no positive windows; fit failures fail the whole batch.
    pub fn enroll_many(
        &self,
        users: &[[Vec<Vec<f64>>; 2]],
        cfg: &SystemConfig,
        rng: &mut StdRng,
    ) -> Result<(NegativeEpoch, Vec<Authenticator>), CoreError> {
        let ws = self.enrollment_workspace(cfg, rng)?;
        let mut caches: [KrrFitCache; 2] = Default::default();
        let auths = users
            .iter()
            .map(|positives| ws.train_authenticator(positives, cfg, &mut caches))
            .collect::<Result<Vec<_>, _>>()?;
        Ok((ws.epoch, auths))
    }

    /// One model fit over a deterministic design matrix: the most recent
    /// `data_size/2` positives (buffer order — §V-I retrains on the
    /// "latest authentication feature vectors") stacked over the frozen
    /// negatives, scaler fitted on the stack, KRR solved through the fit
    /// cache. Consumes no randomness.
    fn train_model_frozen(
        &self,
        positives: &[Vec<f64>],
        negatives: &[Vec<f64>],
        cfg: &SystemConfig,
        cache: &mut KrrFitCache,
    ) -> Result<AuthModel, CoreError> {
        if positives.is_empty() || negatives.is_empty() {
            return Err(CoreError::InsufficientData(format!(
                "positives={}, frozen negatives={}",
                positives.len(),
                negatives.len()
            )));
        }
        let per_class = cfg.data_size() / 2;
        let tail = positives.len().saturating_sub(per_class);
        let mut rows: Vec<&[f64]> = Vec::with_capacity(positives.len() - tail + negatives.len());
        let mut y = Vec::with_capacity(rows.capacity());
        for row in &positives[tail..] {
            rows.push(row);
            y.push(1.0);
        }
        for row in negatives {
            rows.push(row);
            y.push(-1.0);
        }
        fit_model(rows, &y, cfg, Some(cache))
    }
}

/// The shared fit tail: stacks the assembled `(rows, labels)` into a
/// matrix, fits the scaler on it, and solves the KRR system (through the
/// cache when one is supplied). Both the per-fit-sampled and the
/// frozen-epoch training paths end here, so scaling and error semantics
/// cannot diverge between them.
fn fit_model(
    rows: Vec<&[f64]>,
    y: &[f64],
    cfg: &SystemConfig,
    cache: Option<&mut KrrFitCache>,
) -> Result<AuthModel, CoreError> {
    let x = Matrix::from_rows(&rows)
        .map_err(|e| CoreError::InsufficientData(format!("ragged features: {e}")))?;
    let scaler = Scaler::fit(&x);
    let xs = scaler.transform(&x);
    let trainer = KernelRidge::new(cfg.rho());
    let krr = match cache {
        Some(cache) => trainer.fit_with_cache(cache, &xs, y)?,
        None => trainer.fit(&xs, y)?,
    };
    Ok(AuthModel::new(scaler, krr))
}

/// A device's frozen negative sample: the pooled vectors it trains against
/// until the anonymized pool changes. Rides along in the pipeline snapshot
/// so an evicted-and-rehydrated device retrains bit-identically to one
/// that never left memory (resampling on restore would consume different
/// randomness).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NegativeEpoch {
    /// [`TrainingServer::pool_version`] the sample was drawn at.
    pool_version: u64,
    /// Content fingerprint of the pool the sample was drawn from. The
    /// epoch outlives the server process inside pipeline snapshots, and a
    /// rebuilt server's bare counter could coincidentally match; the
    /// fingerprint ties staleness to the actual pool contents.
    pool_fingerprint: u64,
    /// Sampled negative rows per [`UsageContext::index`]; unified mode
    /// keeps its single pooled draw in slot 0.
    rows: [Vec<Vec<f64>>; 2],
}

impl NegativeEpoch {
    /// Pool version the sample was pinned at.
    pub fn pool_version(&self) -> u64 {
        self.pool_version
    }

    /// Sampled rows per context slot.
    pub(crate) fn rows(&self) -> &[Vec<Vec<f64>>; 2] {
        &self.rows
    }
}

/// A pinned [`NegativeEpoch`] bundled with the precomputed shared-Gram
/// blocks every enrollment fit against it reuses ([`KrrSharedWorkspace`]
/// per context slot). Built once per enrollment batch by
/// [`TrainingServer::enrollment_workspace`]; immutable thereafter, so one
/// workspace can serve any number of users.
#[derive(Debug, Clone)]
pub struct EnrollmentWorkspace {
    /// The frozen negative sample the blocks were computed over. Enrolled
    /// pipelines adopt it so their later retrains reuse the same rows.
    epoch: NegativeEpoch,
    /// Trainer configuration shared by every fit (must match the one the
    /// workspace blocks were built under).
    trainer: KernelRidge,
    /// Shared negative blocks per [`UsageContext::index`]; `None` for a
    /// slot the epoch holds no rows for (unified mode leaves slot 1
    /// empty).
    workspaces: [Option<KrrSharedWorkspace>; 2],
}

impl EnrollmentWorkspace {
    /// Precomputes the shared blocks over an already-pinned epoch.
    fn over(epoch: NegativeEpoch, cfg: &SystemConfig) -> Result<Self, CoreError> {
        let trainer = KernelRidge::new(cfg.rho());
        let mut workspaces = [None, None];
        for (slot, rows) in epoch.rows.iter().enumerate() {
            if rows.is_empty() {
                continue;
            }
            let refs: Vec<&[f64]> = rows.iter().map(Vec::as_slice).collect();
            let neg = Matrix::from_rows(&refs)
                .map_err(|e| CoreError::InsufficientData(format!("ragged negatives: {e}")))?;
            workspaces[slot] = Some(trainer.shared_workspace(neg)?);
        }
        Ok(EnrollmentWorkspace {
            epoch,
            trainer,
            workspaces,
        })
    }

    /// The negative epoch the shared blocks were computed over.
    pub fn epoch(&self) -> &NegativeEpoch {
        &self.epoch
    }

    /// Fits one user's [`Authenticator`] against the shared blocks,
    /// mirroring [`TrainingServer::train_authenticator_epoch`]'s frozen
    /// path: tail-`data_size/2` positives per model, scaler fitted over
    /// the stacked rows (via the closed-form moments), no randomness
    /// consumed. `caches` records a shared-block hit or fallback miss per
    /// fit.
    ///
    /// # Errors
    ///
    /// [`CoreError::InsufficientData`] when a model has no positives or
    /// the epoch holds no negatives for its slot; fit failures are
    /// propagated.
    pub fn train_authenticator(
        &self,
        positives: &[Vec<Vec<f64>>; 2],
        cfg: &SystemConfig,
        caches: &mut [KrrFitCache; 2],
    ) -> Result<Authenticator, CoreError> {
        match cfg.context_mode() {
            ContextMode::Unified => {
                let all: Vec<Vec<f64>> = positives.iter().flatten().cloned().collect();
                let model = self.train_model_shared(&all, 0, cfg, &mut caches[0])?;
                Ok(Authenticator::unified(model, cfg.accept_threshold()))
            }
            ContextMode::PerContext => {
                let mut models = Vec::with_capacity(2);
                for ctx in UsageContext::ALL {
                    models.push(self.train_model_shared(
                        &positives[ctx.index()],
                        ctx.index(),
                        cfg,
                        &mut caches[ctx.index()],
                    )?);
                }
                Authenticator::per_context(models, cfg.accept_threshold())
            }
        }
    }

    /// Retrain variant of [`EnrollmentWorkspace::train_authenticator`]:
    /// every model fit additionally threads the per-slot
    /// [`KrrTailState`] through
    /// [`KernelRidge::fit_scaled_shared_tail`], so a retrain whose
    /// positive tail shifted by only a few buffer windows slides the
    /// previous Cholesky factor instead of refactoring.
    ///
    /// # Errors
    ///
    /// Same as [`EnrollmentWorkspace::train_authenticator`].
    pub fn train_authenticator_tail(
        &self,
        positives: &[Vec<Vec<f64>>; 2],
        cfg: &SystemConfig,
        caches: &mut [KrrFitCache; 2],
        tails: &mut [Option<KrrTailState>; 2],
    ) -> Result<Authenticator, CoreError> {
        match cfg.context_mode() {
            ContextMode::Unified => {
                let all: Vec<Vec<f64>> = positives.iter().flatten().cloned().collect();
                let model =
                    self.train_model_shared_tail(&all, 0, cfg, &mut caches[0], &mut tails[0])?;
                Ok(Authenticator::unified(model, cfg.accept_threshold()))
            }
            ContextMode::PerContext => {
                let mut models = Vec::with_capacity(2);
                for ctx in UsageContext::ALL {
                    models.push(self.train_model_shared_tail(
                        &positives[ctx.index()],
                        ctx.index(),
                        cfg,
                        &mut caches[ctx.index()],
                        &mut tails[ctx.index()],
                    )?);
                }
                Authenticator::per_context(models, cfg.accept_threshold())
            }
        }
    }

    /// One tail-sliding shared-block fit: same design matrix as
    /// [`EnrollmentWorkspace::train_model_shared`], solved through
    /// [`KernelRidge::fit_scaled_shared_tail`] so consecutive retrains
    /// with overlapping positive tails reuse the previous factorisation.
    fn train_model_shared_tail(
        &self,
        positives: &[Vec<f64>],
        slot: usize,
        cfg: &SystemConfig,
        cache: &mut KrrFitCache,
        tail: &mut Option<KrrTailState>,
    ) -> Result<AuthModel, CoreError> {
        let ws = self.workspaces[slot].as_ref().ok_or_else(|| {
            CoreError::InsufficientData(format!("no frozen negatives for context slot {slot}"))
        })?;
        if positives.is_empty() {
            return Err(CoreError::InsufficientData(format!(
                "positives=0, frozen negatives={}",
                ws.num_negatives()
            )));
        }
        let per_class = cfg.data_size() / 2;
        let start = positives.len().saturating_sub(per_class);
        let rows: Vec<&[f64]> = positives[start..].iter().map(Vec::as_slice).collect();
        let pos = Matrix::from_rows(&rows)
            .map_err(|e| CoreError::InsufficientData(format!("ragged features: {e}")))?;
        let (scaler, krr) = self.trainer.fit_scaled_shared_tail(cache, ws, &pos, tail)?;
        Ok(AuthModel::new(scaler, krr))
    }

    /// One shared-block model fit: the same design matrix as
    /// `train_model_frozen` (tail positives over the epoch's negatives),
    /// solved through [`KernelRidge::fit_scaled_shared_cached`].
    fn train_model_shared(
        &self,
        positives: &[Vec<f64>],
        slot: usize,
        cfg: &SystemConfig,
        cache: &mut KrrFitCache,
    ) -> Result<AuthModel, CoreError> {
        let ws = self.workspaces[slot].as_ref().ok_or_else(|| {
            CoreError::InsufficientData(format!("no frozen negatives for context slot {slot}"))
        })?;
        if positives.is_empty() {
            return Err(CoreError::InsufficientData(format!(
                "positives=0, frozen negatives={}",
                ws.num_negatives()
            )));
        }
        let per_class = cfg.data_size() / 2;
        let tail = positives.len().saturating_sub(per_class);
        let rows: Vec<&[f64]> = positives[tail..].iter().map(Vec::as_slice).collect();
        let pos = Matrix::from_rows(&rows)
            .map_err(|e| CoreError::InsufficientData(format!("ragged features: {e}")))?;
        let (scaler, krr) = self.trainer.fit_scaled_shared_cached(cache, ws, &pos)?;
        Ok(AuthModel::new(scaler, krr))
    }
}

/// A small shared cache of per-[`NegativeEpoch`] enrollment workspaces for
/// the **retrain** path. Enrollment builds its workspace once per batch and
/// drops it; retrains arrive one job at a time, spread over ticks, and
/// would otherwise rebuild the negative-Gram block per job. This cache
/// keys the block on `(epoch, trainer)` so every retrain against the same
/// pinned sample reuses the same precomputed negatives.
///
/// Cheaply cloneable (the entries live behind an `Arc`): the training
/// worker, the synchronous parity mode and each pipeline's inline fallback
/// can all share one cache. Holding it **does not** affect results — the
/// workspace is a pure function of the epoch and the trainer config — it
/// only changes who pays the construction cost. Bounded to a handful of
/// epochs (fleets converge on one shared epoch per pool version); the
/// oldest entry is evicted first.
#[derive(Debug, Clone, Default)]
pub struct RetrainWorkspaceCache {
    entries: Arc<Mutex<Vec<Arc<EnrollmentWorkspace>>>>,
}

impl RetrainWorkspaceCache {
    /// At most this many distinct `(epoch, trainer)` workspaces are kept;
    /// a fleet mid-pool-rollover briefly needs two.
    const MAX_ENTRIES: usize = 8;

    /// An empty cache.
    pub fn new() -> Self {
        RetrainWorkspaceCache::default()
    }

    /// Number of cached per-epoch workspaces.
    pub fn len(&self) -> usize {
        self.entries.lock().len()
    }

    /// Whether the cache holds no workspaces yet.
    pub fn is_empty(&self) -> bool {
        self.entries.lock().is_empty()
    }

    /// The shared workspace for `epoch` under `cfg`'s trainer, building
    /// and caching it on first sight. Construction happens under the cache
    /// lock so concurrent retrain workers against a fresh epoch serialize
    /// on one build instead of racing duplicate ones.
    ///
    /// # Errors
    ///
    /// Propagates workspace-construction failures
    /// ([`CoreError::InsufficientData`] on ragged negatives, ML errors).
    pub fn workspace_for(
        &self,
        epoch: &NegativeEpoch,
        cfg: &SystemConfig,
    ) -> Result<Arc<EnrollmentWorkspace>, CoreError> {
        let trainer = KernelRidge::new(cfg.rho());
        let mut entries = self.entries.lock();
        if let Some(hit) = entries
            .iter()
            .find(|ws| ws.trainer == trainer && ws.epoch == *epoch)
        {
            return Ok(Arc::clone(hit));
        }
        let built = Arc::new(EnrollmentWorkspace::over(epoch.clone(), cfg)?);
        if entries.len() >= RetrainWorkspaceCache::MAX_ENTRIES {
            entries.remove(0);
        }
        entries.push(Arc::clone(&built));
        Ok(built)
    }
}

/// How a pipeline reaches its training service. Today the only deployment
/// is the in-process [`TrainingServer`] behind a mutex (every
/// `Arc<Mutex<TrainingServer>>` coerces straight into
/// `Arc<dyn TrainingHandle>`), but the pipeline and fleet engine only ever
/// see this trait — the seam where a future out-of-process training
/// service (RPC to a real cloud tier) plugs in without touching the
/// per-user state machine. Shards share one handle across threads, hence
/// `Send + Sync` with interior locking.
pub trait TrainingHandle: fmt::Debug + Send + Sync {
    /// Trains the initial [`Authenticator`] from enrollment buffers (see
    /// [`TrainingServer::train_authenticator`]).
    ///
    /// # Errors
    ///
    /// Propagates training failures.
    fn train_authenticator(
        &self,
        positives: &[Vec<Vec<f64>>; 2],
        cfg: &SystemConfig,
        rng: &mut StdRng,
    ) -> Result<Authenticator, CoreError>;

    /// Retrains with epoch-stable negative sampling (see
    /// [`TrainingServer::train_authenticator_epoch`]).
    ///
    /// # Errors
    ///
    /// Propagates training failures.
    fn train_authenticator_epoch(
        &self,
        positives: &[Vec<Vec<f64>>; 2],
        cfg: &SystemConfig,
        rng: &mut StdRng,
        epoch: &mut Option<NegativeEpoch>,
        caches: &mut [KrrFitCache; 2],
    ) -> Result<Authenticator, CoreError>;

    /// Retrains through the shared per-epoch workspace with incremental
    /// positive-tail factor reuse (see
    /// [`TrainingServer::train_authenticator_epoch_shared`]).
    ///
    /// # Errors
    ///
    /// Propagates training failures.
    #[allow(clippy::too_many_arguments)]
    fn train_authenticator_epoch_shared(
        &self,
        positives: &[Vec<Vec<f64>>; 2],
        cfg: &SystemConfig,
        rng: &mut StdRng,
        epoch: &mut Option<NegativeEpoch>,
        caches: &mut [KrrFitCache; 2],
        tails: &mut [Option<KrrTailState>; 2],
        ws_cache: &RetrainWorkspaceCache,
    ) -> Result<Authenticator, CoreError>;

    /// Pins a negative epoch and precomputes the shared enrollment blocks
    /// over it (see [`TrainingServer::enrollment_workspace`]) — the entry
    /// point batched fleet enrollment builds once and reuses per user.
    ///
    /// # Errors
    ///
    /// Propagates sampling and workspace-construction failures.
    fn enrollment_workspace(
        &self,
        cfg: &SystemConfig,
        rng: &mut StdRng,
    ) -> Result<EnrollmentWorkspace, CoreError>;
}

impl TrainingHandle for Mutex<TrainingServer> {
    fn train_authenticator(
        &self,
        positives: &[Vec<Vec<f64>>; 2],
        cfg: &SystemConfig,
        rng: &mut StdRng,
    ) -> Result<Authenticator, CoreError> {
        self.lock().train_authenticator(positives, cfg, rng)
    }

    fn train_authenticator_epoch(
        &self,
        positives: &[Vec<Vec<f64>>; 2],
        cfg: &SystemConfig,
        rng: &mut StdRng,
        epoch: &mut Option<NegativeEpoch>,
        caches: &mut [KrrFitCache; 2],
    ) -> Result<Authenticator, CoreError> {
        self.lock()
            .train_authenticator_epoch(positives, cfg, rng, epoch, caches)
    }

    fn train_authenticator_epoch_shared(
        &self,
        positives: &[Vec<Vec<f64>>; 2],
        cfg: &SystemConfig,
        rng: &mut StdRng,
        epoch: &mut Option<NegativeEpoch>,
        caches: &mut [KrrFitCache; 2],
        tails: &mut [Option<KrrTailState>; 2],
        ws_cache: &RetrainWorkspaceCache,
    ) -> Result<Authenticator, CoreError> {
        self.lock()
            .train_authenticator_epoch_shared(positives, cfg, rng, epoch, caches, tails, ws_cache)
    }

    fn enrollment_workspace(
        &self,
        cfg: &SystemConfig,
        rng: &mut StdRng,
    ) -> Result<EnrollmentWorkspace, CoreError> {
        self.lock().enrollment_workspace(cfg, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(5)
    }

    /// Positive cluster near +2, negative pool near −2, two features.
    fn setup() -> (TrainingServer, Vec<Vec<f64>>) {
        let mut server = TrainingServer::new();
        for ctx in UsageContext::ALL {
            let negs: Vec<Vec<f64>> = (0..60)
                .map(|i| vec![-2.0 - 0.01 * i as f64, -2.0 + 0.01 * i as f64])
                .collect();
            server.contribute(ctx, negs);
        }
        let pos: Vec<Vec<f64>> = (0..60)
            .map(|i| vec![2.0 + 0.01 * i as f64, 2.0 - 0.01 * i as f64])
            .collect();
        (server, pos)
    }

    fn small_cfg() -> SystemConfig {
        SystemConfig::paper_default().with_data_size(80)
    }

    #[test]
    fn trains_separating_model() {
        let (server, pos) = setup();
        let model = server
            .train_model(
                Some(UsageContext::Stationary),
                &pos,
                &small_cfg(),
                &mut rng(),
            )
            .unwrap();
        assert!(model.confidence(&[2.0, 2.0]) > 0.0);
        assert!(model.confidence(&[-2.0, -2.0]) < 0.0);
    }

    #[test]
    fn pool_accounting() {
        let (server, _) = setup();
        assert_eq!(server.pool_size(UsageContext::Stationary), 60);
        assert_eq!(server.pool_size(UsageContext::Moving), 60);
    }

    #[test]
    fn empty_pool_is_an_error() {
        let server = TrainingServer::new();
        let err = server
            .train_model(
                Some(UsageContext::Moving),
                &[vec![1.0]],
                &small_cfg(),
                &mut rng(),
            )
            .unwrap_err();
        assert!(matches!(err, CoreError::InsufficientData(_)));
    }

    #[test]
    fn per_context_authenticator_has_two_models() {
        let (server, pos) = setup();
        let positives = [pos.clone(), pos.clone()];
        let auth = server
            .train_authenticator(&positives, &small_cfg(), &mut rng())
            .unwrap();
        assert_eq!(auth.mode(), ContextMode::PerContext);
        assert!(
            auth.authenticate(UsageContext::Moving, &[2.0, 2.0])
                .accepted
        );
    }

    #[test]
    fn unified_authenticator_pools_contexts() {
        let (server, pos) = setup();
        let positives = [pos.clone(), pos];
        let cfg = small_cfg().with_context_mode(ContextMode::Unified);
        let auth = server
            .train_authenticator(&positives, &cfg, &mut rng())
            .unwrap();
        assert_eq!(auth.mode(), ContextMode::Unified);
        let a = auth.authenticate(UsageContext::Stationary, &[2.0, 2.0]);
        let b = auth.authenticate(UsageContext::Moving, &[2.0, 2.0]);
        assert_eq!(a.confidence, b.confidence);
    }

    #[test]
    fn epoch_retrain_reuses_the_sample_and_hits_the_fit_cache() {
        let (server, pos) = setup();
        let cfg = small_cfg();
        let positives = [pos.clone(), pos.clone()];
        let mut rng = rng();
        let mut epoch = None;
        let mut caches: [KrrFitCache; 2] = Default::default();

        let a = server
            .train_authenticator_epoch(&positives, &cfg, &mut rng, &mut epoch, &mut caches)
            .unwrap();
        let pinned = epoch.clone().expect("epoch pinned by first fit");
        assert_eq!(pinned.pool_version(), server.pool_version());
        assert_eq!(caches.iter().map(|c| c.hits()).sum::<u64>(), 0);

        // Same positives, unchanged pool: the sample is reused (no RNG
        // draw), every design matrix is identical, and both context fits
        // reuse their cached factorisation — bit-identical models.
        let b = server
            .train_authenticator_epoch(&positives, &cfg, &mut rng, &mut epoch, &mut caches)
            .unwrap();
        assert_eq!(epoch.as_ref(), Some(&pinned));
        assert_eq!(caches.iter().map(|c| c.hits()).sum::<u64>(), 2);
        assert_eq!(a, b);

        // A pool contribution bumps the version: the next retrain resamples
        // and refactors.
        let mut server = server;
        server.contribute(UsageContext::Stationary, vec![vec![0.0, 0.0]]);
        server
            .train_authenticator_epoch(&positives, &cfg, &mut rng, &mut epoch, &mut caches)
            .unwrap();
        assert_ne!(epoch.as_ref(), Some(&pinned));
        assert_eq!(
            epoch.as_ref().unwrap().pool_version(),
            server.pool_version()
        );
        assert_eq!(caches.iter().map(|c| c.hits()).sum::<u64>(), 2);
    }

    #[test]
    fn epoch_retrain_takes_the_most_recent_positives() {
        // With more positives than data_size/2, the frozen path must train
        // on the tail (the latest windows), not the head: shifting one new
        // window in changes the model even though the sample is frozen.
        let (server, pos) = setup();
        let cfg = SystemConfig::paper_default().with_data_size(40); // 20 per class
        let mut rng = rng();
        let mut epoch = None;
        let mut caches: [KrrFitCache; 2] = Default::default();
        let positives = [pos.clone(), pos.clone()];
        let a = server
            .train_authenticator_epoch(&positives, &cfg, &mut rng, &mut epoch, &mut caches)
            .unwrap();
        let mut shifted = pos.clone();
        shifted.push(vec![3.5, 3.5]);
        let positives = [shifted.clone(), shifted];
        let b = server
            .train_authenticator_epoch(&positives, &cfg, &mut rng, &mut epoch, &mut caches)
            .unwrap();
        assert_ne!(a, b, "a fresh window must reach the training set");
    }

    #[test]
    fn empty_contribution_does_not_invalidate_epochs() {
        let (mut server, _) = setup();
        let stamp = server.pool_stamp();
        server.contribute(UsageContext::Stationary, std::iter::empty());
        assert_eq!(
            server.pool_stamp(),
            stamp,
            "an empty upload must not devalidate pinned negative epochs"
        );
        server.contribute(UsageContext::Stationary, vec![vec![1.0, 1.0]]);
        assert_ne!(server.pool_stamp(), stamp);
    }

    #[test]
    fn rebuilt_pool_with_matching_version_is_caught_by_the_fingerprint() {
        // A NegativeEpoch outlives the server process inside snapshots: a
        // rebuilt server can reach the same bare version count with
        // different data, and the content fingerprint must still force a
        // resample.
        let mut a = TrainingServer::new();
        let mut b = TrainingServer::new();
        for i in 0..4 {
            for ctx in UsageContext::ALL {
                a.contribute(ctx, vec![vec![i as f64, 0.0]]);
                b.contribute(ctx, vec![vec![i as f64, 7.0]]);
            }
        }
        assert_eq!(a.pool_version(), b.pool_version());
        assert_ne!(a.pool_stamp(), b.pool_stamp());
        let cfg = small_cfg();
        let mut rng = rng();
        let epoch_a = a.sample_negative_epoch(&cfg, &mut rng).unwrap();
        // An epoch pinned against server A is stale on server B even
        // though the version counters agree.
        let mut epoch = Some(epoch_a.clone());
        let mut caches: [KrrFitCache; 2] = Default::default();
        let positives = [vec![vec![2.0, 2.0]; 4], vec![vec![2.0, 2.0]; 4]];
        b.train_authenticator_epoch(
            &positives,
            &SystemConfig::paper_default().with_data_size(20),
            &mut rng,
            &mut epoch,
            &mut caches,
        )
        .unwrap();
        assert_ne!(
            epoch.as_ref(),
            Some(&epoch_a),
            "fingerprint forced a resample"
        );
    }

    #[test]
    fn enroll_many_matches_per_user_epoch_training() {
        let (server, pos) = setup();
        let cfg = SystemConfig::paper_default().with_data_size(40);
        let users: Vec<[Vec<Vec<f64>>; 2]> = (0..4)
            .map(|u| {
                let shifted: Vec<Vec<f64>> = pos
                    .iter()
                    .map(|r| r.iter().map(|v| v + 0.05 * u as f64).collect())
                    .collect();
                [shifted.clone(), shifted]
            })
            .collect();
        let (epoch, auths) = server.enroll_many(&users, &cfg, &mut rng()).unwrap();
        assert_eq!(auths.len(), users.len());
        assert_eq!(epoch.pool_version(), server.pool_version());
        // Per-user sequential path, seeded with the same pinned epoch —
        // the frozen fit consumes no RNG, so decisions must agree to
        // tight epsilon.
        for (user, batched) in users.iter().zip(&auths) {
            let mut pinned = Some(epoch.clone());
            let mut caches: [KrrFitCache; 2] = Default::default();
            let sequential = server
                .train_authenticator_epoch(user, &cfg, &mut rng(), &mut pinned, &mut caches)
                .unwrap();
            assert_eq!(pinned.as_ref(), Some(&epoch), "epoch must stay pinned");
            for ctx in UsageContext::ALL {
                for probe in [[2.1, 1.9], [-2.0, -2.2], [0.3, -0.4]] {
                    let a = batched.authenticate(ctx, &probe).confidence;
                    let b = sequential.authenticate(ctx, &probe).confidence;
                    assert!((a - b).abs() < 1e-9, "batched {a} vs sequential {b}");
                }
            }
        }
    }

    #[test]
    fn enroll_many_unified_mode_and_counters() {
        let (server, pos) = setup();
        let cfg = small_cfg().with_context_mode(ContextMode::Unified);
        let ws = server.enrollment_workspace(&cfg, &mut rng()).unwrap();
        let mut caches: [KrrFitCache; 2] = Default::default();
        let positives = [pos.clone(), pos];
        let auth = ws
            .train_authenticator(&positives, &cfg, &mut caches)
            .unwrap();
        assert_eq!(auth.mode(), ContextMode::Unified);
        assert!(
            auth.authenticate(UsageContext::Moving, &[2.0, 2.0])
                .accepted
        );
        // Production config is linear/primal: the fit must come off the
        // shared block, not the fallback.
        assert_eq!((caches[0].hits(), caches[0].misses()), (1, 0));
    }

    #[test]
    fn shared_epoch_retrain_matches_frozen_path() {
        let (server, pos) = setup();
        let cfg = SystemConfig::paper_default().with_data_size(40);
        let positives = [pos.clone(), pos.clone()];
        // Legacy frozen path pins the epoch and is the reference.
        let mut epoch = None;
        let mut legacy_caches: [KrrFitCache; 2] = Default::default();
        let legacy = server
            .train_authenticator_epoch(&positives, &cfg, &mut rng(), &mut epoch, &mut legacy_caches)
            .unwrap();
        // Shared path over the *same* pinned epoch: no resample, one
        // workspace built, every fit off the shared block, tails seeded.
        let ws_cache = RetrainWorkspaceCache::new();
        let mut caches: [KrrFitCache; 2] = Default::default();
        let mut tails = [None, None];
        let shared = server
            .train_authenticator_epoch_shared(
                &positives,
                &cfg,
                &mut rng(),
                &mut epoch,
                &mut caches,
                &mut tails,
                &ws_cache,
            )
            .unwrap();
        assert_eq!(ws_cache.len(), 1);
        assert!(tails.iter().all(Option::is_some));
        for cache in &caches {
            assert_eq!(
                (cache.shared_hits(), cache.keyed_hits(), cache.misses()),
                (1, 0, 0)
            );
        }
        for ctx in UsageContext::ALL {
            for probe in [[2.1, 1.9], [-2.0, -2.2], [0.3, -0.4]] {
                let a = legacy.authenticate(ctx, &probe).confidence;
                let b = shared.authenticate(ctx, &probe).confidence;
                assert!((a - b).abs() < 1e-6, "legacy {a} vs shared {b}");
            }
        }
        // A second retrain with one fresh window slides the tail instead
        // of refactoring; the workspace is a cache hit.
        let mut shifted = pos.clone();
        shifted.push(vec![2.3, 1.8]);
        let positives = [shifted.clone(), shifted];
        server
            .train_authenticator_epoch_shared(
                &positives,
                &cfg,
                &mut rng(),
                &mut epoch,
                &mut caches,
                &mut tails,
                &ws_cache,
            )
            .unwrap();
        assert_eq!(ws_cache.len(), 1, "same epoch must reuse the workspace");
        for cache in &caches {
            assert_eq!((cache.shared_hits(), cache.misses()), (2, 0));
        }
    }

    #[test]
    fn shared_epoch_retrain_resample_clears_tails() {
        let (mut server, pos) = setup();
        let cfg = SystemConfig::paper_default().with_data_size(40);
        let positives = [pos.clone(), pos];
        let ws_cache = RetrainWorkspaceCache::new();
        let mut epoch = None;
        let mut caches: [KrrFitCache; 2] = Default::default();
        let mut tails = [None, None];
        server
            .train_authenticator_epoch_shared(
                &positives,
                &cfg,
                &mut rng(),
                &mut epoch,
                &mut caches,
                &mut tails,
                &ws_cache,
            )
            .unwrap();
        let pinned = epoch.clone().unwrap();
        let first_tail = tails[0].clone().unwrap();
        // Pool change → resample → the old factor must not survive into
        // the new epoch (its negatives changed underneath it).
        server.contribute(UsageContext::Stationary, vec![vec![0.1, -0.1]]);
        server
            .train_authenticator_epoch_shared(
                &positives,
                &cfg,
                &mut rng(),
                &mut epoch,
                &mut caches,
                &mut tails,
                &ws_cache,
            )
            .unwrap();
        assert_ne!(epoch.as_ref(), Some(&pinned));
        assert_ne!(
            tails[0].as_ref(),
            Some(&first_tail),
            "tails must be re-based on the fresh epoch"
        );
        assert_eq!(ws_cache.len(), 2, "one workspace per distinct epoch");
    }

    #[test]
    fn enroll_many_fails_on_empty_pool_or_user() {
        let empty = TrainingServer::new();
        assert!(matches!(
            empty.enroll_many(&[], &small_cfg(), &mut rng()),
            Err(CoreError::InsufficientData(_))
        ));
        let (server, pos) = setup();
        let users = [[pos, Vec::new()]];
        assert!(matches!(
            server.enroll_many(&users, &small_cfg(), &mut rng()),
            Err(CoreError::InsufficientData(_))
        ));
    }

    #[test]
    fn empty_pool_fails_epoch_sampling() {
        let server = TrainingServer::new();
        let err = server
            .sample_negative_epoch(&small_cfg(), &mut rng())
            .unwrap_err();
        assert!(matches!(err, CoreError::InsufficientData(_)));
    }

    #[test]
    fn balanced_sampling_caps_at_data_size() {
        let (server, pos) = setup();
        // data_size 40 → 20 per class even though 60 are available.
        let cfg = SystemConfig::paper_default().with_data_size(40);
        // No direct observability of the sample count, but training must
        // succeed and produce a sane model.
        let model = server
            .train_model(Some(UsageContext::Moving), &pos, &cfg, &mut rng())
            .unwrap();
        assert!(model.confidence(&[2.5, 2.5]) > 0.0);
    }
}
