use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};

use smarteryou_linalg::Matrix;
use smarteryou_ml::{RandomForest, RandomForestModel};
use smarteryou_sensors::{DualDeviceWindow, UsageContext};
use smarteryou_stats::ConfusionMatrix;

use crate::features::FeatureExtractor;
use crate::CoreError;

/// User-agnostic context detector (§V-E): a random forest over the
/// smartphone feature vector of Eq. 3 that labels each window *stationary*
/// or *moving* before the per-context authentication model is chosen.
///
/// "User-agnostic" means the forest is trained on *other* users' data and
/// applied to the current user — reproduced by training on a population that
/// excludes the device owner (see
/// [`crate::experiment::context_detection_experiment`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ContextDetector {
    forest: RandomForestModel,
    extractor: FeatureExtractor,
}

/// Training configuration for the context detector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ContextDetectorConfig {
    /// Trees in the forest.
    pub num_trees: usize,
    /// Maximum tree depth.
    pub max_depth: usize,
}

impl Default for ContextDetectorConfig {
    fn default() -> Self {
        ContextDetectorConfig {
            num_trees: 50,
            max_depth: 10,
        }
    }
}

impl ContextDetector {
    /// Trains the detector from labelled smartphone feature vectors.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InsufficientData`] when the training set is
    /// empty or single-class, and propagates forest-training failures.
    pub fn train(
        extractor: FeatureExtractor,
        features: &[Vec<f64>],
        labels: &[UsageContext],
        cfg: ContextDetectorConfig,
        rng: &mut StdRng,
    ) -> Result<Self, CoreError> {
        if features.is_empty() || features.len() != labels.len() {
            return Err(CoreError::InsufficientData(format!(
                "{} feature rows vs {} labels",
                features.len(),
                labels.len()
            )));
        }
        let first = labels[0];
        if labels.iter().all(|&l| l == first) {
            return Err(CoreError::InsufficientData(
                "context training data covers a single context".into(),
            ));
        }
        let x = Matrix::from_rows(features)
            .map_err(|e| CoreError::InsufficientData(format!("ragged features: {e}")))?;
        let y: Vec<usize> = labels.iter().map(|l| l.index()).collect();
        let forest = RandomForest::new(cfg.num_trees)
            .with_max_depth(cfg.max_depth)
            .fit(&x, &y, UsageContext::ALL.len(), rng)?;
        Ok(ContextDetector { forest, extractor })
    }

    /// Detects the context of a window (extracts phone features internally).
    ///
    /// Standalone convenience: the runtime pipeline instead computes
    /// [`WindowFeatures`](crate::WindowFeatures) once per window and calls
    /// [`ContextDetector::detect_from_features`] with the cached phone
    /// vector, so detection shares the authenticator's extraction work.
    pub fn detect(&self, window: &DualDeviceWindow) -> UsageContext {
        self.detect_from_features(&self.extractor.context_features(window))
    }

    /// Detects the context from a pre-extracted phone feature vector
    /// (e.g. [`WindowFeatures::context_features`](crate::WindowFeatures::context_features)).
    ///
    /// # Panics
    ///
    /// Panics if the feature width differs from the training width.
    pub fn detect_from_features(&self, features: &[f64]) -> UsageContext {
        let class = self.forest.predict(features);
        UsageContext::from_index(class).expect("forest trained over UsageContext classes")
    }

    /// The feature extractor the detector was built with.
    pub fn extractor(&self) -> &FeatureExtractor {
        &self.extractor
    }

    /// Evaluates on held-out labelled features, producing the Table V
    /// confusion matrix.
    ///
    /// # Panics
    ///
    /// Panics if `features.len() != labels.len()`.
    pub fn evaluate(&self, features: &[Vec<f64>], labels: &[UsageContext]) -> ConfusionMatrix {
        assert_eq!(features.len(), labels.len(), "features/labels mismatch");
        let mut cm = ConfusionMatrix::new(
            UsageContext::ALL
                .iter()
                .map(|c| c.name().to_string())
                .collect(),
        );
        for (f, l) in features.iter().zip(labels) {
            cm.record(l.index(), self.detect_from_features(f).index());
        }
        cm
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use smarteryou_sensors::{Population, RawContext, TraceGenerator, WindowSpec};

    fn training_data(
        users: usize,
        windows_per_ctx: usize,
    ) -> (FeatureExtractor, Vec<Vec<f64>>, Vec<UsageContext>) {
        let population = Population::generate(users, 11);
        let extractor = FeatureExtractor::paper_default(50.0);
        let spec = WindowSpec::from_seconds(2.0, 50.0);
        let mut feats = Vec::new();
        let mut labels = Vec::new();
        for user in population.iter() {
            let mut gen = TraceGenerator::new(user.clone(), 21);
            for ctx in [RawContext::SittingStanding, RawContext::MovingAround] {
                for w in gen.generate_windows(ctx, spec, windows_per_ctx) {
                    feats.push(extractor.context_features(&w));
                    labels.push(ctx.coarse());
                }
            }
        }
        (extractor, feats, labels)
    }

    #[test]
    fn detects_stationary_vs_moving() {
        let (extractor, feats, labels) = training_data(4, 12);
        let mut rng = StdRng::seed_from_u64(1);
        let det = ContextDetector::train(
            extractor.clone(),
            &feats,
            &labels,
            ContextDetectorConfig::default(),
            &mut rng,
        )
        .unwrap();

        // Evaluate on a user *not* in the training population (user-agnostic).
        let holdout = Population::generate(6, 99).users()[5].clone();
        let mut gen = TraceGenerator::new(holdout, 31);
        let spec = WindowSpec::from_seconds(2.0, 50.0);
        let mut correct = 0;
        let mut total = 0;
        for ctx in [RawContext::SittingStanding, RawContext::MovingAround] {
            for w in gen.generate_windows(ctx, spec, 15) {
                total += 1;
                if det.detect(&w) == ctx.coarse() {
                    correct += 1;
                }
            }
        }
        let acc = correct as f64 / total as f64;
        assert!(acc > 0.85, "user-agnostic context accuracy {acc}");
    }

    #[test]
    fn evaluate_builds_confusion_matrix() {
        let (extractor, feats, labels) = training_data(3, 8);
        let mut rng = StdRng::seed_from_u64(2);
        let det = ContextDetector::train(
            extractor,
            &feats,
            &labels,
            ContextDetectorConfig::default(),
            &mut rng,
        )
        .unwrap();
        let cm = det.evaluate(&feats, &labels);
        assert_eq!(cm.total() as usize, feats.len());
        assert!(cm.accuracy() > 0.9);
        assert_eq!(cm.labels()[0], "stationary");
    }

    #[test]
    fn training_requires_both_contexts() {
        let (extractor, feats, _) = training_data(2, 4);
        let labels = vec![UsageContext::Stationary; feats.len()];
        let mut rng = StdRng::seed_from_u64(3);
        let err = ContextDetector::train(
            extractor,
            &feats,
            &labels,
            ContextDetectorConfig::default(),
            &mut rng,
        )
        .unwrap_err();
        assert!(matches!(err, CoreError::InsufficientData(_)));
    }

    #[test]
    fn training_rejects_empty() {
        let extractor = FeatureExtractor::paper_default(50.0);
        let mut rng = StdRng::seed_from_u64(4);
        assert!(ContextDetector::train(
            extractor,
            &[],
            &[],
            ContextDetectorConfig::default(),
            &mut rng
        )
        .is_err());
    }
}
