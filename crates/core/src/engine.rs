//! Batched, parallel fleet-scoring engine.
//!
//! A production deployment of SmarterYou does not authenticate one window at
//! a time: a cloud tier receives sensor windows from *many* enrolled devices
//! per tick and must score them continuously at low latency. [`FleetEngine`]
//! owns one [`SmarterYou`] pipeline per registered user, accepts a batch of
//! `(UserId, DualDeviceWindow)` pairs per tick, and advances every affected
//! pipeline concurrently with the order-preserving scoped-thread map from
//! [`crate::parallel`]. Within each pipeline, pending windows are scored as
//! grouped per-context matrix passes ([`SmarterYou::process_batch`]) rather
//! than per-row kernel evaluations, and feature extraction runs through the
//! cached [`WindowFeatures`](crate::WindowFeatures) path: each pipeline
//! holds a planned FFT ([`FeatureScratch`](crate::FeatureScratch)) for its
//! window length, so steady-state ticks plan no transforms and allocate
//! nothing in the spectral kernels.
//!
//! Decisions are **bit-identical** to feeding the same windows through
//! sequential [`SmarterYou::process_window`] calls user by user: per-user
//! window order is preserved, every pipeline owns its own state and RNG, and
//! the shared [`TrainingServer`](crate::TrainingServer) is only consulted
//! under its mutex during (re)training. The batch-parity integration tests
//! assert this equivalence on a seeded population.
//!
//! # Example
//!
//! ```no_run
//! use smarteryou_core::engine::FleetEngine;
//! # fn pipelines() -> Vec<(smarteryou_sensors::UserId, smarteryou_core::SmarterYou)> { Vec::new() }
//! # fn next_tick() -> Vec<(smarteryou_sensors::UserId, smarteryou_sensors::DualDeviceWindow)> { Vec::new() }
//!
//! let mut engine = FleetEngine::new();
//! for (id, pipeline) in pipelines() {
//!     engine.register(id, pipeline).unwrap();
//! }
//! loop {
//!     let outcomes = engine.score_ticked(next_tick()).unwrap();
//!     println!("{} windows scored", outcomes.len());
//! }
//! ```

pub mod batch;

use std::collections::HashMap;

use smarteryou_sensors::{DualDeviceWindow, UserId};

use crate::parallel::parallel_map_mut;
use crate::pipeline::{ProcessOutcome, SmarterYou};
use crate::CoreError;

pub use batch::{TickReport, UserOutcomes};

/// One registered user: their on-device pipeline plus the windows queued
/// for the next tick.
#[derive(Debug)]
struct UserSlot {
    id: UserId,
    pipeline: SmarterYou,
    inbox: Vec<DualDeviceWindow>,
}

/// Owns many per-user [`SmarterYou`] pipelines and scores queued windows in
/// parallel, batch by batch. See the [module docs](self) for the model.
#[derive(Debug, Default)]
pub struct FleetEngine {
    slots: Vec<UserSlot>,
    index: HashMap<UserId, usize>,
}

impl FleetEngine {
    /// An engine with no registered users.
    pub fn new() -> Self {
        FleetEngine::default()
    }

    /// Registers a user's pipeline. Tick outcomes are reported in
    /// registration order.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidConfig`] if the user is already registered.
    pub fn register(&mut self, id: UserId, pipeline: SmarterYou) -> Result<(), CoreError> {
        if self.index.contains_key(&id) {
            return Err(CoreError::InvalidConfig(format!(
                "user {} already registered",
                id.0
            )));
        }
        self.index.insert(id, self.slots.len());
        self.slots.push(UserSlot {
            id,
            pipeline,
            inbox: Vec::new(),
        });
        Ok(())
    }

    /// Number of registered users.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether no users are registered.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Registered user ids, in registration order.
    pub fn user_ids(&self) -> impl Iterator<Item = UserId> + '_ {
        self.slots.iter().map(|s| s.id)
    }

    /// Borrows a registered user's pipeline.
    pub fn pipeline(&self, id: UserId) -> Option<&SmarterYou> {
        self.index.get(&id).map(|&i| &self.slots[i].pipeline)
    }

    /// Mutably borrows a registered user's pipeline (e.g. to unlock after
    /// explicit authentication or advance its clock).
    pub fn pipeline_mut(&mut self, id: UserId) -> Option<&mut SmarterYou> {
        self.index.get(&id).map(|&i| &mut self.slots[i].pipeline)
    }

    /// Queues one window for `id`, to be scored by the next
    /// [`FleetEngine::tick`].
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidConfig`] for an unregistered user.
    pub fn submit(&mut self, id: UserId, window: DualDeviceWindow) -> Result<(), CoreError> {
        match self.index.get(&id) {
            Some(&i) => {
                self.slots[i].inbox.push(window);
                Ok(())
            }
            None => Err(CoreError::InvalidConfig(format!(
                "user {} is not registered",
                id.0
            ))),
        }
    }

    /// Queues a whole stream of windows for `id`, preserving order.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidConfig`] for an unregistered user.
    pub fn submit_many(
        &mut self,
        id: UserId,
        windows: impl IntoIterator<Item = DualDeviceWindow>,
    ) -> Result<(), CoreError> {
        match self.index.get(&id) {
            Some(&i) => {
                self.slots[i].inbox.extend(windows);
                Ok(())
            }
            None => Err(CoreError::InvalidConfig(format!(
                "user {} is not registered",
                id.0
            ))),
        }
    }

    /// Windows currently queued across all users.
    pub fn pending(&self) -> usize {
        self.slots.iter().map(|s| s.inbox.len()).sum()
    }

    /// Drains every queued window, advancing all affected pipelines in
    /// parallel. Outcomes are grouped per user in registration order; each
    /// user's outcomes are in their submission order.
    ///
    /// A pipeline failure (e.g. a retrain hitting
    /// [`CoreError::InsufficientData`]) is isolated to its user: the error
    /// is recorded in [`TickReport::errors`] — dropping that user's
    /// outcomes from this tick — while every other user's outcomes are
    /// still reported. Fleet operation must not lose one device's lock
    /// decision because another device's retrain failed.
    pub fn tick(&mut self) -> TickReport {
        let results: Vec<Result<UserOutcomes, (UserId, CoreError)>> =
            parallel_map_mut(&mut self.slots, |slot| {
                let windows = std::mem::take(&mut slot.inbox);
                match slot.pipeline.process_batch(&windows) {
                    Ok(outcomes) => Ok(UserOutcomes {
                        user: slot.id,
                        outcomes,
                    }),
                    Err(e) => Err((slot.id, e)),
                }
            });
        let mut users = Vec::with_capacity(results.len());
        let mut errors = Vec::new();
        for result in results {
            match result {
                Ok(user) => {
                    if !user.outcomes.is_empty() {
                        users.push(user);
                    }
                }
                Err(failure) => errors.push(failure),
            }
        }
        TickReport::new(users, errors)
    }

    /// One-call tick: queues a batch of `(user, window)` pairs, scores them
    /// (together with anything already queued), and returns this batch's
    /// outcomes **in input order**.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidConfig`] for an unregistered user (nothing is
    /// scored in that case), or the first per-user pipeline failure if one
    /// of this batch's users errored (the other users' pipelines still
    /// advanced — use [`FleetEngine::submit`] + [`FleetEngine::tick`] for
    /// error-isolated reporting).
    pub fn score_ticked(
        &mut self,
        batch: Vec<(UserId, DualDeviceWindow)>,
    ) -> Result<Vec<(UserId, ProcessOutcome)>, CoreError> {
        // Validate before mutating any inbox so an unknown id is atomic.
        for (id, _) in &batch {
            if !self.index.contains_key(id) {
                return Err(CoreError::InvalidConfig(format!(
                    "user {} is not registered",
                    id.0
                )));
            }
        }
        // Remember, per input position, which of its user's queued windows
        // it became, so outcomes can be re-interleaved into input order.
        let mut positions = Vec::with_capacity(batch.len());
        let mut order: Vec<UserId> = Vec::with_capacity(batch.len());
        for (id, window) in batch {
            let slot = &mut self.slots[self.index[&id]];
            positions.push(slot.inbox.len());
            order.push(id);
            slot.inbox.push(window);
        }
        let report = self.tick();
        if let Some((_, error)) = report.errors().first() {
            return Err(error.clone());
        }
        let by_user: HashMap<UserId, &UserOutcomes> =
            report.users().iter().map(|u| (u.user, u)).collect();
        Ok(order
            .into_iter()
            .zip(positions)
            .map(|(id, pos)| (id, by_user[&id].outcomes[pos]))
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_engine_bookkeeping() {
        let mut engine = FleetEngine::new();
        assert!(engine.is_empty());
        assert_eq!(engine.len(), 0);
        assert_eq!(engine.pending(), 0);
        assert!(engine.user_ids().next().is_none());
        assert!(engine.pipeline(UserId(0)).is_none());
        assert!(engine.pipeline_mut(UserId(0)).is_none());
        let outcomes = engine.score_ticked(vec![]).expect("empty batch is fine");
        assert!(outcomes.is_empty());
        let report = engine.tick();
        assert_eq!(report.windows_scored(), 0);
    }
}
