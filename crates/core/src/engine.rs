//! Batched, parallel fleet-scoring engine.
//!
//! A production deployment of SmarterYou does not authenticate one window at
//! a time: a cloud tier receives sensor windows from *many* enrolled devices
//! per tick and must score them continuously at low latency. [`FleetEngine`]
//! owns one [`SmarterYou`] pipeline per registered user, accepts a batch of
//! `(UserId, DualDeviceWindow)` pairs per tick, and advances every affected
//! pipeline concurrently with the order-preserving scoped-thread map from
//! [`crate::parallel`]. Within each pipeline, pending windows are scored as
//! grouped per-context matrix passes ([`SmarterYou::process_batch`]) rather
//! than per-row kernel evaluations, and feature extraction runs through the
//! cached [`WindowFeatures`](crate::WindowFeatures) path: each pipeline
//! holds a planned FFT ([`FeatureScratch`](crate::FeatureScratch)) for its
//! window length, so steady-state ticks plan no transforms and allocate
//! nothing in the spectral kernels.
//!
//! Decisions are **bit-identical** to feeding the same windows through
//! sequential [`SmarterYou::process_window`] calls user by user: per-user
//! window order is preserved, every pipeline owns its own state and RNG, and
//! the shared [`TrainingServer`](crate::TrainingServer) is only consulted
//! under its mutex during (re)training. The batch-parity integration tests
//! assert this equivalence on a seeded population.
//!
//! # Idle-pipeline eviction
//!
//! At fleet scale most registered users are idle between ticks, and resident
//! pipelines are not free: each holds trained KRR models, a detector forest,
//! two retrain ring buffers and a planned FFT. With
//! [`FleetEngine::with_eviction`] the engine bounds residency: after every
//! tick, if more than `capacity` pipelines are in memory, the **least
//! recently submitted** ones (ticks-since-last-submit LRU) are snapshotted
//! into a pluggable [`SnapshotStore`](crate::persist::SnapshotStore) and
//! dropped. A later [`FleetEngine::submit`] for an evicted user rehydrates
//! the pipeline lazily from its snapshot before queueing the window.
//!
//! Eviction is **behaviour-free**: because snapshot/restore round-trips are
//! bit-identical (see [`crate::persist`]), an engine with aggressive
//! eviction produces exactly the decisions, scores, and retrain events of
//! an engine that never evicts — enforced by `tests/persist_parity.rs`.
//! [`TickReport::evictions`], [`TickReport::rehydrations`] and
//! [`TickReport::resident_pipelines`] expose the churn for monitoring.
//!
//! # Example
//!
//! ```no_run
//! use smarteryou_core::engine::FleetEngine;
//! use smarteryou_core::persist::MemorySnapshotStore;
//! # fn pipelines() -> Vec<(smarteryou_sensors::UserId, smarteryou_core::SmarterYou)> { Vec::new() }
//! # fn next_tick() -> Vec<(smarteryou_sensors::UserId, smarteryou_sensors::DualDeviceWindow)> { Vec::new() }
//!
//! // Keep at most 10k pipelines resident; the rest live as snapshots.
//! let mut engine = FleetEngine::new()
//!     .with_eviction(Box::new(MemorySnapshotStore::new()), 10_000);
//! for (id, pipeline) in pipelines() {
//!     engine.register(id, pipeline).unwrap();
//! }
//! loop {
//!     let outcomes = engine.score_ticked(next_tick()).unwrap();
//!     println!("{} windows scored", outcomes.len());
//! }
//! ```

pub mod batch;

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;

use smarteryou_sensors::{DualDeviceWindow, UserId};

use crate::parallel::parallel_map_mut;
use crate::persist::{PersistError, SnapshotStore};
use crate::pipeline::{ProcessOutcome, SmarterYou};
use crate::server::TrainingServer;
use crate::CoreError;

pub use batch::{TickReport, UserOutcomes};

/// One registered user: their on-device pipeline (or its evicted stand-in)
/// plus the windows queued for the next tick.
#[derive(Debug)]
struct UserSlot {
    id: UserId,
    /// `None` while the pipeline lives in the snapshot store.
    pipeline: Option<SmarterYou>,
    /// Shared training-server handle, retained across eviction so
    /// rehydration reattaches the restored pipeline to the same cloud
    /// state. An `Arc` clone, not a copy of the server.
    server: Arc<Mutex<TrainingServer>>,
    inbox: Vec<DualDeviceWindow>,
    /// Engine clock at the most recent submit for this user (registration
    /// counts as activity); the eviction LRU orders by this.
    last_submit_tick: u64,
}

/// Eviction policy + store, present only when eviction is enabled.
#[derive(Debug)]
struct EvictionState {
    store: Box<dyn SnapshotStore>,
    capacity: usize,
    total_evictions: u64,
    total_rehydrations: u64,
}

/// Owns many per-user [`SmarterYou`] pipelines and scores queued windows in
/// parallel, batch by batch. See the [module docs](self) for the model.
#[derive(Debug, Default)]
pub struct FleetEngine {
    slots: Vec<UserSlot>,
    index: HashMap<UserId, usize>,
    eviction: Option<EvictionState>,
    /// Monotone tick counter; drives the idle LRU.
    clock: u64,
    /// Rehydrations performed since the last tick, reported by the next
    /// [`TickReport`].
    rehydrations_since_tick: usize,
}

impl FleetEngine {
    /// An engine with no registered users and eviction disabled (every
    /// registered pipeline stays resident).
    pub fn new() -> Self {
        FleetEngine::default()
    }

    /// Builder form of [`FleetEngine::enable_eviction`].
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_eviction(mut self, store: Box<dyn SnapshotStore>, capacity: usize) -> Self {
        self.enable_eviction(store, capacity);
        self
    }

    /// Enables idle-pipeline eviction: after each [`FleetEngine::tick`], if
    /// more than `capacity` pipelines are resident, the least recently
    /// submitted ones are snapshotted into `store` and dropped from memory,
    /// to be rehydrated lazily on their next submit. Safe to call on a
    /// populated engine (e.g. after a bulk enrollment phase); the next tick
    /// trims residency to `capacity`. Re-configuring (new store and/or
    /// capacity) is allowed only while every pipeline is resident —
    /// replacing the store while users are parked in the old one would
    /// strand their trained state; rehydrate them first. Lifetime
    /// eviction/rehydration totals survive re-configuration.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero, or if any registered user's pipeline
    /// is currently evicted (its snapshot lives in the store being
    /// replaced).
    pub fn enable_eviction(&mut self, store: Box<dyn SnapshotStore>, capacity: usize) {
        assert!(capacity > 0, "eviction capacity must be positive");
        assert!(
            self.resident_count() == self.len(),
            "cannot replace the snapshot store while pipelines are evicted \
             into the old one — rehydrate them first"
        );
        let (total_evictions, total_rehydrations) = self.eviction_totals();
        self.eviction = Some(EvictionState {
            store,
            capacity,
            total_evictions,
            total_rehydrations,
        });
    }

    /// The configured residency capacity, or `None` when eviction is
    /// disabled.
    pub fn eviction_capacity(&self) -> Option<usize> {
        self.eviction.as_ref().map(|e| e.capacity)
    }

    /// Mutable access to the configured snapshot store (`None` when
    /// eviction is disabled) — for operational tooling that inspects or
    /// migrates parked snapshots.
    pub fn snapshot_store_mut(&mut self) -> Option<&mut (dyn SnapshotStore + '_)> {
        self.eviction.as_mut().map(|e| &mut *e.store as _)
    }

    /// Pipelines currently resident in memory.
    pub fn resident_count(&self) -> usize {
        self.slots.iter().filter(|s| s.pipeline.is_some()).count()
    }

    /// Whether a registered user's pipeline is currently resident
    /// (`None` for unregistered users).
    pub fn is_resident(&self, id: UserId) -> Option<bool> {
        self.index
            .get(&id)
            .map(|&i| self.slots[i].pipeline.is_some())
    }

    /// Registers a user's pipeline. Tick outcomes are reported in
    /// registration order.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidConfig`] if the user is already registered.
    pub fn register(&mut self, id: UserId, pipeline: SmarterYou) -> Result<(), CoreError> {
        if self.index.contains_key(&id) {
            return Err(CoreError::InvalidConfig(format!(
                "user {} already registered",
                id.0
            )));
        }
        self.index.insert(id, self.slots.len());
        let server = pipeline.training_server().clone();
        self.slots.push(UserSlot {
            id,
            pipeline: Some(pipeline),
            server,
            inbox: Vec::new(),
            last_submit_tick: self.clock,
        });
        Ok(())
    }

    /// Number of registered users (resident or evicted).
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether no users are registered.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Registered user ids, in registration order.
    pub fn user_ids(&self) -> impl Iterator<Item = UserId> + '_ {
        self.slots.iter().map(|s| s.id)
    }

    /// Borrows a registered user's pipeline. Returns `None` for
    /// unregistered users **and** for registered users whose pipeline is
    /// currently evicted — call [`FleetEngine::rehydrate`] first to force
    /// residency.
    pub fn pipeline(&self, id: UserId) -> Option<&SmarterYou> {
        self.index
            .get(&id)
            .and_then(|&i| self.slots[i].pipeline.as_ref())
    }

    /// Mutably borrows a registered user's pipeline (e.g. to unlock after
    /// explicit authentication or advance its clock). `None` when
    /// unregistered or evicted, like [`FleetEngine::pipeline`].
    pub fn pipeline_mut(&mut self, id: UserId) -> Option<&mut SmarterYou> {
        self.index
            .get(&id)
            .and_then(|&i| self.slots[i].pipeline.as_mut())
    }

    /// Forces a user's pipeline into memory, rehydrating it from the
    /// snapshot store if it was evicted. No-op for resident users. This
    /// counts as rehydration churn but **not** as submit activity — an
    /// inspected-but-idle pipeline remains first in line for eviction.
    ///
    /// # Errors
    ///
    /// [`CoreError::UnknownUser`] for unregistered users;
    /// [`CoreError::Persist`] when the snapshot is missing or corrupt.
    pub fn rehydrate(&mut self, id: UserId) -> Result<(), CoreError> {
        let i = *self.index.get(&id).ok_or(CoreError::UnknownUser(id))?;
        self.ensure_resident(i)
    }

    /// Loads slot `i`'s pipeline from the snapshot store if it is evicted.
    fn ensure_resident(&mut self, i: usize) -> Result<(), CoreError> {
        if self.slots[i].pipeline.is_some() {
            return Ok(());
        }
        let id = self.slots[i].id;
        let eviction = self
            .eviction
            .as_mut()
            .expect("evicted slot implies an eviction store");
        let snapshot = eviction
            .store
            .load(id)?
            .ok_or(CoreError::Persist(PersistError::MissingSnapshot(id)))?;
        let pipeline = SmarterYou::restore(snapshot, self.slots[i].server.clone())?;
        // The stored snapshot stays put as a crash-recovery copy: it can
        // never be *read* while the pipeline is resident (loads only happen
        // for evicted slots, and eviction overwrites the entry first), and
        // deleting it would leave a durable store with no copy at all until
        // the next eviction — losing everything instead of just the
        // post-rehydration progress if the process dies.
        eviction.total_rehydrations += 1;
        self.rehydrations_since_tick += 1;
        self.slots[i].pipeline = Some(pipeline);
        Ok(())
    }

    /// Queues one window for `id`, to be scored by the next
    /// [`FleetEngine::tick`]. If the user's pipeline was evicted it is
    /// rehydrated from the snapshot store first (lazy rehydration).
    ///
    /// # Errors
    ///
    /// [`CoreError::UnknownUser`] for an unregistered user;
    /// [`CoreError::Persist`] when rehydration fails — a distinct error
    /// path, so callers can tell "no such user" from "known user whose
    /// state could not be loaded".
    pub fn submit(&mut self, id: UserId, window: DualDeviceWindow) -> Result<(), CoreError> {
        let i = *self.index.get(&id).ok_or(CoreError::UnknownUser(id))?;
        self.ensure_resident(i)?;
        let slot = &mut self.slots[i];
        slot.inbox.push(window);
        slot.last_submit_tick = self.clock;
        Ok(())
    }

    /// Queues a whole stream of windows for `id`, preserving order.
    /// Rehydrates an evicted pipeline first, like [`FleetEngine::submit`].
    ///
    /// # Errors
    ///
    /// [`CoreError::UnknownUser`] for an unregistered user;
    /// [`CoreError::Persist`] when rehydration fails.
    pub fn submit_many(
        &mut self,
        id: UserId,
        windows: impl IntoIterator<Item = DualDeviceWindow>,
    ) -> Result<(), CoreError> {
        let i = *self.index.get(&id).ok_or(CoreError::UnknownUser(id))?;
        self.ensure_resident(i)?;
        let slot = &mut self.slots[i];
        slot.inbox.extend(windows);
        slot.last_submit_tick = self.clock;
        Ok(())
    }

    /// Windows currently queued across all users.
    pub fn pending(&self) -> usize {
        self.slots.iter().map(|s| s.inbox.len()).sum()
    }

    /// Drains every queued window, advancing all affected pipelines in
    /// parallel. Outcomes are grouped per user in registration order; each
    /// user's outcomes are in their submission order.
    ///
    /// A pipeline failure (e.g. a retrain hitting
    /// [`CoreError::InsufficientData`]) is isolated to its user: the error
    /// is recorded in [`TickReport::errors`] — dropping that user's
    /// outcomes from this tick — while every other user's outcomes are
    /// still reported. Fleet operation must not lose one device's lock
    /// decision because another device's retrain failed.
    ///
    /// When eviction is enabled, the tick ends with an eviction pass: the
    /// least recently submitted resident pipelines are snapshotted out
    /// until at most `capacity` remain. A failed snapshot save keeps that
    /// pipeline resident (state is never dropped unsaved) and reports the
    /// failure in [`TickReport::eviction_errors`] — separate from scoring
    /// errors, because the tick's outcomes are still valid.
    pub fn tick(&mut self) -> TickReport {
        let results: Vec<Result<UserOutcomes, (UserId, CoreError)>> =
            parallel_map_mut(&mut self.slots, |slot| {
                let windows = std::mem::take(&mut slot.inbox);
                match slot.pipeline.as_mut() {
                    Some(pipeline) => match pipeline.process_batch(&windows) {
                        Ok(outcomes) => Ok(UserOutcomes {
                            user: slot.id,
                            outcomes,
                        }),
                        Err(e) => Err((slot.id, e)),
                    },
                    // Evicted slots cannot accumulate windows (submit
                    // rehydrates first); nothing to score.
                    None => {
                        debug_assert!(windows.is_empty(), "windows queued for evicted pipeline");
                        Ok(UserOutcomes {
                            user: slot.id,
                            outcomes: Vec::new(),
                        })
                    }
                }
            });
        let mut users = Vec::with_capacity(results.len());
        let mut errors = Vec::new();
        for result in results {
            match result {
                Ok(user) => {
                    if !user.outcomes.is_empty() {
                        users.push(user);
                    }
                }
                Err(failure) => errors.push(failure),
            }
        }
        let (evicted, eviction_errors) = self.evict_idle();
        let rehydrated = std::mem::take(&mut self.rehydrations_since_tick);
        self.clock += 1;
        let resident = self.resident_count();
        TickReport::new(users, errors).with_fleet_state(
            evicted,
            rehydrated,
            resident,
            eviction_errors,
        )
    }

    /// Trims residency to the configured capacity, evicting the least
    /// recently submitted pipelines first. Returns how many were evicted
    /// plus the save failures; a failed save keeps its pipeline resident.
    fn evict_idle(&mut self) -> (usize, Vec<(UserId, PersistError)>) {
        let mut errors = Vec::new();
        let Some(eviction) = self.eviction.as_mut() else {
            return (0, errors);
        };
        let mut resident: Vec<usize> = (0..self.slots.len())
            .filter(|&i| self.slots[i].pipeline.is_some())
            .collect();
        if resident.len() <= eviction.capacity {
            return (0, errors);
        }
        // Oldest submit first; ties broken by registration order so the
        // pass is deterministic.
        resident.sort_by_key(|&i| (self.slots[i].last_submit_tick, i));
        let excess = resident.len() - eviction.capacity;
        let mut evicted = 0;
        for &i in &resident[..excess] {
            let slot = &mut self.slots[i];
            let pipeline = slot.pipeline.take().expect("selected as resident");
            // Consuming snapshot: the pipeline is leaving memory anyway, so
            // its state moves into the snapshot instead of being cloned.
            let snapshot = pipeline.into_snapshot();
            match eviction.store.save(slot.id, &snapshot) {
                Ok(()) => {
                    evicted += 1;
                    eviction.total_evictions += 1;
                }
                Err(e) => {
                    // Never drop unsaved state: rebuild the pipeline from
                    // the snapshot still in hand (a snapshot taken from a
                    // live pipeline always restores) and surface the error.
                    slot.pipeline = Some(
                        SmarterYou::restore(snapshot, slot.server.clone())
                            .expect("snapshot of a live pipeline restores"),
                    );
                    errors.push((slot.id, e));
                }
            }
        }
        (evicted, errors)
    }

    /// Lifetime eviction and rehydration totals (`(0, 0)` when eviction is
    /// disabled).
    pub fn eviction_totals(&self) -> (u64, u64) {
        self.eviction
            .as_ref()
            .map(|e| (e.total_evictions, e.total_rehydrations))
            .unwrap_or((0, 0))
    }

    /// One-call tick: queues a batch of `(user, window)` pairs, scores them
    /// (together with anything already queued), and returns this batch's
    /// outcomes **in input order**. Evicted users rehydrate on their first
    /// window of the batch, exactly as [`FleetEngine::submit`] would.
    ///
    /// # Errors
    ///
    /// [`CoreError::UnknownUser`] if any user in the batch is unregistered
    /// (checked up front — nothing is queued or scored in that case);
    /// [`CoreError::Persist`] if a rehydration fails while queueing
    /// (earlier pairs of the batch stay queued for the next tick); or the
    /// first per-user pipeline failure if one of this batch's users errored
    /// (the other users' pipelines still advanced — use
    /// [`FleetEngine::submit`] + [`FleetEngine::tick`] for error-isolated
    /// reporting).
    pub fn score_ticked(
        &mut self,
        batch: Vec<(UserId, DualDeviceWindow)>,
    ) -> Result<Vec<(UserId, ProcessOutcome)>, CoreError> {
        // Validate before mutating any inbox so an unknown id is atomic.
        for (id, _) in &batch {
            if !self.index.contains_key(id) {
                return Err(CoreError::UnknownUser(*id));
            }
        }
        // Remember, per input position, which of its user's queued windows
        // it became, so outcomes can be re-interleaved into input order.
        let mut positions = Vec::with_capacity(batch.len());
        let mut order: Vec<UserId> = Vec::with_capacity(batch.len());
        for (id, window) in batch {
            let i = self.index[&id];
            self.ensure_resident(i)?;
            let slot = &mut self.slots[i];
            positions.push(slot.inbox.len());
            order.push(id);
            slot.inbox.push(window);
            slot.last_submit_tick = self.clock;
        }
        let report = self.tick();
        if let Some((_, error)) = report.errors().first() {
            return Err(error.clone());
        }
        let by_user: HashMap<UserId, &UserOutcomes> =
            report.users().iter().map(|u| (u.user, u)).collect();
        Ok(order
            .into_iter()
            .zip(positions)
            .map(|(id, pos)| (id, by_user[&id].outcomes[pos]))
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smarteryou_sensors::{Population, TraceGenerator, WindowSpec};

    fn some_window() -> DualDeviceWindow {
        let owner = Population::generate(1, 11).users()[0].clone();
        let mut gen = TraceGenerator::new(owner, 13);
        gen.next_window(WindowSpec::from_seconds(2.0, 50.0))
    }

    #[test]
    fn empty_engine_bookkeeping() {
        let mut engine = FleetEngine::new();
        assert!(engine.is_empty());
        assert_eq!(engine.len(), 0);
        assert_eq!(engine.pending(), 0);
        assert_eq!(engine.resident_count(), 0);
        assert_eq!(engine.eviction_capacity(), None);
        assert_eq!(engine.eviction_totals(), (0, 0));
        assert!(engine.snapshot_store_mut().is_none());
        assert!(engine.user_ids().next().is_none());
        assert!(engine.pipeline(UserId(0)).is_none());
        assert!(engine.pipeline_mut(UserId(0)).is_none());
        assert_eq!(engine.is_resident(UserId(0)), None);
        let outcomes = engine.score_ticked(vec![]).expect("empty batch is fine");
        assert!(outcomes.is_empty());
        let report = engine.tick();
        assert_eq!(report.windows_scored(), 0);
        assert_eq!(report.evictions(), 0);
        assert_eq!(report.rehydrations(), 0);
        assert_eq!(report.resident_pipelines(), 0);
    }

    #[test]
    fn unregistered_user_is_a_typed_error() {
        let mut engine = FleetEngine::new();
        let w = some_window();
        assert_eq!(
            engine.submit(UserId(4), w.clone()),
            Err(CoreError::UnknownUser(UserId(4)))
        );
        assert_eq!(
            engine.submit_many(UserId(4), [w.clone()]),
            Err(CoreError::UnknownUser(UserId(4)))
        );
        assert_eq!(
            engine.score_ticked(vec![(UserId(4), w)]).unwrap_err(),
            CoreError::UnknownUser(UserId(4))
        );
        assert_eq!(
            engine.rehydrate(UserId(4)),
            Err(CoreError::UnknownUser(UserId(4)))
        );
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_eviction_capacity_is_rejected() {
        FleetEngine::new().enable_eviction(Box::new(crate::persist::MemorySnapshotStore::new()), 0);
    }
}
