//! Batched, parallel fleet-scoring engine.
//!
//! A production deployment of SmarterYou does not authenticate one window at
//! a time: a cloud tier receives sensor windows from *many* enrolled devices
//! per tick and must score them continuously at low latency. [`FleetEngine`]
//! owns one [`SmarterYou`] pipeline per registered user, accepts a batch of
//! `(UserId, DualDeviceWindow)` pairs per tick, and advances every affected
//! pipeline concurrently with the order-preserving scoped-thread map from
//! [`crate::parallel`]. Within each pipeline, pending windows are scored as
//! grouped per-context matrix passes ([`SmarterYou::process_batch`]) rather
//! than per-row kernel evaluations, and feature extraction runs through the
//! cached [`WindowFeatures`](crate::WindowFeatures) path: each pipeline
//! holds a planned FFT ([`FeatureScratch`](crate::FeatureScratch)) for its
//! window length, so steady-state ticks plan no transforms and allocate
//! nothing in the spectral kernels.
//!
//! Decisions are **bit-identical** to feeding the same windows through
//! sequential [`SmarterYou::process_window`] calls user by user: per-user
//! window order is preserved, every pipeline owns its own state and RNG, and
//! the shared [`TrainingHandle`] is only consulted during (re)training. The
//! batch-parity integration tests assert this equivalence on a seeded
//! population.
//!
//! # Idle-pipeline eviction — and the O(resident) contract
//!
//! At fleet scale most registered users are idle between ticks, and resident
//! pipelines are not free: each holds trained KRR models, a detector forest,
//! two retrain ring buffers and a planned FFT. With
//! [`FleetEngine::with_eviction`] the engine bounds residency: after every
//! tick, if more than `capacity` pipelines are in memory, the **least
//! recently submitted** ones (ticks-since-last-submit LRU) are snapshotted
//! into a pluggable [`SnapshotStore`](crate::persist::SnapshotStore) and
//! dropped. A later [`FleetEngine::submit`] for an evicted user rehydrates
//! the pipeline lazily from its snapshot before queueing the window.
//!
//! The engine is **two-tier** so that parked users cost nothing per tick:
//! live pipelines sit in a dense resident array that scoring and the
//! eviction scan walk, while registered-but-parked users are plain map
//! entries that no per-tick path ever visits. `tick()` is `O(resident)`,
//! not `O(registered)` — one engine (or shard) can hold millions of
//! registered users as long as the *active* set fits the residency cap.
//! [`TickReport::scanned_slots`] exposes the walked count so regressions
//! are testable.
//!
//! Eviction is **behaviour-free**: because snapshot/restore round-trips are
//! bit-identical (see [`crate::persist`]), an engine with aggressive
//! eviction produces exactly the decisions, scores, and retrain events of
//! an engine that never evicts — enforced by `tests/persist_parity.rs`.
//! [`TickReport::evictions`], [`TickReport::rehydrations`] and
//! [`TickReport::resident_pipelines`] expose the churn for monitoring.
//!
//! # Async ingestion
//!
//! Producers need not hold `&mut` access to the engine per window: an
//! attached bounded [`ingest::IngestQueue`] accepts `(UserId,
//! DualDeviceWindow)` pushes from any thread (typed backpressure — see
//! [`ingest::BackpressurePolicy`]) and every [`FleetEngine::tick`] drains
//! whatever has arrived before scoring, rehydrating parked users lazily
//! exactly as [`FleetEngine::submit`] would. Drained windows whose user is
//! unknown to this engine come back in
//! [`TickReport::misrouted`] — at fleet level the
//! [`shard::ShardedFleet`] re-delivers them to the user's current owning
//! shard, so migrations never lose in-queue windows. Decisions stay
//! bit-identical to the synchronous path (`tests/ingest_parity.rs`).
//!
//! # Ownership epochs and sharding
//!
//! When several engines share one snapshot store — the shards of a
//! [`shard::ShardedFleet`] — the store arbitrates ownership with a
//! monotonic per-user **epoch** (see [`SnapshotStore::acquire`]): an engine
//! claims the epoch when it registers a user against a store, and every
//! snapshot save is fenced on it. Moving a user between shards is an evict
//! on the source followed by [`FleetEngine::register_parked`] + lazy
//! rehydration on the target; the target's claim bumps the epoch, so a
//! late save from the source is rejected with
//! [`PersistError::StaleEpoch`] instead of clobbering newer state. Two
//! engines can never both persist a live pipeline for one user.
//!
//! # Example
//!
//! ```no_run
//! use smarteryou_core::engine::FleetEngine;
//! use smarteryou_core::persist::MemorySnapshotStore;
//! # fn pipelines() -> Vec<(smarteryou_sensors::UserId, smarteryou_core::SmarterYou)> { Vec::new() }
//! # fn next_tick() -> Vec<(smarteryou_sensors::UserId, smarteryou_sensors::DualDeviceWindow)> { Vec::new() }
//!
//! // Keep at most 10k pipelines resident; the rest live as snapshots.
//! let mut engine = FleetEngine::new()
//!     .with_eviction(Box::new(MemorySnapshotStore::new()), 10_000);
//! for (id, pipeline) in pipelines() {
//!     engine.register(id, pipeline).unwrap();
//! }
//! loop {
//!     let outcomes = engine.score_ticked(next_tick()).unwrap();
//!     println!("{} windows scored", outcomes.len());
//! }
//! ```

pub mod batch;
pub mod ingest;
pub mod shard;
pub mod training;

use std::collections::HashMap;
use std::sync::Arc;

use rand::rngs::StdRng;

use smarteryou_sensors::{DualDeviceWindow, UserId};

use crate::parallel::parallel_map_mut;
use crate::persist::{PersistError, SnapshotStore};
use crate::pipeline::{ProcessOutcome, SmarterYou};
use crate::server::TrainingHandle;
use crate::CoreError;

pub use batch::{TickReport, UserOutcomes};
pub use ingest::{BackpressurePolicy, IngestQueue, IngestRouter, RejectedWindow, WindowQueue};
pub use shard::{ShardRouter, ShardedFleet};
pub use training::{JobId, TrainingService};

/// A live pipeline in the dense resident array — the only per-user state
/// the per-tick paths ever walk.
#[derive(Debug)]
struct ResidentSlot {
    id: UserId,
    /// Registration sequence number; tick outcomes and LRU ties order by
    /// it, so reporting stays deterministic however the dense array is
    /// permuted by eviction churn.
    seq: u64,
    pipeline: SmarterYou,
    inbox: Vec<DualDeviceWindow>,
}

/// A registered user, resident or parked. Deliberately tiny while parked:
/// a map entry plus a shared training handle, never visited by `tick()`.
#[derive(Debug)]
struct UserEntry {
    seq: u64,
    /// Index into the resident array, or `None` while the pipeline lives
    /// in the snapshot store.
    resident: Option<usize>,
    /// Ownership epoch claimed against the snapshot store (0 when the
    /// engine has no store, or for users registered before one was
    /// installed — an unclaimed epoch that any later claim fences out).
    epoch: u64,
    /// Engine clock at the most recent submit (registration counts as
    /// activity); the eviction LRU orders by this.
    last_submit_tick: u64,
    /// Shared training-service handle, retained across eviction so
    /// rehydration reattaches the restored pipeline to the same service.
    server: Arc<dyn TrainingHandle>,
    /// Windows stashed while the user is parked (a migration carried them
    /// in but the pipeline could not be rehydrated at that moment). Drained
    /// into the inbox, ahead of newer submissions, at the next successful
    /// rehydration. Always empty while resident.
    stashed: Vec<DualDeviceWindow>,
}

/// One slot's tick result, tagged with its registration sequence so the
/// report can be re-ordered after the dense array's permutation.
type SlotTickResult = (u64, Result<UserOutcomes, (UserId, CoreError)>);

/// Eviction policy + store, present only when eviction is enabled.
#[derive(Debug)]
struct EvictionState {
    store: Box<dyn SnapshotStore>,
    capacity: usize,
    total_evictions: u64,
    total_rehydrations: u64,
}

/// Deferred-retrain machinery, present only when a [`TrainingService`] is
/// attached. Tracks which in-flight job belongs to which user so completed
/// results can be routed back — and so results for users that have since
/// been released or evicted are recognised as stale and discarded.
#[derive(Debug)]
struct TrainingState {
    service: TrainingService,
    /// Owner of every job this engine still expects a result for. A job
    /// missing from this map at delivery time was abandoned (release /
    /// eviction / migration) and its result must not be applied.
    jobs: HashMap<JobId, UserId>,
    total_started: u64,
    total_completed: u64,
    /// Canceled **or failed** jobs — both end a started job without a
    /// model landing, and folding them together keeps the invariant
    /// `started == completed + canceled + in_flight` exact.
    total_canceled: u64,
    /// Cancels performed outside the tick's training cycle (release /
    /// eviction), folded into the next [`TickReport`].
    canceled_since_tick: usize,
}

/// One user's batched-enrollment input: the per-context enrollment
/// feature buffers (as harvested via [`SmarterYou::enrollment_buffers`])
/// to train against the batch's shared negative workspace.
pub type EnrollmentEntry = (UserId, [Vec<Vec<f64>>; 2]);

/// Owns many per-user [`SmarterYou`] pipelines and scores queued windows in
/// parallel, batch by batch. See the [module docs](self) for the model.
#[derive(Debug, Default)]
pub struct FleetEngine {
    users: HashMap<UserId, UserEntry>,
    /// Registration order, kept as a sorted map so
    /// [`FleetEngine::user_ids`] is a lazy ordered walk instead of an
    /// allocate-and-sort over every registered user.
    by_seq: std::collections::BTreeMap<u64, UserId>,
    /// Dense array of live pipelines; every per-tick path is linear in
    /// this, never in `users`.
    resident: Vec<ResidentSlot>,
    eviction: Option<EvictionState>,
    /// Monotone tick counter; drives the idle LRU.
    clock: u64,
    next_seq: u64,
    /// Rehydrations performed since the last tick, reported by the next
    /// [`TickReport`].
    rehydrations_since_tick: usize,
    /// Total windows stashed on parked users (see `UserEntry::stashed`),
    /// so [`FleetEngine::pending`] stays O(resident).
    stashed_windows: usize,
    /// Attached async ingestion queue, drained at the start of every tick.
    /// `None` for engines fed only through the synchronous submit path.
    ingest: Option<Arc<WindowQueue>>,
    /// Attached training service for deferred retrains. `None` for engines
    /// whose pipelines all retrain inline.
    training: Option<TrainingState>,
    /// Whether pipelines owned by this engine run the vectorized
    /// fast-extraction path (see [`SmarterYou::set_fast_extraction`]).
    /// Applied to every pipeline on registration and re-applied after
    /// every snapshot restore, because the flag is runtime-only and never
    /// persisted.
    fast_extraction: bool,
}

impl FleetEngine {
    /// An engine with no registered users and eviction disabled (every
    /// registered pipeline stays resident).
    pub fn new() -> Self {
        FleetEngine::default()
    }

    /// Builder form of [`FleetEngine::set_fast_extraction`].
    pub fn with_fast_extraction(mut self, on: bool) -> Self {
        self.set_fast_extraction(on);
        self
    }

    /// Switches every pipeline this engine owns (and every pipeline it
    /// registers or rehydrates from now on) between the vectorized
    /// fast-extraction path and the scalar reference path. The flag is
    /// runtime state, not model state: snapshots never carry it, so the
    /// engine re-applies its setting whenever a pipeline is restored.
    pub fn set_fast_extraction(&mut self, on: bool) {
        self.fast_extraction = on;
        for slot in &mut self.resident {
            slot.pipeline.set_fast_extraction(on);
        }
    }

    /// Whether this engine's pipelines use the vectorized fast-extraction
    /// path.
    pub fn fast_extraction(&self) -> bool {
        self.fast_extraction
    }

    /// Builder form of [`FleetEngine::enable_eviction`].
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_eviction(mut self, store: Box<dyn SnapshotStore>, capacity: usize) -> Self {
        self.enable_eviction(store, capacity);
        self
    }

    /// Enables idle-pipeline eviction: after each [`FleetEngine::tick`], if
    /// more than `capacity` pipelines are resident, the least recently
    /// submitted ones are snapshotted into `store` and dropped from memory,
    /// to be rehydrated lazily on their next submit. Safe to call on a
    /// populated engine (e.g. after a bulk enrollment phase); the next tick
    /// trims residency to `capacity`. Re-configuring (new store and/or
    /// capacity) is allowed only while every pipeline is resident —
    /// replacing the store while users are parked in the old one would
    /// strand their trained state; rehydrate them first. Lifetime
    /// eviction/rehydration totals survive re-configuration.
    ///
    /// Users registered before the store was installed keep the unclaimed
    /// ownership epoch 0 — their saves pass the fence until some other
    /// engine claims them through the shared store (see the module docs).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero, or if any registered user's pipeline
    /// is currently evicted (its snapshot lives in the store being
    /// replaced).
    pub fn enable_eviction(&mut self, store: Box<dyn SnapshotStore>, capacity: usize) {
        assert!(capacity > 0, "eviction capacity must be positive");
        assert!(
            self.resident_count() == self.len(),
            "cannot replace the snapshot store while pipelines are evicted \
             into the old one — rehydrate them first"
        );
        let (total_evictions, total_rehydrations) = self.eviction_totals();
        self.eviction = Some(EvictionState {
            store,
            capacity,
            total_evictions,
            total_rehydrations,
        });
    }

    /// The configured residency capacity, or `None` when eviction is
    /// disabled.
    pub fn eviction_capacity(&self) -> Option<usize> {
        self.eviction.as_ref().map(|e| e.capacity)
    }

    /// Mutable access to the configured snapshot store (`None` when
    /// eviction is disabled) — for operational tooling that inspects or
    /// migrates parked snapshots.
    pub fn snapshot_store_mut(&mut self) -> Option<&mut (dyn SnapshotStore + '_)> {
        self.eviction.as_mut().map(|e| &mut *e.store as _)
    }

    /// Pipelines currently resident in memory. O(1): residency is a dense
    /// array, not a scan over registered users.
    pub fn resident_count(&self) -> usize {
        self.resident.len()
    }

    /// Whether a registered user's pipeline is currently resident
    /// (`None` for unregistered users).
    pub fn is_resident(&self, id: UserId) -> Option<bool> {
        self.users.get(&id).map(|e| e.resident.is_some())
    }

    /// The ownership epoch this engine holds for a registered user
    /// (`None` for unregistered users; 0 means unclaimed — no store was
    /// present at registration).
    pub fn epoch_of(&self, id: UserId) -> Option<u64> {
        self.users.get(&id).map(|e| e.epoch)
    }

    /// Attaches an async ingestion queue: every subsequent
    /// [`FleetEngine::tick`] starts by draining whatever producers have
    /// pushed (see [`ingest`] for the model), before scoring. Producers
    /// keep a clone of the [`Arc`] and push from any thread. Replacing a
    /// queue closes the old one first (producers still holding it get
    /// [`IngestError::Closed`](crate::IngestError::Closed) rather than
    /// pushing into a queue nothing drains) and is allowed only once it is
    /// empty — its undrained windows would otherwise be stranded.
    ///
    /// # Panics
    ///
    /// Panics if a previously attached queue still holds windows. The old
    /// queue is closed *before* the emptiness check, so a racing producer
    /// cannot slip a window in between check and replacement.
    pub fn attach_ingest(&mut self, queue: Arc<WindowQueue>) {
        if let Some(old) = &self.ingest {
            old.close();
            assert!(
                old.is_empty(),
                "cannot replace an ingest queue that still holds windows — drain it first"
            );
        }
        self.ingest = Some(queue);
    }

    /// Builder/convenience form of [`FleetEngine::attach_ingest`] for a
    /// standalone (unsharded) engine: creates a bounded queue, attaches
    /// it, and returns the producer handle.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero, or as [`FleetEngine::attach_ingest`].
    pub fn enable_ingest(
        &mut self,
        capacity: usize,
        policy: BackpressurePolicy,
    ) -> Arc<WindowQueue> {
        let queue = Arc::new(IngestQueue::new(capacity, policy));
        self.attach_ingest(queue.clone());
        queue
    }

    /// The attached ingestion queue's producer handle (`None` when no
    /// queue is attached).
    pub fn ingest_queue(&self) -> Option<Arc<WindowQueue>> {
        self.ingest.clone()
    }

    /// Builder form of [`FleetEngine::enable_training`].
    pub fn with_training(mut self, service: TrainingService) -> Self {
        self.enable_training(service);
        self
    }

    /// Attaches a [`TrainingService`]: pipelines in
    /// [`RetrainMode::Deferred`](crate::pipeline::RetrainMode) have their
    /// captured retrain requests submitted to it at every tick boundary,
    /// and completed models are applied at the *next* tick boundary (the
    /// very same one when the service is
    /// [synchronous](TrainingService::synchronous)). Without a service,
    /// deferred pipelines keep scoring on their old model forever — their
    /// captured request just sits pending.
    ///
    /// # Panics
    ///
    /// Panics if a previously attached service still has jobs in flight:
    /// their results would be lost and the owning pipelines stuck
    /// mid-retrain.
    pub fn enable_training(&mut self, service: TrainingService) {
        if let Some(old) = &self.training {
            assert!(
                old.jobs.is_empty(),
                "cannot replace a training service with retrains in flight — \
                 tick until they drain first"
            );
        }
        let (total_started, total_completed, total_canceled) = self.retrain_totals();
        self.training = Some(TrainingState {
            service,
            jobs: HashMap::new(),
            total_started,
            total_completed,
            total_canceled,
            canceled_since_tick: 0,
        });
    }

    /// Whether a training service is attached.
    pub fn training_enabled(&self) -> bool {
        self.training.is_some()
    }

    /// Lifetime `(started, completed, canceled)` retrain-job totals
    /// (`(0, 0, 0)` when no training service has ever been attached).
    /// Failed jobs count as canceled, so at any point
    /// `started == completed + canceled + `[`retrains_in_flight`]`
    /// `(self)` exactly.
    ///
    /// [`retrains_in_flight`]: FleetEngine::retrains_in_flight
    pub fn retrain_totals(&self) -> (u64, u64, u64) {
        self.training
            .as_ref()
            .map(|t| (t.total_started, t.total_completed, t.total_canceled))
            .unwrap_or((0, 0, 0))
    }

    /// Retrain jobs currently in flight (submitted, neither applied nor
    /// canceled). 0 when no training service is attached.
    pub fn retrains_in_flight(&self) -> usize {
        self.training.as_ref().map(|t| t.jobs.len()).unwrap_or(0)
    }

    /// Registers a user's pipeline. Tick outcomes are reported in
    /// registration order. When a snapshot store is configured the engine
    /// claims the user's ownership epoch in it, fencing out any engine
    /// that previously owned the same user through a shared store.
    ///
    /// # Errors
    ///
    /// [`CoreError::AlreadyRegistered`] if the user is already registered
    /// (the existing registration is untouched);
    /// [`CoreError::Persist`] if the ownership claim cannot be persisted.
    pub fn register(&mut self, id: UserId, mut pipeline: SmarterYou) -> Result<(), CoreError> {
        if self.users.contains_key(&id) {
            return Err(CoreError::AlreadyRegistered(id));
        }
        // The engine owns the extraction-path choice for its whole fleet.
        pipeline.set_fast_extraction(self.fast_extraction);
        let epoch = match self.eviction.as_mut() {
            Some(e) => e.store.acquire(id)?,
            None => 0,
        };
        let server = pipeline.training_handle().clone();
        let seq = self.next_seq;
        self.next_seq += 1;
        self.users.insert(
            id,
            UserEntry {
                seq,
                resident: Some(self.resident.len()),
                epoch,
                last_submit_tick: self.clock,
                server,
                stashed: Vec::new(),
            },
        );
        self.by_seq.insert(seq, id);
        self.resident.push(ResidentSlot {
            id,
            seq,
            pipeline,
            inbox: Vec::new(),
        });
        Ok(())
    }

    /// Registers a user whose pipeline already lives in the snapshot store
    /// as a parked entry — the adoption half of a shard migration, and the
    /// cheap way to enroll an engine with millions of known-but-idle users.
    /// Claims the user's ownership epoch (fencing the previous owner); the
    /// pipeline rehydrates lazily on the first submit, attached to
    /// `server`.
    ///
    /// # Errors
    ///
    /// [`CoreError::AlreadyRegistered`] if the user is already registered
    /// — **resident or parked**. A silent overwrite here would fork
    /// ownership: the claim would bump the store epoch and fence this
    /// engine's own live pipeline out of ever saving again. The existing
    /// registration is left untouched. [`CoreError::InvalidConfig`] if no
    /// snapshot store is configured; [`CoreError::Persist`] if the
    /// ownership claim cannot be persisted.
    pub fn register_parked(
        &mut self,
        id: UserId,
        server: Arc<dyn TrainingHandle>,
    ) -> Result<(), CoreError> {
        self.register_parked_with(id, server, None)
    }

    /// [`FleetEngine::register_parked`] with a compare-and-swap ownership
    /// claim: adoption succeeds only if the store's epoch for `id` is still
    /// exactly `expected` — the epoch the caller observed when it decided
    /// to adopt. Between observing and adopting, another engine (possibly
    /// in another process) may have claimed the user; an unconditional
    /// acquire would then silently fence *that* owner out and fork the
    /// pipeline, while the CAS turns the race into a typed
    /// [`PersistError::StaleEpoch`] the caller can re-plan from.
    ///
    /// # Errors
    ///
    /// As [`FleetEngine::register_parked`], plus
    /// [`CoreError::Persist`]\([`PersistError::StaleEpoch`]\) when the
    /// claim loses the ownership race (nothing is registered).
    pub fn register_parked_at(
        &mut self,
        id: UserId,
        server: Arc<dyn TrainingHandle>,
        expected: u64,
    ) -> Result<(), CoreError> {
        self.register_parked_with(id, server, Some(expected))
    }

    fn register_parked_with(
        &mut self,
        id: UserId,
        server: Arc<dyn TrainingHandle>,
        expected: Option<u64>,
    ) -> Result<(), CoreError> {
        if self.users.contains_key(&id) {
            return Err(CoreError::AlreadyRegistered(id));
        }
        let eviction = self.eviction.as_mut().ok_or_else(|| {
            CoreError::InvalidConfig(
                "register_parked requires a snapshot store — enable eviction first".into(),
            )
        })?;
        let epoch = match expected {
            Some(expected) => eviction.store.acquire_cas(id, expected)?,
            None => eviction.store.acquire(id)?,
        };
        let seq = self.next_seq;
        self.next_seq += 1;
        self.users.insert(
            id,
            UserEntry {
                seq,
                resident: None,
                epoch,
                last_submit_tick: self.clock,
                server,
                stashed: Vec::new(),
            },
        );
        self.by_seq.insert(seq, id);
        Ok(())
    }

    /// Unregisters a user, parking their pipeline in the snapshot store —
    /// the source half of a shard migration. A resident pipeline is
    /// snapshotted under this engine's ownership epoch (so a migration that
    /// already lost the ownership race fails with
    /// [`PersistError::StaleEpoch`] instead of clobbering the new owner's
    /// state); an already-parked user is simply forgotten. Returns the
    /// user's undelivered queued windows plus their training handle, for
    /// the adopting engine to re-submit and reattach.
    ///
    /// # Errors
    ///
    /// [`CoreError::UnknownUser`] for unregistered users;
    /// [`CoreError::InvalidConfig`] when no snapshot store is configured;
    /// [`CoreError::Persist`] when the parking save fails — the user stays
    /// registered and resident, nothing is lost.
    #[allow(clippy::type_complexity)]
    pub fn release(
        &mut self,
        id: UserId,
    ) -> Result<(Vec<DualDeviceWindow>, Arc<dyn TrainingHandle>), CoreError> {
        let entry = self.users.get(&id).ok_or(CoreError::UnknownUser(id))?;
        let windows = match entry.resident {
            Some(idx) => {
                if self.eviction.is_none() {
                    return Err(CoreError::InvalidConfig(
                        "release requires a snapshot store — enable eviction first".into(),
                    ));
                }
                let epoch = entry.epoch;
                let mut eviction = self.eviction.take().expect("checked above");
                let ResidentSlot {
                    seq,
                    mut pipeline,
                    inbox,
                    ..
                } = self.resident.swap_remove(idx);
                // An in-flight retrain cannot follow the user out: cancel
                // the job and revert to the captured request, which the
                // snapshot carries for the adopting engine to resubmit.
                Self::cancel_user_retrain(&mut self.training, &mut pipeline);
                // Consuming snapshot: the pipeline leaves memory either way.
                let snapshot = pipeline.into_snapshot();
                let result = eviction.store.save_fenced(id, epoch, &snapshot);
                match result {
                    Ok(()) => eviction.total_evictions += 1,
                    Err(e) => {
                        // Never drop unsaved state: rebuild from the
                        // snapshot still in hand and keep the user.
                        let server = self.users[&id].server.clone();
                        let mut pipeline = SmarterYou::restore(snapshot, server)
                            .expect("snapshot of a live pipeline restores");
                        // Restored pipelines come back with the runtime
                        // fast-extraction flag off; re-apply the engine's.
                        pipeline.set_fast_extraction(self.fast_extraction);
                        self.resident.push(ResidentSlot {
                            id,
                            seq,
                            pipeline,
                            inbox,
                        });
                        self.eviction = Some(eviction);
                        // Only two slots moved: the one swapped into `idx`
                        // and the rebuilt pipeline at the tail.
                        self.fix_resident_index(idx);
                        self.fix_resident_index(self.resident.len() - 1);
                        return Err(CoreError::Persist(e));
                    }
                }
                self.eviction = Some(eviction);
                self.users.get_mut(&id).expect("looked up above").resident = None;
                // A single swap_remove: only the slot swapped into `idx`
                // (if any) changed position — no full O(resident) rebuild.
                self.fix_resident_index(idx);
                inbox
            }
            None => Vec::new(),
        };
        let mut entry = self.users.remove(&id).expect("looked up above");
        self.by_seq.remove(&entry.seq);
        // A parked user may hold stashed windows from an earlier migration
        // whose delivery never happened; hand them to the adopter too.
        let mut windows = windows;
        self.stashed_windows -= entry.stashed.len();
        windows.append(&mut entry.stashed);
        Ok((windows, entry.server))
    }

    /// Number of registered users (resident or parked).
    pub fn len(&self) -> usize {
        self.users.len()
    }

    /// Whether no users are registered.
    pub fn is_empty(&self) -> bool {
        self.users.is_empty()
    }

    /// Registered user ids, in registration order — a lazy walk of the
    /// sequence index, no allocation or sort however many users are
    /// registered.
    pub fn user_ids(&self) -> impl Iterator<Item = UserId> + '_ {
        self.by_seq.values().copied()
    }

    /// Borrows a registered user's pipeline. Returns `None` for
    /// unregistered users **and** for registered users whose pipeline is
    /// currently evicted — call [`FleetEngine::rehydrate`] first to force
    /// residency.
    pub fn pipeline(&self, id: UserId) -> Option<&SmarterYou> {
        self.users
            .get(&id)
            .and_then(|e| e.resident)
            .map(|idx| &self.resident[idx].pipeline)
    }

    /// Mutably borrows a registered user's pipeline (e.g. to unlock after
    /// explicit authentication or advance its clock). `None` when
    /// unregistered or evicted, like [`FleetEngine::pipeline`].
    pub fn pipeline_mut(&mut self, id: UserId) -> Option<&mut SmarterYou> {
        self.users
            .get(&id)
            .and_then(|e| e.resident)
            .map(|idx| &mut self.resident[idx].pipeline)
    }

    /// Forces a user's pipeline into memory, rehydrating it from the
    /// snapshot store if it was evicted. No-op for resident users. This
    /// counts as rehydration churn but **not** as submit activity — an
    /// inspected-but-idle pipeline remains first in line for eviction.
    ///
    /// # Errors
    ///
    /// [`CoreError::UnknownUser`] for unregistered users;
    /// [`CoreError::Persist`] when the snapshot is missing or corrupt, or
    /// when this engine lost the user's ownership race
    /// ([`PersistError::StaleEpoch`]).
    pub fn rehydrate(&mut self, id: UserId) -> Result<(), CoreError> {
        if !self.users.contains_key(&id) {
            return Err(CoreError::UnknownUser(id));
        }
        self.ensure_resident(id)
    }

    /// Loads a registered user's pipeline from the snapshot store if it is
    /// parked. The caller has already checked registration.
    fn ensure_resident(&mut self, id: UserId) -> Result<(), CoreError> {
        let entry = &self.users[&id];
        if entry.resident.is_some() {
            return Ok(());
        }
        let (seq, held) = (entry.seq, entry.epoch);
        let server = entry.server.clone();
        let eviction = self
            .eviction
            .as_mut()
            .expect("parked slot implies an eviction store");
        let snapshot = eviction
            .store
            .load(id)?
            .ok_or(CoreError::Persist(PersistError::MissingSnapshot(id)))?;
        // Read-side ownership fence: if another engine claimed this user
        // since we did, its state is the live one — rehydrating our stale
        // copy would fork the pipeline into two owners.
        let stored = eviction.store.epoch(id)?;
        if stored != held {
            return Err(CoreError::Persist(PersistError::StaleEpoch {
                id,
                held,
                stored,
            }));
        }
        let mut pipeline = SmarterYou::restore(snapshot, server)?;
        // Snapshots never carry the runtime fast-extraction flag; the
        // owning engine re-applies its setting on rehydration.
        pipeline.set_fast_extraction(self.fast_extraction);
        // The stored snapshot stays put as a crash-recovery copy: it can
        // never be *read* while the pipeline is resident (loads only happen
        // for parked entries, and eviction overwrites the entry first), and
        // deleting it would leave a durable store with no copy at all until
        // the next eviction — losing everything instead of just the
        // post-rehydration progress if the process dies.
        eviction.total_rehydrations += 1;
        self.rehydrations_since_tick += 1;
        let entry = self.users.get_mut(&id).expect("looked up above");
        entry.resident = Some(self.resident.len());
        // Windows stashed while parked are delivered first, ahead of
        // whatever the caller is about to submit — their original order.
        let inbox = std::mem::take(&mut entry.stashed);
        self.stashed_windows -= inbox.len();
        self.resident.push(ResidentSlot {
            id,
            seq,
            pipeline,
            inbox,
        });
        Ok(())
    }

    /// Stashes windows on a **parked** user, to be delivered at their next
    /// successful rehydration — the fallback a migration uses when carried
    /// windows cannot be re-queued right now (the target store failed to
    /// rehydrate); the windows survive instead of being dropped.
    pub(crate) fn stash_windows(&mut self, id: UserId, windows: Vec<DualDeviceWindow>) {
        let entry = self
            .users
            .get_mut(&id)
            .expect("stash for a registered user");
        assert!(
            entry.resident.is_none(),
            "stash is only for parked users — submit to a resident one"
        );
        self.stashed_windows += windows.len();
        entry.stashed.extend(windows);
    }

    /// Queues one window for `id`, to be scored by the next
    /// [`FleetEngine::tick`]. If the user's pipeline was evicted it is
    /// rehydrated from the snapshot store first (lazy rehydration).
    ///
    /// # Errors
    ///
    /// [`CoreError::UnknownUser`] for an unregistered user;
    /// [`CoreError::Persist`] when rehydration fails — a distinct error
    /// path, so callers can tell "no such user" from "known user whose
    /// state could not be loaded".
    pub fn submit(&mut self, id: UserId, window: DualDeviceWindow) -> Result<(), CoreError> {
        self.submit_many(id, [window])
    }

    /// Queues a whole stream of windows for `id`, preserving order.
    /// Rehydrates an evicted pipeline first, like [`FleetEngine::submit`].
    ///
    /// # Errors
    ///
    /// [`CoreError::UnknownUser`] for an unregistered user;
    /// [`CoreError::Persist`] when rehydration fails.
    pub fn submit_many(
        &mut self,
        id: UserId,
        windows: impl IntoIterator<Item = DualDeviceWindow>,
    ) -> Result<(), CoreError> {
        if !self.users.contains_key(&id) {
            return Err(CoreError::UnknownUser(id));
        }
        self.ensure_resident(id)?;
        let entry = self.users.get_mut(&id).expect("checked above");
        entry.last_submit_tick = self.clock;
        let idx = entry.resident.expect("made resident above");
        self.resident[idx].inbox.extend(windows);
        Ok(())
    }

    /// Batched fleet enrollment: completes enrollment for every user in
    /// `batch` against **one** shared negative epoch and its precomputed
    /// Gram workspace (see [`TrainingServer::enrollment_workspace`]),
    /// instead of each pipeline paying a fresh negative-sampling pass and
    /// full refactorisation. Each user's enrollment buffers are installed
    /// via [`SmarterYou::enroll_with`]; enrollment counts as submit
    /// activity for eviction recency. Returns the number of users
    /// enrolled.
    ///
    /// The workspace is built from the first user's training handle and
    /// configuration — the batch must share both (one fleet, one server),
    /// which every fixture and deployment here does.
    ///
    /// [`TrainingServer::enrollment_workspace`]: crate::TrainingServer::enrollment_workspace
    ///
    /// # Errors
    ///
    /// [`CoreError::UnknownUser`] if **any** user in the batch is
    /// unregistered (checked up front, before anything enrolls);
    /// rehydration and training failures abort the remainder of the batch
    /// (already-enrolled users keep their models).
    pub fn enroll_many(
        &mut self,
        batch: Vec<EnrollmentEntry>,
        rng: &mut StdRng,
    ) -> Result<usize, CoreError> {
        for (id, _) in &batch {
            if !self.users.contains_key(id) {
                return Err(CoreError::UnknownUser(*id));
            }
        }
        let Some(first) = batch.first().map(|(id, _)| *id) else {
            return Ok(0);
        };
        self.ensure_resident(first)?;
        let (handle, cfg) = {
            let entry = &self.users[&first];
            let idx = entry.resident.expect("made resident above");
            (
                entry.server.clone(),
                self.resident[idx].pipeline.config().clone(),
            )
        };
        let ws = handle.enrollment_workspace(&cfg, rng)?;
        let mut enrolled = 0;
        for (id, buffers) in batch {
            self.ensure_resident(id)?;
            let entry = self.users.get_mut(&id).expect("checked above");
            entry.last_submit_tick = self.clock;
            let idx = entry.resident.expect("made resident above");
            self.resident[idx].pipeline.enroll_with(&ws, buffers)?;
            enrolled += 1;
        }
        Ok(enrolled)
    }

    /// Windows currently queued across all users — resident inboxes plus
    /// any stashed on parked users awaiting rehydration. O(resident).
    /// Windows still sitting in an attached ingest queue are **not**
    /// counted until a tick drains them; see [`FleetEngine::ingest_queue`]
    /// ([`IngestQueue::len`]) for that backlog.
    pub fn pending(&self) -> usize {
        self.resident.iter().map(|s| s.inbox.len()).sum::<usize>() + self.stashed_windows
    }

    /// Queues one drained-ingest window for a **registered** user,
    /// rehydrating a parked pipeline first. When rehydration fails the
    /// window is stashed on the parked entry (delivered at the next
    /// successful rehydration, ahead of newer windows) and the failure is
    /// returned — the window is retained either way, never lost.
    pub(crate) fn deliver_ingest(
        &mut self,
        id: UserId,
        window: DualDeviceWindow,
    ) -> Result<(), CoreError> {
        debug_assert!(self.users.contains_key(&id), "deliver to a registered user");
        match self.ensure_resident(id) {
            Ok(()) => {
                let entry = self.users.get_mut(&id).expect("registered");
                entry.last_submit_tick = self.clock;
                let idx = entry.resident.expect("made resident above");
                self.resident[idx].inbox.push(window);
                Ok(())
            }
            Err(e) => {
                self.stash_windows(id, vec![window]);
                Err(e)
            }
        }
    }

    /// Drains the attached ingest queue (everything present at drain
    /// start) into per-user inboxes. Returns `(ingested, misrouted,
    /// errors)`: `ingested` counts windows retained for this engine's
    /// users (inbox or, on a failed rehydration, the parked stash);
    /// `misrouted` carries windows for users this engine does not know —
    /// at fleet level the sharded tick re-delivers them to the owning
    /// shard; `errors` records rehydration failures (the window is
    /// stashed, not lost).
    #[allow(clippy::type_complexity)]
    fn drain_ingest(
        &mut self,
    ) -> (
        usize,
        Vec<(UserId, DualDeviceWindow)>,
        Vec<(UserId, CoreError)>,
    ) {
        let Some(queue) = self.ingest.clone() else {
            return (0, Vec::new(), Vec::new());
        };
        let mut ingested = 0;
        let mut misrouted = Vec::new();
        let mut errors = Vec::new();
        for (id, window) in queue.drain_pending() {
            if !self.users.contains_key(&id) {
                misrouted.push((id, window));
                continue;
            }
            ingested += 1;
            if let Err(e) = self.deliver_ingest(id, window) {
                errors.push((id, e));
            }
        }
        (ingested, misrouted, errors)
    }

    /// Drains every queued window, advancing all affected pipelines in
    /// parallel. Outcomes are grouped per user in registration order; each
    /// user's outcomes are in their submission order. The tick walks only
    /// the resident array — parked users cost nothing, however many are
    /// registered.
    ///
    /// A pipeline failure (e.g. a retrain hitting
    /// [`CoreError::InsufficientData`]) is isolated to its user: the error
    /// is recorded in [`TickReport::errors`] — dropping that user's
    /// outcomes from this tick — while every other user's outcomes are
    /// still reported. Fleet operation must not lose one device's lock
    /// decision because another device's retrain failed.
    ///
    /// When eviction is enabled, the tick ends with an eviction pass: the
    /// least recently submitted resident pipelines are snapshotted out
    /// until at most `capacity` remain. A failed snapshot save keeps that
    /// pipeline resident (state is never dropped unsaved) and reports the
    /// failure in [`TickReport::eviction_errors`] — separate from scoring
    /// errors, because the tick's outcomes are still valid.
    ///
    /// When an ingest queue is attached the tick *starts* by draining it:
    /// every window present when the drain begins is delivered (with lazy
    /// rehydration) and scored this very tick, in per-user FIFO order.
    /// [`TickReport::ingested`], [`TickReport::ingest_errors`] and
    /// [`TickReport::misrouted`] report the drain.
    pub fn tick(&mut self) -> TickReport {
        let (ingested, misrouted, ingest_errors) = self.drain_ingest();
        let scanned = self.resident.len();
        // One extraction scratch per tick thread, shared across every
        // pipeline that thread scores: the FFT plan tables and transform
        // buffers (~40 KB) stay cache-hot across users instead of being
        // reloaded cold from each pipeline's own scratch. Outcomes are
        // bit-identical to the per-pipeline path for the same fast-path
        // setting (`tests/fast_extraction_parity.rs`).
        thread_local! {
            static TICK_SCRATCH: std::cell::RefCell<crate::FeatureScratch> =
                std::cell::RefCell::new(crate::FeatureScratch::default());
        }
        let fast = self.fast_extraction;
        let mut results: Vec<SlotTickResult> = parallel_map_mut(&mut self.resident, |slot| {
            let windows = std::mem::take(&mut slot.inbox);
            let outcome = TICK_SCRATCH.with(|cell| {
                let mut scratch = cell.borrow_mut();
                scratch.set_fast_path(fast);
                match slot
                    .pipeline
                    .process_batch_with_scratch(&windows, &mut scratch)
                {
                    Ok(outcomes) => Ok(UserOutcomes {
                        user: slot.id,
                        outcomes,
                    }),
                    Err(e) => Err((slot.id, e)),
                }
            });
            (slot.seq, outcome)
        });
        // Eviction churn permutes the dense array; registration order is
        // restored from the sequence numbers.
        results.sort_unstable_by_key(|&(seq, _)| seq);
        let mut users = Vec::with_capacity(results.len());
        let mut errors = Vec::new();
        for (_, result) in results {
            match result {
                Ok(user) => {
                    if !user.outcomes.is_empty() {
                        users.push(user);
                    }
                }
                Err(failure) => errors.push(failure),
            }
        }
        let (retrains_started, retrains_completed, retrains_canceled, retrains_in_flight) =
            self.run_training_cycle(&mut errors);
        let (evicted, eviction_errors) = self.evict_idle();
        let rehydrated = std::mem::take(&mut self.rehydrations_since_tick);
        self.clock += 1;
        let resident = self.resident.len();
        TickReport::new(users, errors)
            .with_fleet_state(evicted, rehydrated, resident, scanned, eviction_errors)
            .with_ingest(ingested, misrouted, ingest_errors)
            .with_training(
                retrains_started,
                retrains_completed,
                retrains_canceled,
                retrains_in_flight,
            )
    }

    /// The tick-boundary training cycle, run after scoring and before the
    /// eviction pass (so a completed model lands before its pipeline can be
    /// parked). Three steps, each deterministic in registration order:
    ///
    /// 1. **Submit** — every resident pipeline holding a freshly captured
    ///    retrain request ([`RetrainMode::Deferred`] trigger this tick, or
    ///    a pending request carried in by rehydration/migration) has it
    ///    submitted to the service.
    /// 2. **Run** — a [synchronous](TrainingService::is_synchronous)
    ///    service executes everything queued right here on the caller
    ///    thread; a worker-backed one does nothing (its threads are already
    ///    on it).
    /// 3. **Apply** — every finished job whose owner is still known gets
    ///    its model installed via
    ///    [`apply_retrain`](SmarterYou::apply_retrain); results for
    ///    abandoned jobs are discarded (they were counted as canceled when
    ///    the engine abandoned them). Failed jobs count as canceled and
    ///    surface in [`TickReport::errors`].
    ///
    /// Returns `(started, completed, canceled, in_flight)` for the
    /// [`TickReport`]; `canceled` folds in cancels performed since the last
    /// tick outside this cycle (release/eviction/migration).
    ///
    /// [`RetrainMode::Deferred`]: crate::pipeline::RetrainMode::Deferred
    fn run_training_cycle(
        &mut self,
        errors: &mut Vec<(UserId, CoreError)>,
    ) -> (usize, usize, usize, usize) {
        let Some(mut training) = self.training.take() else {
            return (0, 0, 0, 0);
        };
        let mut started = 0;
        for slot in &mut self.resident {
            if let Some(request) = slot.pipeline.pending_retrain_request() {
                let handle = slot.pipeline.training_handle().clone();
                let job = training.service.submit(handle, request);
                slot.pipeline.note_retrain_submitted(job);
                training.jobs.insert(job, slot.id);
                training.total_started += 1;
                started += 1;
            }
        }
        training.service.run_pending();
        let mut completed = 0;
        let mut canceled = 0;
        for (job, result) in training.service.collect_ready() {
            let Some(user) = training.jobs.remove(&job) else {
                // Abandoned before delivery (release/eviction/migration):
                // already counted as canceled at abandon time, and the
                // owning pipeline has moved on — discard the stale result.
                continue;
            };
            let Some(idx) = self.users.get(&user).and_then(|e| e.resident) else {
                // Defensive: abandonment should always have removed the
                // mapping, but never apply a model to an absent pipeline.
                training.total_canceled += 1;
                canceled += 1;
                continue;
            };
            let pipeline = &mut self.resident[idx].pipeline;
            match result {
                Ok(output) => {
                    if pipeline.apply_retrain(job, output) {
                        training.total_completed += 1;
                        completed += 1;
                    } else {
                        training.total_canceled += 1;
                        canceled += 1;
                    }
                }
                Err(e) => {
                    pipeline.fail_retrain(job);
                    training.total_canceled += 1;
                    canceled += 1;
                    errors.push((user, e));
                }
            }
        }
        canceled += std::mem::take(&mut training.canceled_since_tick);
        let in_flight = training.jobs.len();
        self.training = Some(training);
        (started, completed, canceled, in_flight)
    }

    /// Abandons a pipeline's in-flight retrain as it leaves residency
    /// (release, eviction, migration): the service job is canceled — its
    /// result, even if the worker already finished, will never be applied —
    /// and the pipeline reverts to holding the captured request, so the
    /// snapshot carries it and the next owner resubmits after rehydration.
    /// Counted as canceled *here*, at abandonment, regardless of how the
    /// cancel races the worker: the accounting is deterministic even when
    /// the execution is not.
    fn cancel_user_retrain(training: &mut Option<TrainingState>, pipeline: &mut SmarterYou) {
        let Some(training) = training.as_mut() else {
            return;
        };
        if let Some(job) = pipeline.retrain_job() {
            training.service.cancel(job);
            if training.jobs.remove(&job).is_some() {
                training.total_canceled += 1;
                training.canceled_since_tick += 1;
            }
            pipeline.abandon_retrain_job();
        }
    }

    /// Trims residency to the configured capacity, evicting the least
    /// recently submitted pipelines first. Returns how many were evicted
    /// plus the save failures; a failed save keeps its pipeline resident.
    /// O(resident): only the dense array is scanned.
    fn evict_idle(&mut self) -> (usize, Vec<(UserId, PersistError)>) {
        let mut errors = Vec::new();
        let Some(mut eviction) = self.eviction.take() else {
            return (0, errors);
        };
        if self.resident.len() <= eviction.capacity {
            self.eviction = Some(eviction);
            return (0, errors);
        }
        // Oldest submit first; ties broken by registration order so the
        // pass is deterministic whatever the dense array's permutation.
        let mut order: Vec<usize> = (0..self.resident.len()).collect();
        order.sort_unstable_by_key(|&i| {
            let slot = &self.resident[i];
            (self.users[&slot.id].last_submit_tick, slot.seq)
        });
        let excess = self.resident.len() - eviction.capacity;
        let mut victims = order[..excess].to_vec();
        // Descending, so each swap_remove leaves earlier victim indices
        // valid (the swapped-in tail element always has a larger index).
        victims.sort_unstable_by(|a, b| b.cmp(a));
        let mut evicted = 0;
        for i in victims {
            // Pre-check the ownership fence before consuming the pipeline:
            // a fenced-out user would be selected again every tick, and
            // without this check each tick would pay a full snapshot +
            // restore round-trip just to have the save rejected. The cheap
            // epoch read reports the same typed error instead.
            let held = self.users[&self.resident[i].id].epoch;
            match eviction.store.epoch(self.resident[i].id) {
                Ok(stored) if held < stored => {
                    errors.push((
                        self.resident[i].id,
                        PersistError::StaleEpoch {
                            id: self.resident[i].id,
                            held,
                            stored,
                        },
                    ));
                    continue;
                }
                Ok(_) => {}
                Err(e) => {
                    errors.push((self.resident[i].id, e));
                    continue;
                }
            }
            let ResidentSlot {
                id,
                seq,
                mut pipeline,
                inbox,
            } = self.resident.swap_remove(i);
            let epoch = self.users[&id].epoch;
            // A parked pipeline cannot receive a job result: cancel any
            // in-flight retrain and persist the captured request instead,
            // so rehydration resubmits rather than applying a stale model.
            Self::cancel_user_retrain(&mut self.training, &mut pipeline);
            // Consuming snapshot: the pipeline is leaving memory anyway, so
            // its state moves into the snapshot instead of being cloned.
            let snapshot = pipeline.into_snapshot();
            match eviction.store.save_fenced(id, epoch, &snapshot) {
                Ok(()) => {
                    evicted += 1;
                    eviction.total_evictions += 1;
                    self.users.get_mut(&id).expect("registered").resident = None;
                }
                Err(e) => {
                    // Never drop unsaved state: rebuild the pipeline from
                    // the snapshot still in hand (a snapshot taken from a
                    // live pipeline always restores) and surface the error.
                    let server = self.users[&id].server.clone();
                    let mut pipeline = SmarterYou::restore(snapshot, server)
                        .expect("snapshot of a live pipeline restores");
                    // Re-apply the runtime flag a restore never carries.
                    pipeline.set_fast_extraction(self.fast_extraction);
                    self.resident.push(ResidentSlot {
                        id,
                        seq,
                        pipeline,
                        inbox,
                    });
                    errors.push((id, e));
                }
            }
        }
        self.eviction = Some(eviction);
        self.reindex_residents();
        (evicted, errors)
    }

    /// Repairs one entry's index after a single `swap_remove` moved the
    /// tail slot into `idx`. No-op when `idx` is past the end (the removed
    /// slot was the tail itself).
    fn fix_resident_index(&mut self, idx: usize) {
        if let Some(slot_id) = self.resident.get(idx).map(|s| s.id) {
            self.users
                .get_mut(&slot_id)
                .expect("resident implies registered")
                .resident = Some(idx);
        }
    }

    /// Rebuilds every resident entry's index after the dense array was
    /// permuted (batch eviction). O(resident).
    fn reindex_residents(&mut self) {
        for idx in 0..self.resident.len() {
            let id = self.resident[idx].id;
            self.users
                .get_mut(&id)
                .expect("resident implies registered")
                .resident = Some(idx);
        }
    }

    /// Lifetime eviction and rehydration totals (`(0, 0)` when eviction is
    /// disabled).
    pub fn eviction_totals(&self) -> (u64, u64) {
        self.eviction
            .as_ref()
            .map(|e| (e.total_evictions, e.total_rehydrations))
            .unwrap_or((0, 0))
    }

    /// One-call tick: queues a batch of `(user, window)` pairs, scores them
    /// (together with anything already queued), and returns this batch's
    /// outcomes **in input order**. Evicted users rehydrate on their first
    /// window of the batch, exactly as [`FleetEngine::submit`] would.
    ///
    /// # Errors
    ///
    /// [`CoreError::UnknownUser`] if any user in the batch is unregistered
    /// (checked up front — nothing is queued or scored in that case);
    /// [`CoreError::Persist`] if a rehydration fails while queueing
    /// (earlier pairs of the batch stay queued for the next tick); or the
    /// first per-user pipeline failure if one of this batch's users errored
    /// (the other users' pipelines still advanced — use
    /// [`FleetEngine::submit`] + [`FleetEngine::tick`] for error-isolated
    /// reporting).
    pub fn score_ticked(
        &mut self,
        batch: Vec<(UserId, DualDeviceWindow)>,
    ) -> Result<Vec<(UserId, ProcessOutcome)>, CoreError> {
        // Validate before mutating any inbox so an unknown id is atomic.
        for (id, _) in &batch {
            if !self.users.contains_key(id) {
                return Err(CoreError::UnknownUser(*id));
            }
        }
        // Remember, per input position, which of its user's queued windows
        // it became, so outcomes can be re-interleaved into input order.
        let mut positions = Vec::with_capacity(batch.len());
        let mut order: Vec<UserId> = Vec::with_capacity(batch.len());
        for (id, window) in batch {
            self.ensure_resident(id)?;
            let entry = self.users.get_mut(&id).expect("validated above");
            entry.last_submit_tick = self.clock;
            let slot = &mut self.resident[entry.resident.expect("made resident above")];
            positions.push(slot.inbox.len());
            order.push(id);
            slot.inbox.push(window);
        }
        let report = self.tick();
        if let Some((_, error)) = report.errors().first() {
            return Err(error.clone());
        }
        let by_user: HashMap<UserId, &UserOutcomes> =
            report.users().iter().map(|u| (u.user, u)).collect();
        Ok(order
            .into_iter()
            .zip(positions)
            .map(|(id, pos)| (id, by_user[&id].outcomes[pos]))
            .collect())
    }
}

impl Drop for FleetEngine {
    fn drop(&mut self) {
        // Wake any producer parked on a full attached queue: the engine
        // that would have drained it is going away, so they get a typed
        // `Closed` error instead of blocking forever on the condvar.
        if let Some(queue) = &self.ingest {
            queue.close();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smarteryou_sensors::{Population, TraceGenerator, WindowSpec};

    fn some_window() -> DualDeviceWindow {
        let owner = Population::generate(1, 11).users()[0].clone();
        let mut gen = TraceGenerator::new(owner, 13);
        gen.next_window(WindowSpec::from_seconds(2.0, 50.0))
    }

    #[test]
    fn empty_engine_bookkeeping() {
        let mut engine = FleetEngine::new();
        assert!(engine.is_empty());
        assert_eq!(engine.len(), 0);
        assert_eq!(engine.pending(), 0);
        assert_eq!(engine.resident_count(), 0);
        assert_eq!(engine.eviction_capacity(), None);
        assert_eq!(engine.eviction_totals(), (0, 0));
        assert!(engine.snapshot_store_mut().is_none());
        assert!(engine.user_ids().next().is_none());
        assert!(engine.pipeline(UserId(0)).is_none());
        assert!(engine.pipeline_mut(UserId(0)).is_none());
        assert_eq!(engine.is_resident(UserId(0)), None);
        assert_eq!(engine.epoch_of(UserId(0)), None);
        let outcomes = engine.score_ticked(vec![]).expect("empty batch is fine");
        assert!(outcomes.is_empty());
        assert!(engine.ingest_queue().is_none());
        assert!(!engine.training_enabled());
        assert_eq!(engine.retrain_totals(), (0, 0, 0));
        assert_eq!(engine.retrains_in_flight(), 0);
        let report = engine.tick();
        assert_eq!(report.windows_scored(), 0);
        assert_eq!(report.evictions(), 0);
        assert_eq!(report.rehydrations(), 0);
        assert_eq!(report.resident_pipelines(), 0);
        assert_eq!(report.scanned_slots(), 0);
        assert_eq!(report.ingested(), 0);
        assert_eq!(report.ingest_forwarded(), 0);
        assert!(report.ingest_errors().is_empty());
        assert!(report.misrouted().is_empty());
        assert_eq!(report.retrains_started(), 0);
        assert_eq!(report.retrains_completed(), 0);
        assert_eq!(report.retrains_canceled(), 0);
        assert_eq!(report.retrains_in_flight(), 0);
    }

    #[test]
    fn unregistered_user_is_a_typed_error() {
        let mut engine = FleetEngine::new();
        let w = some_window();
        assert_eq!(
            engine.submit(UserId(4), w.clone()),
            Err(CoreError::UnknownUser(UserId(4)))
        );
        assert_eq!(
            engine.submit_many(UserId(4), [w.clone()]),
            Err(CoreError::UnknownUser(UserId(4)))
        );
        assert_eq!(
            engine.score_ticked(vec![(UserId(4), w)]).unwrap_err(),
            CoreError::UnknownUser(UserId(4))
        );
        assert_eq!(
            engine.rehydrate(UserId(4)),
            Err(CoreError::UnknownUser(UserId(4)))
        );
        assert!(matches!(
            engine.release(UserId(4)),
            Err(CoreError::UnknownUser(UserId(4)))
        ));
    }

    #[test]
    fn register_parked_requires_a_store() {
        let mut engine = FleetEngine::new();
        let server: Arc<dyn TrainingHandle> =
            Arc::new(parking_lot::Mutex::new(crate::server::TrainingServer::new()));
        assert!(matches!(
            engine.register_parked(UserId(0), server),
            Err(CoreError::InvalidConfig(_))
        ));
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_eviction_capacity_is_rejected() {
        FleetEngine::new().enable_eviction(Box::new(crate::persist::MemorySnapshotStore::new()), 0);
    }

    #[test]
    fn ingest_queue_attaches_and_reattaches_only_when_drained() {
        let mut engine = FleetEngine::new();
        let queue = engine.enable_ingest(2, BackpressurePolicy::Reject);
        assert!(engine.ingest_queue().is_some());
        queue.push((UserId(0), some_window())).expect("space");
        // The queued (unknown-user) window surfaces as misrouted, counted
        // by nothing else, and the drain empties the queue.
        let report = engine.tick();
        assert_eq!(report.ingested(), 0);
        assert_eq!(report.misrouted().len(), 1);
        assert!(queue.is_empty());
        // Empty queue: replacement allowed.
        engine.attach_ingest(Arc::new(IngestQueue::new(
            4,
            BackpressurePolicy::BlockingWait,
        )));
        assert_eq!(
            engine.ingest_queue().expect("attached").capacity(),
            4,
            "replacement queue installed"
        );
    }

    #[test]
    #[should_panic(expected = "drain it first")]
    fn replacing_a_nonempty_ingest_queue_is_rejected() {
        let mut engine = FleetEngine::new();
        let queue = engine.enable_ingest(2, BackpressurePolicy::Reject);
        queue.push((UserId(0), some_window())).expect("space");
        engine.attach_ingest(Arc::new(IngestQueue::new(2, BackpressurePolicy::Reject)));
    }
}
