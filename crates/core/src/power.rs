//! System-overhead evaluation — §V-H: computational complexity, CPU and
//! memory overhead, and battery consumption (Table VIII).

use std::time::Duration;

use serde::{Deserialize, Serialize};

use smarteryou_sensors::{PowerModel, PowerScenario};

use crate::experiment::ComplexityReport;

/// One Table VIII row: paper-reported vs model-predicted battery drain.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BatteryRow {
    /// Scenario label.
    pub scenario: String,
    /// The paper's measured drain (percent).
    pub paper: f64,
    /// Our power model's prediction (percent).
    pub predicted: f64,
}

/// The full §V-H overhead picture.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OverheadReport {
    /// Median KRR (primal) training time — the paper reports 0.065 s.
    pub train_time: Duration,
    /// Median per-window authentication time — the paper reports 18 ms
    /// (on a Nexus 5; ours is desktop-class hardware).
    pub test_time: Duration,
    /// Estimated CPU utilisation of continuous authentication: processing
    /// time per window over the window duration, plus a sampling allowance.
    /// The paper measures ~5 % on the phone.
    pub cpu_utilization: f64,
    /// Estimated resident memory of the deployed models and buffers in
    /// bytes — the paper reports ~3 MB for its app.
    pub memory_bytes: usize,
    /// Table VIII rows.
    pub battery: Vec<BatteryRow>,
}

impl OverheadReport {
    /// Builds the report from measured classifier timings plus the
    /// calibrated battery model.
    ///
    /// `window_secs` is the authentication period; `model_params` the total
    /// `f64` parameter count of the deployed models (weights, scalers,
    /// forest thresholds); `buffer_windows` × `features` sizes the
    /// enrollment/retraining buffers.
    pub fn from_measurements(
        complexity: &ComplexityReport,
        window_secs: f64,
        model_params: usize,
        buffer_floats: usize,
    ) -> Self {
        let power = PowerModel::default();
        let battery = PowerScenario::ALL
            .iter()
            .map(|s| BatteryRow {
                scenario: s.label().to_string(),
                paper: s.paper_value(),
                predicted: power.drain(*s),
            })
            .collect();

        // CPU: per-window compute spread over the window, plus a fixed
        // allowance for 50 Hz sampling/buffering (dominates on real phones;
        // we model it as the paper's measured sampling share).
        const SAMPLING_CPU_SHARE: f64 = 0.045;
        let compute_share = complexity.test_time.as_secs_f64() / window_secs;
        OverheadReport {
            train_time: complexity.train_primal,
            test_time: complexity.test_time,
            cpu_utilization: SAMPLING_CPU_SHARE + compute_share,
            memory_bytes: (model_params + buffer_floats) * std::mem::size_of::<f64>(),
            battery,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fake_complexity() -> ComplexityReport {
        ComplexityReport {
            n: 720,
            m: 28,
            train_primal: Duration::from_micros(500),
            train_dual: Duration::from_millis(50),
            test_time: Duration::from_micros(20),
            train_svm: Duration::from_millis(80),
        }
    }

    #[test]
    fn battery_rows_match_paper_calibration() {
        let report = OverheadReport::from_measurements(&fake_complexity(), 6.0, 1000, 10000);
        assert_eq!(report.battery.len(), 4);
        for row in &report.battery {
            assert!(
                (row.paper - row.predicted).abs() < 0.05,
                "{}: {} vs {}",
                row.scenario,
                row.paper,
                row.predicted
            );
        }
    }

    #[test]
    fn cpu_utilisation_is_modest() {
        let report = OverheadReport::from_measurements(&fake_complexity(), 6.0, 1000, 10000);
        assert!(report.cpu_utilization < 0.06, "{}", report.cpu_utilization);
        assert!(report.cpu_utilization > 0.04);
    }

    #[test]
    fn memory_accounts_for_params_and_buffers() {
        let report = OverheadReport::from_measurements(&fake_complexity(), 6.0, 100, 100);
        assert_eq!(report.memory_bytes, 200 * 8);
    }
}
