use serde::{Deserialize, Serialize};

/// What the response module does with one authentication decision
/// (§IV-A2 "Response Module").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ResponseAction {
    /// Access to sensitive data/services continues.
    Allow,
    /// This window is rejected; access to security-critical data is refused
    /// but the device is not yet locked.
    Deny,
    /// The device locks and requires explicit (multi-factor) authentication.
    Lock,
}

/// Policy of the response module.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ResponsePolicy {
    /// Consecutive rejected windows that escalate a [`ResponseAction::Deny`]
    /// into a [`ResponseAction::Lock`]. The paper de-authenticates on
    /// detection, i.e. 1.
    pub rejects_to_lock: usize,
}

impl Default for ResponsePolicy {
    fn default() -> Self {
        ResponsePolicy { rejects_to_lock: 1 }
    }
}

/// Stateful response module: tracks consecutive rejections and the lock
/// state, and requires explicit re-authentication to unlock.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ResponseModule {
    policy: ResponsePolicy,
    consecutive_rejects: usize,
    locked: bool,
}

impl ResponseModule {
    /// Creates a module with the given policy.
    pub fn new(policy: ResponsePolicy) -> Self {
        ResponseModule {
            policy,
            consecutive_rejects: 0,
            locked: false,
        }
    }

    /// Applies one authentication verdict. While locked, everything is
    /// denied until [`ResponseModule::unlock_with_explicit_auth`].
    pub fn on_decision(&mut self, accepted: bool) -> ResponseAction {
        if self.locked {
            return ResponseAction::Lock;
        }
        if accepted {
            self.consecutive_rejects = 0;
            ResponseAction::Allow
        } else {
            self.consecutive_rejects += 1;
            if self.consecutive_rejects >= self.policy.rejects_to_lock {
                self.locked = true;
                ResponseAction::Lock
            } else {
                ResponseAction::Deny
            }
        }
    }

    /// Whether the device is currently locked out.
    pub fn is_locked(&self) -> bool {
        self.locked
    }

    /// Models a successful explicit (e.g. password/biometric, possibly
    /// multi-factor) login: unlocks and clears the rejection run.
    pub fn unlock_with_explicit_auth(&mut self) {
        self.locked = false;
        self.consecutive_rejects = 0;
    }
}

impl Default for ResponseModule {
    fn default() -> Self {
        ResponseModule::new(ResponsePolicy::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_locks_on_first_reject() {
        let mut m = ResponseModule::default();
        assert_eq!(m.on_decision(true), ResponseAction::Allow);
        assert_eq!(m.on_decision(false), ResponseAction::Lock);
        assert!(m.is_locked());
        // Locked stays locked even for "accepted" windows.
        assert_eq!(m.on_decision(true), ResponseAction::Lock);
    }

    #[test]
    fn lenient_policy_denies_before_locking() {
        let mut m = ResponseModule::new(ResponsePolicy { rejects_to_lock: 3 });
        assert_eq!(m.on_decision(false), ResponseAction::Deny);
        assert_eq!(m.on_decision(false), ResponseAction::Deny);
        assert_eq!(m.on_decision(false), ResponseAction::Lock);
    }

    #[test]
    fn accept_resets_the_run() {
        let mut m = ResponseModule::new(ResponsePolicy { rejects_to_lock: 2 });
        assert_eq!(m.on_decision(false), ResponseAction::Deny);
        assert_eq!(m.on_decision(true), ResponseAction::Allow);
        assert_eq!(m.on_decision(false), ResponseAction::Deny);
    }

    #[test]
    fn explicit_auth_unlocks() {
        let mut m = ResponseModule::default();
        m.on_decision(false);
        assert!(m.is_locked());
        m.unlock_with_explicit_auth();
        assert!(!m.is_locked());
        assert_eq!(m.on_decision(true), ResponseAction::Allow);
    }
}
