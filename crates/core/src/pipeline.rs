use std::sync::Arc;

use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};

use smarteryou_ml::{KrrFitCache, KrrTailState};
use smarteryou_sensors::{DualDeviceWindow, UsageContext, WindowSpec};

use crate::auth::{AuthDecision, Authenticator};
use crate::config::{ContextMode, SystemConfig};
use crate::context_detect::ContextDetector;
use crate::engine::training::{JobId, RetrainOutput, RetrainRequest};
use crate::features::FeatureExtractor;
use crate::persist::{PipelineSnapshot, SNAPSHOT_FORMAT, SNAPSHOT_VERSION};
use crate::response::{ResponseAction, ResponseModule, ResponsePolicy};
use crate::retrain::{ConfidenceTracker, RetrainPolicy};
use crate::server::{EnrollmentWorkspace, NegativeEpoch, RetrainWorkspaceCache, TrainingHandle};
use crate::window_features::FeatureScratch;
use crate::CoreError;

/// Default bound on the per-pipeline [`SystemEvent`] ring buffer. Events
/// are rare (one per enrollment, retrain, or lock transition), but
/// unbounded they ride along in every snapshot for the life of the user;
/// the default keeps months of typical churn while capping the wire cost.
pub const DEFAULT_EVENT_CAPACITY: usize = 256;

/// Lifecycle phase of the on-device system (§IV-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SystemPhase {
    /// Collecting the owner's windows until the enrollment buffers are full.
    Enrollment,
    /// Models trained; every window is authenticated.
    ContinuousAuth,
}

/// Notable events emitted by the pipeline, with the simulated day they
/// occurred.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SystemEvent {
    /// Enrollment buffers filled and the first models were trained.
    EnrollmentComplete {
        /// Simulated day.
        day: f64,
    },
    /// Behavioural drift triggered an automatic retrain (§V-I).
    Retrained {
        /// Simulated day.
        day: f64,
    },
    /// The response module locked the device.
    Locked {
        /// Simulated day.
        day: f64,
    },
}

/// How a retrain trigger is executed (§V-I's model refresh).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RetrainMode {
    /// Retrain synchronously inside the triggering
    /// [`SmarterYou::process_window`] call — the historical behaviour, and
    /// still the default.
    Inline,
    /// Capture a self-contained [`RetrainRequest`] instead and keep scoring
    /// on the old model until a
    /// [`TrainingService`](crate::engine::training::TrainingService) hands
    /// the fitted replacement back (applied at a fleet-engine tick
    /// boundary). A standalone pipeline in this mode never completes a
    /// retrain by itself — it needs an engine with training enabled
    /// ([`FleetEngine::enable_training`](crate::engine::FleetEngine::enable_training)).
    Deferred,
}

/// Where a deferred retrain stands. The captured request travels with the
/// state: the pipeline's `recent` buffers keep growing while the job is
/// out, so abandoning a job (eviction, migration) must fall back to the
/// *trigger-time* request, not a recapture.
#[derive(Debug, Clone)]
pub(crate) enum RetrainState {
    /// No retrain outstanding.
    Idle,
    /// Triggered but not yet submitted to a training service.
    Pending { request: RetrainRequest },
    /// Submitted; scoring continues on the old model until the engine
    /// applies (or abandons) job `job` at a tick boundary.
    InFlight { job: JobId, request: RetrainRequest },
}

/// Result of feeding one window through [`SmarterYou::process_window`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ProcessOutcome {
    /// Still enrolling; counts of buffered windows per context.
    Enrolling {
        /// Windows buffered in the stationary context.
        stationary: usize,
        /// Windows buffered in the moving context.
        moving: usize,
    },
    /// An authentication decision was made.
    Decision {
        /// Classifier verdict and confidence.
        decision: AuthDecision,
        /// Response-module action.
        action: ResponseAction,
        /// Whether this window triggered an automatic retrain.
        retrained: bool,
    },
}

/// The on-device SmarterYou runtime: feature extraction → context detection
/// → per-context authentication → response, plus enrollment buffering and
/// confidence-score-driven retraining (Figure 1's testing module).
///
/// The training service is reached through a shared [`TrainingHandle`] —
/// today an in-process [`TrainingServer`](crate::TrainingServer) behind a
/// mutex (the `Arc<Mutex<TrainingServer>>` coerces), later an
/// out-of-process service.
#[derive(Debug, Clone)]
pub struct SmarterYou {
    cfg: SystemConfig,
    extractor: FeatureExtractor,
    detector: ContextDetector,
    server: Arc<dyn TrainingHandle>,
    authenticator: Option<Authenticator>,
    response: ResponseModule,
    tracker: ConfidenceTracker,
    /// Enrollment buffers per context index.
    buffers: [Vec<Vec<f64>>; 2],
    /// Ring buffers of recently accepted windows, used for retraining.
    recent: [Vec<Vec<f64>>; 2],
    /// Ring buffer of notable events, capped at `event_capacity`.
    events: Vec<SystemEvent>,
    event_capacity: usize,
    day: f64,
    rng: StdRng,
    /// Planned-FFT workspace reused across windows (see [`FeatureScratch`]).
    scratch: FeatureScratch,
    /// Whether the detector shares this pipeline's extractor, letting one
    /// [`WindowFeatures`](crate::WindowFeatures) pass serve context
    /// detection *and* authentication.
    shared_extractor: bool,
    /// Frozen negative sample for epoch-stable retrains; `None` until the
    /// first retrain pins one. Persisted in snapshots (a restored pipeline
    /// must not redraw it — that would consume different randomness).
    negative_epoch: Option<NegativeEpoch>,
    /// Per-context KRR fit caches for the retrain path. Transient: a
    /// restored pipeline starts cold and simply refactors once — cache
    /// state never changes any trained model bit.
    fit_caches: [KrrFitCache; 2],
    /// Per-context positive-tail factor identity from the previous
    /// shared-workspace fit: retrains whose positive tail shifted by only
    /// a few windows slide the cached Cholesky factor instead of
    /// refactoring. **Persisted** in snapshots — unlike the fit caches, a
    /// slid factor is not bit-identical to a fresh one, so dropping the
    /// tail on evict/restore would break restore bit-parity.
    retrain_tails: [Option<KrrTailState>; 2],
    /// Per-epoch shared negative-Gram blocks for inline retrains.
    /// Transient and cheaply rebuilt; never changes model bits (the
    /// workspace is a pure function of the epoch and trainer config).
    ws_cache: RetrainWorkspaceCache,
    /// Whether retrain triggers run inline or defer to a training service.
    retrain_mode: RetrainMode,
    /// Deferred-retrain state machine; always `Idle` in inline mode.
    retrain_state: RetrainState,
}

impl SmarterYou {
    /// Creates a pipeline in the enrollment phase.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] for invalid configurations.
    pub fn new(
        cfg: SystemConfig,
        detector: ContextDetector,
        server: Arc<dyn TrainingHandle>,
        seed: u64,
    ) -> Result<Self, CoreError> {
        cfg.validate()?;
        let extractor = FeatureExtractor::paper_default(cfg.sample_rate());
        let shared_extractor = *detector.extractor() == extractor;
        Ok(SmarterYou {
            cfg,
            extractor,
            detector,
            server,
            authenticator: None,
            response: ResponseModule::new(ResponsePolicy::default()),
            tracker: ConfidenceTracker::new(RetrainPolicy::default()),
            buffers: [Vec::new(), Vec::new()],
            recent: [Vec::new(), Vec::new()],
            events: Vec::new(),
            event_capacity: DEFAULT_EVENT_CAPACITY,
            day: 0.0,
            rng: rand::SeedableRng::seed_from_u64(seed),
            scratch: FeatureScratch::default(),
            shared_extractor,
            negative_epoch: None,
            fit_caches: Default::default(),
            retrain_tails: [None, None],
            ws_cache: RetrainWorkspaceCache::new(),
            retrain_mode: RetrainMode::Inline,
            retrain_state: RetrainState::Idle,
        })
    }

    /// Overrides the response policy (default: lock on first rejection).
    pub fn with_response_policy(mut self, policy: ResponsePolicy) -> Self {
        self.response = ResponseModule::new(policy);
        self
    }

    /// Overrides the retraining policy (default: ε = 0.2 over 30 windows).
    pub fn with_retrain_policy(mut self, policy: RetrainPolicy) -> Self {
        self.tracker = ConfidenceTracker::new(policy);
        self
    }

    /// Overrides how retrain triggers execute (default:
    /// [`RetrainMode::Inline`]). Switching to [`RetrainMode::Deferred`]
    /// with a retrain already captured would orphan it, so this is a
    /// construction-time builder like the policy overrides.
    pub fn with_retrain_mode(mut self, mode: RetrainMode) -> Self {
        debug_assert!(
            matches!(self.retrain_state, RetrainState::Idle),
            "retrain mode set after a retrain was captured"
        );
        self.retrain_mode = mode;
        self
    }

    /// How retrain triggers execute on this pipeline.
    pub fn retrain_mode(&self) -> RetrainMode {
        self.retrain_mode
    }

    /// Builder form of [`SmarterYou::set_fast_extraction`].
    pub fn with_fast_extraction(mut self, on: bool) -> Self {
        self.set_fast_extraction(on);
        self
    }

    /// Enables (or disables) the vectorized feature-extraction fast path
    /// (fused 4-lane summaries + 4-stream batched spectra; see
    /// `docs/perf.md`). Feature values — and therefore scores — move by at
    /// most a few ulps relative to the reference; default off so parity
    /// suites and restored snapshots keep the bit-exact scalar kernels.
    ///
    /// **Not persisted**: like thread counts, this is a runtime knob — a
    /// pipeline restored from a snapshot starts with the flag off, and an
    /// owning [`FleetEngine`](crate::FleetEngine) re-applies its own
    /// setting on rehydration.
    pub fn set_fast_extraction(&mut self, on: bool) {
        self.scratch.set_fast_path(on);
    }

    /// Whether the vectorized extraction fast path is enabled.
    pub fn fast_extraction(&self) -> bool {
        self.scratch.fast_path()
    }

    /// Whether a deferred retrain is outstanding (captured or submitted).
    /// Always `false` in inline mode.
    pub fn retrain_outstanding(&self) -> bool {
        !matches!(self.retrain_state, RetrainState::Idle)
    }

    /// Overrides how many `(day, score)` pairs the confidence tracker
    /// retains for plotting (see
    /// [`ConfidenceTracker::with_history_retention`]). Experiment harnesses
    /// regenerating Figure 7 pass a run-length retention; the runtime
    /// default keeps one rolling window's worth.
    pub fn with_history_retention(mut self, retention: usize) -> Self {
        self.tracker = self.tracker.with_history_retention(retention);
        self
    }

    /// Overrides the [`SystemEvent`] ring-buffer bound
    /// ([`DEFAULT_EVENT_CAPACITY`] by default).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero (the response logic reads the latest
    /// event).
    pub fn with_event_capacity(mut self, capacity: usize) -> Self {
        assert!(capacity > 0, "event capacity must be positive");
        self.event_capacity = capacity;
        self.truncate_events();
        self
    }

    /// Current lifecycle phase.
    pub fn phase(&self) -> SystemPhase {
        if self.authenticator.is_some() {
            SystemPhase::ContinuousAuth
        } else {
            SystemPhase::Enrollment
        }
    }

    /// Advances the pipeline's notion of time (fractional days).
    pub fn set_clock(&mut self, day: f64) {
        self.day = day;
    }

    /// The trained authenticator, once enrollment completed.
    pub fn authenticator(&self) -> Option<&Authenticator> {
        self.authenticator.as_ref()
    }

    /// Most recent events, oldest first — a ring buffer bounded at
    /// [`SmarterYou::event_capacity`], so a long-lived pipeline reports its
    /// latest `capacity` events rather than growing (and snapshotting)
    /// without bound.
    pub fn events(&self) -> &[SystemEvent] {
        &self.events
    }

    /// The configured [`SystemEvent`] ring-buffer bound.
    pub fn event_capacity(&self) -> usize {
        self.event_capacity
    }

    /// Cumulative (hits, misses) of the per-context KRR fit caches the
    /// retrain path runs through: a hit means a retrain reused the cached
    /// Cholesky factorisation because its design matrix was unchanged
    /// (epoch-stable negative sampling makes that possible — see
    /// [`crate::TrainingServer::train_authenticator_epoch`]).
    pub fn fit_cache_stats(&self) -> (u64, u64) {
        self.fit_caches
            .iter()
            .fold((0, 0), |(h, m), c| (h + c.hits(), m + c.misses()))
    }

    /// Cumulative `(shared_hits, keyed_hits, misses)` across the
    /// per-context fit caches — the split behind
    /// [`SmarterYou::fit_cache_stats`]. A *shared* hit means the fit came
    /// off the per-epoch negative-Gram block (one m×m solve or a tail
    /// slide), a *keyed* hit means an identical design matrix reused its
    /// exact cached factorisation, and a miss means the full cubic
    /// factorisation was paid. The retrain-storm guard keys off the miss
    /// count alone, so shared-block fallbacks can't masquerade as hits.
    pub fn fit_cache_detail(&self) -> (u64, u64, u64) {
        self.fit_caches.iter().fold((0, 0, 0), |(s, k, m), c| {
            (s + c.shared_hits(), k + c.keyed_hits(), m + c.misses())
        })
    }

    /// Appends to the bounded event log, dropping the oldest entry at
    /// capacity.
    fn push_event(&mut self, event: SystemEvent) {
        if self.events.len() == self.event_capacity {
            // O(capacity) shift, but events are rare (retrains and lock
            // transitions) and the capacity small.
            self.events.remove(0);
        }
        self.events.push(event);
    }

    /// Enforces the event bound (after restore or a capacity change),
    /// keeping the most recent entries.
    fn truncate_events(&mut self) {
        if self.events.len() > self.event_capacity {
            self.events.drain(..self.events.len() - self.event_capacity);
        }
    }

    /// The confidence-score tracker (Figure 7's time series).
    pub fn confidence_tracker(&self) -> &ConfidenceTracker {
        &self.tracker
    }

    /// Whether the response module has locked the device.
    pub fn is_locked(&self) -> bool {
        self.response.is_locked()
    }

    /// Models a successful explicit login, unlocking the device.
    pub fn unlock_with_explicit_auth(&mut self) {
        self.response.unlock_with_explicit_auth();
    }

    /// Windows needed per context before enrollment can finish.
    fn enrollment_target(&self) -> usize {
        self.cfg.data_size() / 2
    }

    /// The shared training-service handle this pipeline talks to. The
    /// fleet engine retains it across eviction so rehydration reattaches
    /// the restored pipeline to the same service state.
    pub(crate) fn training_handle(&self) -> &Arc<dyn TrainingHandle> {
        &self.server
    }

    // --- Deferred-retrain state machine (engine-facing) -----------------
    //
    // The engine drives these at tick boundaries: a captured request is
    // submitted (`pending_retrain_request` + `note_retrain_submitted`), a
    // completed job is installed (`apply_retrain`) or surfaced as an error
    // (`fail_retrain`), and eviction/migration abandons an in-flight job
    // back to `Pending` (`abandon_retrain_job`) so snapshots carry the
    // trigger-time request and the target engine can reissue it.

    /// The captured-but-unsubmitted retrain request, if any (cloned; the
    /// original rides into `InFlight` on submit).
    pub(crate) fn pending_retrain_request(&self) -> Option<RetrainRequest> {
        match &self.retrain_state {
            RetrainState::Pending { request } => Some(request.clone()),
            _ => None,
        }
    }

    /// Records that the pending request was submitted as `job`.
    pub(crate) fn note_retrain_submitted(&mut self, job: JobId) {
        let state = std::mem::replace(&mut self.retrain_state, RetrainState::Idle);
        match state {
            RetrainState::Pending { request } => {
                self.retrain_state = RetrainState::InFlight { job, request };
            }
            other => {
                debug_assert!(false, "submit noted without a pending retrain");
                self.retrain_state = other;
            }
        }
    }

    /// The in-flight job id, if a submitted retrain is outstanding.
    pub(crate) fn retrain_job(&self) -> Option<JobId> {
        match &self.retrain_state {
            RetrainState::InFlight { job, .. } => Some(*job),
            _ => None,
        }
    }

    /// Abandons the in-flight job (its result, if any ever arrives, must
    /// be discarded by the caller) and reverts to `Pending` with the
    /// trigger-time request, so the retrain is reissued — possibly by a
    /// different engine after migration — rather than lost.
    pub(crate) fn abandon_retrain_job(&mut self) {
        let state = std::mem::replace(&mut self.retrain_state, RetrainState::Idle);
        self.retrain_state = match state {
            RetrainState::InFlight { request, .. } => RetrainState::Pending { request },
            other => other,
        };
    }

    /// Installs a completed retrain: the fitted model plus the post-train
    /// RNG/epoch/cache state inline retraining would have left. Returns
    /// `false` (and changes nothing) unless `job` matches the in-flight
    /// job — the guard that a stale result from an abandoned job can never
    /// land.
    pub(crate) fn apply_retrain(&mut self, job: JobId, output: RetrainOutput) -> bool {
        match &self.retrain_state {
            RetrainState::InFlight { job: expected, .. } if *expected == job => {}
            _ => return false,
        }
        let RetrainOutput {
            authenticator,
            rng_state,
            negative_epoch,
            fit_caches,
            retrain_tails,
            day,
        } = output;
        self.authenticator = Some(authenticator);
        // Nothing consumes pipeline randomness between trigger and apply
        // (scoring draws none; re-triggers are suppressed while a retrain
        // is outstanding), so installing the post-train state keeps the
        // stream in lockstep with inline retraining.
        self.rng = StdRng::from_state(rng_state);
        self.negative_epoch = negative_epoch;
        self.fit_caches = fit_caches;
        self.retrain_tails = retrain_tails;
        self.retrain_state = RetrainState::Idle;
        self.push_event(SystemEvent::Retrained { day });
        true
    }

    /// Drops the in-flight job after its execution failed; a later trigger
    /// starts fresh. Fit caches travel with the failed job and come back
    /// cold — irrelevant to model bits.
    pub(crate) fn fail_retrain(&mut self, job: JobId) {
        if self.retrain_job() == Some(job) {
            self.retrain_state = RetrainState::Idle;
        }
    }

    /// Captures everything [`crate::engine::training::execute`] needs to
    /// reproduce an inline retrain bit-for-bit, as of the trigger window.
    fn capture_retrain_request(&mut self) -> RetrainRequest {
        RetrainRequest {
            positives: [self.recent[0].clone(), self.recent[1].clone()],
            cfg: self.cfg.clone(),
            rng_state: self.rng.state(),
            negative_epoch: self.negative_epoch.clone(),
            // The caches and tails travel with the job (the worker refits
            // through them) and are reinstalled on apply. A failed or
            // dropped job leaves them cold — an accelerator loss, never a
            // correctness one.
            fit_caches: std::mem::take(&mut self.fit_caches),
            retrain_tails: std::mem::take(&mut self.retrain_tails),
            day: self.day,
        }
    }

    /// Captures the pipeline's complete per-user state as a versioned
    /// [`PipelineSnapshot`] — configuration, detector forest, per-context
    /// KRR models, enrollment + retrain buffers, confidence tracker,
    /// response state, event log, clock, RNG position, and the
    /// window-length FFT plan key.
    ///
    /// [`SmarterYou::restore`] inverts this **bit-identically**: the
    /// restored pipeline produces exactly the decisions, scores, and
    /// retrain events the original would have (see
    /// [`crate::persist`] for the format and compatibility policy).
    pub fn snapshot(&self) -> PipelineSnapshot {
        // One construction site for the wire format: the clone is what a
        // non-consuming capture costs anyway, and a field added to
        // `into_snapshot` can never be missed here.
        self.clone().into_snapshot()
    }

    /// Consuming form of [`SmarterYou::snapshot`]: moves the state out
    /// instead of deep-cloning it. This is the eviction hot path — the
    /// pipeline is being dropped anyway, so the detector forest, models,
    /// and ring buffers transfer into the snapshot without a copy.
    pub fn into_snapshot(self) -> PipelineSnapshot {
        let planned_window = self
            .scratch
            .planned_len()
            .map(|n| WindowSpec::new(n, self.cfg.sample_rate()));
        // Any outstanding deferred retrain persists as its trigger-time
        // request (a job id is meaningless outside its engine): restore
        // reverts to `Pending` and the owning engine resubmits. Fit caches
        // and cfg are dropped from the wire form — caches never change
        // model bits, and the request's cfg is the pipeline's own.
        let retrain_in_flight = match &self.retrain_state {
            RetrainState::Idle => None,
            RetrainState::Pending { request } | RetrainState::InFlight { request, .. } => {
                Some(crate::persist::PersistedRetrain::from_request(request))
            }
        };
        PipelineSnapshot {
            format: SNAPSHOT_FORMAT.to_string(),
            version: SNAPSHOT_VERSION,
            rng_state: self.rng.state(),
            cfg: self.cfg,
            detector: self.detector,
            authenticator: self.authenticator,
            response: self.response,
            tracker: self.tracker,
            buffers: self.buffers,
            recent: self.recent,
            events: self.events,
            event_capacity: self.event_capacity,
            day: self.day,
            planned_window,
            negative_epoch: self.negative_epoch,
            retrain_tails: self.retrain_tails,
            retrain_mode: self.retrain_mode,
            retrain_in_flight,
        }
    }

    /// Rebuilds a pipeline from a [`PipelineSnapshot`], reattaching the
    /// shared `server` handle (the one pipeline dependency that is
    /// fleet-shared rather than per-user). The FFT plan recorded in the
    /// snapshot's plan key is rebuilt eagerly, so the first post-restore
    /// window pays no planning cost.
    ///
    /// # Errors
    ///
    /// [`CoreError::Persist`] when the snapshot fails
    /// [`PipelineSnapshot::validate`], and [`CoreError::InvalidConfig`]
    /// when its captured configuration is out of range.
    pub fn restore(
        snapshot: PipelineSnapshot,
        server: Arc<dyn TrainingHandle>,
    ) -> Result<Self, CoreError> {
        snapshot.validate()?;
        snapshot.cfg.validate()?;
        let extractor = FeatureExtractor::paper_default(snapshot.cfg.sample_rate());
        let shared_extractor = *snapshot.detector.extractor() == extractor;
        let mut scratch = FeatureScratch::default();
        if let Some(spec) = snapshot.planned_window {
            scratch.prepare(spec.samples);
        }
        // An outstanding deferred retrain rehydrates as `Pending` with the
        // persisted trigger-time request (cold caches; the pipeline's own
        // cfg) — the owning engine resubmits it at the next tick boundary.
        let retrain_state = match snapshot.retrain_in_flight {
            Some(persisted) => RetrainState::Pending {
                request: persisted.into_request(snapshot.cfg.clone()),
            },
            None => RetrainState::Idle,
        };
        let mut restored = SmarterYou {
            cfg: snapshot.cfg,
            extractor,
            detector: snapshot.detector,
            server,
            authenticator: snapshot.authenticator,
            response: snapshot.response,
            tracker: snapshot.tracker,
            buffers: snapshot.buffers,
            recent: snapshot.recent,
            events: snapshot.events,
            event_capacity: snapshot.event_capacity,
            day: snapshot.day,
            rng: rand::rngs::StdRng::from_state(snapshot.rng_state),
            scratch,
            shared_extractor,
            negative_epoch: snapshot.negative_epoch,
            // Cold caches: the first post-restore retrain refactors once.
            fit_caches: Default::default(),
            // Tails are NOT cold: a slid factor differs in bits from a
            // fresh one, so restore bit-parity needs the persisted state.
            retrain_tails: snapshot.retrain_tails,
            ws_cache: RetrainWorkspaceCache::new(),
            retrain_mode: snapshot.retrain_mode,
            retrain_state,
        };
        // A legacy snapshot may carry an over-long event log from before
        // the ring bound existed; keep its most recent entries.
        restored.truncate_events();
        Ok(restored)
    }

    /// Feeds one captured window through the pipeline.
    ///
    /// During enrollment the window is buffered (and contributed,
    /// anonymized, to the training server's pool for *other* users' models).
    /// Once both context buffers reach `data_size/2`, the authenticator is
    /// trained and the system switches to continuous authentication.
    ///
    /// # Errors
    ///
    /// Propagates training failures at the enrollment→auth transition.
    pub fn process_window(
        &mut self,
        window: &DualDeviceWindow,
    ) -> Result<ProcessOutcome, CoreError> {
        // Route through the pipeline's own scratch. `take` swaps in an
        // empty default (a few pointer moves) so the borrow of the scratch
        // and of `self` don't overlap.
        let mut scratch = std::mem::take(&mut self.scratch);
        let out = self.process_window_with_scratch(window, &mut scratch);
        self.scratch = scratch;
        out
    }

    /// [`SmarterYou::process_window`] extracting through a caller-owned
    /// scratch instead of the pipeline's own. A fleet engine ticking
    /// thousands of pipelines passes one shared scratch so the FFT plan
    /// tables and transform buffers stay cache-hot across users, instead of
    /// touching a cold ~40 KB working set per pipeline. Extraction runs
    /// with the **scratch's** fast-path setting
    /// ([`FeatureScratch::set_fast_path`]); outcomes are bit-identical for
    /// any scratch with the same setting.
    ///
    /// # Errors
    ///
    /// Propagates training failures at the enrollment→auth transition.
    pub fn process_window_with_scratch(
        &mut self,
        window: &DualDeviceWindow,
        scratch: &mut FeatureScratch,
    ) -> Result<ProcessOutcome, CoreError> {
        let (context, features) = self.detect_and_extract(window, scratch);

        match self.phase() {
            SystemPhase::Enrollment => self.enroll_window(context, features),
            SystemPhase::ContinuousAuth => {
                let auth = self.authenticator.as_ref().expect("phase checked");
                let decision = auth.authenticate(context, &features);
                self.apply_decision(features, decision)
            }
        }
    }

    /// Feeds a whole slice of captured windows through the pipeline,
    /// producing exactly the outcomes sequential [`SmarterYou::process_window`]
    /// calls would (the batch-parity tests assert bit-equality).
    ///
    /// During continuous authentication the remaining windows are scored as
    /// one grouped matrix pass per context
    /// ([`Authenticator::authenticate_grouped`]) instead of per-row kernel
    /// evaluations; state transitions (response module, confidence tracker,
    /// retrain buffers) then replay in order. A mid-batch retrain or an
    /// enrollment→auth transition invalidates the scores of later windows,
    /// so scoring restarts from the first window after the model change.
    ///
    /// # Errors
    ///
    /// Propagates training failures, like [`SmarterYou::process_window`].
    pub fn process_batch(
        &mut self,
        windows: &[DualDeviceWindow],
    ) -> Result<Vec<ProcessOutcome>, CoreError> {
        let mut scratch = std::mem::take(&mut self.scratch);
        let out = self.process_batch_with_scratch(windows, &mut scratch);
        self.scratch = scratch;
        out
    }

    /// [`SmarterYou::process_batch`] extracting through a caller-owned
    /// scratch — the fleet-tick entry point (see
    /// [`SmarterYou::process_window_with_scratch`] for the sharing and
    /// fast-path semantics).
    ///
    /// # Errors
    ///
    /// Propagates training failures, like [`SmarterYou::process_window`].
    pub fn process_batch_with_scratch(
        &mut self,
        windows: &[DualDeviceWindow],
        scratch: &mut FeatureScratch,
    ) -> Result<Vec<ProcessOutcome>, CoreError> {
        let mut out = Vec::with_capacity(windows.len());
        let mut i = 0;
        while i < windows.len() {
            if self.phase() == SystemPhase::Enrollment {
                // Enrollment is inherently sequential (a window may finish
                // enrollment and train the first models).
                out.push(self.process_window_with_scratch(&windows[i], scratch)?);
                i += 1;
                continue;
            }
            // Detect + extract every remaining window once: contexts and
            // features are model-independent, so a mid-batch retrain only
            // invalidates the *scores*, not this work.
            let mut prepared: Vec<(UsageContext, Vec<f64>)> = windows[i..]
                .iter()
                .map(|w| self.detect_and_extract(w, scratch))
                .collect();
            let mut start = 0;
            while start < prepared.len() {
                // Batch-score everything not yet consumed under the current
                // models, then replay the state transitions in order.
                let decisions = self
                    .authenticator
                    .as_ref()
                    .expect("phase checked")
                    .authenticate_grouped(&prepared[start..]);
                for decision in decisions {
                    let features = std::mem::take(&mut prepared[start].1);
                    let outcome = self.apply_decision(features, decision)?;
                    start += 1;
                    i += 1;
                    let retrained = matches!(
                        outcome,
                        ProcessOutcome::Decision {
                            retrained: true,
                            ..
                        }
                    );
                    out.push(outcome);
                    if retrained && self.retrain_mode == RetrainMode::Inline {
                        // Model swapped: the remaining prepared windows are
                        // re-scored by the new model, exactly as sequential
                        // processing would score them. (A deferred trigger
                        // swaps nothing mid-batch — the old model keeps
                        // scoring until the engine applies the replacement
                        // at a tick boundary.)
                        break;
                    }
                }
            }
        }
        Ok(out)
    }

    /// Detects the context and extracts the authentication features of one
    /// window through the cached [`WindowFeatures`](crate::WindowFeatures)
    /// path: each device's
    /// magnitude streams, summaries, and planned spectra are computed once
    /// and serve both the detector and the authenticator.
    ///
    /// When the detector was trained with a different extractor than this
    /// pipeline's (possible via [`SmarterYou::new`]'s `detector` argument),
    /// the cache cannot be shared and the detector extracts its own
    /// features, exactly as the uncached path always did.
    fn detect_and_extract(
        &mut self,
        window: &DualDeviceWindow,
        scratch: &mut FeatureScratch,
    ) -> (UsageContext, Vec<f64>) {
        let features = self
            .extractor
            .window_features(window, self.cfg.device_set(), scratch);
        let context = if self.shared_extractor {
            self.detector
                .detect_from_features(features.context_features())
        } else {
            self.detector.detect(window)
        };
        (context, features.into_auth_features(self.cfg.device_set()))
    }

    /// Buffers one enrollment window and trains the first models when the
    /// buffers fill.
    fn enroll_window(
        &mut self,
        context: UsageContext,
        features: Vec<f64>,
    ) -> Result<ProcessOutcome, CoreError> {
        self.buffers[context.index()].push(features);
        let target = self.enrollment_target();
        let (st, mv) = (self.buffers[0].len(), self.buffers[1].len());
        let ready = match self.cfg.context_mode() {
            ContextMode::PerContext => st >= target && mv >= target,
            ContextMode::Unified => st + mv >= 2 * target,
        };
        if ready {
            self.train_from_buffers()?;
            self.push_event(SystemEvent::EnrollmentComplete { day: self.day });
        }
        Ok(ProcessOutcome::Enrolling {
            stationary: st,
            moving: mv,
        })
    }

    /// Applies one already-scored authentication decision: response module,
    /// retrain buffers, confidence tracker, events. Shared by the scalar
    /// and batch paths so their state machines cannot diverge.
    fn apply_decision(
        &mut self,
        features: Vec<f64>,
        decision: AuthDecision,
    ) -> Result<ProcessOutcome, CoreError> {
        let action = self.response.on_decision(decision.accepted);
        if action == ResponseAction::Lock
            && !matches!(self.events.last(), Some(SystemEvent::Locked { .. }))
        {
            self.push_event(SystemEvent::Locked { day: self.day });
        }
        let mut retrained = false;
        if decision.accepted {
            // Keep a bounded buffer of fresh behaviour per context.
            let cap = self.enrollment_target();
            let buf = &mut self.recent[decision.context.index()];
            buf.push(features);
            if buf.len() > cap {
                buf.remove(0);
            }
            if self.tracker.record(self.day, decision.confidence) {
                match self.retrain_mode {
                    RetrainMode::Inline => {
                        self.retrain()?;
                        retrained = true;
                        self.push_event(SystemEvent::Retrained { day: self.day });
                    }
                    RetrainMode::Deferred => {
                        if matches!(self.retrain_state, RetrainState::Idle) {
                            // Capture now, fit later: scoring continues on
                            // the old model. The tracker resets here (as
                            // inline would) so it stays in lockstep with
                            // the inline path; the `Retrained` event waits
                            // for the apply. The outcome flag marks the
                            // *trigger*, same window as inline.
                            let request = self.capture_retrain_request();
                            self.retrain_state = RetrainState::Pending { request };
                            self.tracker.mark_retrained();
                            retrained = true;
                        }
                        // A trigger with a retrain already outstanding is
                        // suppressed: the tracker was cleared at capture,
                        // so this only fires after another full period of
                        // low-confidence windows while the job is out.
                    }
                }
            }
        } else {
            // Rejected windows still inform the tracker (they reset
            // the low-confidence run, per §V-I).
            self.tracker.record(self.day, decision.confidence);
        }
        Ok(ProcessOutcome::Decision {
            decision,
            action,
            retrained,
        })
    }

    /// Trains the initial authenticator from the enrollment buffers.
    fn train_from_buffers(&mut self) -> Result<(), CoreError> {
        let positives = [self.buffers[0].clone(), self.buffers[1].clone()];
        let auth = self
            .server
            .train_authenticator(&positives, &self.cfg, &mut self.rng)?;
        // Seed the retraining buffers with the enrollment data.
        self.recent = positives;
        self.authenticator = Some(auth);
        Ok(())
    }

    /// The per-context enrollment buffers accumulated so far — the windows
    /// the owner contributed during [`SystemPhase::Enrollment`]. Batched
    /// enrollment harvests these from a template pipeline and hands them
    /// to [`SmarterYou::enroll_with`] on each user's own pipeline.
    pub fn enrollment_buffers(&self) -> &[Vec<Vec<f64>>; 2] {
        &self.buffers
    }

    /// The system configuration this pipeline runs under.
    pub fn config(&self) -> &SystemConfig {
        &self.cfg
    }

    /// Completes enrollment in one step against a prebuilt
    /// [`EnrollmentWorkspace`]: `buffers` become the pipeline's enrollment
    /// buffers and retrain seed, the authenticator is fitted off the
    /// workspace's shared negative block, and the workspace's epoch is
    /// adopted so later retrains stay pinned to the same frozen sample.
    ///
    /// Unlike the per-window path ([`SmarterYou::process_window`] during
    /// [`SystemPhase::Enrollment`]), this consumes **no pipeline
    /// randomness** — the negative sample was drawn once when the
    /// workspace was built — and its decisions agree with the sequential
    /// path to tight epsilon rather than bit-for-bit (see the
    /// `enroll_parity` suite).
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidConfig`] if the pipeline is already enrolled;
    /// training failures are propagated with the pipeline left in the
    /// enrollment phase.
    pub fn enroll_with(
        &mut self,
        ws: &EnrollmentWorkspace,
        buffers: [Vec<Vec<f64>>; 2],
    ) -> Result<(), CoreError> {
        if self.phase() != SystemPhase::Enrollment {
            return Err(CoreError::InvalidConfig(
                "enroll_with called on an already-enrolled pipeline".into(),
            ));
        }
        let auth = ws.train_authenticator(&buffers, &self.cfg, &mut self.fit_caches)?;
        self.recent = buffers.clone();
        self.buffers = buffers;
        self.authenticator = Some(auth);
        self.negative_epoch = Some(ws.epoch().clone());
        self.push_event(SystemEvent::EnrollmentComplete { day: self.day });
        Ok(())
    }

    /// Retrains from the most recent accepted windows (§V-I: "upload the
    /// legitimate user's latest authentication feature vectors") with
    /// epoch-stable negative sampling through the shared per-epoch
    /// workspace: the frozen sample in `negative_epoch` is reused while
    /// the server pool is unchanged, its negative-Gram block comes out of
    /// `ws_cache`, and the previous fit's positive-tail factor identity in
    /// `retrain_tails` lets a retrain whose buffer shifted by only a few
    /// windows slide the Cholesky factor instead of refactoring
    /// (observable via [`SmarterYou::fit_cache_detail`]). Deferred mode
    /// runs the *same* handle entry point, which is what keeps
    /// deferred-sync retrains bit-identical to inline ones.
    fn retrain(&mut self) -> Result<(), CoreError> {
        let positives = [self.recent[0].clone(), self.recent[1].clone()];
        let auth = self.server.train_authenticator_epoch_shared(
            &positives,
            &self.cfg,
            &mut self.rng,
            &mut self.negative_epoch,
            &mut self.fit_caches,
            &mut self.retrain_tails,
            &self.ws_cache,
        )?;
        self.authenticator = Some(auth);
        self.tracker.mark_retrained();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context_detect::ContextDetectorConfig;
    use crate::server::TrainingServer;
    use parking_lot::Mutex;
    use rand::SeedableRng;
    use smarteryou_sensors::{
        Population, RawContext, TraceGenerator, UsageContext, UserProfile, WindowSpec,
    };

    /// Small end-to-end fixture: 2 s windows, small data size, 4 users'
    /// negatives in the server pool.
    struct Fixture {
        cfg: SystemConfig,
        detector: ContextDetector,
        server: Arc<Mutex<TrainingServer>>,
        spec: WindowSpec,
        owner: UserProfile,
        impostor: UserProfile,
    }

    fn fixture() -> Fixture {
        let cfg = SystemConfig::paper_default()
            .with_window_secs(2.0)
            .with_data_size(40);
        let spec = WindowSpec::from_seconds(2.0, 50.0);
        let population = Population::generate(6, 17);
        let extractor = FeatureExtractor::paper_default(50.0);

        // Train a context detector on users 2..6 (user-agnostic wrt 0/1).
        let mut feats = Vec::new();
        let mut labels = Vec::new();
        for user in &population.users()[2..] {
            let mut gen = TraceGenerator::new(user.clone(), 23);
            for ctx in [RawContext::SittingStanding, RawContext::MovingAround] {
                for w in gen.generate_windows(ctx, spec, 10) {
                    feats.push(extractor.context_features(&w));
                    labels.push(ctx.coarse());
                }
            }
        }
        let mut rng = StdRng::seed_from_u64(3);
        let detector = ContextDetector::train(
            extractor.clone(),
            &feats,
            &labels,
            ContextDetectorConfig {
                num_trees: 20,
                max_depth: 8,
            },
            &mut rng,
        )
        .unwrap();

        // Fill the server pool with users 2..6 as anonymized negatives.
        let mut server = TrainingServer::new();
        for user in &population.users()[2..] {
            let mut gen = TraceGenerator::new(user.clone(), 29);
            for (raw, ctx) in [
                (RawContext::SittingStanding, UsageContext::Stationary),
                (RawContext::MovingAround, UsageContext::Moving),
            ] {
                let f: Vec<Vec<f64>> = gen
                    .generate_windows(raw, spec, 30)
                    .iter()
                    .map(|w| extractor.auth_features(w, cfg.device_set()))
                    .collect();
                server.contribute(ctx, f);
            }
        }

        Fixture {
            cfg,
            detector,
            server: Arc::new(Mutex::new(server)),
            spec,
            owner: population.users()[0].clone(),
            impostor: population.users()[1].clone(),
        }
    }

    fn enroll(sys: &mut SmarterYou, owner: &UserProfile, spec: WindowSpec) {
        let mut gen = TraceGenerator::new(owner.clone(), 31);
        let mut guard = 0;
        while sys.phase() == SystemPhase::Enrollment && guard < 500 {
            guard += 1;
            let ctx = if guard % 2 == 0 {
                RawContext::SittingStanding
            } else {
                RawContext::MovingAround
            };
            for w in gen.generate_windows(ctx, spec, 5) {
                sys.process_window(&w).unwrap();
            }
        }
        assert_eq!(sys.phase(), SystemPhase::ContinuousAuth, "enrollment stuck");
    }

    #[test]
    fn enrollment_transitions_to_continuous_auth() {
        let f = fixture();
        let mut sys =
            SmarterYou::new(f.cfg.clone(), f.detector.clone(), f.server.clone(), 1).unwrap();
        assert_eq!(sys.phase(), SystemPhase::Enrollment);
        enroll(&mut sys, &f.owner, f.spec);
        assert!(matches!(
            sys.events()[0],
            SystemEvent::EnrollmentComplete { .. }
        ));
        assert!(sys.authenticator().is_some());
    }

    #[test]
    fn owner_mostly_accepted_impostor_mostly_rejected() {
        let f = fixture();
        let mut sys = SmarterYou::new(f.cfg.clone(), f.detector.clone(), f.server.clone(), 2)
            .unwrap()
            .with_response_policy(ResponsePolicy {
                rejects_to_lock: usize::MAX,
            });
        enroll(&mut sys, &f.owner, f.spec);

        let count_accepts = |sys: &mut SmarterYou, user: &UserProfile, seed: u64| {
            let mut gen = TraceGenerator::new(user.clone(), seed);
            let mut accepted = 0;
            let mut total = 0;
            for ctx in [RawContext::SittingStanding, RawContext::MovingAround] {
                for w in gen.generate_windows(ctx, f.spec, 15) {
                    if let ProcessOutcome::Decision { decision, .. } =
                        sys.process_window(&w).unwrap()
                    {
                        total += 1;
                        if decision.accepted {
                            accepted += 1;
                        }
                    }
                }
            }
            accepted as f64 / total as f64
        };
        let owner_rate = count_accepts(&mut sys, &f.owner, 41);
        let impostor_rate = count_accepts(&mut sys, &f.impostor, 43);
        assert!(owner_rate > 0.7, "owner accept rate {owner_rate}");
        assert!(impostor_rate < 0.3, "impostor accept rate {impostor_rate}");
    }

    /// A retrain policy that fires as soon as the rolling window fills with
    /// accepted (non-negative, below-huge-threshold) scores — used to force
    /// retrains deterministically in tests.
    fn eager_retrain(period: usize) -> RetrainPolicy {
        RetrainPolicy {
            threshold: 1e9,
            period,
            max_reject_fraction: 1.0,
        }
    }

    #[test]
    fn retrain_is_deterministic_per_seed() {
        // Guard for the future epoch-stable negative-sampling work: with a
        // fixed RNG seed, `SmarterYou::retrain` must reproduce identical
        // model parameters run after run — the negative sample drawn from
        // the server pool is a pure function of the seeded RNG stream.
        let f = fixture();
        let run = || {
            let mut sys = SmarterYou::new(f.cfg.clone(), f.detector.clone(), f.server.clone(), 77)
                .unwrap()
                .with_response_policy(ResponsePolicy {
                    rejects_to_lock: usize::MAX,
                })
                .with_retrain_policy(eager_retrain(5));
            enroll(&mut sys, &f.owner, f.spec);
            let mut gen = TraceGenerator::new(f.owner.clone(), 83);
            let mut retrains = 0;
            for ctx in [RawContext::SittingStanding, RawContext::MovingAround] {
                for w in gen.generate_windows(ctx, f.spec, 10) {
                    if let ProcessOutcome::Decision {
                        retrained: true, ..
                    } = sys.process_window(&w).unwrap()
                    {
                        retrains += 1;
                    }
                }
            }
            (sys, retrains)
        };
        let (a, retrains_a) = run();
        let (b, retrains_b) = run();
        assert!(retrains_a > 0, "test must exercise the retrain path");
        assert_eq!(retrains_a, retrains_b);
        // Identical weights, field for field (KrrModel derives PartialEq on
        // its raw parameters), identical events and tracker history.
        assert_eq!(a.authenticator(), b.authenticator());
        assert_eq!(a.events(), b.events());
        assert_eq!(a.confidence_tracker(), b.confidence_tracker());
        // And a different seed draws a different negative sample.
        let mut c = SmarterYou::new(f.cfg.clone(), f.detector.clone(), f.server.clone(), 78)
            .unwrap()
            .with_response_policy(ResponsePolicy {
                rejects_to_lock: usize::MAX,
            })
            .with_retrain_policy(eager_retrain(5));
        enroll(&mut c, &f.owner, f.spec);
        assert_ne!(a.authenticator(), c.authenticator());
    }

    #[test]
    fn one_context_usage_streak_hits_the_krr_fit_cache() {
        // After the first retrain pins the negative epoch, a streak of
        // stationary-only windows leaves the *moving* context's recent
        // buffer untouched — so the next retrain presents the moving model
        // with an identical design matrix and must reuse the cached
        // Cholesky factorisation (ROADMAP "KRR fit cache" item).
        let f = fixture();
        let mut sys = SmarterYou::new(f.cfg.clone(), f.detector.clone(), f.server.clone(), 21)
            .unwrap()
            .with_response_policy(ResponsePolicy {
                rejects_to_lock: usize::MAX,
            })
            .with_retrain_policy(eager_retrain(4));
        enroll(&mut sys, &f.owner, f.spec);
        assert_eq!(sys.fit_cache_stats(), (0, 0), "caches start cold");

        let mut gen = TraceGenerator::new(f.owner.clone(), 91);
        let mut retrains = 0;
        for w in gen.generate_windows(RawContext::SittingStanding, f.spec, 30) {
            if let ProcessOutcome::Decision {
                retrained: true, ..
            } = sys.process_window(&w).unwrap()
            {
                retrains += 1;
            }
        }
        assert!(retrains >= 2, "streak produced only {retrains} retrains");
        let (hits, misses) = sys.fit_cache_stats();
        assert!(
            hits > 0,
            "label-stable refits never hit the fit cache ({misses} misses)"
        );
    }

    #[test]
    fn snapshot_restore_roundtrips_mid_stream() {
        let f = fixture();
        let mut sys = SmarterYou::new(f.cfg.clone(), f.detector.clone(), f.server.clone(), 5)
            .unwrap()
            .with_response_policy(ResponsePolicy {
                rejects_to_lock: usize::MAX,
            })
            .with_retrain_policy(eager_retrain(4));
        enroll(&mut sys, &f.owner, f.spec);
        let mut gen = TraceGenerator::new(f.owner.clone(), 59);
        for w in gen.generate_windows(RawContext::SittingStanding, f.spec, 6) {
            sys.process_window(&w).unwrap();
        }

        // Round-trip through the JSON wire form, then continue both the
        // original and the restored pipeline over the same future windows.
        let snap = sys.snapshot();
        let wire = snap.to_json();
        let back = crate::persist::PipelineSnapshot::from_json(&wire).unwrap();
        assert_eq!(snap, back);
        let mut restored = SmarterYou::restore(back, f.server.clone()).unwrap();
        assert_eq!(restored.phase(), sys.phase());
        assert_eq!(restored.events(), sys.events());

        for ctx in [RawContext::MovingAround, RawContext::SittingStanding] {
            for w in gen.generate_windows(ctx, f.spec, 8) {
                let expected = sys.process_window(&w).unwrap();
                let got = restored.process_window(&w).unwrap();
                match (expected, got) {
                    (
                        ProcessOutcome::Decision {
                            decision: d0,
                            action: a0,
                            retrained: r0,
                        },
                        ProcessOutcome::Decision {
                            decision: d1,
                            action: a1,
                            retrained: r1,
                        },
                    ) => {
                        assert_eq!(d0.confidence.to_bits(), d1.confidence.to_bits());
                        assert_eq!(
                            (d0.accepted, d0.context, a0, r0),
                            (d1.accepted, d1.context, a1, r1)
                        );
                    }
                    (e, g) => assert_eq!(e, g),
                }
            }
        }
        // Retrains consumed RNG words on both sides; states stay in lockstep.
        assert_eq!(sys.snapshot(), restored.snapshot());
    }

    #[test]
    fn impostor_gets_locked_quickly() {
        let f = fixture();
        let mut sys =
            SmarterYou::new(f.cfg.clone(), f.detector.clone(), f.server.clone(), 3).unwrap();
        enroll(&mut sys, &f.owner, f.spec);
        let mut gen = TraceGenerator::new(f.impostor.clone(), 47);
        let mut windows_until_lock = 0;
        'outer: for _ in 0..10 {
            for w in gen.generate_windows(RawContext::SittingStanding, f.spec, 5) {
                windows_until_lock += 1;
                sys.process_window(&w).unwrap();
                if sys.is_locked() {
                    break 'outer;
                }
            }
        }
        assert!(sys.is_locked(), "impostor never locked");
        assert!(
            windows_until_lock <= 10,
            "took {windows_until_lock} windows"
        );
        // Explicit auth restores access.
        sys.unlock_with_explicit_auth();
        assert!(!sys.is_locked());
    }
}
