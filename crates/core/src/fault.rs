//! Kill-point fault injection for the crash-safety test matrix.
//!
//! A [`FaultPlan`] names one labeled point inside the persistence protocol
//! (see [`points`]) and fires — aborting or panicking the process — the
//! n-th time execution reaches it. [`FileSnapshotStore`] accepts a plan at
//! construction and calls [`FaultPlan::hit`] at every labeled point of its
//! save/acquire/remove protocols; harness-level code (a migration driver)
//! can call `hit` directly for points the store cannot see.
//!
//! Two modes:
//!
//! * [`FaultMode::Abort`] — `std::process::abort()`. No unwinding, no
//!   destructors: the process dies exactly as a `kill -9` would, leaving
//!   lock files held and journals unresolved. This is the crash-faithful
//!   mode the child-process kill-point matrix uses.
//! * [`FaultMode::Panic`] — a plain `panic!`, catchable with
//!   `catch_unwind`. Unwinding runs destructors (the per-user lock guard
//!   releases), so this mode exercises journal recovery *without* lock
//!   stealing — right for in-process unit tests of journal states.
//!
//! Plans are cheap, lock-free (`AtomicU32` hit counter), and deliberately
//! single-shot in shape: one label, one trigger ordinal. A test matrix
//! wanting N kill points runs N processes, which is also what keeps each
//! crash scenario independent.
//!
//! [`FileSnapshotStore`]: crate::persist::FileSnapshotStore

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

/// Labeled kill points in the persistence and migration protocols. The
/// label strings are stable — they are test-matrix and CI vocabulary, and
/// travel through the [`FaultPlan::from_env`] environment variable.
pub mod points {
    /// Entry to a (fenced or unfenced) save, before the per-user lock or
    /// the fence check: nothing written yet.
    pub const SAVE_ENTER: &str = "save.enter";
    /// Save intent journaled (lock held); the snapshot data not yet
    /// written. Recovery must roll back.
    pub const SAVE_INTENT: &str = "save.intent";
    /// Snapshot data written; the commit record not yet journaled.
    /// Recovery must detect the landed data and roll forward.
    pub const SAVE_DATA: &str = "save.data";
    /// Commit record journaled but the journal file not yet removed.
    /// Recovery must treat the save as complete.
    pub const SAVE_COMMIT: &str = "save.commit";
    /// Entry to an epoch acquire, before the lock or the CAS check.
    pub const ACQUIRE_ENTER: &str = "acquire.enter";
    /// Acquire intent journaled; the epoch sidecar not yet bumped.
    pub const ACQUIRE_INTENT: &str = "acquire.intent";
    /// Epoch sidecar bumped; the commit record not yet journaled.
    pub const ACQUIRE_EPOCH: &str = "acquire.epoch";
    /// Commit record journaled but the journal file not yet removed.
    pub const ACQUIRE_COMMIT: &str = "acquire.commit";
    /// Entry to a remove, before the lock: nothing deleted yet.
    pub const REMOVE_ENTER: &str = "remove.enter";
    /// Snapshot file deleted (epoch tombstone retained); the commit record
    /// not yet journaled.
    pub const REMOVE_DATA: &str = "remove.data";
    /// Harness-level point: a migration source has released (final fenced
    /// save done) but the target has not yet claimed. Fired by migration
    /// drivers via [`FaultPlan::hit`](super::FaultPlan::hit), not by the
    /// store.
    pub const MIGRATE_AFTER_RELEASE: &str = "migrate.after-release";

    /// Every store-internal point, in protocol order — the kill-point
    /// matrix iterates this.
    pub const STORE_POINTS: &[&str] = &[
        SAVE_ENTER,
        SAVE_INTENT,
        SAVE_DATA,
        SAVE_COMMIT,
        ACQUIRE_ENTER,
        ACQUIRE_INTENT,
        ACQUIRE_EPOCH,
        ACQUIRE_COMMIT,
        REMOVE_ENTER,
        REMOVE_DATA,
    ];

    /// All labeled points, store-internal and harness-level.
    pub const ALL: &[&str] = &[
        SAVE_ENTER,
        SAVE_INTENT,
        SAVE_DATA,
        SAVE_COMMIT,
        ACQUIRE_ENTER,
        ACQUIRE_INTENT,
        ACQUIRE_EPOCH,
        ACQUIRE_COMMIT,
        REMOVE_ENTER,
        REMOVE_DATA,
        MIGRATE_AFTER_RELEASE,
    ];
}

/// Environment variable naming the kill point for [`FaultPlan::from_env`]:
/// `"save.data"` (fire on the first hit) or `"save.data@3"` (fire on the
/// third).
pub const CRASH_POINT_ENV: &str = "SMARTERYOU_CRASH_POINT";

/// How a triggered fault takes the process down.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultMode {
    /// `std::process::abort()` — crash-faithful, no unwinding.
    Abort,
    /// `panic!` — catchable, destructors run.
    Panic,
}

/// One scheduled crash: fire `mode` the `trigger_at`-th time execution
/// reaches the labeled `point`. Hits of other labels are counted but never
/// fire.
#[derive(Debug)]
pub struct FaultPlan {
    point: String,
    trigger_at: u32,
    mode: FaultMode,
    hits: AtomicU32,
}

impl FaultPlan {
    /// A plan that aborts the process on the `trigger_at`-th (1-based) hit
    /// of `point`.
    pub fn abort_at(point: &str, trigger_at: u32) -> Arc<Self> {
        Arc::new(FaultPlan {
            point: point.to_string(),
            trigger_at: trigger_at.max(1),
            mode: FaultMode::Abort,
            hits: AtomicU32::new(0),
        })
    }

    /// A plan that panics on the `trigger_at`-th (1-based) hit of `point`.
    pub fn panic_at(point: &str, trigger_at: u32) -> Arc<Self> {
        Arc::new(FaultPlan {
            point: point.to_string(),
            trigger_at: trigger_at.max(1),
            mode: FaultMode::Panic,
            hits: AtomicU32::new(0),
        })
    }

    /// Builds an aborting plan from [`CRASH_POINT_ENV`] (`"label"` or
    /// `"label@n"`), or `None` when the variable is unset. Child processes
    /// of the kill-point matrix and the two-process demo arm themselves
    /// through this.
    pub fn from_env() -> Option<Arc<Self>> {
        let spec = std::env::var(CRASH_POINT_ENV).ok()?;
        let spec = spec.trim();
        if spec.is_empty() {
            return None;
        }
        let (point, ordinal) = match spec.split_once('@') {
            Some((p, n)) => (p, n.parse::<u32>().unwrap_or(1)),
            None => (spec, 1),
        };
        Some(FaultPlan::abort_at(point, ordinal))
    }

    /// The labeled point this plan fires at.
    pub fn point(&self) -> &str {
        &self.point
    }

    /// How many times the plan's own point has been reached so far.
    pub fn hits(&self) -> u32 {
        self.hits.load(Ordering::SeqCst)
    }

    /// Registers that execution reached `label`. When `label` matches the
    /// plan's point and this is the `trigger_at`-th match, the fault fires:
    /// [`FaultMode::Abort`] never returns, [`FaultMode::Panic`] unwinds.
    pub fn hit(&self, label: &str) {
        if label != self.point {
            return;
        }
        let n = self.hits.fetch_add(1, Ordering::SeqCst) + 1;
        if n != self.trigger_at {
            return;
        }
        match self.mode {
            FaultMode::Abort => {
                // Flush an operator-visible breadcrumb before dying; the
                // abort itself flushes nothing.
                eprintln!("fault injected: abort at {label} (hit {n})");
                std::process::abort();
            }
            FaultMode::Panic => panic!("fault injected: panic at {label} (hit {n})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn panic_plan_fires_on_the_right_ordinal() {
        let plan = FaultPlan::panic_at(points::SAVE_DATA, 2);
        plan.hit(points::SAVE_INTENT); // other labels never fire
        plan.hit(points::SAVE_DATA); // first hit: below the ordinal
        assert_eq!(plan.hits(), 1);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            plan.hit(points::SAVE_DATA);
        }));
        assert!(result.is_err(), "second hit must fire");
        assert_eq!(plan.hits(), 2);
        // Past the trigger the plan is spent: further hits are counted but
        // never fire again.
        plan.hit(points::SAVE_DATA);
        assert_eq!(plan.hits(), 3);
    }

    #[test]
    fn env_spec_parses_label_and_ordinal() {
        // Constructed directly (not via the process environment — tests
        // share a process) to pin the `label@n` split.
        let (point, ordinal) = match "save.data@3".split_once('@') {
            Some((p, n)) => (p, n.parse::<u32>().unwrap_or(1)),
            None => ("save.data", 1),
        };
        assert_eq!((point, ordinal), ("save.data", 3));
        let plan = FaultPlan::abort_at(point, ordinal);
        assert_eq!(plan.point(), points::SAVE_DATA);
    }
}
