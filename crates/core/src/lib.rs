//! # SmarterYou core
//!
//! The primary contribution of *“Implicit Smartphone User Authentication
//! with Sensors and Contextual Machine Learning”* (Lee & Lee, DSN 2017):
//! an implicit, continuous re-authentication system that
//!
//! 1. extracts time- and frequency-domain features from smartphone and
//!    smartwatch accelerometer/gyroscope windows ([`FeatureExtractor`],
//!    Eqs. 1–4),
//! 2. detects the coarse usage context with a user-agnostic random forest
//!    ([`ContextDetector`], §V-E),
//! 3. authenticates each window with a per-context kernel ridge regression
//!    model trained by a cloud server against an anonymized population pool
//!    ([`Authenticator`], [`TrainingServer`]),
//! 4. responds to rejections ([`ResponseModule`]) and retrains
//!    automatically on behavioural drift ([`ConfidenceTracker`], §V-I).
//!
//! [`SmarterYou`] ties these together into the deployable on-device runtime
//! of Figure 1, and [`experiment`] hosts the harness that regenerates every
//! table and figure of §V. At fleet scale, [`engine::FleetEngine`] scores
//! many users per tick and parks idle pipelines through the versioned
//! snapshot/restore format in [`persist`].
//!
//! # Example
//!
//! See `examples/quickstart.rs` at the workspace root for an end-to-end
//! enrollment + continuous-authentication session; unit-level examples live
//! on the individual types.

mod auth;
mod config;
mod context_detect;
pub mod engine;
mod error;
pub mod experiment;
pub mod fault;
mod features;
pub mod parallel;
pub mod persist;
mod pipeline;
mod power;
mod response;
mod retrain;
pub mod selection;
mod server;
mod window_features;

pub use auth::{AuthDecision, AuthModel, Authenticator};
pub use config::{ContextMode, SystemConfig};
pub use context_detect::{ContextDetector, ContextDetectorConfig};
pub use engine::{
    BackpressurePolicy, EnrollmentEntry, FleetEngine, IngestQueue, IngestRouter, RejectedWindow,
    TickReport, TrainingService, UserOutcomes, WindowQueue,
};
pub use error::{CoreError, IngestError};
pub use fault::{FaultMode, FaultPlan, CRASH_POINT_ENV};
pub use features::{DeviceSet, FeatureExtractor, FeatureKind, FeatureSet};
pub use persist::{
    FileSnapshotStore, JournalResolution, MemorySnapshotStore, PersistError, PipelineSnapshot,
    RecoveryReport, SharedSnapshotStore, SnapshotStore, SNAPSHOT_FORMAT, SNAPSHOT_VERSION,
};
pub use pipeline::{
    ProcessOutcome, RetrainMode, SmarterYou, SystemEvent, SystemPhase, DEFAULT_EVENT_CAPACITY,
};
pub use power::{BatteryRow, OverheadReport};
pub use response::{ResponseAction, ResponseModule, ResponsePolicy};
pub use retrain::{ConfidenceTracker, RetrainPolicy};
pub use server::{
    EnrollmentWorkspace, NegativeEpoch, RetrainWorkspaceCache, TrainingHandle, TrainingServer,
};
pub use window_features::{FeatureScratch, WindowFeatures};
