//! Order-preserving parallel map utilities shared by the experiment harness
//! and the fleet-scoring [`engine`](crate::engine).
//!
//! Built on `std::thread::scope`, so borrowed inputs work without `Arc` and
//! a panicking worker propagates to the caller. Work is split into one
//! contiguous chunk per thread, which preserves output order by
//! construction and keeps per-item overhead at a single index computation.
//!
//! # Nesting
//!
//! Calls are **nesting-aware** through a thread-local *thread budget*: a
//! top-level map may use up to `available_parallelism` threads, and each
//! worker it spawns inherits an equal share of that budget for any maps it
//! runs in turn — so total concurrency stays ≈ the core count however
//! deeply maps nest. The sharded fleet relies on this: a
//! [`ShardedFleet::tick`](crate::engine::shard::ShardedFleet::tick) maps
//! over its shards in parallel and each shard's engine maps over its
//! resident pipelines; on a 16-core box a 4-shard tick runs 4 shard
//! workers × 4 pipeline threads each instead of either 4×16
//! oversubscription or 4×1 idle cores. The ordering guarantee is identical
//! at every depth.

/// Order-preserving parallel map over a slice.
///
/// Uses up to `available_parallelism` threads (falling back to 4 when the
/// parallelism probe fails; bounded by the inherited budget when nested —
/// see the module docs) and degrades to a plain sequential map for
/// single-item or single-thread workloads, so callers can use it
/// unconditionally.
///
/// # Panics
///
/// Propagates panics from `f`.
pub fn parallel_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let budget = thread_budget();
    let threads = budget.min(items.len().max(1));
    if threads <= 1 {
        return items.iter().map(&f).collect();
    }
    let child_budget = (budget / threads).max(1);
    let chunk = items.len().div_ceil(threads);
    let f = &f;
    std::thread::scope(|s| {
        let handles: Vec<_> = items
            .chunks(chunk)
            .map(|c| {
                s.spawn(move || in_worker(child_budget, || c.iter().map(f).collect::<Vec<R>>()))
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("parallel_map worker panicked"))
            .collect()
    })
}

/// Order-preserving parallel map over a mutable slice: each item is visited
/// exactly once with exclusive access, and the per-item results come back in
/// input order. This is the fleet engine's scoring primitive — one stateful
/// per-user pipeline per item, advanced concurrently.
///
/// # Panics
///
/// Propagates panics from `f`.
pub fn parallel_map_mut<T, R, F>(items: &mut [T], f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(&mut T) -> R + Sync,
{
    let budget = thread_budget();
    let threads = budget.min(items.len().max(1));
    if threads <= 1 {
        return items.iter_mut().map(&f).collect();
    }
    let child_budget = (budget / threads).max(1);
    let chunk = items.len().div_ceil(threads);
    let f = &f;
    std::thread::scope(|s| {
        let handles: Vec<_> = items
            .chunks_mut(chunk)
            .map(|c| {
                s.spawn(move || in_worker(child_budget, || c.iter_mut().map(f).collect::<Vec<R>>()))
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("parallel_map_mut worker panicked"))
            .collect()
    })
}

/// Job states for [`CancelToken`]: the token starts `PENDING` and makes
/// exactly one transition — to `CANCELED` (the canceller won; the job's
/// result must never be delivered) or to `COMMITTED` (the worker won; the
/// result is delivered and cancellation can no longer retract it).
const PENDING: u8 = 0;
const CANCELED: u8 = 1;
const COMMITTED: u8 = 2;

/// A shared cancellation flag with *commit* semantics: the race between
/// "cancel this job" and "deliver this job's result" is decided by a single
/// compare-and-swap, so a canceled job can **never** deliver a result.
///
/// Lifecycle: the token starts pending. [`CancelToken::cancel`] moves it to
/// canceled iff it is still pending; a worker calls
/// [`CancelToken::try_commit`] immediately before delivering its result and
/// delivers only if the commit won. Exactly one of the two transitions ever
/// succeeds.
///
/// Clones share state — hand one end to the worker and keep the other.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    state: std::sync::Arc<std::sync::atomic::AtomicU8>,
}

impl CancelToken {
    /// A fresh, pending token.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests cancellation. Returns `true` iff this call won the race —
    /// the job was still pending and will never deliver a result. Returns
    /// `false` if the job already committed (its result stands) or was
    /// already canceled.
    pub fn cancel(&self) -> bool {
        self.state
            .compare_exchange(
                PENDING,
                CANCELED,
                std::sync::atomic::Ordering::AcqRel,
                std::sync::atomic::Ordering::Acquire,
            )
            .is_ok()
    }

    /// Claims the right to deliver the job's result. Returns `true` iff the
    /// job was still pending; after a `true` return, [`CancelToken::cancel`]
    /// can no longer retract the result. Workers call this immediately
    /// before delivery and drop the result on `false`.
    pub fn try_commit(&self) -> bool {
        self.state
            .compare_exchange(
                PENDING,
                COMMITTED,
                std::sync::atomic::Ordering::AcqRel,
                std::sync::atomic::Ordering::Acquire,
            )
            .is_ok()
    }

    /// Whether cancellation won. Long-running jobs poll this to bail out
    /// early; `false` means pending *or* committed.
    pub fn is_canceled(&self) -> bool {
        self.state.load(std::sync::atomic::Ordering::Acquire) == CANCELED
    }

    /// Whether the job committed its result.
    pub fn is_committed(&self) -> bool {
        self.state.load(std::sync::atomic::Ordering::Acquire) == COMMITTED
    }
}

/// A join handle whose job can be abandoned: [`CancelableJoinHandle::join`]
/// returns `None` iff the job was canceled before it committed, and
/// dropping the handle cancels the job (best-effort — a job that already
/// committed keeps its side effects, but its result is discarded either
/// way).
///
/// Built from [`spawn_cancelable`] / [`spawn_cancelable_with_token`].
#[derive(Debug)]
pub struct CancelableJoinHandle<T> {
    token: CancelToken,
    handle: Option<std::thread::JoinHandle<Option<T>>>,
}

impl<T> CancelableJoinHandle<T> {
    /// A clone of the job's token, e.g. to cancel from another owner.
    #[must_use]
    pub fn token(&self) -> CancelToken {
        self.token.clone()
    }

    /// Requests cancellation; see [`CancelToken::cancel`].
    pub fn cancel(&self) -> bool {
        self.token.cancel()
    }

    /// Whether cancellation won the race.
    pub fn is_canceled(&self) -> bool {
        self.token.is_canceled()
    }

    /// Waits for the worker and returns its result, or `None` if the job
    /// was canceled before it committed.
    ///
    /// # Panics
    ///
    /// Propagates a panic from the worker closure.
    pub fn join(mut self) -> Option<T> {
        let handle = self.handle.take().expect("join handle present until join");
        handle.join().expect("cancelable worker panicked")
    }
}

impl<T> Drop for CancelableJoinHandle<T> {
    fn drop(&mut self) {
        // Cancel-on-drop: an abandoned handle must not leave a job racing
        // to deliver into nowhere. The thread itself is detached — it
        // observes the canceled token, skips delivery, and exits.
        self.token.cancel();
    }
}

/// Spawns `f` on its own thread under a fresh [`CancelToken`]. The closure
/// receives the token so it can poll [`CancelToken::is_canceled`] at its own
/// granularity; its return value is delivered only if the job commits.
pub fn spawn_cancelable<T, F>(f: F) -> CancelableJoinHandle<T>
where
    T: Send + 'static,
    F: FnOnce(&CancelToken) -> T + Send + 'static,
{
    spawn_cancelable_with_token(CancelToken::new(), f)
}

/// Like [`spawn_cancelable`], but under a caller-supplied token — cancel the
/// token *before* calling this and `f` never runs at all (cancel-before-
/// start).
pub fn spawn_cancelable_with_token<T, F>(token: CancelToken, f: F) -> CancelableJoinHandle<T>
where
    T: Send + 'static,
    F: FnOnce(&CancelToken) -> T + Send + 'static,
{
    let worker_token = token.clone();
    let handle = std::thread::spawn(move || {
        if worker_token.is_canceled() {
            return None;
        }
        let result = f(&worker_token);
        if worker_token.try_commit() {
            Some(result)
        } else {
            None
        }
    });
    CancelableJoinHandle {
        token,
        handle: Some(handle),
    }
}

thread_local! {
    /// The nested-map thread budget for the current thread: `None` at top
    /// level (use the machine's parallelism), `Some(n)` inside a map
    /// worker (this thread's share of its parent's budget).
    static THREAD_BUDGET: std::cell::Cell<Option<usize>> = const { std::cell::Cell::new(None) };
}

/// Threads the current context may use for a map: the inherited worker
/// share, or the machine parallelism at top level.
fn thread_budget() -> usize {
    THREAD_BUDGET.with(|b| b.get()).unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
    })
}

/// Runs `work` with the current thread's budget set to `budget`. Worker
/// threads are fresh per scope, but save/restore anyway so the behaviour
/// does not depend on that detail.
fn in_worker<R>(budget: usize, work: impl FnOnce() -> R) -> R {
    let previous = THREAD_BUDGET.with(|b| b.replace(Some(budget)));
    let result = work();
    THREAD_BUDGET.with(|b| b.set(previous));
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_map_preserves_order() {
        let items: Vec<u64> = (0..100).collect();
        let out = parallel_map(&items, |&x| x * 2);
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_map_handles_small_inputs() {
        assert_eq!(parallel_map(&[1], |&x: &i32| x + 1), vec![2]);
        let empty: Vec<i32> = Vec::new();
        assert!(parallel_map(&empty, |&x: &i32| x).is_empty());
    }

    #[test]
    fn parallel_map_mut_mutates_every_item_once() {
        let mut items: Vec<u64> = (0..257).collect();
        let out = parallel_map_mut(&mut items, |x| {
            *x += 1;
            *x
        });
        assert_eq!(items, (1..258).collect::<Vec<_>>());
        assert_eq!(out, items);
    }

    #[test]
    fn parallel_map_mut_handles_small_inputs() {
        let mut empty: Vec<i32> = Vec::new();
        assert!(parallel_map_mut(&mut empty, |x| *x).is_empty());
        let mut one = vec![7];
        assert_eq!(parallel_map_mut(&mut one, |x| *x * 3), vec![21]);
    }

    #[test]
    fn cancel_before_start_never_runs_the_job() {
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::sync::Arc;

        let token = CancelToken::new();
        assert!(token.cancel(), "first cancel wins");
        assert!(!token.cancel(), "second cancel is a no-op");
        let ran = Arc::new(AtomicBool::new(false));
        let witness = ran.clone();
        let handle = spawn_cancelable_with_token(token, move |_| {
            witness.store(true, Ordering::SeqCst);
            42
        });
        assert_eq!(handle.join(), None);
        assert!(!ran.load(Ordering::SeqCst), "canceled job must never run");
    }

    #[test]
    fn cancel_mid_run_discards_the_result() {
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::sync::Arc;

        let started = Arc::new(AtomicBool::new(false));
        let witness = started.clone();
        let handle = spawn_cancelable(move |token| {
            witness.store(true, Ordering::SeqCst);
            // Park until the canceller acts, then try to deliver anyway —
            // the commit CAS must lose.
            while !token.is_canceled() {
                std::thread::yield_now();
            }
            7
        });
        while !started.load(Ordering::SeqCst) {
            std::thread::yield_now();
        }
        assert!(handle.cancel(), "cancel races no committer here");
        assert!(handle.is_canceled());
        assert_eq!(handle.join(), None, "canceled job delivered a result");
    }

    #[test]
    fn dropping_the_handle_cancels_the_job() {
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::sync::Arc;

        let finished = Arc::new(AtomicBool::new(false));
        let witness = finished.clone();
        let handle = spawn_cancelable(move |token| {
            while !token.is_canceled() {
                std::thread::yield_now();
            }
            witness.store(true, Ordering::SeqCst);
            1
        });
        let token = handle.token();
        drop(handle);
        assert!(token.is_canceled(), "drop must cancel");
        // The detached worker observes the cancel, exits, and never commits.
        while !finished.load(Ordering::SeqCst) {
            std::thread::yield_now();
        }
        assert!(!token.is_committed(), "dropped job committed a result");
    }

    #[test]
    fn committed_jobs_ignore_late_cancels() {
        let handle = spawn_cancelable(|_| 5u32);
        // Wait for the worker to commit, then cancel: the result stands.
        while !handle.token().is_committed() {
            std::thread::yield_now();
        }
        assert!(!handle.cancel(), "cancel after commit must lose");
        assert_eq!(handle.join(), Some(5));
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(64))]

        /// The core cancellation guarantee under racing interleavings: a
        /// cancel that *wins* means the job never delivers, and a job that
        /// delivers means every cancel *lost*. Work length and cancel
        /// timing vary so the race lands on both sides across cases.
        #[test]
        fn canceled_jobs_never_deliver_results(
            (work, cancel_flag, spins) in (0..2_000u32, 0..2u32, 0..64u32)
        ) {
            let do_cancel = cancel_flag == 1;
            let token = CancelToken::new();
            let handle = spawn_cancelable_with_token(token.clone(), move |t| {
                for _ in 0..work {
                    if t.is_canceled() {
                        break;
                    }
                    std::hint::spin_loop();
                }
                99u64
            });
            let cancel_won = if do_cancel {
                for _ in 0..spins {
                    std::hint::spin_loop();
                }
                token.cancel()
            } else {
                false
            };
            let result = handle.join();
            proptest::prop_assert!(
                !(cancel_won && result.is_some()),
                "a winning cancel must suppress delivery"
            );
            proptest::prop_assert!(
                result.is_some() || cancel_won,
                "a job only fails to deliver when a cancel won"
            );
            if !do_cancel {
                proptest::prop_assert_eq!(result, Some(99));
            }
        }
    }

    #[test]
    fn nested_maps_split_the_thread_budget_and_stay_ordered() {
        // An outer parallel map whose items each run an inner map: every
        // worker's inner budget must be its fair share of the machine
        // budget (total concurrency ≈ core count, never outer × cores),
        // and the combined output must stay in order.
        let machine = thread_budget();
        let outer: Vec<u64> = (0..16).collect();
        let outer_threads = machine.min(outer.len());
        let expected_inner_budget = (machine / outer_threads.max(1)).max(1);
        let out = parallel_map(&outer, |&x| {
            let inner: Vec<u64> = (0..8).collect();
            let inner_budget = thread_budget();
            let sums = parallel_map(&inner, |&y| x * 100 + y);
            (inner_budget, sums)
        });
        for (x, (inner_budget, sums)) in out.iter().enumerate() {
            // Single-thread runners never spawn workers, so the inner call
            // sees the full (=1) machine budget rather than a worker share.
            if outer_threads > 1 {
                assert_eq!(
                    *inner_budget, expected_inner_budget,
                    "worker budget must be the parent's share"
                );
                assert!(*inner_budget * outer_threads <= machine.max(outer_threads));
            }
            let expected: Vec<u64> = (0..8).map(|y| x as u64 * 100 + y).collect();
            assert_eq!(sums, &expected);
        }
    }
}
